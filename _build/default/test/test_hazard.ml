(** Tests for the hazard-analysis substrate (FTA/FMEA, §2.2.1). *)

let test_fig_2_2_structure () =
  let t = Hazard.Fta.fig_2_2 in
  Alcotest.(check string) "top event" "Unintended sudden acceleration" (Hazard.Fta.name t);
  Alcotest.(check int) "five basic events" 5 (List.length (Hazard.Fta.basic_events t))

let test_cut_sets () =
  let cuts = Hazard.Fta.cut_sets Hazard.Fta.fig_2_2 in
  (* three single-point paths + one AND pair *)
  Alcotest.(check int) "four minimal cut sets" 4 (List.length cuts);
  Alcotest.(check bool) "the AND pair is a cut set" true
    (List.mem
       [
         "Higher priority subsystem aborts deceleration";
         "Lower priority subsystem requests acceleration";
       ]
       (List.map (List.sort compare) cuts))

let test_single_points () =
  let sp = Hazard.Fta.single_points Hazard.Fta.fig_2_2 in
  Alcotest.(check int) "three single points" 3 (List.length sp);
  Alcotest.(check bool) "sensor blockage is a single point" true
    (List.mem "Sensor is blocked" sp);
  Alcotest.(check bool) "the coordinated pair is not" false
    (List.mem "Higher priority subsystem aborts deceleration" sp)

let test_absorption () =
  (* or(e, and(e, f)) has the single minimal cut set {e}. *)
  let open Hazard.Fta in
  let t = or_ "top" [ event "e"; and_ "pair" [ event "e"; event "f" ] ] in
  Alcotest.(check (list (list string))) "absorbed" [ [ "e" ] ] (cut_sets t)

let test_probability () =
  let open Hazard.Fta in
  (* single event: p = rate * hours *)
  let t = event ~rate:1e-3 "e" in
  Alcotest.(check (float 1e-9)) "linear" 1e-2 (probability ~hours:10. t);
  (* AND multiplies, OR adds (rare-event) *)
  let t2 = and_ "both" [ event ~rate:1e-3 "a"; event ~rate:1e-3 "b" ] in
  Alcotest.(check (float 1e-12)) "and multiplies" 1e-4 (probability ~hours:10. t2);
  let t3 = or_ "either" [ event ~rate:1e-3 "a"; event ~rate:1e-3 "b" ] in
  Alcotest.(check (float 1e-9)) "or adds" 2e-2 (probability ~hours:10. t3);
  (* capped at 1 *)
  Alcotest.(check (float 0.)) "capped" 1.0
    (probability ~hours:1e9 (event ~rate:1e-3 "e"))

let test_fmea_query () =
  let affecting = Hazard.Fmea.components_affecting Hazard.Fmea.fig_2_3 "miss an object" in
  Alcotest.(check (list string)) "radar found" [ "Long-range radar sensor" ] affecting;
  Alcotest.(check (list string)) "no match" []
    (Hazard.Fmea.components_affecting Hazard.Fmea.fig_2_3 "steering runaway")

let test_fmea_render () =
  let s = Fmt.str "%a" Hazard.Fmea.pp Hazard.Fmea.fig_2_3 in
  Alcotest.(check bool) "mentions failure modes" true
    (String.length s > 100
    &&
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains "False positive" s && contains "False negative" s)

(* The fault-tree AND of Fig. 2.2 is exactly the §5.4 feature-interaction
   mechanism: the arbiter aborting a deceleration while a lower-priority
   subsystem requests acceleration. Tie the two reproductions together: in
   scenario 2 the seeded routing defect realizes that cut set. *)
let test_fig_2_2_realized_by_scenario_2 () =
  let o = Scenarios.Runner.run (Scenarios.Defs.get 2) in
  let tr = o.Scenarios.Runner.trace in
  (* find a state where CA was braking hard and the command jumped to PA's
     (non-braking) request: the "aborts deceleration + requests
     acceleration" conjunction *)
  let found = ref false in
  Tl.Trace.iteri
    (fun i s ->
      if (not !found) && i > 0 then
        let prev = Tl.Trace.get tr (i - 1) in
        let was_braking = Tl.State.float prev "accel_cmd" < -5. in
        let now_not = Tl.State.float s "accel_cmd" > -0.5 in
        let pa_active = Tl.State.bool s "pa_active" in
        if was_braking && now_not && pa_active then found := true)
    tr;
  Alcotest.(check bool) "cut set realized" true !found

let () =
  Alcotest.run "hazard"
    [
      ( "fta",
        [
          Alcotest.test_case "Fig. 2.2 structure" `Quick test_fig_2_2_structure;
          Alcotest.test_case "minimal cut sets" `Quick test_cut_sets;
          Alcotest.test_case "single points" `Quick test_single_points;
          Alcotest.test_case "absorption" `Quick test_absorption;
          Alcotest.test_case "probability" `Quick test_probability;
        ] );
      ( "fmea",
        [
          Alcotest.test_case "Fig. 2.3 query" `Quick test_fmea_query;
          Alcotest.test_case "render" `Quick test_fmea_render;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Fig. 2.2 cut set realized in scenario 2" `Slow
            test_fig_2_2_realized_by_scenario_2;
        ] );
    ]
