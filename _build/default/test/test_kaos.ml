(** Tests for the KAOS/GORE layer: goals, agents, realizability, the
    machine-checked realizability-pattern catalog, and elaboration tactics. *)

open Tl

let a = Formula.bvar "A"
let b = Formula.bvar "B"

(* ------------------------------------------------------------------ *)
(* Goals                                                                *)

let test_goal_naming () =
  let g = Kaos.Goal.achieve "TrainProgress" ~informal:"..." (Formula.entails a b) in
  Alcotest.(check string) "name" "Achieve[TrainProgress]" g.Kaos.Goal.name;
  Alcotest.(check string) "category" "Achieve"
    (Kaos.Goal.category_to_string g.Kaos.Goal.category)

let test_goal_mon_ctrl_defaults () =
  let g =
    Kaos.Goal.maintain "X" ~informal:"..."
      (Formula.entails (Formula.prev a) (Formula.and_ b (Formula.bvar "C")))
  in
  Alcotest.(check (list string)) "monitored = past-only vars" [ "A" ] g.Kaos.Goal.monitored;
  Alcotest.(check (list string)) "controlled = present vars" [ "B"; "C" ]
    g.Kaos.Goal.controlled

(* ------------------------------------------------------------------ *)
(* Agents and realizability                                             *)

let ag_mon_a_ctrl_b = Kaos.Agent.make "ag" ~monitors:[ "A" ] ~controls:[ "B" ]

let test_agent_union () =
  let ag1 = Kaos.Agent.make "x" ~monitors:[ "A" ] ~controls:[ "B" ] in
  let ag2 = Kaos.Agent.make "y" ~monitors:[ "C" ] ~controls:[ "D" ] in
  let u = Kaos.Agent.union "xy" [ ag1; ag2 ] in
  Alcotest.(check bool) "monitors union" true (Kaos.Agent.monitors u "C");
  Alcotest.(check bool) "controls union" true (Kaos.Agent.controls u "B");
  Alcotest.(check bool) "observes own output" true (Kaos.Agent.observes u "D")

let realizable = Alcotest.testable (Fmt.any "verdict") (fun x y ->
    Kaos.Realizability.is_realizable x = Kaos.Realizability.is_realizable y)

let test_realizability_prev_form () =
  (* ●A ⇒ B with Mon(A), Ctrl(B): realizable (§2.3.2). *)
  let g =
    Kaos.Goal.achieve "g" ~informal:"" (Formula.entails (Formula.prev a) b)
  in
  Alcotest.check realizable "realizable" Kaos.Realizability.Realizable
    (Kaos.Realizability.check g ag_mon_a_ctrl_b)

let test_realizability_reference_to_future () =
  (* A ⇒ B with Mon(A), Ctrl(B): reference to the future (§2.3.2). *)
  let g = Kaos.Goal.achieve "g" ~informal:"" (Formula.entails a b) in
  match Kaos.Realizability.check g ag_mon_a_ctrl_b with
  | Kaos.Realizability.Unrealizable ds ->
      Alcotest.(check bool) "reference to future" true
        (List.exists
           (function Kaos.Realizability.Reference_to_future _ -> true | _ -> false)
           ds)
  | Kaos.Realizability.Realizable -> Alcotest.fail "should not be realizable"

let test_realizability_lack_of_monitorability () =
  let g =
    Kaos.Goal.achieve "g" ~informal:""
      (Formula.entails (Formula.prev (Formula.bvar "Z")) b)
  in
  match Kaos.Realizability.check g ag_mon_a_ctrl_b with
  | Kaos.Realizability.Unrealizable ds ->
      Alcotest.(check bool) "lack of monitorability of Z" true
        (List.exists
           (function
             | Kaos.Realizability.Lack_of_monitorability [ "Z" ] -> true
             | _ -> false)
           ds)
  | Kaos.Realizability.Realizable -> Alcotest.fail "should not be realizable"

let test_realizability_future_operator () =
  (* Goals containing ♦ are not realizable (§4.5.3). *)
  let g =
    Kaos.Goal.achieve "g" ~informal:""
      (Formula.always (Formula.implies a (Formula.eventually b)))
  in
  match Kaos.Realizability.check g (Kaos.Agent.make "god" ~monitors:[ "A"; "B" ] ~controls:[ "A"; "B" ]) with
  | Kaos.Realizability.Unrealizable ds ->
      Alcotest.(check bool) "prescience" true
        (List.exists
           (function Kaos.Realizability.Reference_to_future _ -> true | _ -> false)
           ds)
  | Kaos.Realizability.Realizable -> Alcotest.fail "eventually should be unrealizable"

let test_shared_responsibility_union () =
  (* Table 4.4's DoorController subgoal needs both observation of drc and
     control of dmc — realizable by the door controller alone. *)
  let g = Elevator.Goals.close_door_when_moving_or_moved in
  let door = Elevator.System.agent "DoorController" in
  Alcotest.check realizable "door subgoal realizable" Kaos.Realizability.Realizable
    (Kaos.Realizability.check g door)

(* ------------------------------------------------------------------ *)
(* Realizability-pattern catalog (Table 4.5 / Appendix B)               *)

let caps l = l

let analyze_ab form_idx ca cb =
  Kaos.Patterns.analyze (List.nth Kaos.Patterns.forms form_idx) (caps [ ("A", ca); ("B", cb) ])

let test_table_4_5_rows () =
  let open Kaos.Patterns in
  (* A ⇒ B: Ctrl/Ctrl realizable; Obs/Ctrl only restrictive □B;
     Ctrl/Obs only restrictive □¬A. *)
  (match analyze_ab 0 Controllable Controllable with
  | Realizable_as _ -> ()
  | _ -> Alcotest.fail "A=>B Ctrl/Ctrl should be realizable");
  (match analyze_ab 0 Observable Controllable with
  | Alternatives [ alt ] ->
      Alcotest.(check string) "□B alternative" "B" (Formula.to_string alt.alt_body)
  | _ -> Alcotest.fail "A=>B Obs/Ctrl should have the □B alternative");
  (match analyze_ab 0 Controllable Observable with
  | Alternatives [ alt ] ->
      Alcotest.(check string) "□¬A alternative" "¬A" (Formula.to_string alt.alt_body)
  | _ -> Alcotest.fail "A=>B Ctrl/Obs should have the □¬A alternative");
  match analyze_ab 0 Observable Observable with
  | No_alternative -> ()
  | _ -> Alcotest.fail "A=>B Obs/Obs should be unrealizable"

let test_prev_antecedent_realizable () =
  let open Kaos.Patterns in
  match analyze_ab 1 Observable Controllable with
  | Realizable_as rep ->
      Alcotest.(check string) "as stated" "●A → B" (Formula.to_string rep)
  | _ -> Alcotest.fail "●A=>B Obs/Ctrl should be realizable"

let test_prev_consequent_contrapositive () =
  (* A ⇒ ●B with Ctrl(A), Obs(B): realizable — operationally the agent
     observes ●B and sets A accordingly, i.e. the equivalent ¬●B ⇒ ¬A of
     §4.5.3 ("not restrictive; an equivalent representation"). *)
  let open Kaos.Patterns in
  (match analyze_ab 2 Controllable Observable with
  | Realizable_as _ -> ()
  | _ -> Alcotest.fail "A=>●B Ctrl/Obs should be realizable");
  (* the contrapositive is among the equivalent representations offered *)
  let body = (List.nth forms 2).body in
  let reps = List.map Formula.to_string (equivalent_reps body) in
  Alcotest.(check bool) "contrapositive offered" true (List.mem "¬●B → ¬A" reps)

(** The catalog is machine-checked by construction; spot-verify the
    invariant externally: every alternative entails the parent and is
    strictly stronger. *)
let test_catalog_soundness () =
  List.iter
    (fun form ->
      List.iter
        (fun (row : Kaos.Patterns.row) ->
          match row.Kaos.Patterns.verdict with
          | Kaos.Patterns.Alternatives alts ->
              List.iter
                (fun (alt : Kaos.Patterns.alternative) ->
                  Alcotest.(check bool)
                    (Fmt.str "%s: %a entails parent" form.Kaos.Patterns.form_name
                       Formula.pp alt.Kaos.Patterns.alt_body)
                    true
                    (Kaos.Patterns.entails_on_all_traces form.Kaos.Patterns.form_vars
                       alt.Kaos.Patterns.alt_body form.Kaos.Patterns.body);
                  Alcotest.(check bool) "strictly stronger" false
                    (Kaos.Patterns.entails_on_all_traces form.Kaos.Patterns.form_vars
                       form.Kaos.Patterns.body alt.Kaos.Patterns.alt_body))
                alts
          | _ -> ())
        (Kaos.Patterns.table form))
    (List.filteri (fun i _ -> i < 5) Kaos.Patterns.forms)

let test_all_forms_have_tables () =
  Alcotest.(check int) "fifteen forms" 15 (List.length Kaos.Patterns.forms);
  List.iter
    (fun form ->
      let rows = Kaos.Patterns.table form in
      let expected =
        int_of_float (3. ** float_of_int (List.length form.Kaos.Patterns.form_vars))
      in
      Alcotest.(check int)
        (Fmt.str "%s row count" form.Kaos.Patterns.form_name)
        expected (List.length rows))
    (List.filteri (fun i _ -> i < 4) Kaos.Patterns.forms)

(* ------------------------------------------------------------------ *)
(* Elaboration tactics                                                  *)

let entails_traces = Kaos.Patterns.entails_on_all_traces

let test_chaining () =
  let goal = Formula.entails a b in
  let r = Kaos.Tactics.split_by_chaining ~milestone:(Formula.bvar "M") goal in
  Alcotest.(check int) "two subgoals" 2 (List.length r.Kaos.Tactics.subgoals);
  Alcotest.(check bool) "not restrictive" false r.Kaos.Tactics.restrictive;
  (* soundness: conjunction of subgoals entails parent *)
  let conj =
    Formula.conj (List.map Compose.Andred.body r.Kaos.Tactics.subgoals)
  in
  Alcotest.(check bool) "sound" true
    (entails_traces [ "A"; "B"; "M" ] conj (Compose.Andred.body goal))

let test_case_split () =
  let goal = Formula.entails a b in
  let f1 = Formula.bvar "F1" and f2 = Formula.bvar "F2" in
  let r = Kaos.Tactics.split_by_case ~cases:[ (f1, b); (f2, b) ] goal in
  Alcotest.(check int) "two subgoals" 2 (List.length r.Kaos.Tactics.subgoals);
  Alcotest.(check int) "completeness obligation" 1 (List.length r.Kaos.Tactics.obligations);
  let conj =
    Formula.conj
      (List.map Compose.Andred.body (r.Kaos.Tactics.subgoals @ r.Kaos.Tactics.obligations))
  in
  Alcotest.(check bool) "sound under obligation" true
    (entails_traces [ "A"; "B"; "F1"; "F2" ] conj (Compose.Andred.body goal))

let test_accuracy_actuation () =
  let goal = Formula.entails a b in
  let r = Kaos.Tactics.introduce_accuracy_actuation ~on:"B" ~replacement:"Bact" goal in
  let conj =
    Formula.conj
      (List.map Compose.Andred.body (r.Kaos.Tactics.subgoals @ r.Kaos.Tactics.obligations))
  in
  Alcotest.(check bool) "sound under equivalence" true
    (entails_traces [ "A"; "B"; "Bact" ] conj (Compose.Andred.body goal))

let test_or_reduce () =
  let goal = Formula.always (Formula.or_ a (Formula.bvar "X")) in
  let r = Kaos.Tactics.or_reduce ~keep:a goal in
  Alcotest.(check bool) "restrictive" true r.Kaos.Tactics.restrictive;
  Alcotest.(check bool) "sound" true
    (entails_traces [ "A"; "X" ]
       (Compose.Andred.body (List.hd r.Kaos.Tactics.subgoals))
       (Compose.Andred.body goal))

let test_safety_margin () =
  let goal = Formula.always (Formula.le (Term.var "x") (Term.float 2.0)) in
  let r = Kaos.Tactics.safety_margin ~margin:0.5 goal in
  let strengthened = List.hd r.Kaos.Tactics.subgoals in
  let tr v = Trace.make ~dt:1.0 [ State.of_list [ ("x", Value.Float v) ] ] in
  Alcotest.(check bool) "1.6 violates margin" false (Eval.holds (tr 1.6) strengthened);
  Alcotest.(check bool) "1.6 meets parent" true (Eval.holds (tr 1.6) goal);
  Alcotest.(check bool) "1.4 meets margin" true (Eval.holds (tr 1.4) strengthened)

let test_alarm_response () =
  let r =
    Kaos.Tactics.introduce_alarm_response ~hazard_precursor:(Formula.bvar "Hot")
      ~alarm:(Formula.bvar "Alarm") ~safe:(Formula.bvar "CoolingOn")
      ~response_time:2.0
  in
  Alcotest.(check int) "two subgoals" 2 (List.length r.Kaos.Tactics.subgoals)

(* ------------------------------------------------------------------ *)
(* Refinement graphs                                                    *)

let test_refinement_graph () =
  let mk name = Kaos.Goal.maintain name ~informal:"" a in
  let leaf1 = Kaos.Refinement.leaf ~agent:"CA" (mk "L1") in
  let leaf2 = Kaos.Refinement.leaf (mk "L2") in
  let root = Kaos.Refinement.refine (mk "Root") [ [ leaf1; leaf2 ] ] in
  Alcotest.(check int) "two leaves" 2 (List.length (Kaos.Refinement.leaves root));
  Alcotest.(check bool) "not fully assigned" false (Kaos.Refinement.fully_assigned root);
  Alcotest.(check int) "all goals" 3 (List.length (Kaos.Refinement.all_goals root))

let () =
  Alcotest.run "kaos"
    [
      ( "goal",
        [
          Alcotest.test_case "naming" `Quick test_goal_naming;
          Alcotest.test_case "mon/ctrl defaults" `Quick test_goal_mon_ctrl_defaults;
        ] );
      ( "realizability",
        [
          Alcotest.test_case "agent union" `Quick test_agent_union;
          Alcotest.test_case "prev form realizable" `Quick test_realizability_prev_form;
          Alcotest.test_case "reference to future" `Quick test_realizability_reference_to_future;
          Alcotest.test_case "lack of monitorability" `Quick test_realizability_lack_of_monitorability;
          Alcotest.test_case "eventually unrealizable" `Quick test_realizability_future_operator;
          Alcotest.test_case "elevator shared subgoal" `Quick test_shared_responsibility_union;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "Table 4.5 rows" `Quick test_table_4_5_rows;
          Alcotest.test_case "prev antecedent" `Quick test_prev_antecedent_realizable;
          Alcotest.test_case "contrapositive equivalence" `Quick test_prev_consequent_contrapositive;
          Alcotest.test_case "catalog soundness" `Slow test_catalog_soundness;
          Alcotest.test_case "form tables complete" `Quick test_all_forms_have_tables;
        ] );
      ( "tactics",
        [
          Alcotest.test_case "split by chaining" `Quick test_chaining;
          Alcotest.test_case "split by case" `Quick test_case_split;
          Alcotest.test_case "introduce accuracy/actuation" `Quick test_accuracy_actuation;
          Alcotest.test_case "OR reduction" `Quick test_or_reduce;
          Alcotest.test_case "safety margin" `Quick test_safety_margin;
          Alcotest.test_case "alarm/response" `Quick test_alarm_response;
        ] );
      ("refinement", [ Alcotest.test_case "graph" `Quick test_refinement_graph ]);
    ]
