(** Unit tests for the vehicle substrate: goal formulas, the monitoring
    plan, feature behaviours, arbitration timing, and plant dynamics —
    mostly via small purpose-built worlds. *)

open Tl
open Vehicle.Signals

let dt = Vehicle.System.dt

(* ------------------------------------------------------------------ *)
(* Goals and monitoring plan                                            *)

let test_goal_inventory () =
  Alcotest.(check int) "nine goals" 9 (List.length Vehicle.Goals.all);
  List.iter
    (fun (_, (g : Kaos.Goal.t)) ->
      Alcotest.(check bool)
        (g.Kaos.Goal.name ^ " monitorable")
        true
        (Formula.invariant_body g.Kaos.Goal.formal <> None))
    Vehicle.Goals.all

let test_monitoring_plan () =
  let count loc =
    List.length
      (List.filter (fun (e : Vehicle.Monitors.entry) -> e.Vehicle.Monitors.location = loc)
         Vehicle.Monitors.all)
  in
  Alcotest.(check int) "nine vehicle-level monitors" 9 (count Vehicle.Monitors.Vehicle);
  Alcotest.(check int) "nine arbiter monitors" 9 (count Vehicle.Monitors.Arbiter);
  (* feature monitors: 5 goal families x 4 accel features + 2 steer + 1 RCA
     + 3 backward = 26 *)
  let feature_count =
    List.length
      (List.filter
         (fun (e : Vehicle.Monitors.entry) ->
           match e.Vehicle.Monitors.location with
           | Vehicle.Monitors.Feature _ -> true
           | _ -> false)
         Vehicle.Monitors.all)
  in
  Alcotest.(check int) "feature monitors" 26 feature_count;
  (* LCA carries no acceleration-request subgoals (§5.3.2) *)
  Alcotest.(check bool) "no LCA accel subgoal" false
    (List.exists
       (fun (e : Vehicle.Monitors.entry) ->
         e.Vehicle.Monitors.id = "1B.LCA" || e.Vehicle.Monitors.id = "2B.LCA")
       Vehicle.Monitors.all)

let test_goal1_formula () =
  (* G1 fires only for subsystem-attributed acceleration above 2. *)
  let mk ~src ~accel =
    State.of_list [ (va_source, Value.Sym src); (host_accel, Value.Float accel) ]
  in
  let tr = Trace.make ~dt [ mk ~src:"CA" ~accel:2.5 ] in
  Alcotest.(check bool) "CA at 2.5 violates" false
    (Eval.holds tr Vehicle.Goals.g1.Kaos.Goal.formal);
  let tr = Trace.make ~dt [ mk ~src:"Driver" ~accel:2.5 ] in
  Alcotest.(check bool) "driver at 2.5 allowed" true
    (Eval.holds tr Vehicle.Goals.g1.Kaos.Goal.formal);
  let tr = Trace.make ~dt [ mk ~src:"CA" ~accel:(-9.) ] in
  Alcotest.(check bool) "hard deceleration allowed (one-sided)" true
    (Eval.holds tr Vehicle.Goals.g1.Kaos.Goal.formal)

(* ------------------------------------------------------------------ *)
(* Mini-world helper: drive selected components with scripted inputs.   *)

let mini_world ~events ~extra components =
  Sim.World.make ~check_conflicts:false ~dt
    (Vehicle.System.driver events :: components @ [ Sim.Component.constant ~name:"env" extra ])

let plant_defaults =
  [
    (host_speed, Value.Float 0.);
    (host_accel, Value.Float 0.);
    (object_detected, Value.Bool false);
    (object_range, Value.Float 1000.);
    (object_closing_speed, Value.Float 0.);
    (rear_object_detected, Value.Bool false);
    (rear_range, Value.Float 1000.);
    (lead_speed, Value.Float 0.);
    (accel_source, Value.Sym "Driver");
  ]

(* ------------------------------------------------------------------ *)
(* Features                                                             *)

let test_pa_ghost_profile () =
  (* Fig. 5.3: +2 until 2.186 s, 0 until 9.33, −2 until 9.624, then 0 —
     while never enabled nor requesting. *)
  let w =
    mini_world ~events:[] ~extra:plant_defaults
      [ Vehicle.Feature_pa.component Vehicle.Defects.as_evaluated ]
  in
  let tr = Sim.World.run ~until:10.0 w in
  let at t = State.float (Trace.get tr (int_of_float (t /. dt))) (accel_req "PA") in
  Alcotest.(check (float 1e-9)) "+2 at 1 s" 2.0 (at 1.0);
  Alcotest.(check (float 1e-9)) "0 at 5 s" 0.0 (at 5.0);
  Alcotest.(check (float 1e-9)) "-2 at 9.5 s" (-2.0) (at 9.5);
  Alcotest.(check (float 1e-9)) "0 at 9.8 s" 0.0 (at 9.8);
  Alcotest.(check bool) "never requesting" true
    (Trace.fold (fun acc s -> acc && not (State.bool s (req_accel "PA"))) true tr)

let test_pa_ghost_repaired () =
  let w =
    mini_world ~events:[] ~extra:plant_defaults
      [ Vehicle.Feature_pa.component Vehicle.Defects.repaired ]
  in
  let tr = Sim.World.run ~until:3.0 w in
  Alcotest.(check bool) "no ghost requests" true
    (Trace.fold (fun acc s -> acc && State.float s (accel_req "PA") = 0.) true tr)

let test_ca_engages_and_brakes () =
  let extra =
    List.map
      (fun (k, v) ->
        match k with
        | _ when k = object_range -> (k, Value.Float 5.0)
        | _ when k = object_detected -> (k, Value.Bool true)
        | _ when k = object_closing_speed -> (k, Value.Float 3.0)
        | _ when k = host_speed -> (k, Value.Float 3.0)
        | _ -> (k, v))
      plant_defaults
  in
  let w =
    mini_world
      ~events:[ Sim.Stimulus.press 0. (enabled "CA") ]
      ~extra
      [ Vehicle.Feature_ca.component Vehicle.Defects.as_evaluated ]
  in
  let tr = Sim.World.run ~until:0.1 w in
  let last = Trace.get tr (Trace.length tr - 1) in
  (* ttc = 5/3 < 2.2: CA must engage and request a hard brake *)
  Alcotest.(check bool) "engaged" true (State.bool last (active "CA"));
  Alcotest.(check bool) "hard brake" true (State.float last (accel_req "CA") < -8.)

let test_ca_requires_forward_gear () =
  let extra =
    List.map
      (fun (k, v) ->
        if k = object_range then (k, Value.Float 5.0)
        else if k = object_detected then (k, Value.Bool true)
        else if k = object_closing_speed then (k, Value.Float 3.0)
        else (k, v))
      plant_defaults
  in
  let w =
    mini_world
      ~events:
        [ Sim.Stimulus.press 0. (enabled "CA"); Sim.Stimulus.set 0. gear (Value.Sym "R") ]
      ~extra
      [ Vehicle.Feature_ca.component Vehicle.Defects.as_evaluated ]
  in
  let tr = Sim.World.run ~until:0.1 w in
  Alcotest.(check bool) "CA inert in reverse" true
    (Trace.fold (fun acc s -> acc && not (State.bool s (active "CA"))) true tr)

let test_acc_jerk_limited_request () =
  (* Fig. 5.7: ACC requests are rate-limited to 2 m/s³ and capped at 1.8. *)
  let extra =
    List.map
      (fun (k, v) -> if k = host_speed then (k, Value.Float 1.0) else (k, v))
      plant_defaults
  in
  let w =
    mini_world
      ~events:
        [ Sim.Stimulus.press 0. (enabled "ACC"); Sim.Stimulus.press 0.5 (engage_request "ACC") ]
      ~extra
      [ Vehicle.Feature_acc.component Vehicle.Defects.as_evaluated ]
  in
  let tr = Sim.World.run ~until:4.0 w in
  let series = List.map snd (Trace.signal tr (accel_req "ACC")) in
  let max_req = List.fold_left Float.max neg_infinity series in
  Alcotest.(check bool) "capped at 1.8" true (max_req <= 1.8 +. 1e-9);
  let max_jerk =
    let rec go prev acc = function
      | [] -> acc
      | x :: rest -> go x (Float.max acc (Float.abs (x -. prev) /. dt)) rest
    in
    go (List.hd series) 0. (List.tl series)
  in
  Alcotest.(check bool) "jerk-limited at 2" true (max_jerk <= 2.0 +. 1e-6)

let test_acc_disengaged_leak_defect () =
  (* Fig. 5.6: merely enabled, ACC controls toward set speed 0. *)
  let extra =
    List.map
      (fun (k, v) -> if k = host_speed then (k, Value.Float 3.0) else (k, v))
      plant_defaults
  in
  let run defects =
    let w =
      mini_world
        ~events:[ Sim.Stimulus.press 0. (enabled "ACC") ]
        ~extra
        [ Vehicle.Feature_acc.component defects ]
    in
    let tr = Sim.World.run ~until:3.0 w in
    State.float (Trace.get tr (Trace.length tr - 1)) (accel_req "ACC")
  in
  Alcotest.(check bool) "defect: negative leak request" true
    (run Vehicle.Defects.as_evaluated < -0.5);
  Alcotest.(check (float 1e-9)) "repaired: no request" 0.
    (run Vehicle.Defects.repaired)

let test_rca_gear_defect () =
  let extra =
    List.map
      (fun (k, v) ->
        if k = rear_object_detected then (k, Value.Bool true)
        else if k = rear_range then (k, Value.Float 3.0)
        else if k = host_speed then (k, Value.Float (-2.0))
        else (k, v))
      plant_defaults
  in
  let run defects =
    let w =
      mini_world
        ~events:
          [ Sim.Stimulus.press 0. (enabled "RCA"); Sim.Stimulus.set 0. gear (Value.Sym "R") ]
        ~extra
        [ Vehicle.Feature_rca.component defects ]
    in
    let tr = Sim.World.run ~until:0.1 w in
    State.bool (Trace.get tr (Trace.length tr - 1)) (active "RCA")
  in
  Alcotest.(check bool) "defect: never engages" false (run Vehicle.Defects.as_evaluated);
  Alcotest.(check bool) "repaired: engages" true (run Vehicle.Defects.repaired)

(* ------------------------------------------------------------------ *)
(* Arbiter                                                              *)

let arbiter_world ?(defects = Vehicle.Defects.as_evaluated) ~events ~extra () =
  mini_world ~events ~extra [ Vehicle.Arbiter.component defects ]

let feature_inputs f ~active:a ~req ~value =
  [
    (active f, Value.Bool a);
    (req_accel f, Value.Bool req);
    (accel_req f, Value.Float value);
    (steer_req f, Value.Float 0.);
    (req_steer f, Value.Bool false);
  ]

let all_features_inert =
  List.concat_map
    (fun f -> feature_inputs f ~active:false ~req:false ~value:0.)
    features

let test_selection_debounce () =
  (* A requesting feature is selected 50 ms after becoming active. *)
  let extra =
    plant_defaults
    @ all_features_inert
  in
  let w =
    arbiter_world
      ~events:
        [
          Sim.Stimulus.press 1.0 (active "ACC");
          Sim.Stimulus.press 1.0 (req_accel "ACC");
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:1.2 w in
  let src_at t = State.sym (Trace.get tr (int_of_float (t /. dt))) accel_source in
  Alcotest.(check string) "driver before" "Driver" (src_at 1.02);
  Alcotest.(check string) "ACC after debounce" "ACC" (src_at 1.06);
  (* the switch happens within [1.05, 1.055] *)
  Alcotest.(check string) "not earlier" "Driver" (src_at 1.049)

let test_priority_order () =
  (* CA preempts ACC. *)
  let extra = plant_defaults @ all_features_inert in
  let w =
    arbiter_world
      ~events:
        [
          Sim.Stimulus.press 0.5 (active "ACC");
          Sim.Stimulus.press 0.5 (req_accel "ACC");
          Sim.Stimulus.press 1.0 (active "CA");
          Sim.Stimulus.press 1.0 (req_accel "CA");
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:1.5 w in
  let src_at t = State.sym (Trace.get tr (int_of_float (t /. dt))) accel_source in
  Alcotest.(check string) "ACC first" "ACC" (src_at 0.9);
  Alcotest.(check string) "CA preempts" "CA" (src_at 1.2)

let test_pedal_override_and_reselect () =
  (* §5.4.4/§5.4.5: a non-emergency feature is overridden ~50 ms after the
     pedals are applied, and regains control 0.101 s after release. *)
  let extra =
    plant_defaults @ all_features_inert
    |> List.map (fun (k, v) -> if k = host_speed then (k, Value.Float 3.0) else (k, v))
  in
  let w =
    arbiter_world
      ~events:
        [
          Sim.Stimulus.press 0.2 (active "ACC");
          Sim.Stimulus.press 0.2 (req_accel "ACC");
          Sim.Stimulus.set 0.2 (accel_req "ACC") (Value.Float 1.0);
          Sim.Stimulus.set 1.0 throttle_pedal (Value.Float 0.3);
          Sim.Stimulus.set 2.0 throttle_pedal (Value.Float 0.0);
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:2.5 w in
  let src_at t = State.sym (Trace.get tr (int_of_float (t /. dt))) accel_source in
  Alcotest.(check string) "selected before pedals" "ACC" (src_at 0.9);
  Alcotest.(check string) "overridden ~50ms after pedals" "Driver" (src_at 1.06);
  Alcotest.(check string) "blocked while pedals held" "Driver" (src_at 1.9);
  Alcotest.(check string) "not yet at +0.09" "Driver" (src_at 2.09);
  Alcotest.(check string) "regained at +0.101" "ACC" (src_at 2.12)

let test_hard_brake_not_overridden () =
  (* An emergency stop request (< −2 m/s²) may not be overridden (§5.2.3). *)
  let extra =
    plant_defaults @ all_features_inert
    |> List.map (fun (k, v) -> if k = host_speed then (k, Value.Float 3.0) else (k, v))
  in
  let w =
    arbiter_world
      ~events:
        [
          Sim.Stimulus.press 0.2 (active "CA");
          Sim.Stimulus.press 0.2 (req_accel "CA");
          Sim.Stimulus.set 0.2 (accel_req "CA") (Value.Float (-9.0));
          Sim.Stimulus.set 1.0 throttle_pedal (Value.Float 0.5);
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:2.0 w in
  let src_at t = State.sym (Trace.get tr (int_of_float (t /. dt))) accel_source in
  Alcotest.(check string) "CA keeps control under throttle" "CA" (src_at 1.9)

let test_selected_latch_defect () =
  (* After the feature withdraws, the flag-derived attribution holds for the
     latch window while the command source is already the driver. *)
  let extra = plant_defaults @ all_features_inert in
  let w =
    arbiter_world
      ~events:
        [
          Sim.Stimulus.press 0.2 (active "CA");
          Sim.Stimulus.press 0.2 (req_accel "CA");
          Sim.Stimulus.release 1.0 (req_accel "CA");
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:1.5 w in
  let at t v = State.sym (Trace.get tr (int_of_float (t /. dt))) v in
  Alcotest.(check string) "command source reverts" "Driver" (at 1.05 accel_source);
  Alcotest.(check string) "attribution latched" "CA" (at 1.05 va_source);
  Alcotest.(check string) "latch expires" "Driver" (at 1.4 va_source)

let test_latch_repaired () =
  let extra = plant_defaults @ all_features_inert in
  let w =
    arbiter_world ~defects:Vehicle.Defects.repaired
      ~events:
        [
          Sim.Stimulus.press 0.2 (active "CA");
          Sim.Stimulus.press 0.2 (req_accel "CA");
          Sim.Stimulus.release 1.0 (req_accel "CA");
        ]
      ~extra ()
  in
  let tr = Sim.World.run ~until:1.3 w in
  let at t v = State.sym (Trace.get tr (int_of_float (t /. dt))) v in
  Alcotest.(check string) "attribution follows immediately" "Driver" (at 1.05 va_source)

(* ------------------------------------------------------------------ *)
(* Plant                                                                *)

let test_plant_tracks_command () =
  let w =
    mini_world ~events:[]
      ~extra:
        [
          (accel_cmd, Value.Float 1.0);
          (accel_source, Value.Sym "Driver");
          (lead_pos, Value.Float 1000.);
          (lead_speed, Value.Float 0.);
          (rear_pos, Value.Float (-1000.));
        ]
      [ Vehicle.Plant.host Vehicle.Defects.repaired ]
  in
  let tr = Sim.World.run ~until:1.0 w in
  let last = Trace.get tr (Trace.length tr - 1) in
  Alcotest.(check bool) "acceleration settles near command" true
    (Float.abs (State.float last host_accel -. 1.0) < 0.05);
  Alcotest.(check bool) "speed integrates" true (State.float last host_speed > 0.5)

let test_plant_rebound_overshoot () =
  (* Cutting a hard brake rebounds above +2 m/s² — the §5.4.1 mechanism. *)
  let w =
    mini_world
      ~events:
        [
          Sim.Stimulus.set 0. accel_cmd (Value.Float (-9.));
          Sim.Stimulus.set 1.0 accel_cmd (Value.Float 0.);
        ]
      ~extra:
        [
          (accel_cmd, Value.Float (-9.));
          (accel_source, Value.Sym "CA");
          (lead_pos, Value.Float 1000.);
          (lead_speed, Value.Float 0.);
          (rear_pos, Value.Float (-1000.));
          (host_speed, Value.Float 10.0);
        ]
      [ Vehicle.Plant.host Vehicle.Defects.repaired ]
  in
  (* host_speed is plant-owned; seed it via a first event instead *)
  let tr = Sim.World.run ~until:2.0 w in
  let maxa =
    Trace.fold (fun acc s -> Float.max acc (State.float s host_accel)) neg_infinity tr
  in
  Alcotest.(check bool) "rebound exceeds +2" true (maxa > 2.0)

let test_collision_detection () =
  let w =
    mini_world
      ~events:[ Sim.Stimulus.set 0. accel_cmd (Value.Float 2.0) ]
      ~extra:
        [
          (accel_cmd, Value.Float 2.0);
          (accel_source, Value.Sym "Driver");
          (lead_pos, Value.Float 3.0);
          (lead_speed, Value.Float 0.);
          (rear_pos, Value.Float (-1000.));
        ]
      [ Vehicle.Plant.host Vehicle.Defects.repaired ]
  in
  let tr =
    Sim.World.run ~stop:(fun s -> State.bool s collision) ~until:10. w
  in
  Alcotest.(check bool) "collision detected" true
    (State.bool (Trace.get tr (Trace.length tr - 1)) collision);
  Alcotest.(check bool) "terminated early" true
    (Trace.time tr (Trace.length tr - 1) < 9.9)

(* ------------------------------------------------------------------ *)
(* Arbiter invariants over random event scripts                         *)

let gen_script =
  let open QCheck.Gen in
  let feature = oneofl [ "CA"; "ACC"; "PA"; "RCA" ] in
  let event =
    oneof
      [
        map2 (fun t f -> Sim.Stimulus.press t (active f))
          (float_bound_inclusive 2.5) feature;
        map2 (fun t f -> Sim.Stimulus.release t (active f))
          (float_bound_inclusive 2.5) feature;
        map2 (fun t f -> Sim.Stimulus.press t (req_accel f))
          (float_bound_inclusive 2.5) feature;
        map2 (fun t f -> Sim.Stimulus.release t (req_accel f))
          (float_bound_inclusive 2.5) feature;
        map3
          (fun t f x -> Sim.Stimulus.set t (accel_req f) (Value.Float ((x *. 11.) -. 9.)))
          (float_bound_inclusive 2.5) feature (float_bound_inclusive 1.);
        map2 (fun t x -> Sim.Stimulus.set t throttle_pedal (Value.Float x))
          (float_bound_inclusive 2.5) (float_bound_inclusive 0.6);
        map (fun t -> Sim.Stimulus.set t throttle_pedal (Value.Float 0.))
          (float_bound_inclusive 2.5);
      ]
  in
  list_size (int_range 0 14) event

let run_script events =
  let extra =
    plant_defaults @ all_features_inert
    |> List.map (fun (k, v) -> if k = host_speed then (k, Value.Float 3.0) else (k, v))
  in
  let w = arbiter_world ~events ~extra () in
  Sim.World.run ~until:3.0 w

let prop_source_is_valid =
  QCheck.Test.make ~name:"accel source is a feature or the driver" ~count:40
    (QCheck.make gen_script) (fun events ->
      let tr = run_script events in
      Trace.fold
        (fun acc s ->
          acc && List.mem (State.sym s accel_source) ("Driver" :: Vehicle.Signals.features))
        true tr)

let prop_selection_requires_requesting =
  QCheck.Test.make ~name:"a selected feature was active and requesting" ~count:40
    (QCheck.make gen_script) (fun events ->
      let tr = run_script events in
      let ok = ref true in
      Trace.iteri
        (fun i s ->
          if i > 0 then
            let src = State.sym s accel_source in
            if src <> "Driver" then begin
              let prev = Trace.get tr (i - 1) in
              if not (State.bool prev (active src) && State.bool prev (req_accel src)) then
                ok := false
            end)
        tr;
      !ok)

let prop_override_latency_bounded =
  (* While the throttle is held, a feature whose request stays softer than a
     hard stop never remains the source longer than the override debounce
     plus two states. *)
  QCheck.Test.make ~name:"override latency bounded" ~count:40
    (QCheck.make gen_script) (fun events ->
      let tr = run_script events in
      let ok = ref true in
      let run = ref 0 in
      Trace.iteri
        (fun _ s ->
          let src = State.sym s accel_source in
          let pedals = State.float s throttle_pedal > 0.05 in
          let soft = src <> "Driver" && State.float s (accel_req src) >= hard_brake in
          if pedals && soft then begin
            incr run;
            if float_of_int !run *. dt > 0.05 +. (3. *. dt) then ok := false
          end
          else run := 0)
        tr;
      !ok)

let () =
  Alcotest.run "vehicle"
    [
      ( "goals",
        [
          Alcotest.test_case "inventory" `Quick test_goal_inventory;
          Alcotest.test_case "monitoring plan (Table 5.3)" `Quick test_monitoring_plan;
          Alcotest.test_case "goal 1 formula" `Quick test_goal1_formula;
        ] );
      ( "features",
        [
          Alcotest.test_case "PA ghost profile (Fig. 5.3)" `Quick test_pa_ghost_profile;
          Alcotest.test_case "PA repaired" `Quick test_pa_ghost_repaired;
          Alcotest.test_case "CA engages and brakes" `Quick test_ca_engages_and_brakes;
          Alcotest.test_case "CA inert in reverse" `Quick test_ca_requires_forward_gear;
          Alcotest.test_case "ACC jerk-limited request (Fig. 5.7)" `Quick
            test_acc_jerk_limited_request;
          Alcotest.test_case "ACC disengaged leak (Fig. 5.6)" `Quick
            test_acc_disengaged_leak_defect;
          Alcotest.test_case "RCA gear defect (Fig. 5.12)" `Quick test_rca_gear_defect;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "selection debounce (Fig. 5.13)" `Quick test_selection_debounce;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "override and 0.101 s reselect (Fig. 5.9)" `Quick
            test_pedal_override_and_reselect;
          Alcotest.test_case "hard brake not overridden" `Quick
            test_hard_brake_not_overridden;
          Alcotest.test_case "selected-flag latch defect" `Quick test_selected_latch_defect;
          Alcotest.test_case "latch repaired" `Quick test_latch_repaired;
        ] );
      ( "plant",
        [
          Alcotest.test_case "tracks command" `Quick test_plant_tracks_command;
          Alcotest.test_case "rebound overshoot" `Quick test_plant_rebound_overshoot;
          Alcotest.test_case "collision detection" `Quick test_collision_detection;
        ] );
      ( "arbiter-properties",
        [
          QCheck_alcotest.to_alcotest prop_source_is_valid;
          QCheck_alcotest.to_alcotest prop_selection_requires_requesting;
          QCheck_alcotest.to_alcotest prop_override_latency_bounded;
        ] );
    ]
