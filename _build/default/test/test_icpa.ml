(** Tests for the ICPA machinery: control graphs, path search, coverage,
    tables, the cross-step audit, and the coordination patterns. *)

open Tl

(* ------------------------------------------------------------------ *)
(* Control graph and path search                                        *)

let tiny_graph =
  let open Icpa.Control_graph in
  make
    ~nodes:
      [
        node Software_agent "Ctl";
        node Software_agent "Planner";
        node Actuator "Motor";
        node Sensor "Sensor";
        node Environment_agent "User";
        node Variable "cmd";
        node Variable "plan";
        node Variable "speed";
        node Physical "shaft";
      ]
    ~edges:
      [
        ("Ctl", "cmd");
        ("cmd", "Motor");
        ("Motor", "shaft");
        ("shaft", "Sensor");
        ("Sensor", "speed");
        ("Planner", "plan");
        ("plan", "Ctl");
        ("User", "shaft");
        ("speed", "Ctl");
      ]

let test_producers_consumers () =
  Alcotest.(check (list string)) "producers of cmd" [ "Ctl" ]
    (Icpa.Control_graph.producers tiny_graph "cmd");
  Alcotest.(check (list string)) "consumers of cmd" [ "Motor" ]
    (Icpa.Control_graph.consumers tiny_graph "cmd")

let test_path_search () =
  let forest = Icpa.Control_graph.indirect_control_path tiny_graph "speed" in
  let levels = Icpa.Control_graph.levels forest in
  let names = List.map (fun (_, n, _) -> n.Icpa.Control_graph.id) levels in
  (* Sensors are transparent (§4.4.1): the nearest indirect control sources
     of the sensed variable are the actuators and environmental agents. *)
  Alcotest.(check bool) "sensor is pass-through" false (List.mem "Sensor" names);
  Alcotest.(check bool) "motor on path" true (List.mem "Motor" names);
  Alcotest.(check bool) "user branch on path" true (List.mem "User" names);
  Alcotest.(check bool) "planner reached transitively" true (List.mem "Planner" names);
  let depth_of id =
    List.find_map (fun (d, n, _) -> if n.Icpa.Control_graph.id = id then Some d else None) levels
  in
  Alcotest.(check (option int)) "motor depth" (Some 1) (depth_of "Motor");
  Alcotest.(check (option int)) "user depth" (Some 1) (depth_of "User");
  Alcotest.(check bool) "planner deeper than ctl" true
    (Option.get (depth_of "Planner") > Option.get (depth_of "Ctl"))

let test_cycle_safety () =
  (* speed feeds Ctl which drives cmd -> Motor -> shaft -> Sensor -> speed:
     the search must terminate despite the loop. *)
  let forest = Icpa.Control_graph.indirect_control_path ~max_depth:50 tiny_graph "speed" in
  Alcotest.(check bool) "terminates" true (forest <> [])

let test_unknown_edge_rejected () =
  Alcotest.check_raises "unknown node" (Invalid_argument "unknown edge source nope")
    (fun () ->
      ignore
        (Icpa.Control_graph.make
           ~nodes:[ Icpa.Control_graph.node Icpa.Control_graph.Variable "x" ]
           ~edges:[ ("nope", "x") ]))

(* ------------------------------------------------------------------ *)
(* Coverage strategies                                                  *)

let test_coverage () =
  let c =
    Icpa.Coverage.make
      ~assignment:
        (Icpa.Coverage.Redundant_responsibility
           { primary = [ "Arbiter" ]; secondary = [ "CA"; "ACC" ] })
      ~scope:(Icpa.Coverage.Restrictive "worst-case delays")
  in
  Alcotest.(check (list string)) "responsible" [ "Arbiter"; "CA"; "ACC" ]
    (Icpa.Coverage.responsible c);
  Alcotest.(check bool) "restrictive" true (Icpa.Coverage.is_restrictive c)

(* ------------------------------------------------------------------ *)
(* Tables                                                               *)

let test_table_validation () =
  let goal = Kaos.Goal.maintain "G" ~informal:"" (Formula.bvar "x" |> Formula.always) in
  let strategy =
    Icpa.Coverage.make ~assignment:(Icpa.Coverage.Single_responsibility "A")
      ~scope:Icpa.Coverage.Nonrestrictive
  in
  Alcotest.check_raises "undefined relationship"
    (Invalid_argument "elaboration references undefined relationship 7") (fun () ->
      ignore
        (Icpa.Table.make ~goal ~rows:[] ~strategy
           ~elaboration:
             [ { Icpa.Table.derived = Formula.tt; uses = [ 7 ]; tactic = "" } ]
           ~subgoals:[]))

let test_critical_assumptions_sorted () =
  let t = Elevator.Icpa_tables.door_closed_or_stopped in
  let nums = List.map (fun (r : Icpa.Table.relationship) -> r.Icpa.Table.number)
      (Icpa.Table.critical_assumptions t)
  in
  Alcotest.(check (list int)) "numbered 1..22" (List.init 22 (fun i -> i + 1)) nums

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_render_smoke () =
  let s = Icpa.Render.to_string Elevator.Icpa_tables.door_closed_or_stopped in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "mentions %s" needle) true
        (contains ~needle s))
    [
      "Maintain[DoorClosedOrElevatorStopped]";
      "Shared Responsibility";
      "DoorController";
      "DriveController";
      "Goal Elaboration";
    ]

(* ------------------------------------------------------------------ *)
(* Procedure audit                                                      *)

let test_audit_clean () =
  Alcotest.(check int) "elevator ICPA audits clean" 0
    (List.length
       (Icpa.Procedure.audit Elevator.System.graph
          Elevator.Icpa_tables.door_closed_or_stopped))

let test_audit_flags_missing_subgoal () =
  let t = Elevator.Icpa_tables.door_closed_or_stopped in
  let broken = { t with Icpa.Table.subgoals = [ List.hd t.Icpa.Table.subgoals ] } in
  let issues = Icpa.Procedure.audit Elevator.System.graph broken in
  Alcotest.(check bool) "unassigned agent flagged" true
    (List.exists
       (function Icpa.Procedure.Unassigned_agent "DriveController" -> true | _ -> false)
       issues)

let test_audit_flags_future_reference () =
  let t = Elevator.Icpa_tables.door_closed_or_stopped in
  let bad_goal =
    Kaos.Goal.achieve "Bad" ~informal:""
      (Formula.always (Formula.eventually (Formula.bvar "dc")))
  in
  let bad_sub = { (List.hd t.Icpa.Table.subgoals) with Icpa.Table.goal = bad_goal } in
  let broken = { t with Icpa.Table.subgoals = bad_sub :: List.tl t.Icpa.Table.subgoals } in
  let issues = Icpa.Procedure.audit Elevator.System.graph broken in
  Alcotest.(check bool) "future reference flagged" true
    (List.exists
       (function Icpa.Procedure.Future_reference _ -> true | _ -> false)
       issues)

let test_vehicle_audits_clean () =
  List.iter
    (fun (n, t) ->
      Alcotest.(check int) (Fmt.str "vehicle goal %d" n) 0
        (List.length (Icpa.Procedure.audit Vehicle.System.graph t)))
    Vehicle.Icpa_vehicle.tables

(* ------------------------------------------------------------------ *)
(* Coordination patterns (§4.5.1) — checked semantically                *)

let entails_traces = Kaos.Patterns.entails_on_all_traces

let test_shared_disjunction_insufficient_alone () =
  (* Without the initial-state and delay assumptions, the two subgoals do
     NOT compose □(a ∨ b): both agents can negate simultaneously. *)
  let sa, sb = Icpa.Coordination.shared_disjunction ~a:"a" ~b:"b" in
  let parent = Formula.always (Formula.or_ (Formula.bvar "a") (Formula.bvar "b")) in
  let conj = Formula.and_ (Compose.Andred.body sa) (Compose.Andred.body sb) in
  Alcotest.(check bool) "does not entail parent alone" false
    (entails_traces [ "a"; "b" ] conj (Compose.Andred.body parent))

let test_shared_disjunction_with_initial_state () =
  (* Adding the initial-state assumption S0 ⊨ a ∧ b closes the argument for
     the *instantaneous* (delay-free) abstraction. *)
  let sa, sb = Icpa.Coordination.shared_disjunction ~a:"a" ~b:"b" in
  let parent = Formula.always (Formula.or_ (Formula.bvar "a") (Formula.bvar "b")) in
  let init =
    Formula.initially (Formula.and_ (Formula.bvar "a") (Formula.bvar "b"))
  in
  let conj =
    Formula.conj [ Compose.Andred.body sa; Compose.Andred.body sb; init ]
  in
  (* Still not sufficient: both may drop simultaneously one state after the
     initial state — exactly why the thesis needs actuation delays or an
     interlock (§4.5.1). *)
  Alcotest.(check bool) "simultaneous drop still possible" false
    (entails_traces [ "a"; "b" ] conj (Compose.Andred.body parent))

let test_interlock_composes () =
  (* With the interlock variables and the lock-setting protocol assumptions,
     the parent is maintained. We verify with the model checker over the
     4-variable product. *)
  let sa, sb = Icpa.Coordination.interlock ~a:"a" ~b:"b" ~lock_a:"la" ~lock_b:"lb" in
  let protocol =
    [
      (* an agent negates its disjunct only one state after setting its lock
         and observing the other lock clear *)
      Formula.entails
        (Formula.not_ (Formula.bvar "a"))
        (Formula.prev (Formula.and_ (Formula.bvar "la") (Formula.not_ (Formula.bvar "lb"))));
      Formula.entails
        (Formula.not_ (Formula.bvar "b"))
        (Formula.prev (Formula.and_ (Formula.bvar "lb") (Formula.not_ (Formula.bvar "la"))));
      Formula.always
        (Formula.initially
           (Formula.conj
              [ Formula.bvar "a"; Formula.bvar "b";
                Formula.not_ (Formula.bvar "la"); Formula.not_ (Formula.bvar "lb") ]));
    ]
  in
  let parent = Formula.always (Formula.or_ (Formula.bvar "a") (Formula.bvar "b")) in
  let all =
    Mc.Kripke.assignments
      [ ("a", Mc.Kripke.bools); ("b", Mc.Kripke.bools); ("la", Mc.Kripke.bools); ("lb", Mc.Kripke.bools) ]
  in
  let k = Mc.Kripke.make ~name:"interlock" ~init:all ~next:(fun _ -> all) in
  match
    Mc.Checker.check_composition k ~assumptions:protocol ~subgoals:[ sa; sb ]
      ~goal:parent
  with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "interlock should compose: %a" Mc.Checker.pp_outcome o

let test_lockout_composes () =
  (* The lockout (Eqs. 4.24–4.30): both agents observing the hazard within
     the window disable C. *)
  let relationships, sub_a, sub_b =
    Icpa.Coordination.lockout ~hazard:"d" ~condition:"c" ~enable_a:"a" ~enable_b:"b"
      ~window:2.0
  in
  let parent =
    Formula.entails (Formula.once_within 2.0 (Formula.bvar "d"))
      (Formula.not_ (Formula.bvar "c"))
  in
  (* The parent needs one more state than the subgoal window (the enables
     act one state before c); verify the weaker claim: whenever the hazard
     held in the previous state, c is false two states later. *)
  let weaker =
    Formula.entails
      (Formula.prev (Formula.prev (Formula.bvar "d")))
      (Formula.not_ (Formula.bvar "c"))
  in
  ignore parent;
  let all =
    Mc.Kripke.assignments
      [ ("a", Mc.Kripke.bools); ("b", Mc.Kripke.bools); ("c", Mc.Kripke.bools); ("d", Mc.Kripke.bools) ]
  in
  let k = Mc.Kripke.make ~name:"lockout" ~init:all ~next:(fun _ -> all) in
  match
    Mc.Checker.check_composition k ~assumptions:relationships
      ~subgoals:[ sub_a; sub_b ] ~goal:weaker
  with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "lockout should compose: %a" Mc.Checker.pp_outcome o

let test_actuation_relationships_shape () =
  let rels =
    Icpa.Coordination.actuation_relationships ~condition:"c" ~set:"s" ~unset:"u"
      ~max_delay:3.0 ~min_delay:2.0
  in
  Alcotest.(check int) "five relationships (Eqs. 4.16-4.20)" 5 (List.length rels)

let () =
  Alcotest.run "icpa"
    [
      ( "control-graph",
        [
          Alcotest.test_case "producers/consumers" `Quick test_producers_consumers;
          Alcotest.test_case "path search" `Quick test_path_search;
          Alcotest.test_case "cycle safety" `Quick test_cycle_safety;
          Alcotest.test_case "edge validation" `Quick test_unknown_edge_rejected;
        ] );
      ("coverage", [ Alcotest.test_case "strategy" `Quick test_coverage ]);
      ( "table",
        [
          Alcotest.test_case "reference validation" `Quick test_table_validation;
          Alcotest.test_case "critical assumptions" `Quick test_critical_assumptions_sorted;
          Alcotest.test_case "render" `Quick test_render_smoke;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean table" `Quick test_audit_clean;
          Alcotest.test_case "missing subgoal" `Quick test_audit_flags_missing_subgoal;
          Alcotest.test_case "future reference" `Quick test_audit_flags_future_reference;
          Alcotest.test_case "vehicle tables" `Quick test_vehicle_audits_clean;
        ] );
      ( "coordination",
        [
          Alcotest.test_case "shared disjunction insufficient" `Quick
            test_shared_disjunction_insufficient_alone;
          Alcotest.test_case "initial state not enough" `Quick
            test_shared_disjunction_with_initial_state;
          Alcotest.test_case "interlock composes" `Quick test_interlock_composes;
          Alcotest.test_case "lockout composes" `Quick test_lockout_composes;
          Alcotest.test_case "actuation relationships" `Quick
            test_actuation_relationships_shape;
        ] );
    ]
