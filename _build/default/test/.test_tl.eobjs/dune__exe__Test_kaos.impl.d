test/test_kaos.ml: Alcotest Compose Elevator Eval Fmt Formula Kaos List State Term Tl Trace Value
