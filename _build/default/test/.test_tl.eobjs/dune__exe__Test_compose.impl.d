test/test_compose.ml: Alcotest Compose Fmt Formula Kaos List QCheck QCheck_alcotest Rtmon Tl
