test/test_sim.ml: Alcotest Elevator List Sim State Tl Trace Value
