test/test_hazard.ml: Alcotest Fmt Hazard List Scenarios String Tl
