test/test_elevator.mli:
