test/test_icpa.mli:
