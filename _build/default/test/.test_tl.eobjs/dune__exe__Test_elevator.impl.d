test/test_elevator.ml: Alcotest Array Elevator Float Fun Icpa List Mc Rtmon Sim State Tl Trace Value
