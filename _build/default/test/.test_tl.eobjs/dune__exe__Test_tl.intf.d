test/test_tl.mli:
