test/test_vehicle.ml: Alcotest Eval Float Formula Kaos List QCheck QCheck_alcotest Sim State Tl Trace Value Vehicle
