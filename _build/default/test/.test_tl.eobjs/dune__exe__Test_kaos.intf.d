test/test_kaos.mli:
