test/test_scenarios.ml: Alcotest Compose Float Fmt Hashtbl List Option Rtmon Scenarios String Tl Vehicle
