test/test_mc.ml: Alcotest Formula List Mc State Term Tl Value
