test/test_rtmon.ml: Alcotest Array Eval Fmt Formula List QCheck QCheck_alcotest Rtmon State Tl Trace Value
