test/test_parser.ml: Alcotest Elevator Float Formula Kaos List Parser QCheck QCheck_alcotest Term Tl Vehicle
