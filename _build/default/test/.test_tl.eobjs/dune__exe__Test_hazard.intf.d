test/test_hazard.mli:
