test/test_icpa.ml: Alcotest Compose Elevator Fmt Formula Icpa Kaos List Mc Option String Tl Vehicle
