test/test_tl.ml: Alcotest Array Eval Fmt Formula Fun List Option QCheck QCheck_alcotest State String Term Tl Trace Value
