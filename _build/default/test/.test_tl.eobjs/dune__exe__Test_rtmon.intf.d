test/test_rtmon.mli:
