(** Tests for the explicit-state model checker. *)

open Tl

let b x = Value.Bool x
let state bindings = State.of_list bindings

(* A two-bit counter: p flips every step, q flips when p wraps. *)
let counter : Mc.Kripke.t =
  Mc.Kripke.make ~name:"counter"
    ~init:[ state [ ("p", b false); ("q", b false) ] ]
    ~next:(fun s ->
      let p = State.bool s "p" and q = State.bool s "q" in
      [ state [ ("p", b (not p)); ("q", b (if p then not q else q)) ] ])

let test_invariant_valid () =
  (* @q only after ●¬q — trivially true; more interesting: q changes only
     when ●p. *)
  let phi =
    Formula.entails
      (Formula.rose (Formula.bvar "q"))
      (Formula.prev (Formula.bvar "p"))
  in
  match Mc.Checker.check_invariant counter phi with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "expected valid, got %a" Mc.Checker.pp_outcome o

let test_invariant_counterexample () =
  let phi = Formula.always (Formula.not_ (Formula.bvar "q")) in
  match Mc.Checker.check_invariant counter phi with
  | Mc.Checker.Counterexample { path } ->
      (* shortest path: q first true at step 2 (states 0,1,2) *)
      Alcotest.(check int) "shortest counterexample" 3 (List.length path);
      let last = List.nth path (List.length path - 1) in
      Alcotest.(check bool) "ends violating" true (State.bool last "q")
  | o -> Alcotest.failf "expected counterexample, got %a" Mc.Checker.pp_outcome o

let test_bound_exceeded () =
  (* An infinite-state system (integer counter) exceeds any bound. *)
  let k =
    Mc.Kripke.make ~name:"unbounded"
      ~init:[ state [ ("n", Value.Int 0) ] ]
      ~next:(fun s ->
        match State.get s "n" with
        | Value.Int n -> [ state [ ("n", Value.Int (n + 1)) ] ]
        | _ -> [])
  in
  match
    Mc.Checker.check_invariant ~max_states:50 k
      (Formula.always (Formula.ge (Term.var "n") (Term.int 0)))
  with
  | Mc.Checker.Bound_exceeded _ -> ()
  | o -> Alcotest.failf "expected bound exceeded, got %a" Mc.Checker.pp_outcome o

let test_assignments_enumeration () =
  let states =
    Mc.Kripke.assignments
      [ ("p", Mc.Kripke.bools); ("m", Mc.Kripke.syms [ "A"; "B"; "C" ]) ]
  in
  Alcotest.(check int) "2 * 3 assignments" 6 (List.length states)

(* Composition checking: a tiny two-agent system where one subgoal set
   composes an invariant and a weaker one does not. *)
let free2 : Mc.Kripke.t =
  let all = Mc.Kripke.assignments [ ("x", Mc.Kripke.bools); ("y", Mc.Kripke.bools) ] in
  Mc.Kripke.make ~name:"free2" ~init:all ~next:(fun _ -> all)

let test_composition_valid () =
  (* assumptions: y follows x one state later; subgoal: x always true;
     goal: y true except possibly initially. *)
  let assumptions = [ Formula.entails (Formula.prev (Formula.bvar "x")) (Formula.bvar "y") ] in
  let subgoals = [ Formula.always (Formula.bvar "x") ] in
  let goal =
    Formula.always
      (Formula.or_ (Formula.not_ (Formula.prev Formula.tt)) (Formula.bvar "y"))
  in
  match Mc.Checker.check_composition free2 ~assumptions ~subgoals ~goal with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "expected valid, got %a" Mc.Checker.pp_outcome o

let test_composition_counterexample () =
  (* Without the assumption, x alone says nothing about y. *)
  let subgoals = [ Formula.always (Formula.bvar "x") ] in
  let goal =
    Formula.always
      (Formula.or_ (Formula.not_ (Formula.prev Formula.tt)) (Formula.bvar "y"))
  in
  match Mc.Checker.check_composition free2 ~assumptions:[] ~subgoals ~goal with
  | Mc.Checker.Counterexample { path } ->
      Alcotest.(check bool) "nonempty path" true (path <> [])
  | o -> Alcotest.failf "expected counterexample, got %a" Mc.Checker.pp_outcome o

let test_composition_vacuous_on_broken_premise () =
  (* If the subgoals are unsatisfiable the claim is vacuously valid: the
     premise prunes every trace. *)
  let subgoals = [ Formula.always (Formula.and_ (Formula.bvar "x") (Formula.not_ (Formula.bvar "x"))) ] in
  let goal = Formula.always Formula.ff in
  match Mc.Checker.check_composition free2 ~assumptions:[] ~subgoals ~goal with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "expected vacuous validity, got %a" Mc.Checker.pp_outcome o

let () =
  Alcotest.run "mc"
    [
      ( "invariant",
        [
          Alcotest.test_case "valid invariant" `Quick test_invariant_valid;
          Alcotest.test_case "shortest counterexample" `Quick test_invariant_counterexample;
          Alcotest.test_case "bound exceeded" `Quick test_bound_exceeded;
          Alcotest.test_case "assignments" `Quick test_assignments_enumeration;
        ] );
      ( "composition",
        [
          Alcotest.test_case "valid composition" `Quick test_composition_valid;
          Alcotest.test_case "counterexample" `Quick test_composition_counterexample;
          Alcotest.test_case "vacuous on broken premise" `Quick test_composition_vacuous_on_broken_premise;
        ] );
    ]
