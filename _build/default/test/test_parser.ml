(** Tests for the goal-syntax parser: worked examples from the thesis, error
    handling, and the print/parse round-trip property. *)

open Tl

let parses_to input expected =
  Alcotest.(check string) input expected (Formula.to_string (Parser.parse input))

let test_examples () =
  parses_to "ObjectInPath => StopVehicle" "ObjectInPath ⇒ StopVehicle";
  parses_to "prev(db) => dmc = 'OPEN'" "●db ⇒ dmc = 'OPEN'";
  parses_to "holds[<0.3](dmc = 'CLOSE' & !db) => dc" "●[<0.3s](dmc = 'CLOSE' ∧ ¬db) ⇒ dc";
  parses_to "within[<0.5](rose(tp > 0.05))" "◆[<0.5s]@tp > 0.05";
  parses_to "always(va.value <= 2)" "□va.value ≤ 2";
  parses_to "a & b | c" "(a ∧ b) ∨ c";
  parses_to "!a -> b -> c" "¬a → (b → c)";
  parses_to "x + 2 * y >= z / 4" "(x + (2 * y)) ≥ (z / 4)";
  parses_to "abs(v) < 0.01" "abs(v) < 0.01";
  parses_to "hist(once(p))" "■◆p"

let test_precedence () =
  (* & binds tighter than |, | tighter than ->, -> tighter than =>. *)
  let f = Parser.parse "a & b | c -> d => e" in
  Alcotest.(check string) "precedence" "(((a ∧ b) ∨ c) → d) ⇒ e" (Formula.to_string f);
  (* the top-level connective is the entailment *)
  match f with
  | Formula.Always (Formula.Implies (_, _)) -> ()
  | _ -> Alcotest.fail "expected an entailment at top level"

let test_unicode_aliases () =
  Alcotest.(check bool) "⇒ equals =>" true
    (Parser.parse "A \xe2\x87\x92 B" = Parser.parse "A => B");
  Alcotest.(check bool) "∧/¬ equal &/!" true
    (Parser.parse "\xc2\xacA \xe2\x88\xa7 B" = Parser.parse "!A & B")

let test_errors () =
  let fails input =
    Alcotest.(check bool) (input ^ " rejected") true (Parser.parse_opt input = None)
  in
  fails "a &";
  fails "(a";
  fails "holds(a)" (* missing duration *);
  (* prev accepts a duration as a holds-alias *)
  Alcotest.(check bool) "prev[<2] is holds" true
    (Parser.parse "prev[<2](a)" = Formula.prev_for 2.0 (Formula.bvar "a"));
  fails "'unterminated";
  fails "1 +";
  fails "a = "

(* Round-trip: print ∘ parse = identity on a generated fragment. The
   generator avoids [Term.int] (prints indistinguishably from floats) and
   [Iff] chains (associativity differs) — everything else must round-trip
   exactly. *)
let gen_formula =
  let open QCheck.Gen in
  let var = oneofl [ "p"; "q"; "va.value"; "dmc" ] in
  let term =
    oneof
      [
        map Term.var var;
        (* limited precision: the %g printer keeps 6 significant digits *)
        map (fun f -> Term.float (Float.round (f *. 100.) /. 100.)) (float_bound_inclusive 10.);
        map (fun v -> Term.Abs (Term.var v)) var;
        map2
          (fun v f -> Term.Add (Term.var v, Term.float (Float.round (f *. 100.) /. 100.)))
          var (float_bound_inclusive 5.);
      ]
  in
  let atom =
    oneof
      [
        map Formula.bvar var;
        map2 Formula.le term term;
        map2 Formula.gt term term;
        map (fun v -> Formula.var_is v "CLOSE") var;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then atom
         else
           frequency
             [
               (3, atom);
               (1, map Formula.not_ (self (n - 1)));
               (1, map2 (fun a b -> Formula.And (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Or (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Implies (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map Formula.prev (self (n - 1)));
               (1, map Formula.once (self (n - 1)));
               (1, map Formula.hist (self (n - 1)));
               (1, map Formula.rose (self (n - 1)));
               (1, map (Formula.prev_for 0.5) (self (n - 1)));
               (1, map (Formula.once_within 0.25) (self (n - 1)));
               (1, map Formula.always (self (n - 1)));
               (1, map Formula.eventually (self (n - 1)));
             ])

let prop_round_trip =
  QCheck.Test.make ~name:"parse (print f) = f" ~count:500
    (QCheck.make ~print:Formula.to_string gen_formula)
    (fun f ->
      match Parser.parse_opt (Formula.to_string f) with
      | Some f' -> f' = f
      | None -> false)

let test_goal_definitions_round_trip () =
  (* every goal of the evaluation systems round-trips through its printed
     formal definition *)
  List.iter
    (fun (g : Kaos.Goal.t) ->
      let printed = Formula.to_string g.Kaos.Goal.formal in
      match Parser.parse_opt printed with
      | Some f ->
          Alcotest.(check bool) (g.Kaos.Goal.name ^ " round-trips") true
            (f = g.Kaos.Goal.formal)
      | None -> Alcotest.failf "%s fails to parse: %s" g.Kaos.Goal.name printed)
    (List.map snd Vehicle.Goals.all
    @ [
        Elevator.Goals.door_closed_or_stopped;
        Elevator.Goals.close_door_when_moving_or_moved;
        Elevator.Goals.stop_elevator_when_door_open_or_opened;
        Elevator.Goals.door_reversal;
      ])

let () =
  Alcotest.run "parser"
    [
      ( "parse",
        [
          Alcotest.test_case "thesis examples" `Quick test_examples;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "unicode aliases" `Quick test_unicode_aliases;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest prop_round_trip;
          Alcotest.test_case "goal definitions" `Quick test_goal_definitions_round_trip;
        ] );
    ]
