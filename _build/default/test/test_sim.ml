(** Tests for the simulation kernel: the one-state observation delay,
    conflict detection, stimuli, early termination, determinism. *)

open Tl

let b x = Value.Bool x
let f x = Value.Float x

(* A relay copies its input; chaining relays shows the one-state delay. *)
let relay ~name ~input ~output =
  Sim.Component.make ~name
    ~outputs:[ (output, b false) ]
    (fun ctx -> [ (output, Value.Bool (Sim.Component.read_bool ctx input)) ])

let test_one_state_delay () =
  let source =
    Sim.Stimulus.component ~name:"src" ~init:[ ("in", b false) ]
      [ Sim.Stimulus.press 0.2 "in" ]
  in
  let w =
    Sim.World.make ~dt:0.1
      [ source; relay ~name:"r1" ~input:"in" ~output:"m"; relay ~name:"r2" ~input:"m" ~output:"out" ]
  in
  let tr = Sim.World.run ~until:0.6 w in
  let series v = List.map snd (Trace.bool_signal tr v) in
  Alcotest.(check (list bool)) "input" [ false; false; true; true; true; true; true ]
    (series "in");
  (* each relay adds exactly one state of delay *)
  Alcotest.(check (list bool)) "after one relay"
    [ false; false; false; true; true; true; true ] (series "m");
  Alcotest.(check (list bool)) "after two relays"
    [ false; false; false; false; true; true; true ] (series "out")

let test_conflict_detection () =
  let c1 = Sim.Component.constant ~name:"a" [ ("x", f 0.) ] in
  let c2 = Sim.Component.constant ~name:"b" [ ("x", f 1.) ] in
  Alcotest.check_raises "conflict"
    (Sim.World.Conflict "variable x controlled by both a and b") (fun () ->
      ignore (Sim.World.make ~dt:0.1 [ c1; c2 ]))

let test_conflict_opt_out () =
  (* The thesis relaxes strict single-controller (§4.2). *)
  let c1 = Sim.Component.constant ~name:"a" [ ("x", f 0.) ] in
  let c2 = Sim.Component.constant ~name:"b" [ ("x", f 1.) ] in
  ignore (Sim.World.make ~check_conflicts:false ~dt:0.1 [ c1; c2 ])

let test_stimulus_ordering () =
  (* Unsorted events apply in time order; later events override earlier. *)
  let s =
    Sim.Stimulus.component ~name:"s" ~init:[ ("v", f 0.) ]
      [ Sim.Stimulus.set 0.3 "v" (f 3.); Sim.Stimulus.set 0.1 "v" (f 1.) ]
  in
  let w = Sim.World.make ~dt:0.1 [ s ] in
  let tr = Sim.World.run ~until:0.5 w in
  Alcotest.(check (list (float 1e-9))) "profile" [ 0.; 1.; 1.; 3.; 3.; 3. ]
    (List.map snd (Trace.signal tr "v"))

let test_early_termination () =
  let counter =
    Sim.Component.make ~name:"c" ~outputs:[ ("n", Value.Int 0) ] (fun ctx ->
        match Sim.Component.read ctx "n" with
        | Value.Int n -> [ ("n", Value.Int (n + 1)) ]
        | _ -> [])
  in
  let w = Sim.World.make ~dt:1.0 [ counter ] in
  let tr =
    Sim.World.run
      ~stop:(fun s -> match State.get s "n" with Value.Int n -> n >= 3 | _ -> false)
      ~until:100. w
  in
  Alcotest.(check int) "stopped at n=3 (states 0..3)" 4 (Trace.length tr)

let test_determinism () =
  let run () =
    let tr = Elevator.Simulation.run () in
    Trace.signal tr "elevator_position"
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let test_unwritten_variables_persist () =
  let once =
    let fired = ref false in
    Sim.Component.make ~name:"once" ~outputs:[ ("y", f 7.) ] (fun _ ->
        if !fired then []
        else begin
          fired := true;
          [ ("y", f 9.) ]
        end)
  in
  let w = Sim.World.make ~dt:1.0 [ once ] in
  let tr = Sim.World.run ~until:3. w in
  Alcotest.(check (list (float 1e-9))) "holds last written value" [ 7.; 9.; 9.; 9. ]
    (List.map snd (Trace.signal tr "y"))

let () =
  Alcotest.run "sim"
    [
      ( "kernel",
        [
          Alcotest.test_case "one-state observation delay" `Quick test_one_state_delay;
          Alcotest.test_case "conflict detection" `Quick test_conflict_detection;
          Alcotest.test_case "conflict opt-out" `Quick test_conflict_opt_out;
          Alcotest.test_case "stimulus ordering" `Quick test_stimulus_ordering;
          Alcotest.test_case "early termination" `Quick test_early_termination;
          Alcotest.test_case "unwritten variables persist" `Quick test_unwritten_variables_persist;
        ] );
      ("integration", [ Alcotest.test_case "elevator determinism" `Slow test_determinism ]);
    ]
