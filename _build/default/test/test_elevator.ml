(** Tests for the Ch. 4 elevator: relationships, mechanized verification of
    the decomposition, and the simulated system. *)

open Tl

(* ------------------------------------------------------------------ *)
(* Relationships (Tables 4.1–4.2)                                       *)

let test_relationship_inventory () =
  Alcotest.(check int) "22 relationships" 22 (List.length Elevator.Relationships.all);
  Alcotest.(check int) "door branch" 9 (List.length Elevator.Relationships.door_branch);
  Alcotest.(check int) "drive branch" 10 (List.length Elevator.Relationships.drive_branch);
  (* delay-ordering notes (08/09, 20/21) are comment-only *)
  Alcotest.(check int) "18 checkable formulas" 18
    (List.length Elevator.Relationships.formulas)

let sat_on trace f = Array.for_all Fun.id (Rtmon.Incremental.run_trace f trace)

let mk_states l =
  Trace.make ~dt:1.0
    (List.map
       (fun (dc, db, es, drs, dmc, drc) ->
         State.of_list
           [
             ("dc", Value.Bool dc);
             ("db", Value.Bool db);
             ("es_stopped", Value.Bool es);
             ("drs_stopped", Value.Bool drs);
             ("dmc", Value.Sym dmc);
             ("drc", Value.Sym drc);
           ])
       l)

let test_relationship_r05 () =
  (* An unblocked door commanded CLOSE for maxcd (3 states) is closed. *)
  let r05 = Elevator.Relationships.r05.Icpa.Table.formal in
  let good =
    mk_states
      [
        (false, false, true, true, "CLOSE", "STOP");
        (false, false, true, true, "CLOSE", "STOP");
        (false, false, true, true, "CLOSE", "STOP");
        (true, false, true, true, "CLOSE", "STOP");
      ]
  in
  Alcotest.(check bool) "closing obeys r05" true (sat_on good r05);
  let bad =
    mk_states
      [
        (false, false, true, true, "CLOSE", "STOP");
        (false, false, true, true, "CLOSE", "STOP");
        (false, false, true, true, "CLOSE", "STOP");
        (false, false, true, true, "CLOSE", "STOP") (* still open after maxcd *);
      ]
  in
  Alcotest.(check bool) "stuck door violates r05" false (sat_on bad r05)

let test_relationship_r10_r11 () =
  let r10 = Elevator.Relationships.r10.Icpa.Table.formal in
  let r11 = Elevator.Relationships.r11.Icpa.Table.formal in
  let blocked_then_reversed =
    mk_states
      [ (false, true, true, true, "CLOSE", "STOP"); (false, true, true, true, "OPEN", "STOP") ]
  in
  Alcotest.(check bool) "reversal after block" true (sat_on blocked_then_reversed r10);
  Alcotest.(check bool) "blocked door not closed" true (sat_on blocked_then_reversed r11);
  let no_reversal =
    mk_states
      [ (false, true, true, true, "CLOSE", "STOP"); (false, true, true, true, "CLOSE", "STOP") ]
  in
  Alcotest.(check bool) "missing reversal violates r10" false (sat_on no_reversal r10)

(* ------------------------------------------------------------------ *)
(* Mechanized verification (§4.4.3)                                     *)

let test_composition_valid () =
  match Elevator.Verification.check () with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "expected valid: %a" Mc.Checker.pp_outcome o

let test_composition_without_r22 () =
  (* r22 only makes an implicit domain constraint explicit: the claim is
     insensitive to it (relationships 02/04 and 11 are jointly unsatisfiable
     for a blocked closed door). *)
  match Elevator.Verification.check_without_closed_door_assumption () with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "expected valid: %a" Mc.Checker.pp_outcome o

let test_naive_counterexample () =
  (* Figs. 4.12–4.13 alone do not compose the parent: both controllers can
     actuate simultaneously from the safe state (§4.5.1). *)
  match Elevator.Verification.check_naive () with
  | Mc.Checker.Counterexample { path } ->
      let last = List.nth path (List.length path - 1) in
      Alcotest.(check bool) "final state violates the parent goal" false
        (State.bool last "dc" || State.bool last "es_stopped")
  | o -> Alcotest.failf "expected counterexample: %a" Mc.Checker.pp_outcome o

let test_table_verify_hook () =
  (* Icpa.Table.verify discharges the same obligation from the table. *)
  match
    Icpa.Table.verify Elevator.Icpa_tables.door_closed_or_stopped
      Elevator.Verification.kripke
  with
  | Mc.Checker.Valid _ -> ()
  | o -> Alcotest.failf "table verify failed: %a" Mc.Checker.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Simulation                                                           *)

let violations_of trace goal_name =
  List.assoc goal_name (Elevator.Simulation.monitor_goals trace)

let test_default_run_safe () =
  let trace = Elevator.Simulation.run () in
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " holds") 0 (List.length (violations_of trace name)))
    [
      "Maintain[DoorClosedOrElevatorStopped]";
      "Achieve[CloseDoorWhenElevatorMovingOrMoved]";
      "Achieve[StopElevatorWhenDoorOpenOrOpened]";
      "Achieve[DoorReversalWhenBlocked]";
      "Maintain[ElevatorBelowHoistwayUpperLimit]";
      "Maintain[DriveStoppedWhenOverweight]";
    ]

let test_default_run_travels () =
  let trace = Elevator.Simulation.run () in
  let maxpos =
    Trace.fold (fun acc s -> Float.max acc (State.float s "elevator_position")) 0. trace
  in
  Alcotest.(check bool) "reached floor 3" true (maxpos > 7.9);
  let last = Trace.get trace (Trace.length trace - 1) in
  Alcotest.(check bool) "returned to floor 1" true
    (Float.abs (State.float last "elevator_position") < 0.05)

let test_door_blocking_reversal () =
  let trace = Elevator.Simulation.run () in
  (* the passenger blocks the door at t=20..21.5; db must be observed and
     the reversal goal must hold (checked above); also the door must have
     reopened while blocked *)
  let saw_block =
    Trace.fold (fun acc s -> acc || State.bool s "db") false trace
  in
  Alcotest.(check bool) "block observed" true saw_block

let test_overweight_actuation_delay () =
  (* Loading the cab beyond the limit while moving violates the
     instantaneous Fig. 4.6 goal: the drive cannot stop in one state —
     the actuation-delay restriction lesson (§4.5.2). *)
  let config =
    {
      Elevator.Simulation.passenger_events =
        Elevator.Simulation.press_button 1.0 (Elevator.Buttons.car_press 3)
        @ [ Sim.Stimulus.set 4.0 "passenger_load" (Value.Float 650.) ];
      duration = 20.0;
    }
  in
  let trace = Elevator.Simulation.run ~config () in
  let ivs = violations_of trace "Maintain[DriveStoppedWhenOverweight]" in
  Alcotest.(check bool) "instantaneous goal violated" true (List.length ivs >= 1);
  (* ... but the violation is exactly one stopping transient, not permanent *)
  Alcotest.(check bool) "bounded by the stopping delay" true
    (Rtmon.Violation.total_duration ivs < 3.0)

let test_hoistway_never_exceeded () =
  (* Drive the cab at the hoistway: call floor 3 repeatedly with the limit
     just above; the primary stop + margin keeps etp under the limit. *)
  let trace = Elevator.Simulation.run () in
  let over =
    Trace.fold
      (fun acc s ->
        acc || State.float s "etp" > Elevator.Icpa_tables.hoistway_upper_limit)
      false trace
  in
  Alcotest.(check bool) "hoistway limit held" false over

let test_multi_call_service () =
  (* Press car button 3 and hall button 2-down: the dispatch serves both in
     nearest-first order and the button controllers clear the calls. *)
  let config =
    {
      Elevator.Simulation.passenger_events =
        Elevator.Simulation.press_button 1.0 (Elevator.Buttons.car_press 3)
        @ Elevator.Simulation.press_button 1.5
            (Elevator.Buttons.hall_press 2 Elevator.Buttons.Down);
      duration = 40.0;
    }
  in
  let trace = Elevator.Simulation.run ~config () in
  let visited f =
    Trace.fold
      (fun acc s ->
        acc
        || Float.abs (State.float s "elevator_position" -. (float_of_int (f - 1) *. 4.0))
             < 0.05
           && State.float s "door_position" < 0.5)
      false trace
  in
  Alcotest.(check bool) "served floor 3" true (visited 3);
  Alcotest.(check bool) "served floor 2" true (visited 2);
  let last = Trace.get trace (Trace.length trace - 1) in
  Alcotest.(check bool) "calls cleared" false
    (State.bool last (Elevator.Buttons.car_call 3)
    || State.bool last (Elevator.Buttons.hall_call 2 Elevator.Buttons.Down));
  (* the running-example goal holds throughout the multi-call service *)
  Alcotest.(check int) "safety goal holds" 0
    (List.length
       (List.assoc "Maintain[DoorClosedOrElevatorStopped]"
          (Elevator.Simulation.monitor_goals trace)))

let () =
  Alcotest.run "elevator"
    [
      ( "relationships",
        [
          Alcotest.test_case "inventory" `Quick test_relationship_inventory;
          Alcotest.test_case "r05 close delay" `Quick test_relationship_r05;
          Alcotest.test_case "r10/r11 door reversal" `Quick test_relationship_r10_r11;
        ] );
      ( "verification",
        [
          Alcotest.test_case "composition valid" `Quick test_composition_valid;
          Alcotest.test_case "insensitive to r22" `Quick test_composition_without_r22;
          Alcotest.test_case "naive counterexample" `Quick test_naive_counterexample;
          Alcotest.test_case "table verify hook" `Quick test_table_verify_hook;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "goals hold on the default run" `Slow test_default_run_safe;
          Alcotest.test_case "cab travels and returns" `Slow test_default_run_travels;
          Alcotest.test_case "door blocking" `Slow test_door_blocking_reversal;
          Alcotest.test_case "overweight actuation delay" `Slow test_overweight_actuation_delay;
          Alcotest.test_case "hoistway margin" `Slow test_hoistway_never_exceeded;
          Alcotest.test_case "multi-call dispatch" `Slow test_multi_call_service;
        ] );
    ]
