(** Run a thesis evaluation scenario with hierarchical monitoring — defaults
    to scenario 1; pass a scenario number and optionally [--repaired].

    Run with: [dune exec examples/vehicle_scenario.exe -- 6] *)

let () =
  let args = Array.to_list Sys.argv in
  let repaired = List.mem "--repaired" args in
  let n =
    match List.filter_map int_of_string_opt args with [] -> 1 | n :: _ -> n
  in
  let defects =
    if repaired then Vehicle.Defects.repaired else Vehicle.Defects.as_evaluated
  in
  let scenario = Scenarios.Defs.get n in
  Fmt.pr "Scenario %d: %s@.%s@.@." n scenario.Scenarios.Defs.title
    scenario.Scenarios.Defs.description;
  let outcome = Scenarios.Runner.run ~defects scenario in
  Fmt.pr "%a@." Scenarios.Results.pp_table outcome;
  (* Per-goal hit / false-positive / false-negative classification. *)
  List.iter
    (fun (g, report) ->
      if report.Rtmon.Report.entries <> [] then
        Fmt.pr "Goal %d: hits=%d false-negatives=%d false-positives=%d@." g
          report.Rtmon.Report.hits report.Rtmon.Report.false_negatives
          report.Rtmon.Report.false_positives)
    outcome.Scenarios.Runner.reports;
  Fmt.pr "@.Composability estimate for this run: %a@." Compose.Runtime.pp
    (Scenarios.Runner.estimate [ outcome ])
