(** The Ch. 3 framework on the stop-vehicle example: fully composable
    decompositions, redundancy, demons, angels, and restrictive reductions.

    Run with: [dune exec examples/emergence_demo.exe] *)

open Tl

let show name analysis =
  Fmt.pr "%-55s %a@." name Compose.Composability.pp_analysis analysis

let () =
  let open Compose.Examples.Stop_vehicle in
  Fmt.pr "Parent goal (Eq. 3.4): %a@.@." Formula.pp goal;

  (* Fully composable (Eqs. 3.5–3.6). *)
  show "CA alone, exact decomposition"
    (Compose.Composability.analyze ~parent:goal fully_composable_subgoals);

  (* Fully composable with redundancy (Eqs. 3.12–3.13). *)
  show "CA + ACC, redundant decomposition"
    (Compose.Composability.analyze_redundant ~parent:goal [ redundant_subgoals ]);

  (* Emergent but partially composable: the unrealizable detection case
     (Eq. 3.19) lives in X; dropping it leaves a demon. *)
  show "realizable part only (Eq. 3.19 missing => demon X)"
    (Compose.Composability.analyze ~parent:goal
       (detection_assumption :: realizable_subgoals));

  (* An angel Y: something unknown also stops the vehicle (Eq. 3.31). *)
  show "with the emergent angel Unknown.StopVehicle"
    (Compose.Composability.analyze_redundant ~parent:goal
       [ [ actuation_with_angel; Formula.entails object_in_path ca_stop ] ]);

  (* Restrictive OR-reduction (§3.3.5): the acceleration envelope. *)
  let open Compose.Examples.Acceleration_envelope in
  Fmt.pr "@.Envelope goal (Eq. 3.47):      %a@." Formula.pp goal;
  Fmt.pr "Restrictive subgoal (Eq. 3.48): %a@." Formula.pp restrictive_subgoal;

  (* And-reduction checking (Darimont's four conditions). *)
  let open Compose.Examples.Table_3_1 in
  Fmt.pr "@.Darimont checks for the Table 3.1 reductions of %a:@." Formula.pp goal;
  Fmt.pr "  {A=>C, C=>D, D=>B}: %a@." Compose.Andred.pp
    (Compose.Andred.check ~parent:goal reduction_1);
  Fmt.pr "  {A=>E, E=>B}:       %a@." Compose.Andred.pp
    (Compose.Andred.check ~parent:goal reduction_2);
  Fmt.pr "  {A=>E} alone:       %a@." Compose.Andred.pp
    (Compose.Andred.check ~parent:goal [ List.hd reduction_2 ]);
  Fmt.pr "  ... but it completes with E=>B: %b@."
    (Compose.Andred.completes_with ~parent:goal
       ~subgoals:[ List.hd reduction_2 ]
       (List.nth reduction_2 1))
