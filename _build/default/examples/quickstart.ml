(** Quickstart: define a safety goal in temporal logic, decompose it, check
    the decomposition, and monitor it over a trace.

    Run with: [dune exec examples/quickstart.exe] *)

open Core

let () =
  (* 1. A safety goal in the thesis's temporal logic: "whenever an object is
     in the vehicle path, the vehicle shall be stopped" (Eq. 3.4). *)
  let open Tl in
  let object_in_path = Formula.bvar "ObjectInPath" in
  let stop_vehicle = Formula.bvar "StopVehicle" in
  let goal =
    Kaos.Goal.maintain "StopWhenObjectInPath"
      ~informal:"A brake shall be applied when an object is in the vehicle path."
      (Formula.entails object_in_path stop_vehicle)
  in
  Fmt.pr "%a@.@." Kaos.Goal.pp goal;

  (* 2. Decompose it for a collision-avoidance subsystem (Eqs. 3.5–3.6) and
     verify the decomposition is exact (fully composable, Eq. 3.1). *)
  let ca_stop = Formula.bvar "CA.StopVehicle" in
  let subgoals =
    [
      Formula.always (Formula.iff object_in_path ca_stop);
      Formula.entails ca_stop stop_vehicle;
    ]
  in
  Fmt.pr "Decomposition verdict: %s@.@."
    (Compose.Composability.verdict_to_string
       (Core.decomposition_verdict ~parent:goal.Kaos.Goal.formal subgoals));

  (* 3. Check realizability for an agent that can monitor the object sensor
     and control the brake. *)
  let ca =
    Kaos.Agent.make "CollisionAvoidance" ~monitors:[ "ObjectInPath" ]
      ~controls:[ "CA.StopVehicle" ]
  in
  let subgoal =
    Kaos.Goal.achieve "CaStops" ~informal:"CA stops when it observed an object."
      (Formula.entails (Formula.prev object_in_path) ca_stop)
  in
  (match Kaos.Realizability.check subgoal ca with
  | Kaos.Realizability.Realizable -> Fmt.pr "Subgoal realizable by CA.@.@."
  | Kaos.Realizability.Unrealizable ds ->
      Fmt.pr "Unrealizable: %a@.@." Fmt.(list ~sep:comma Kaos.Realizability.pp_defect) ds);

  (* 4. Monitor the goal over a recorded trace: the vehicle reacts one state
     late, so the invariant is briefly violated. *)
  let state ~obj ~stopped =
    State.of_list
      [ ("ObjectInPath", Value.Bool obj); ("StopVehicle", Value.Bool stopped) ]
  in
  let trace =
    Trace.make ~dt:0.1
      [
        state ~obj:false ~stopped:false;
        state ~obj:true ~stopped:false (* object appears; brake not yet applied *);
        state ~obj:true ~stopped:true;
        state ~obj:true ~stopped:true;
        state ~obj:false ~stopped:false;
      ]
  in
  match Core.monitor_goal goal trace with
  | [] -> Fmt.pr "No violations.@."
  | ivs ->
      Fmt.pr "Violations: %a@." Fmt.(list ~sep:sp Rtmon.Violation.pp_interval) ivs;
      Fmt.pr
        "The one-state reaction delay violates the instantaneous goal — the \
         realizable subgoal must use the previous-state form (cf. Table 4.5).@."
