(** The Ch. 4 running example end-to-end: render the ICPA for
    Maintain[DoorClosedOrElevatorStopped], verify the decomposition by model
    checking, and monitor the goals over a simulated elevator run.

    Run with: [dune exec examples/elevator_demo.exe] *)

let () =
  (* The completed ICPA table (Tables 4.1–4.4 in the Fig. 4.7 layout). *)
  Fmt.pr "%a@." Icpa.Render.pp Elevator.Icpa_tables.door_closed_or_stopped;

  (* The composition claim, discharged by model checking (§4.4.3). *)
  Fmt.pr "Composition check (subgoals + assumptions |= parent): %a@.@."
    Mc.Checker.pp_outcome
    (Elevator.Verification.check ());
  Fmt.pr "Naive decomposition (Figs. 4.12–4.13): %a@.@." Mc.Checker.pp_outcome
    (Elevator.Verification.check_naive ());

  (* Simulate a passenger ride (floor 3 and back, a blocked door, an
     overweight cab) and monitor every goal. *)
  let trace = Elevator.Simulation.run () in
  Fmt.pr "Simulated %.1f s of elevator operation (%d states).@.@."
    (Tl.Trace.time trace (Tl.Trace.length trace - 1))
    (Tl.Trace.length trace);
  List.iter
    (fun (name, violations) ->
      Fmt.pr "%-52s %s@." name
        (match violations with
        | [] -> "satisfied throughout"
        | ivs -> Fmt.str "%d violation(s) %a" (List.length ivs)
                   Fmt.(list ~sep:sp Rtmon.Violation.pp_interval) ivs))
    (Elevator.Simulation.monitor_goals trace);

  (* The actuation-delay lesson (§4.5.2): loading the cab beyond the limit
     while it is still moving violates the instantaneous overweight goal —
     the drive cannot stop in a single state. *)
  let config =
    {
      Elevator.Simulation.default_config with
      passenger_events =
        Elevator.Simulation.press_button 1.0 (Elevator.Buttons.car_press 3)
        @ [ Sim.Stimulus.set 4.0 "passenger_load" (Tl.Value.Float 650.) ];
    }
  in
  let trace = Elevator.Simulation.run ~config () in
  let overweight, violations =
    List.nth (Elevator.Simulation.monitor_goals trace) 5
  in
  Fmt.pr "@.Loading the moving cab: %s -> %d violation(s) — the restrictive@."
    overweight (List.length violations);
  Fmt.pr "subgoal needs a margin for the drive's stopping delay (§4.5.2).@."
