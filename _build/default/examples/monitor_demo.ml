(** Incremental monitors on streaming states: the same pure monitor that
    drives the model checker, run online state by state.

    Run with: [dune exec examples/monitor_demo.exe] *)

open Tl

let () =
  let dt = 0.1 in
  (* "If the door was blocked, the door shall not be closed, and a door
     commanded CLOSE for 0.3 s (unblocked) shall be closed" — two of the
     elevator's indirect control relationships, monitored live. *)
  let r11 =
    Formula.entails (Formula.prev (Formula.bvar "db")) (Formula.not_ (Formula.bvar "dc"))
  in
  let r05 =
    Formula.entails
      (Formula.prev_for 0.3
         (Formula.and_ (Formula.not_ (Formula.bvar "db")) (Formula.var_is "dmc" "CLOSE")))
      (Formula.bvar "dc")
  in
  let monitors =
    List.map (fun f -> (f, Rtmon.Incremental.create ~dt f)) [ r11; r05 ]
  in
  let feed =
    (* (db, dc, dmc) per 100 ms state: door closing, then blocked. *)
    [
      (false, false, "CLOSE");
      (false, false, "CLOSE");
      (false, false, "CLOSE");
      (false, true, "CLOSE");
      (true, true, "CLOSE") (* obstruction while closed: physically odd... *);
      (true, true, "CLOSE") (* ...and r11 fires here *);
      (true, false, "OPEN");
      (false, false, "OPEN");
    ]
  in
  let _ =
    List.fold_left
      (fun (i, monitors) (db, dc, dmc) ->
        let state =
          State.of_list
            [ ("db", Value.Bool db); ("dc", Value.Bool dc); ("dmc", Value.Sym dmc) ]
        in
        let monitors' =
          List.map
            (fun (f, m) ->
              let ok, m' = Rtmon.Incremental.step m state in
              if not ok then
                Fmt.pr "state %d (t=%.1fs): VIOLATION of %a@." i
                  (float_of_int i *. dt) Formula.pp f;
              (f, m'))
            monitors
        in
        (i + 1, monitors'))
      (0, monitors) feed
  in
  Fmt.pr "done.@."
