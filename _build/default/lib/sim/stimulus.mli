(** Scripted stimuli: driver and environment inputs for evaluation
    scenarios, expressed as timed set-events on input variables. *)

open Tl

type event = { at : float; var : string; value : Value.t }

val set : float -> string -> Value.t -> event
val press : float -> string -> event
(** [press t v] sets boolean [v] true at time [t]. *)

val release : float -> string -> event

val component : name:string -> init:(string * Value.t) list -> event list -> Component.t
(** A component that owns the scripted variables: each takes its initial
    value until an event fires, then holds the event value (later events
    override earlier ones). Events need not be sorted. The component is
    stateful: build a fresh one per run. *)

val signal : name:string -> var:string -> (float -> float) -> Component.t
(** A float signal driven by a function of time (e.g. a lead vehicle's
    scripted speed profile). *)
