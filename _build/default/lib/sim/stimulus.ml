(** Scripted stimuli: driver and environment inputs for evaluation
    scenarios, expressed as timed set-events on input variables. *)

open Tl

type event = { at : float; var : string; value : Value.t }

let set at var value = { at; var; value }
let press at var = { at; var; value = Value.Bool true }
let release at var = { at; var; value = Value.Bool false }

(** [component ~name ~init events] — a component that owns the scripted
    variables: each variable takes its initial value until an event fires,
    then holds the event value (later events override earlier ones). Events
    need not be sorted. *)
let component ~name ~init events : Component.t =
  let events = List.stable_sort (fun a b -> Float.compare a.at b.at) events in
  let pending = ref events in
  Component.make ~name ~outputs:init (fun ctx ->
      let fired, rest =
        List.partition (fun e -> e.at <= ctx.Component.now +. 1e-12) !pending
      in
      pending := rest;
      List.map (fun e -> (e.var, e.value)) fired)

(** A float signal driven by a function of time (e.g. a lead vehicle's
    scripted speed profile). *)
let signal ~name ~var f : Component.t =
  Component.make ~name
    ~outputs:[ (var, Value.Float (f 0.)) ]
    (fun ctx -> [ (var, Value.Float (f ctx.Component.now)) ])
