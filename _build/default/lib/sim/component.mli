(** Simulation components: the agents of the simulated system.

    Each component declares the state variables it directly controls (with
    their initial values) and a step function computing the next values of
    those variables from the {e previous} snapshot. The kernel is double
    buffered, so a component can never observe another component's output
    before the subsequent state — the thesis's core timing assumption
    (§4.1.3). *)

open Tl

type context = {
  now : float;  (** simulation time of the state being computed *)
  dt : float;
  state : State.t;  (** the previous snapshot *)
}

val read : context -> string -> Value.t
val read_float : context -> string -> float
val read_bool : context -> string -> bool
val read_sym : context -> string -> string

type t = {
  name : string;
  outputs : (string * Value.t) list;
      (** directly controlled variables, with initial values *)
  step : context -> (string * Value.t) list;
}

val make :
  name:string ->
  outputs:(string * Value.t) list ->
  (context -> (string * Value.t) list) ->
  t

val constant : name:string -> (string * Value.t) list -> t
(** A component with no behaviour: holds constants (useful for parameters
    and for disabling a subsystem in ablation runs). *)

val controlled : t -> string list
(** Controlled-variable names, used to detect output conflicts. *)
