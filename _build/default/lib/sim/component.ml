(** Simulation components: the agents of the simulated system.

    Each component declares the state variables it directly controls (with
    their initial values) and a step function computing the next values of
    those variables from the *previous* snapshot. The kernel is double
    buffered, so a component can never observe another component's output
    before the subsequent state — the thesis's core timing assumption
    (§4.1.3, "updates to a state variable cannot be observed by agents that
    monitor the variable until the subsequent state"). *)

open Tl

type context = {
  now : float;  (** simulation time of the state being computed *)
  dt : float;
  state : State.t;  (** the previous snapshot *)
}

let read ctx v = State.get ctx.state v
let read_float ctx v = State.float ctx.state v
let read_bool ctx v = State.bool ctx.state v
let read_sym ctx v = State.sym ctx.state v

type t = {
  name : string;
  outputs : (string * Value.t) list;  (** directly controlled variables, with initial values *)
  step : context -> (string * Value.t) list;
}

let make ~name ~outputs step = { name; outputs; step }

(** A component with no behaviour: holds constants (useful for parameters
    and for disabling a subsystem in ablation runs). *)
let constant ~name outputs = { name; outputs; step = (fun _ -> []) }

(** Controlled-variable names, used to detect output conflicts. *)
let controlled t = List.map fst t.outputs
