lib/sim/stimulus.ml: Component Float List Tl Value
