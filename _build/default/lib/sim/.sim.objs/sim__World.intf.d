lib/sim/world.mli: Component State Tl Trace Value
