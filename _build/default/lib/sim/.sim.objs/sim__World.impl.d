lib/sim/world.ml: Component Float Fmt Hashtbl List State Tl Trace
