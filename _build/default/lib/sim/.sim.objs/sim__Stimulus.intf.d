lib/sim/stimulus.mli: Component Tl Value
