lib/sim/component.ml: List State Tl Value
