lib/sim/component.mli: State Tl Value
