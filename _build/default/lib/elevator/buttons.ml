(** Hall and car button controllers (Fig. 4.5): one software agent per
    button. A passenger press latches the corresponding call; the dispatch
    controller clears a call when it has been served (doors opened at the
    requested floor).

    Variables:
    - ["hall_button_press_F_D"], ["car_button_press_F"] — passenger inputs
      (momentary, driven by the scenario script);
    - ["hall_call_F_D"], ["car_call_F"] — latched calls on the network
      (direct control of the button controllers);
    - ["served_floor"] — the dispatch controller's feedback clearing calls. *)

open Tl

type direction = Up | Down

let direction_to_string = function Up -> "up" | Down -> "down"

let hall_press f d = Fmt.str "hall_button_press_%d_%s" f (direction_to_string d)
let hall_call f d = Fmt.str "hall_call_%d_%s" f (direction_to_string d)
let car_press f = Fmt.str "car_button_press_%d" f
let car_call f = Fmt.str "car_call_%d" f

(** One car-button controller per floor [f]: latches the press into the
    call until the floor is served. *)
let car_button_controller ~floor:f : Sim.Component.t =
  Sim.Component.make
    ~name:(Fmt.str "CarButtonController_%d" f)
    ~outputs:[ (car_call f, Value.Bool false) ]
    (fun ctx ->
      let pressed = Sim.Component.read_bool ctx (car_press f) in
      let latched = Sim.Component.read_bool ctx (car_call f) in
      let served =
        match Sim.Component.read ctx "served_floor" with
        | Value.Int sf -> sf = f
        | _ -> false
      in
      [ (car_call f, Value.Bool ((pressed || latched) && not served)) ])

(** One hall-button controller per floor and direction. *)
let hall_button_controller ~floor:f ~direction:d : Sim.Component.t =
  Sim.Component.make
    ~name:(Fmt.str "HallButtonController_%d_%s" f (direction_to_string d))
    ~outputs:[ (hall_call f d, Value.Bool false) ]
    (fun ctx ->
      let pressed = Sim.Component.read_bool ctx (hall_press f d) in
      let latched = Sim.Component.read_bool ctx (hall_call f d) in
      let served =
        match Sim.Component.read ctx "served_floor" with
        | Value.Int sf -> sf = f
        | _ -> false
      in
      [ (hall_call f d, Value.Bool ((pressed || latched) && not served)) ])

(** All button-controller components for a building of [floors] floors
    (floor 1 has no down hall button; the top floor no up button). *)
let all ~floors : Sim.Component.t list =
  List.concat_map
    (fun f ->
      car_button_controller ~floor:f
      :: ((if f < floors then [ hall_button_controller ~floor:f ~direction:Up ] else [])
         @ if f > 1 then [ hall_button_controller ~floor:f ~direction:Down ] else []))
    (List.init floors (fun i -> i + 1))

(** Initial values for the passenger-facing press inputs (owned by the
    scenario's Passenger stimulus). *)
let press_inputs ~floors =
  List.concat_map
    (fun f ->
      (car_press f, Value.Bool false)
      :: ((if f < floors then [ (hall_press f Up, Value.Bool false) ] else [])
         @ if f > 1 then [ (hall_press f Down, Value.Bool false) ] else []))
    (List.init floors (fun i -> i + 1))

(** Outstanding calls visible in a snapshot, nearest-first relative to the
    given floor — the dispatch controller's view. *)
let outstanding ~floors (s : State.t) ~from =
  let calls =
    List.filter
      (fun f ->
        State.bool s (car_call f)
        || (f < floors && State.bool s (hall_call f Up))
        || (f > 1 && State.bool s (hall_call f Down)))
      (List.init floors (fun i -> i + 1))
  in
  List.sort (fun a b -> compare (abs (a - from)) (abs (b - from))) calls
