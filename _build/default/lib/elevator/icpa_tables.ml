(** The completed ICPA for Maintain[DoorClosedOrElevatorStopped]
    (Tables 4.1–4.4 assembled into the Fig. 4.7 layout), plus the hoistway
    goal's redundant-responsibility ICPA (§4.5.1–4.5.2). *)

open Tl

let f = Fun.id

(** The full ICPA table of the running example. *)
let door_closed_or_stopped : Icpa.Table.t =
  let open Icpa.Table in
  let rows =
    [
      {
        variable = "dc";
        subsystems = [ "DoorController"; "DoorMotor" ];
        subsystem_variables =
          [
            ("dmc", "DoorMotorCommand");
            ("maxcd/mincd", "max/min close delay");
            ("maxod/minod", "max/min open delay");
            ("door_position", "DoorMotorSpeed integration");
          ];
        relationships = Relationships.door_branch;
      };
      {
        variable = "dc";
        subsystems = [ "Passenger" ];
        subsystem_variables = [ ("db", "DoorBlocked") ];
        relationships = Relationships.passenger_branch;
      };
      {
        variable = "es_stopped";
        subsystems = [ "DriveController"; "Drive" ];
        subsystem_variables =
          [
            ("drc", "DriveCommand");
            ("maxsd/minsd", "max/min stop delay");
            ("maxgd/mingd", "max/min go delay");
            ("drs_stopped", "DriveSpeed stopped");
          ];
        relationships = Relationships.drive_branch;
      };
    ]
  in
  let strategy =
    Icpa.Coverage.make
      ~assignment:
        (Icpa.Coverage.Shared_responsibility [ "DoorController"; "DriveController" ])
      ~scope:
        (Icpa.Coverage.Restrictive
           "Assumes worst-case actuator response times; real response may be slower.")
  in
  let elaboration =
    [
      {
        derived =
          f
            (Formula.always
               (Formula.or_ (Formula.bvar "dc") (Formula.bvar "es_stopped")));
        uses = [ 1; 12 ];
        tactic =
          "Goal satisfied in initial state; split lack of \
           monitorability/control by case";
      };
      {
        derived = Goals.close_door_when_moving_or_moved.Kaos.Goal.formal;
        uses = [ 7; 9; 10; 13; 2; 19; 21 ];
        tactic = "introduce accuracy goal tactic (minimum delays to open door / move elevator)";
      };
      {
        derived = Goals.stop_elevator_when_door_open_or_opened.Kaos.Goal.formal;
        uses = [ 7; 9; 13; 14; 19; 21 ];
        tactic = "introduce actuation goal tactic (remain stopped with STOP command)";
      };
    ]
  in
  let subgoals =
    [
      {
        subsystem = "DoorController";
        controls = [ "dmc" ];
        observes = [ "es_stopped"; "drc"; "db" ];
        goal = Goals.close_door_when_moving_or_moved;
      };
      {
        subsystem = "DriveController";
        controls = [ "drc" ];
        observes = [ "dc"; "dmc" ];
        goal = Goals.stop_elevator_when_door_open_or_opened;
      };
    ]
  in
  make ~goal:Goals.door_closed_or_stopped ~rows ~strategy ~elaboration ~subgoals

(** Parameters of the hoistway example. *)
let hoistway_upper_limit = 10.0

let max_stopping_distance = 1.0
let max_emergency_braking_distance = 0.5
let safety_margin = 0.25

(** The hoistway-limit ICPA: redundant responsibility (drive controller
    primary, emergency brake secondary), restrictive scope via safety
    margins (§4.5.1, §4.5.2). *)
let below_hoistway_limit : Icpa.Table.t =
  let open Icpa.Table in
  let parent = Goals.below_hoistway_limit ~hoistway_upper_limit in
  let primary =
    Goals.stop_before_hoistway_limit ~hoistway_upper_limit
      ~max_stopping_distance:(max_stopping_distance +. safety_margin)
  in
  let secondary =
    Goals.emergency_stop_before_hoistway_limit ~hoistway_upper_limit
      ~max_emergency_braking_distance
  in
  let rows =
    [
      {
        variable = "etp";
        subsystems = [ "Drive"; "DriveController"; "EmergencyBrake" ];
        subsystem_variables =
          [
            ("drc", "DriveCommand");
            ("eb_applied", "EmergencyBrake trigger");
            ("msd", "MaxStoppingDistance");
            ("mebd", "MaxEmergencyBrakingDistance");
          ];
        relationships =
          [
            relationship ~number:1
              ~comment:
                "A drive commanded STOP halts within MaxStoppingDistance of \
                 the command position"
              Formula.tt;
            relationship ~number:2
              ~comment:
                "An applied emergency brake halts the cab within \
                 MaxEmergencyBrakingDistance"
              Formula.tt;
          ];
      };
    ]
  in
  let strategy =
    Icpa.Coverage.make
      ~assignment:
        (Icpa.Coverage.Redundant_responsibility
           { primary = [ "DriveController" ]; secondary = [ "EmergencyBrake" ] })
      ~scope:
        (Icpa.Coverage.Restrictive
           "Safety margins: the drive stops short of the limit so the \
            emergency brake rarely engages; some hoistway travel is given up.")
  in
  let elaboration =
    [
      {
        derived = primary.Kaos.Goal.formal;
        uses = [ 1 ];
        tactic = "safety margin (primary, most restrictive)";
      };
      {
        derived = secondary.Kaos.Goal.formal;
        uses = [ 2 ];
        tactic = "redundant responsibility (secondary)";
      };
    ]
  in
  let subgoals =
    [
      {
        subsystem = "DriveController";
        controls = [ "drc" ];
        observes = [ "etp" ];
        goal = primary;
      };
      {
        subsystem = "EmergencyBrake";
        controls = [ "eb_applied" ];
        observes = [ "etp" ];
        goal = secondary;
      };
    ]
  in
  make ~goal:parent ~rows ~strategy ~elaboration ~subgoals
