(** The numbered indirect control relationships of Tables 4.1–4.2
    (relationships 01–21), plus relationship 22, which makes explicit a
    domain constraint already implicit in the set: a fully closed door
    cannot be physically blocked. (For a blocked closed door, relationships
    02/04 force the door to remain closed while relationship 11 forces it
    open — jointly unsatisfiable; the mechanized check in [Verification]
    confirms the composition claim holds with or without r22.) *)

open Tl
open Goals

let rel = Icpa.Table.relationship

(* --- DoorController / DoorMotor branch of variable dc (Table 4.1) --- *)

let r01 =
  rel ~number:1 ~comment:"In initial state, door is OPEN and commanded OPEN"
    (Formula.always (Formula.initially (Formula.and_ (Formula.not_ dc) (dmc_is "OPEN"))))

let r02 =
  rel ~number:2 ~comment:"Closed door that is commanded CLOSE remains closed"
    (Formula.entails
       (Formula.and_ (Formula.prev dc) (Formula.prev (dmc_is "CLOSE")))
       dc)

let r03 =
  rel ~number:3 ~comment:"Unclosed door commanded OPEN remains unclosed"
    (Formula.entails
       (Formula.and_ (Formula.prev (Formula.not_ dc)) (Formula.prev (dmc_is "OPEN")))
       (Formula.not_ dc))

let r04 =
  rel ~number:4
    ~comment:
      "Closed door whose command switched to OPEN from CLOSE within duration \
       minod will be closed"
    (Formula.entails
       (Formula.and_ (Formula.prev dc)
          (Formula.once_within min_open_delay (Formula.rose (dmc_is "OPEN"))))
       dc)

let r05 =
  rel ~number:5 ~comment:"Unblocked door commanded CLOSE for maxcd will be closed"
    (Formula.entails
       (Formula.prev_for max_close_delay
          (Formula.and_ (Formula.not_ db) (dmc_is "CLOSE")))
       dc)

let r06 =
  rel ~number:6 ~comment:"Door commanded OPEN for maxod will be unclosed"
    (Formula.entails (Formula.prev_for max_open_delay (dmc_is "OPEN")) (Formula.not_ dc))

let r07 =
  rel ~number:7
    ~comment:
      "Unclosed door whose command switched to CLOSE from OPEN within mincd \
       will not be closed"
    (Formula.entails
       (Formula.and_
          (Formula.prev (Formula.not_ dc))
          (Formula.once_within min_close_delay (Formula.rose (dmc_is "CLOSE"))))
       (Formula.not_ dc))

let r08 =
  rel ~number:8 ~comment:"CLOSE delays are greater than a single state (maxcd > mincd >> ssd)"
    Formula.tt

let r09 =
  rel ~number:9 ~comment:"OPEN delays are greater than a single state (maxod > minod >> ssd)"
    Formula.tt

(* --- Passenger branch of variable dc (Table 4.2, relationships 10–11) --- *)

let r10 =
  rel ~number:10 ~comment:"If the door is blocked, the door shall be commanded OPEN"
    (Formula.entails (Formula.prev db) (dmc_is "OPEN"))

let r11 =
  rel ~number:11 ~comment:"If the door is blocked, the door shall not be closed"
    (Formula.entails (Formula.prev db) (Formula.not_ dc))

(* --- DriveController / Drive branch of variable es (Table 4.2) --- *)

let r12 =
  rel ~number:12 ~comment:"In initial state, elevator stopped and drive commanded STOP"
    (Formula.always
       (Formula.initially
          (Formula.conj [ es_stopped; drs_stopped; drc_is "STOP" ])))

let r13 =
  rel ~number:13 ~comment:"If the drive is stopped, the elevator is stopped, and vice versa"
    (Formula.always (Formula.iff drs_stopped es_stopped))

let r14 =
  rel ~number:14 ~comment:"Stopped drive commanded STOP remains stopped"
    (Formula.entails
       (Formula.and_ (Formula.prev drs_stopped) (Formula.prev (drc_is "STOP")))
       drs_stopped)

let r15 =
  rel ~number:15 ~comment:"Unstopped drive commanded GO remains unstopped"
    (Formula.entails
       (Formula.and_ (Formula.prev (Formula.not_ drs_stopped))
          (Formula.prev (drc_is "GO")))
       (Formula.not_ drs_stopped))

let r16 =
  rel ~number:16
    ~comment:
      "Stopped drive whose command switched to GO from STOP within duration \
       mingd remains stopped"
    (Formula.entails
       (Formula.and_ (Formula.prev drs_stopped)
          (Formula.once_within min_go_delay (Formula.rose (drc_is "GO"))))
       drs_stopped)

let r17 =
  rel ~number:17 ~comment:"Drive commanded GO for maxgd will be unstopped"
    (Formula.entails
       (Formula.prev_for max_go_delay (drc_is "GO"))
       (Formula.not_ drs_stopped))

let r18 =
  rel ~number:18 ~comment:"Drive commanded STOP for maxsd will be stopped"
    (Formula.entails (Formula.prev_for max_stop_delay (drc_is "STOP")) drs_stopped)

let r19 =
  rel ~number:19
    ~comment:
      "Unstopped drive whose command switched to STOP from GO within duration \
       minsd remains unstopped"
    (Formula.entails
       (Formula.and_
          (Formula.prev (Formula.not_ drs_stopped))
          (Formula.once_within min_stop_delay (Formula.rose (drc_is "STOP"))))
       (Formula.not_ drs_stopped))

let r20 =
  rel ~number:20 ~comment:"STOP delays are greater than a single state (maxsd > minsd >> ssd)"
    Formula.tt

let r21 =
  rel ~number:21 ~comment:"GO delays are greater than a single state (maxgd > mingd >> ssd)"
    Formula.tt

(* --- Domain assumption uncovered by mechanized verification --- *)

let r22 =
  rel ~number:22
    ~comment:
      "A fully closed door cannot be physically blocked (obstructions occupy \
       the doorway)"
    (Formula.entails dc (Formula.not_ db))

let door_branch = [ r01; r02; r03; r04; r05; r06; r07; r08; r09 ]
let passenger_branch = [ r10; r11; r22 ]
let drive_branch = [ r12; r13; r14; r15; r16; r17; r18; r19; r20; r21 ]
let all = door_branch @ passenger_branch @ drive_branch

(** The assumptions used for model checking: every relationship with a
    non-trivial formula. *)
let formulas =
  List.filter_map
    (fun (r : Icpa.Table.relationship) ->
      if r.formal = Formula.tt then None else Some r.formal)
    all
