(** The distributed elevator control system of Fig. 4.5: agents and the
    control graph that drives the ICPA path search. *)

open Icpa.Control_graph

let agents =
  [
    Kaos.Agent.make "DoorController"
      ~monitors:[ "es_stopped"; "drc"; "db"; "dc"; "dispatch_request" ]
      ~controls:[ "dmc" ];
    Kaos.Agent.make "DriveController"
      ~monitors:[ "dc"; "dmc"; "es_stopped"; "etp"; "dispatch_request" ]
      ~controls:[ "drc" ];
    Kaos.Agent.make "DispatchController"
      ~monitors:[ "hall_call"; "car_call"; "etp"; "dc" ]
      ~controls:[ "dispatch_request" ];
    Kaos.Agent.make "HallButtonController" ~monitors:[ "hall_button_press" ]
      ~controls:[ "hall_call" ];
    Kaos.Agent.make "CarButtonController" ~monitors:[ "car_button_press" ]
      ~controls:[ "car_call" ];
    Kaos.Agent.make ~kind:Kaos.Agent.Human "Passenger" ~monitors:[ "dc"; "etp" ]
      ~controls:[ "hall_button_press"; "car_button_press"; "db"; "ew" ];
    Kaos.Agent.make ~kind:Kaos.Agent.Actuator "DoorMotor" ~monitors:[ "dmc" ]
      ~controls:[ "door_position" ];
    Kaos.Agent.make ~kind:Kaos.Agent.Actuator "Drive" ~monitors:[ "drc" ]
      ~controls:[ "drs_stopped" ];
    Kaos.Agent.make ~kind:Kaos.Agent.Actuator "EmergencyBrake" ~monitors:[ "etp" ]
      ~controls:[ "eb_applied" ];
  ]

let agent name = List.find (fun a -> a.Kaos.Agent.name = name) agents

(** The control graph of Fig. 4.5 (door/drive slice plus buttons). *)
let graph =
  make
    ~nodes:
      [
        node Software_agent "DoorController";
        node Software_agent "DriveController";
        node Software_agent "DispatchController";
        node Software_agent "HallButtonController";
        node Software_agent "CarButtonController";
        node Environment_agent "Passenger";
        node Actuator "DoorMotor";
        node Actuator "Drive";
        node Actuator "EmergencyBrake";
        node Sensor "DoorClosedSensor";
        node Sensor "DoorBlockedSensor";
        node Sensor "SpeedSensor";
        node Sensor "WeightSensor";
        node Sensor "PositionSensor";
        node Variable "dmc";
        node Variable "drc";
        node Variable "dispatch_request";
        node Variable "hall_call";
        node Variable "car_call";
        node Variable "hall_button_press";
        node Variable "car_button_press";
        node Variable "dc";
        node Variable "db";
        node Variable "es_stopped";
        node Variable "ew";
        node Variable "etp";
        node Variable "eb_applied";
        node Physical "door_position";
        node Physical "drive_speed";
        node Physical "elevator_position";
        node Physical "cab_load";
      ]
    ~edges:
      [
        (* Button chain *)
        ("Passenger", "hall_button_press");
        ("Passenger", "car_button_press");
        ("hall_button_press", "HallButtonController");
        ("car_button_press", "CarButtonController");
        ("HallButtonController", "hall_call");
        ("CarButtonController", "car_call");
        ("hall_call", "DispatchController");
        ("car_call", "DispatchController");
        ("DispatchController", "dispatch_request");
        ("dispatch_request", "DoorController");
        ("dispatch_request", "DriveController");
        (* Door chain *)
        ("DoorController", "dmc");
        ("dmc", "DoorMotor");
        ("DoorMotor", "door_position");
        ("Passenger", "door_position");
        ("door_position", "DoorClosedSensor");
        ("DoorClosedSensor", "dc");
        ("Passenger", "DoorBlockedSensor");
        ("DoorBlockedSensor", "db");
        (* Drive chain *)
        ("DriveController", "drc");
        ("drc", "Drive");
        ("Drive", "drive_speed");
        ("drive_speed", "SpeedSensor");
        ("SpeedSensor", "es_stopped");
        ("drive_speed", "elevator_position");
        ("elevator_position", "PositionSensor");
        ("PositionSensor", "etp");
        ("EmergencyBrake", "eb_applied");
        ("eb_applied", "Drive");
        ("etp", "EmergencyBrake");
        (* Weight chain *)
        ("Passenger", "cab_load");
        ("cab_load", "WeightSensor");
        ("WeightSensor", "ew");
        (* Feedback into controllers *)
        ("dc", "DriveController");
        ("dmc", "DriveController");
        ("db", "DoorController");
        ("es_stopped", "DoorController");
        ("drc", "DoorController");
        ("etp", "DriveController");
      ]
