lib/elevator/relationships.ml: Formula Goals Icpa List Tl
