lib/elevator/system.ml: Icpa Kaos List
