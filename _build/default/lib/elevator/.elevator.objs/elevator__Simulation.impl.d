lib/elevator/simulation.ml: Buttons Float Goals Icpa_tables Kaos List Rtmon Sim Tl Trace Value
