lib/elevator/verification.ml: Goals Icpa Kaos List Mc Relationships
