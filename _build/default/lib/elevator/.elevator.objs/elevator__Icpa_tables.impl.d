lib/elevator/icpa_tables.ml: Formula Fun Goals Icpa Kaos Relationships Tl
