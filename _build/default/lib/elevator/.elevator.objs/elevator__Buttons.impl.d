lib/elevator/buttons.ml: Fmt List Sim State Tl Value
