lib/elevator/goals.ml: Formula Kaos Term Tl
