(** A runnable simulation of the distributed elevator, with the Table 4.4
    subgoals implemented as command guards in the controllers and the
    Ch. 4 goals monitored over the resulting trace.

    Variables follow [Goals]' conventions; physical quantities:
    - ["door_position"] ∈ [0, 1], 1 = fully closed;
    - ["elevator_position"] metres above floor 1 (= cab top [etp]);
    - ["drive_speed"] m/s (positive = up). *)

open Tl

let dt = 0.01
let floor_height = 4.0
let floors = 3
let floor_pos f = float_of_int (f - 1) *. floor_height
let dwell_time = 3.0
let door_rate = 0.5 (* fraction of travel per second *)
let drive_accel = 1.0
let drive_speed_max = 1.0

let nearest_floor pos =
  let f = 1 + int_of_float (Float.round (pos /. floor_height)) in
  max 1 (min floors f)

let at_floor pos f = Float.abs (pos -. floor_pos f) < 0.02

(* ------------------------------------------------------------------ *)
(* Physical components                                                  *)

let door_motor () =
  Sim.Component.make ~name:"DoorMotor"
    ~outputs:[ ("door_position", Value.Float 0.) ]
    (fun ctx ->
      let p = Sim.Component.read_float ctx "door_position" in
      let blocked = Sim.Component.read_bool ctx "passenger_blocking" in
      let cmd = Sim.Component.read_sym ctx "dmc" in
      let p' =
        match cmd with
        | "CLOSE" when not blocked -> Float.min 1. (p +. (door_rate *. ctx.Sim.Component.dt))
        | "CLOSE" -> p (* an obstruction physically prevents closing *)
        | _ -> Float.max 0. (p -. (door_rate *. ctx.Sim.Component.dt))
      in
      [ ("door_position", Value.Float p') ])

let drive ~target_of () =
  Sim.Component.make ~name:"Drive"
    ~outputs:
      [ ("drive_speed", Value.Float 0.); ("elevator_position", Value.Float 0.) ]
    (fun ctx ->
      let v = Sim.Component.read_float ctx "drive_speed" in
      let pos = Sim.Component.read_float ctx "elevator_position" in
      let cmd = Sim.Component.read_sym ctx "drc" in
      let eb = Sim.Component.read_bool ctx "eb_applied" in
      let target = target_of ctx in
      let want =
        (* approach profile: cap speed so the cab can stop at the target
           with the available deceleration (v = sqrt(2·a·d)) *)
        let dist = Float.abs (target -. pos) in
        let cap = Float.min drive_speed_max (Float.sqrt (2. *. drive_accel *. dist)) in
        if eb || cmd = "STOP" then 0.
        else if target > pos +. 0.01 then cap
        else if target < pos -. 0.01 then -.cap
        else 0.
      in
      let accel = if eb then 4. *. drive_accel else drive_accel in
      let dv = accel *. ctx.Sim.Component.dt in
      let v' =
        if Float.abs (want -. v) <= dv then want else v +. Float.copy_sign dv (want -. v)
      in
      [
        ("drive_speed", Value.Float v');
        ("elevator_position", Value.Float (pos +. (v' *. ctx.Sim.Component.dt)));
      ])

(** Sensors derive the sensed variables of the goal formulas from physical
    quantities (the sensor stage of Fig. 4.4). *)
let sensors () =
  Sim.Component.make ~name:"Sensors"
    ~outputs:
      [
        ("dc", Value.Bool false);
        ("db", Value.Bool false);
        ("es_stopped", Value.Bool true);
        ("drs_stopped", Value.Bool true);
        ("etp", Value.Float 0.);
        ("ew", Value.Float 0.);
      ]
    (fun ctx ->
      let doorp = Sim.Component.read_float ctx "door_position" in
      let speed = Sim.Component.read_float ctx "drive_speed" in
      let pos = Sim.Component.read_float ctx "elevator_position" in
      let blocking = Sim.Component.read_bool ctx "passenger_blocking" in
      let load = Sim.Component.read_float ctx "passenger_load" in
      [
        ("dc", Value.Bool (doorp >= 0.999));
        ("db", Value.Bool (blocking && doorp < 0.999));
        ("es_stopped", Value.Bool (Float.abs speed < 1e-3));
        ("drs_stopped", Value.Bool (Float.abs speed < 1e-3));
        ("etp", Value.Float pos);
        ("ew", Value.Float load);
      ])

(* ------------------------------------------------------------------ *)
(* Software agents                                                      *)

(** The dispatch controller serves latched hall and car calls
    (Fig. 4.5's DispatchController): it keeps the current destination until
    the cab has arrived and opened its doors there (publishing
    ["served_floor"] so the button controllers clear the call), then moves
    to the nearest outstanding call. *)
let dispatch_controller () =
  Sim.Component.make ~name:"DispatchController"
    ~outputs:[ ("dispatch_request", Value.Int 1); ("served_floor", Value.Int 0) ]
    (fun ctx ->
      let open Sim.Component in
      let pos = read_float ctx "elevator_position" in
      let door_open = read_float ctx "door_position" < 0.5 in
      let stopped = read_bool ctx "es_stopped" in
      let target = match read ctx "dispatch_request" with Value.Int f -> f | _ -> 1 in
      let serving_now = at_floor pos target && stopped && door_open in
      let served = if serving_now then target else 0 in
      let target' =
        if serving_now then target
        else
          match Buttons.outstanding ~floors ctx.state ~from:(nearest_floor pos) with
          | [] -> target
          | f :: _ ->
              (* keep the current destination until served, unless no call
                 remains for it *)
              let target_called = List.mem target (Buttons.outstanding ~floors ctx.state ~from:target) in
              if target_called && not (at_floor pos target) then target else f
      in
      [ ("dispatch_request", Value.Int target'); ("served_floor", Value.Int served) ])

let door_controller () =
  let dwell_left = ref 0. in
  Sim.Component.make ~name:"DoorController"
    ~outputs:[ ("dmc", Value.Sym "OPEN") ]
    (fun ctx ->
      let open Sim.Component in
      let moving = not (read_bool ctx "es_stopped") in
      let commanded_go = read_sym ctx "drc" = "GO" in
      let blocked = read_bool ctx "db" in
      let pos = read_float ctx "elevator_position" in
      let target =
        match read ctx "dispatch_request" with Value.Int f -> f | _ -> 1
      in
      if blocked then begin
        (* door-reversal goal (priority over the running example) *)
        dwell_left := dwell_time;
        [ ("dmc", Value.Sym "OPEN") ]
      end
      else if moving || commanded_go then
        (* Table 4.4 subgoal: close when moving or commanded to move *)
        [ ("dmc", Value.Sym "CLOSE") ]
      else if at_floor pos target then begin
        if read_sym ctx "dmc" = "CLOSE" && read_bool ctx "dc" then
          (* arrived with door closed: begin the dwell *)
          dwell_left := dwell_time
        else dwell_left := !dwell_left -. ctx.dt;
        if !dwell_left > 0. then [ ("dmc", Value.Sym "OPEN") ]
        else [ ("dmc", Value.Sym "CLOSE") ]
      end
      else [ ("dmc", Value.Sym "CLOSE") ])

let drive_controller () =
  Sim.Component.make ~name:"DriveController"
    ~outputs:[ ("drc", Value.Sym "STOP") ]
    (fun ctx ->
      let open Sim.Component in
      let door_open = not (read_bool ctx "dc") in
      let door_commanded_open = read_sym ctx "dmc" = "OPEN" in
      let pos = read_float ctx "elevator_position" in
      let target =
        match read ctx "dispatch_request" with Value.Int f -> f | _ -> 1
      in
      let near_limit =
        pos
        >= Icpa_tables.hoistway_upper_limit
           -. (Icpa_tables.max_stopping_distance +. Icpa_tables.safety_margin)
      in
      let overweight = read_float ctx "ew" > 600. in
      if door_open || door_commanded_open || near_limit || overweight then
        (* Table 4.4 subgoal + hoistway primary subgoal *)
        [ ("drc", Value.Sym "STOP") ]
      else if not (at_floor pos target) then [ ("drc", Value.Sym "GO") ]
      else [ ("drc", Value.Sym "STOP") ])

let emergency_brake () =
  Sim.Component.make ~name:"EmergencyBrake"
    ~outputs:[ ("eb_applied", Value.Bool false) ]
    (fun ctx ->
      let pos = Sim.Component.read_float ctx "etp" in
      let applied = Sim.Component.read_bool ctx "eb_applied" in
      (* latches once applied: hoistway secondary subgoal *)
      let fire =
        applied
        || pos
           >= Icpa_tables.hoistway_upper_limit
              -. Icpa_tables.max_emergency_braking_distance
      in
      [ ("eb_applied", Value.Bool fire) ])

(* ------------------------------------------------------------------ *)
(* Assembled system                                                     *)

type config = {
  passenger_events : Sim.Stimulus.event list;
  duration : float;
}

(** A momentary button press (held for 0.2 s). *)
let press_button t var =
  [ Sim.Stimulus.press t var; Sim.Stimulus.release (t +. 0.2) var ]

let default_config =
  {
    passenger_events =
      press_button 1.0 (Buttons.car_press 3)
      @ [
          Sim.Stimulus.set 20.0 "passenger_blocking" (Value.Bool true);
          Sim.Stimulus.set 21.5 "passenger_blocking" (Value.Bool false);
        ]
      @ press_button 26.0 (Buttons.hall_press 1 Buttons.Up)
      @ [ Sim.Stimulus.set 45.0 "passenger_load" (Value.Float 650.) ];
    duration = 55.0;
  }

let passenger events =
  Sim.Stimulus.component ~name:"Passenger"
    ~init:
      ([
         ("passenger_blocking", Value.Bool false);
         ("passenger_load", Value.Float 150.);
       ]
      @ Buttons.press_inputs ~floors)
    events

let world config =
  let target_of ctx =
    match Sim.Component.read ctx "dispatch_request" with
    | Value.Int f -> floor_pos f
    | _ -> 0.
  in
  Sim.World.make ~dt
    (passenger config.passenger_events
     :: Buttons.all ~floors
    @ [
        dispatch_controller ();
        door_controller ();
        drive_controller ();
        door_motor ();
        drive ~target_of ();
        sensors ();
        emergency_brake ();
      ])

(** Run the elevator and return the recorded trace. *)
let run ?(config = default_config) () = Sim.World.run ~until:config.duration (world config)

(** Monitor the Ch. 4 goals over a trace; returns (goal name, violations). *)
let monitor_goals trace =
  let goals =
    [
      Goals.door_closed_or_stopped;
      Goals.close_door_when_moving_or_moved;
      Goals.stop_elevator_when_door_open_or_opened;
      Goals.door_reversal;
      Goals.below_hoistway_limit ~hoistway_upper_limit:Icpa_tables.hoistway_upper_limit;
      Goals.drive_stopped_when_overweight ~weight_threshold:600.;
    ]
  in
  List.map
    (fun (g : Kaos.Goal.t) ->
      let ok = Rtmon.Incremental.run_trace g.formal trace in
      (g.name, Rtmon.Violation.of_series ~dt:(Trace.dt trace) ok))
    goals
