(** Safety goals of the distributed elevator system (Ch. 4).

    State-variable conventions (shared by the formulas, the model-checking
    abstraction and the simulation):
    - ["dc"]  DoorClosed (sensed, bool)
    - ["db"]  DoorBlocked (sensed, bool)
    - ["es_stopped"]  IsStopped(ElevatorSpeed) (sensed, bool)
    - ["drs_stopped"] IsStopped(DriveSpeed) (actuator state, bool)
    - ["dmc"] DoorMotorCommand ∈ {OPEN, CLOSE}
    - ["drc"] DriveCommand ∈ {STOP, GO}
    - ["ew"], ["etp"] ElevatorWeight / ElevatorTopPosition (floats)
    - ["eb_applied"] EmergencyBrake applied (bool) *)

open Tl

(* Actuation delays, in seconds. The model-checking abstraction uses
   dt = 1 s so these are also counts of discrete states; the thesis's
   composition argument needs every min/max delay to exceed a single state
   (relationships 08/09 and 20/21). *)
let min_open_delay = 2.0
let max_open_delay = 3.0
let min_close_delay = 2.0
let max_close_delay = 3.0
let min_go_delay = 2.0
let max_go_delay = 3.0
let min_stop_delay = 2.0
let max_stop_delay = 3.0

let dc = Formula.bvar "dc"
let db = Formula.bvar "db"
let es_stopped = Formula.bvar "es_stopped"
let drs_stopped = Formula.bvar "drs_stopped"
let dmc_is s = Formula.var_is "dmc" s
let drc_is s = Formula.var_is "drc" s

(** Fig. 4.6: Maintain[DriveStoppedWhenOverweight]. *)
let drive_stopped_when_overweight ~weight_threshold =
  Kaos.Goal.maintain "DriveStoppedWhenOverweight"
    ~informal:
      "If the elevator weight exceeds the weight threshold, then the elevator \
       speed shall be STOPPED."
    (Formula.entails
       (Formula.prev (Formula.gt (Term.var "ew") (Term.float weight_threshold)))
       es_stopped)

(** Fig. 4.8: Maintain[DoorClosedOrElevatorStopped] — the running example. *)
let door_closed_or_stopped =
  Kaos.Goal.maintain "DoorClosedOrElevatorStopped"
    ~informal:
      "At all times the door shall be closed or the elevator speed shall be \
       STOPPED."
    (Formula.always (Formula.or_ dc es_stopped))

(** Fig. 4.9: Maintain[ElevatorBelowHoistwayUpperLimit]. *)
let below_hoistway_limit ~hoistway_upper_limit =
  Kaos.Goal.maintain "ElevatorBelowHoistwayUpperLimit"
    ~informal:"The top of the elevator shall never exceed the upper limit of the hoistway."
    (Formula.always (Formula.le (Term.var "etp") (Term.float hoistway_upper_limit)))

(** Fig. 4.10: Achieve[StopBeforeHoistwayUpperLimit] — primary (drive
    controller) responsibility for the hoistway goal. *)
let stop_before_hoistway_limit ~hoistway_upper_limit ~max_stopping_distance =
  Kaos.Goal.achieve "StopBeforeHoistwayUpperLimit"
    ~informal:"If the elevator nears the upper hoistway limit, then the drive shall be stopped."
    (Formula.entails
       (Formula.prev
          (Formula.ge (Term.var "etp")
             (Term.float (hoistway_upper_limit -. max_stopping_distance))))
       (drc_is "STOP"))

(** Fig. 4.11: Achieve[EmergencyStopBeforeHoistwayUpperLimit] — secondary
    (emergency brake) responsibility. *)
let emergency_stop_before_hoistway_limit ~hoistway_upper_limit
    ~max_emergency_braking_distance =
  Kaos.Goal.achieve "EmergencyStopBeforeHoistwayUpperLimit"
    ~informal:
      "If the elevator nears the upper hoistway limit, then the emergency \
       brake shall be applied."
    (Formula.entails
       (Formula.prev
          (Formula.ge (Term.var "etp")
             (Term.float (hoistway_upper_limit -. max_emergency_braking_distance))))
       (Formula.bvar "eb_applied"))

(** Fig. 4.12: Achieve[CloseDoorWhenElevatorMoving] — the naive door-only
    subgoal that fails to compose the parent (discussed in §4.5.1). *)
let close_door_when_moving =
  Kaos.Goal.achieve "CloseDoorWhenElevatorMoving"
    ~informal:"If the elevator is moving, then the door shall be commanded to CLOSE."
    (Formula.entails
       (Formula.and_
          (Formula.prev (Formula.not_ es_stopped))
          (Formula.prev (Formula.not_ db)))
       (dmc_is "CLOSE"))

(** Fig. 4.13: Achieve[StopElevatorWhenDoorOpen] — the naive drive-only
    subgoal. *)
let stop_elevator_when_door_open =
  Kaos.Goal.achieve "StopElevatorWhenDoorOpen"
    ~informal:"If the door is open, then the drive shall be commanded to STOP."
    (Formula.entails (Formula.prev (Formula.not_ dc)) (drc_is "STOP"))

(** Table 4.4: the shared-responsibility subgoal for DoorController. *)
let close_door_when_moving_or_moved =
  Kaos.Goal.achieve "CloseDoorWhenElevatorMovingOrMoved"
    ~informal:
      "If the door is not blocked and the elevator a) is moving or b) has \
       been commanded to move, then the door shall be commanded to CLOSE."
    (Formula.entails
       (Formula.and_
          (Formula.prev (Formula.or_ (Formula.not_ es_stopped) (drc_is "GO")))
          (Formula.prev (Formula.not_ db)))
       (dmc_is "CLOSE"))

(** Table 4.4: the shared-responsibility subgoal for DriveController. *)
let stop_elevator_when_door_open_or_opened =
  Kaos.Goal.achieve "StopElevatorWhenDoorOpenOrOpened"
    ~informal:
      "If the doors a) are not closed or b) have been commanded open, then \
       the drive shall be commanded to STOP."
    (Formula.entails
       (Formula.prev (Formula.or_ (Formula.not_ dc) (dmc_is "OPEN")))
       (drc_is "STOP"))

(** The door-reversal safety goal given priority over the running example
    (§4.4.2, Eq. 4.7): a blocked door shall be commanded OPEN. *)
let door_reversal =
  Kaos.Goal.achieve "DoorReversalWhenBlocked"
    ~informal:"If the door is blocked, the door shall be commanded OPEN."
    (Formula.entails (Formula.prev db) (dmc_is "OPEN"))
