(** Mechanized verification of the ICPA decomposition (§4.4.3): under the
    critical assumptions (indirect control relationships 01–22), the
    Table 4.4 subgoals entail Maintain[DoorClosedOrElevatorStopped] on every
    trace of a fully nondeterministic abstraction of the elevator.

    The Kripke structure places *no* constraints at all: every combination
    of door/drive state and commands can follow any other. All physics and
    all controller behaviour live in the monitored premise, so a [Valid]
    outcome is a genuine proof of the composition claim (bounded only by the
    monitor memories, which are finite). *)

let dmc_values = Mc.Kripke.syms [ "OPEN"; "CLOSE" ]
let drc_values = Mc.Kripke.syms [ "STOP"; "GO" ]

let domains =
  [
    ("dc", Mc.Kripke.bools);
    ("db", Mc.Kripke.bools);
    ("es_stopped", Mc.Kripke.bools);
    ("drs_stopped", Mc.Kripke.bools);
    ("dmc", dmc_values);
    ("drc", drc_values);
  ]

let all_states = Mc.Kripke.assignments domains

let kripke : Mc.Kripke.t =
  Mc.Kripke.make ~name:"elevator (unconstrained abstraction)" ~init:all_states
    ~next:(fun _ -> all_states)

let subgoal_formulas =
  [
    Goals.close_door_when_moving_or_moved.Kaos.Goal.formal;
    Goals.stop_elevator_when_door_open_or_opened.Kaos.Goal.formal;
  ]

(** The headline check: assumptions + subgoals ⊨ parent goal. *)
let check ?(max_states = 2_000_000) () =
  Mc.Checker.check_composition ~max_states kripke
    ~assumptions:Relationships.formulas ~subgoals:subgoal_formulas
    ~goal:Goals.door_closed_or_stopped.Kaos.Goal.formal

(** Dropping the domain assumption r22 (a closed door cannot be blocked)
    leaves the claim valid: for a blocked closed door, relationships 02/04
    (a closed door commanded CLOSE, or freshly commanded OPEN, stays closed)
    and relationship 11 (a blocked door is not closed) are jointly
    unsatisfiable, so no physical trace reaches that region — r22 makes the
    implicit domain constraint explicit rather than adding proof power.
    The mechanized check documents this insensitivity. *)
let check_without_closed_door_assumption ?(max_states = 2_000_000) () =
  let assumptions =
    List.filter
      (fun g -> g <> Relationships.r22.Icpa.Table.formal)
      Relationships.formulas
  in
  Mc.Checker.check_composition ~max_states kripke ~assumptions
    ~subgoals:subgoal_formulas
    ~goal:Goals.door_closed_or_stopped.Kaos.Goal.formal

(** The naive single-agent decomposition (Figs. 4.12–4.13 without the
    command-observation terms) does *not* compose the parent: both
    controllers can actuate simultaneously from the safe initial state
    (§4.5.1). *)
let check_naive ?(max_states = 2_000_000) () =
  Mc.Checker.check_composition ~max_states kripke
    ~assumptions:Relationships.formulas
    ~subgoals:
      [
        Goals.close_door_when_moving.Kaos.Goal.formal;
        Goals.stop_elevator_when_door_open.Kaos.Goal.formal;
      ]
    ~goal:Goals.door_closed_or_stopped.Kaos.Goal.formal
