lib/rtmon/incremental.mli: Formula State Tl Trace
