lib/rtmon/violation.ml: Array Fmt List
