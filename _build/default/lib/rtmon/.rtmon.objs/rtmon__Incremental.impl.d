lib/rtmon/incremental.ml: Array Eval Fmt Formula List State Tl Trace
