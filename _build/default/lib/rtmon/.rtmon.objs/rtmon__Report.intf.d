lib/rtmon/report.mli: Format Violation
