lib/rtmon/report.ml: Fmt List Violation
