lib/rtmon/violation.mli: Format
