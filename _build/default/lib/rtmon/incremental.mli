(** Pure incremental monitors for the past-time fragment.

    A formula is compiled once into a flat instruction array; the monitor's
    dynamic state is a plain [int array] of memory slots (booleans as 0/1,
    counters for the bounded-duration operators). Because the dynamic state
    is a small comparable vector, the same monitor drives both online
    monitoring during simulation and the finite product construction of the
    model checker ({!Mc.Checker}).

    Equivalence with the reference semantics {!Tl.Eval.eval} is established
    by the property tests in [test/test_rtmon.ml]. *)

open Tl

exception Not_monitorable of string
(** Raised when the formula contains future operators beneath the top-level
    □ — goals with ♦ are not realizable nor monitorable (§4.5.3). *)

type t
(** A monitor: compiled formula plus current memory. Immutable — {!step}
    returns the successor. *)

val create : dt:float -> Formula.t -> t
(** Compile a past-time formula. A top-level [Always] is stripped:
    invariant monitoring checks the body at every state.
    @raise Not_monitorable if a future operator remains. *)

val mem : t -> int array
(** The dynamic state alone, for use as a model-checking product component.
    Treat as opaque and do not mutate. *)

val with_mem : t -> int array -> t

val step : t -> State.t -> bool * t
(** [step t state] evaluates one state transition, returning the formula's
    truth value in [state] and the successor monitor. The input monitor is
    not mutated. *)

val run_trace : Formula.t -> Trace.t -> bool array
(** Truth value of the formula's invariant body at every state, computed
    incrementally; agrees with [Tl.Eval.series] on the body. *)
