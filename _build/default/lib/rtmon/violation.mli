(** Violation intervals: maximal runs of states where a monitored goal is
    false. The evaluation chapter reports violations exactly this way
    ("vehicle jerk was exceeded six times, for 8, 2, 1, 4, 6, and 1 ms"). *)

type interval = {
  start_index : int;  (** first violating state *)
  length : int;  (** number of consecutive violating states *)
  start_time : float;  (** seconds *)
  duration : float;  (** seconds; one state lasts [dt] *)
}

val pp_interval : Format.formatter -> interval -> unit

val of_series : dt:float -> bool array -> interval list
(** Maximal false runs of a per-state satisfaction series. *)

val count : interval list -> int
val total_duration : interval list -> float

val overlap_within : window:float -> interval -> interval -> bool
(** Do two intervals overlap when the first is widened by [window] seconds
    on each side? Decides whether a subgoal violation "corresponds" to a
    goal violation (§5.1.2). *)
