(** Violation intervals: maximal runs of states where a monitored goal is
    false. The evaluation chapter reports violations exactly this way
    ("vehicle jerk was exceeded six times, for 8, 2, 1, 4, 6, and 1 ms"). *)

type interval = {
  start_index : int;  (** first violating state *)
  length : int;  (** number of consecutive violating states *)
  start_time : float;  (** seconds *)
  duration : float;  (** seconds; one state lasts [dt] *)
}

let pp_interval ppf iv =
  Fmt.pf ppf "[t=%.3fs for %gms]" iv.start_time (iv.duration *. 1000.)

(** [of_series ~dt ok] — maximal false runs of the per-state satisfaction
    series [ok]. *)
let of_series ~dt (ok : bool array) : interval list =
  let n = Array.length ok in
  let rec go i acc =
    if i >= n then List.rev acc
    else if ok.(i) then go (i + 1) acc
    else
      let j = ref i in
      while !j < n && not ok.(!j) do
        incr j
      done;
      let len = !j - i in
      let iv =
        {
          start_index = i;
          length = len;
          start_time = float_of_int i *. dt;
          duration = float_of_int len *. dt;
        }
      in
      go !j (iv :: acc)
  in
  go 0 []

let count = List.length
let total_duration ivs = List.fold_left (fun acc iv -> acc +. iv.duration) 0. ivs

(** [overlap_within ~window a b] — do two intervals overlap when each is
    widened by [window] seconds? Used to decide whether a subgoal violation
    "corresponds" to a goal violation (§5.1.2). *)
let overlap_within ~window a b =
  let a0 = a.start_time -. window and a1 = a.start_time +. a.duration +. window in
  let b0 = b.start_time and b1 = b.start_time +. b.duration in
  not (b1 < a0 || b0 > a1)
