(** Darimont's and-reductions (§3.1.2): the four conditions a set of subgoals
    must meet to be a *complete and-reduction* of a parent goal, decided by
    exhaustive evaluation over bounded boolean traces. *)

open Tl

let vars_of parent subgoals =
  Formula.dedup (List.concat_map Formula.vars_list (parent :: subgoals))

let body = function Formula.Always g -> g | g -> g
let conj_bodies gs = Formula.conj (List.map body gs)

let entails vars f g =
  Kaos.Patterns.entails_on_all_traces vars (body f) (body g)

let equivalent vars f g = entails vars f g && entails vars g f

(** Satisfiability of the conjunction of invariants over bounded traces. *)
let consistent vars gs =
  let b = conj_bodies gs in
  List.exists
    (fun tr -> Kaos.Patterns.trace_sat tr b)
    (Kaos.Patterns.all_traces vars Kaos.Patterns.check_len)

type check = {
  infers_parent : bool;  (** (1) G₁,…,Gₙ ⊢ G *)
  minimal : bool;  (** (2) no proper subset infers G *)
  is_consistent : bool;  (** (3) G₁,…,Gₙ ⊬ false *)
  nontrivial : bool;  (** (4) not a mere restatement of G *)
}

let complete c = c.infers_parent && c.minimal && c.is_consistent && c.nontrivial

(** [check ~parent subgoals] — evaluate Darimont's four conditions. *)
let check ~parent subgoals : check =
  let vars = vars_of parent subgoals in
  let infers_parent = entails vars (conj_bodies subgoals |> Formula.always) parent in
  let without i = List.filteri (fun j _ -> j <> i) subgoals in
  let minimal =
    infers_parent
    && List.for_all
         (fun i ->
           let rest = without i in
           rest = []
           || not (entails vars (Formula.always (conj_bodies rest)) parent))
         (List.init (List.length subgoals) (fun i -> i))
  in
  let is_consistent = consistent vars subgoals in
  let nontrivial =
    match subgoals with
    | [ g ] -> not (equivalent vars g parent)
    | _ -> true
  in
  { infers_parent; minimal; is_consistent; nontrivial }

(** [completes_with ~parent ~subgoals x] — does adding the (hypothetical,
    possibly unrealizable) goal [x] turn a partial and-reduction into a
    complete one (§3.1.2's definition of partial and-reduction)? *)
let completes_with ~parent ~subgoals x = complete (check ~parent (subgoals @ [ x ]))

let pp ppf c =
  Fmt.pf ppf "infers-parent=%b minimal=%b consistent=%b nontrivial=%b => %s"
    c.infers_parent c.minimal c.is_consistent c.nontrivial
    (if complete c then "complete and-reduction" else "not a complete and-reduction")
