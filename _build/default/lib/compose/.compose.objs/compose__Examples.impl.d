lib/compose/examples.ml: Formula Term Tl
