lib/compose/composability.ml: Andred Fmt Formula Kaos List State Tl Trace
