lib/compose/composability.mli: Format Formula Tl Trace
