lib/compose/andred.mli: Format Formula Tl
