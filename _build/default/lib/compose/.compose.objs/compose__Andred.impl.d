lib/compose/andred.ml: Fmt Formula Kaos List Tl
