lib/compose/runtime.ml: Fmt List Rtmon
