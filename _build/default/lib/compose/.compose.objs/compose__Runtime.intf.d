lib/compose/runtime.mli: Format Rtmon
