(** Run-time estimation of composability (§3.4, §5.1.2).

    X and Y cannot be known statically; the thesis estimates them by
    monitoring the goal and its subgoals together. False negatives witness
    a non-empty X (the subgoals missed a real hazard); false positives
    witness restriction or redundancy (or the angel Y). *)

type estimate = {
  scenarios : int;
  hits : int;
  false_negatives : int;
  false_positives : int;
}

val empty : estimate
val add : estimate -> Rtmon.Report.t -> estimate
val of_reports : Rtmon.Report.t list -> estimate

val demon_evidence : estimate -> bool
(** Evidence that the decomposition is only partial: X ≠ ∅ (Eq. 3.14). *)

val restriction_evidence : estimate -> bool
(** Evidence of restrictive or redundant subgoals, or of the angel Y. *)

val coverage : estimate -> float
(** Fraction of goal violations the subgoals predicted — the practical
    value of the partial decomposition (§3.3.3); 1.0 when every hazard had
    a subsystem-level precursor (vacuously 1.0 with no violations). *)

val pp : Format.formatter -> estimate -> unit
