(** The thesis's composability hierarchy (Ch. 3), decided semantically.

    Let C be the set of (bounded) traces satisfying all subgoals and P the
    set satisfying the parent goal.

    - C = P          : fully composable (Eq. 3.1);
    - C ⊂ P          : the subgoals are *restrictive* — they satisfy the
                       parent but forbid some acceptable behaviours
                       (the source of run-time false positives);
    - C ⊃ P          : *demon* emergence — traces exist where every subgoal
                       holds yet the parent fails; the missing behaviour is
                       the X of Eq. 3.14 and the subgoals are at best
                       emergent-but-partially-composable;
    - incomparable   : both phenomena at once.

    With redundancy (Eq. 3.9) C is replaced by the union of the groups'
    trace sets, and the parent-only region P \ ∪ᵢCᵢ is the *angel* Y of
    Eq. 3.23. *)

open Tl

type verdict =
  | Fully_composable
  | Restrictive  (** subgoals entail the parent but are strictly stronger *)
  | Partially_composable  (** demon witnesses exist (emergence X ≠ ∅) *)
  | Unrelated  (** both restriction and demon witnesses exist *)

let verdict_to_string = function
  | Fully_composable -> "fully composable"
  | Restrictive -> "restrictive (composes the parent with a margin)"
  | Partially_composable -> "emergent but partially composable"
  | Unrelated -> "emergent (restrictive and incomplete)"

type analysis = {
  verdict : verdict;
  demon_witnesses : Trace.t list;
      (** traces where all subgoals hold but the parent fails — the hidden
          dependency X working against goal satisfaction *)
  restriction_witnesses : Trace.t list;
      (** traces where the parent holds but some subgoal fails — behaviour
          the decomposition forbids (or, with redundancy, the angel Y) *)
}

let sat tr f = Kaos.Patterns.trace_sat tr (Andred.body f)
let sat_all tr fs = List.for_all (fun f -> sat tr f) fs

let traces_over vars =
  List.concat_map
    (fun len -> Kaos.Patterns.all_traces vars len)
    [ 1; 2; Kaos.Patterns.check_len ]

let classify demon restr =
  match (demon, restr) with
  | [], [] -> Fully_composable
  | [], _ -> Restrictive
  | _, [] -> Partially_composable
  | _, _ -> Unrelated

(* Subgoals typically constrain *auxiliary* variables the parent does not
   mention (CA.StopVehicle in the Eq. 3.5–3.6 example). The thesis's
   state-space pictures (Figs. 3.3–3.6) live in the parent's state space, so
   a restriction witness is a parent-variable trace that satisfies the
   parent but admits *no* extension of the auxiliary variables satisfying
   the subgoals. [extends sat_group tr aux] decides extension existence by
   enumerating auxiliary traces of the same length. *)
let extendable ~aux ~len sat_pred tr =
  if aux = [] then sat_pred tr
  else
    let aux_traces = Kaos.Patterns.all_traces aux len in
    List.exists
      (fun (atr : Trace.t) ->
        let merged =
          Trace.init ~dt:1.0 len (fun i ->
              State.update (State.to_list (Trace.get atr i)) (Trace.get tr i))
        in
        sat_pred merged)
      aux_traces

let analyze_general ~parent ~(sat_decomposition : Trace.t -> bool) ~all_vars : analysis =
  let parent_vars = Formula.vars parent in
  let aux = List.filter (fun v -> not (List.mem v parent_vars)) all_vars in
  let demon =
    List.filter
      (fun tr -> sat_decomposition tr && not (sat tr parent))
      (traces_over all_vars)
  in
  let restr =
    List.concat_map
      (fun len ->
        List.filter
          (fun tr ->
            sat tr parent && not (extendable ~aux ~len sat_decomposition tr))
          (Kaos.Patterns.all_traces parent_vars len))
      [ 1; 2; Kaos.Patterns.check_len ]
  in
  { verdict = classify demon restr; demon_witnesses = demon; restriction_witnesses = restr }

(** [analyze ~parent subgoals] — single-decomposition analysis (Eq. 3.1 /
    Eq. 3.14): demon witnesses are full traces where every subgoal holds but
    the parent fails; restriction witnesses are parent-space traces the
    decomposition forbids outright. *)
let analyze ~parent subgoals : analysis =
  let all_vars =
    Formula.dedup (List.concat_map Formula.vars_list (parent :: subgoals))
  in
  analyze_general ~parent
    ~sat_decomposition:(fun tr -> sat_all tr subgoals)
    ~all_vars

(** [analyze_redundant ~parent groups] — redundant decomposition analysis
    (Eq. 3.9 / Eq. 3.23): the parent should hold exactly when at least one
    and-reduction group holds. [restriction_witnesses] is then the angel
    region Y. *)
let analyze_redundant ~parent groups : analysis =
  let all_vars =
    Formula.dedup
      (List.concat_map Formula.vars_list (parent :: List.concat groups))
  in
  analyze_general ~parent
    ~sat_decomposition:(fun tr -> List.exists (fun g -> sat_all tr g) groups)
    ~all_vars

(** Fully composable iff the conjunction is materially equivalent to the
    parent (Eq. 3.1–3.3). *)
let fully_composable ~parent subgoals = (analyze ~parent subgoals).verdict = Fully_composable

(** Fully composable with redundancy iff the disjunction of group
    conjunctions is materially equivalent to the parent (Eq. 3.9–3.11). *)
let fully_composable_with_redundancy ~parent groups =
  (analyze_redundant ~parent groups).verdict = Fully_composable

(** The thesis's *composability measure* (§3.4): the extent to which the
    emergent regions X and Y are small, here the fraction of bounded traces
    exhibiting neither demon nor restriction behaviour. 1.0 means fully
    composable. *)
let composability ~parent groups =
  let all_vars =
    Formula.dedup
      (List.concat_map Formula.vars_list (parent :: List.concat groups))
  in
  let traces = traces_over all_vars in
  let a = analyze_redundant ~parent groups in
  let bad = List.length a.demon_witnesses + List.length a.restriction_witnesses in
  1. -. (float_of_int bad /. float_of_int (max 1 (List.length traces)))

let pp_analysis ppf a =
  Fmt.pf ppf "%s (demon witnesses: %d, restriction/angel witnesses: %d)"
    (verdict_to_string a.verdict)
    (List.length a.demon_witnesses)
    (List.length a.restriction_witnesses)
