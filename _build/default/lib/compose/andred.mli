(** Darimont's and-reductions (§3.1.2): the four conditions a set of
    subgoals must meet to be a {e complete and-reduction} of a parent goal,
    decided by exhaustive evaluation over bounded boolean traces. *)

open Tl

val vars_of : Formula.t -> Formula.t list -> string list
val body : Formula.t -> Formula.t
(** Strip a top-level □. *)

val conj_bodies : Formula.t list -> Formula.t
val entails : string list -> Formula.t -> Formula.t -> bool
val equivalent : string list -> Formula.t -> Formula.t -> bool

val consistent : string list -> Formula.t list -> bool
(** Satisfiability of the conjunction of invariants over bounded traces. *)

type check = {
  infers_parent : bool;  (** (1) G₁,…,Gₙ ⊢ G *)
  minimal : bool;  (** (2) no proper subset infers G *)
  is_consistent : bool;  (** (3) G₁,…,Gₙ ⊬ false *)
  nontrivial : bool;  (** (4) not a mere restatement of G *)
}

val complete : check -> bool

val check : parent:Formula.t -> Formula.t list -> check
(** Evaluate Darimont's four conditions. *)

val completes_with : parent:Formula.t -> subgoals:Formula.t list -> Formula.t -> bool
(** Does adding the (possibly unrealizable) goal turn a partial
    and-reduction into a complete one (§3.1.2)? *)

val pp : Format.formatter -> check -> unit
