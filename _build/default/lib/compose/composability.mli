(** The thesis's composability hierarchy (Ch. 3), decided semantically over
    bounded boolean traces.

    Subgoals typically constrain {e auxiliary} variables the parent does
    not mention (CA.StopVehicle in the Eq. 3.5–3.6 example). Following the
    state-space pictures of Figs. 3.3–3.6, which live in the parent's state
    space:

    - a {e demon} witness is a full trace where every subgoal holds yet the
      parent fails — the hidden behaviour X of Eq. 3.14;
    - a {e restriction} witness is a parent-variable trace satisfying the
      parent that admits {e no} extension of the auxiliary variables
      satisfying the subgoals — behaviour the decomposition forbids (or,
      with redundancy, the angel region Y of Eq. 3.23). *)

open Tl

type verdict =
  | Fully_composable
  | Restrictive  (** subgoals entail the parent but are strictly stronger *)
  | Partially_composable  (** demon witnesses exist (emergence X ≠ ∅) *)
  | Unrelated  (** both restriction and demon witnesses exist *)

val verdict_to_string : verdict -> string

type analysis = {
  verdict : verdict;
  demon_witnesses : Trace.t list;
  restriction_witnesses : Trace.t list;
}

val analyze : parent:Formula.t -> Formula.t list -> analysis
(** Single-decomposition analysis (Eq. 3.1 / Eq. 3.14). *)

val analyze_redundant : parent:Formula.t -> Formula.t list list -> analysis
(** Redundant decomposition analysis (Eq. 3.9 / Eq. 3.23): the parent
    should hold exactly when at least one and-reduction group holds. *)

val fully_composable : parent:Formula.t -> Formula.t list -> bool
(** Material equivalence with the parent over the parent's state space
    (Eqs. 3.1–3.3). *)

val fully_composable_with_redundancy : parent:Formula.t -> Formula.t list list -> bool
(** Eqs. 3.9–3.11. *)

val composability : parent:Formula.t -> Formula.t list list -> float
(** The §3.4 composability measure: the fraction of bounded traces
    exhibiting neither demon nor restriction behaviour; 1.0 means fully
    composable. *)

val pp_analysis : Format.formatter -> analysis -> unit
