(** Run-time estimation of composability (§3.4, §5.1.2).

    X and Y cannot be known statically; the thesis estimates them by
    monitoring the goal and its subgoals together. False negatives witness a
    non-empty X (the subgoals missed a real hazard); false positives witness
    restriction or redundancy (or the angel Y). *)

type estimate = {
  scenarios : int;
  hits : int;
  false_negatives : int;
  false_positives : int;
}

let empty = { scenarios = 0; hits = 0; false_negatives = 0; false_positives = 0 }

let add est (r : Rtmon.Report.t) =
  {
    scenarios = est.scenarios + 1;
    hits = est.hits + r.Rtmon.Report.hits;
    false_negatives = est.false_negatives + r.Rtmon.Report.false_negatives;
    false_positives = est.false_positives + r.Rtmon.Report.false_positives;
  }

let of_reports reports = List.fold_left add empty reports

(** Evidence that the decomposition is only partial: X ≠ ∅ (Eq. 3.14). *)
let demon_evidence est = est.false_negatives > 0

(** Evidence of restriction or redundancy in the subgoals, or of the angel Y
    (Eq. 3.23). *)
let restriction_evidence est = est.false_positives > 0

(** Fraction of goal violations the subgoals predicted: the practical value
    of the partial decomposition (§3.3.3). 1.0 when every hazard had a
    subsystem-level precursor. *)
let coverage est =
  let total = est.hits + est.false_negatives in
  if total = 0 then 1.0 else float_of_int est.hits /. float_of_int total

let pp ppf est =
  Fmt.pf ppf
    "scenarios=%d hits=%d false-negatives=%d false-positives=%d coverage=%.2f"
    est.scenarios est.hits est.false_negatives est.false_positives (coverage est)
