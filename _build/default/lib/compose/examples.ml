(** The worked examples of Chapter 3, used by tests and by the experiment
    harness to regenerate Tables 3.1–3.2 and Figures 3.1–3.6. *)

open Tl

let v = Formula.bvar

(** Table 3.1: goal G = A ⇒ B with two alternative and-reductions,
    {G₁¹,G₁²,G₁³} over {A,B,C,D} and {G₂¹,G₂²} over {A,B,E}. *)
module Table_3_1 = struct
  let goal = Formula.entails (v "A") (v "B")
  let g11 = Formula.entails (v "A") (v "C")
  let g12 = Formula.entails (v "C") (v "D")
  let g13 = Formula.entails (v "D") (v "B")
  let g21 = Formula.entails (v "A") (v "E")
  let g22 = Formula.entails (v "E") (v "B")
  let reduction_1 = [ g11; g12; g13 ]
  let reduction_2 = [ g21; g22 ]
end

(** Table 3.2: the same subgoals with emergence acknowledged. The hidden
    dependency F ⇒ ¬C (unknown at elaboration time) makes subgoal G₁¹
    unrealizable whenever F holds; what the system can actually achieve is
    the weakening (A ∧ ¬F) ⇒ C. The dependency becomes an assumption
    "serving as a subgoal", and the missing subgoal □¬F completes the
    reduction — both live in X₁ (§3.3.1). *)
module Table_3_2 = struct
  include Table_3_1

  let hidden_dependency = Formula.entails (v "F") (Formula.not_ (v "C"))

  (** The achievable part of G₁¹ under the hidden dependency. *)
  let g11_achievable =
    Formula.entails (Formula.and_ (v "A") (Formula.not_ (v "F"))) (v "C")

  let achievable_reduction = [ g11_achievable; g12; g13; hidden_dependency ]
  let missing_subgoal = Formula.always (Formula.not_ (v "F"))
  let x1 = [ hidden_dependency; missing_subgoal ]
end

(** The stop-vehicle example threaded through §3.2–§3.3. *)
module Stop_vehicle = struct
  let object_in_path = v "ObjectInPath"
  let stop_vehicle = v "StopVehicle"
  let ca_stop = v "CA.StopVehicle"
  let acc_stop = v "ACC.StopVehicle"
  let ca_detected = v "CA.ObjectInPathDetected"
  let ca_not_detected = v "CA.ObjectInPathNotDetected"
  let acc_detected = v "ACC.ObjectInPathDetected"
  let acc_not_detected = v "ACC.ObjectInPathNotDetected"
  let unknown_stop = v "Unknown.StopVehicle"

  (** Eq. 3.4: the parent goal. *)
  let goal = Formula.entails object_in_path stop_vehicle

  (** Eqs. 3.5–3.6: subgoals that fully compose the goal for CA. *)
  let fully_composable_subgoals =
    [
      Formula.always (Formula.iff object_in_path ca_stop);
      Formula.entails ca_stop stop_vehicle;
    ]

  (** Eqs. 3.12–3.13: redundant satisfaction by CA and ACC. *)
  let redundant_subgoals =
    [
      Formula.always (Formula.iff object_in_path (Formula.or_ ca_stop acc_stop));
      Formula.entails (Formula.or_ ca_stop acc_stop) stop_vehicle;
    ]

  (** Eq. 3.17: uncertainty in object detection as a latent dependency. *)
  let detection_assumption =
    Formula.always
      (Formula.iff object_in_path (Formula.or_ ca_detected ca_not_detected))

  (** Eqs. 3.18–3.20; Eq. 3.19 is the unrealizable part living in X. *)
  let realizable_subgoals =
    [ Formula.entails ca_detected ca_stop; Formula.entails ca_stop stop_vehicle ]

  let unrealizable_subgoal = Formula.entails ca_not_detected ca_stop

  (** Eq. 3.31 with the emergent angel [Unknown.StopVehicle]. *)
  let actuation_with_angel =
    Formula.entails
      (Formula.disj [ ca_stop; acc_stop; unknown_stop ])
      stop_vehicle

  (** Eqs. 3.39–3.41: conjunctive division in the presence of non-ideal
    detection; Eq. 3.40 is realizable even though Eq. 3.41 is not. *)
  let conjunctive_goal =
    Formula.entails (Formula.or_ (v "InPathDetected") (v "InPathNotDetected"))
      stop_vehicle

  let conjunctive_realizable = Formula.entails (v "InPathDetected") stop_vehicle
  let conjunctive_unrealizable = Formula.entails (v "InPathNotDetected") stop_vehicle
end

(** §3.3.5's acceleration-envelope restriction: Eq. 3.47 → Eq. 3.48. *)
module Acceleration_envelope = struct
  let limit = 2.0
  let envelope = 0.5

  let goal =
    Formula.always (Formula.lt (Term.var "VehicleAcceleration") (Term.float limit))

  let restrictive_subgoal =
    Formula.always
      (Formula.lt
         (Term.var "VehicleAccelerationRequests")
         (Term.float (limit -. envelope)))
end
