(** Failure Modes and Effects Analysis (§2.2.1): the forward-search,
    tabular hazard analysis whose recording format ICPA borrows. *)

type failure_mode = {
  mode : string;  (** e.g. "False positive" *)
  causes : string list;
  effects : string list;
  probability : float option;  (** per hour, when known *)
  criticality : int option;
      (** FMECA extension: 1 (negligible) – 4 (catastrophic) *)
}

type row = { component : string; modes : failure_mode list }
type t = { title : string; rows : row list }

val mode :
  ?probability:float ->
  ?criticality:int ->
  causes:string list ->
  effects:string list ->
  string ->
  failure_mode

val make : title:string -> row list -> t

val components_affecting : t -> string -> string list
(** Components with a failure mode whose effects mention the given
    substring (case-insensitive) — the forward-search counterpart of
    {!Fta.single_points}. *)

val pp : Format.formatter -> t -> unit

val fig_2_3 : t
(** The partial FMEA of Fig. 2.3: the long-range radar sensor of a
    semi-autonomous automotive system. *)
