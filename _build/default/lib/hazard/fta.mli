(** Fault Tree Analysis (§2.2.1): the backward-search hazard analysis ICPA
    is contrasted with. Fault trees connect component failure events with
    AND/OR gates; minimal cut sets, single-point failures and top-event
    probability are computed automatically. *)

type basic = { event_name : string; rate : float option }
(** A basic failure event with an optional failure rate (per hour). *)

type t =
  | Event of basic
  | And of string * t list  (** the output event requires all input events *)
  | Or of string * t list  (** the output event requires at least one input *)

val event : ?rate:float -> string -> t
val and_ : string -> t list -> t
val or_ : string -> t list -> t
val name : t -> string

val basic_events : t -> basic list
(** All basic events, in traversal order. *)

val cut_sets : t -> string list list
(** Minimal cut sets: the irredundant sets of basic events that jointly
    cause the top event (AND/OR expansion with absorption). Each set is
    sorted; the list is sorted and duplicate-free. *)

val single_points : t -> string list
(** Cut sets of size one — the scenarios traditional FTA exists to
    eliminate. *)

val probability : hours:float -> t -> float
(** Top-event probability over a mission time: independent basic events
    with constant failure rates, rare-event approximation over the minimal
    cut sets, capped at 1. Events without a rate are treated as certain
    (conditions rather than failures). *)

val pp : ?indent:int -> Format.formatter -> t -> unit

val fig_2_2 : t
(** The partial fault tree of Fig. 2.2: unintended sudden acceleration in a
    semi-autonomous automotive system. *)
