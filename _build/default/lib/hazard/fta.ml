(** Fault Tree Analysis (§2.2.1): the backward-search hazard analysis ICPA
    is contrasted with. Fault trees connect component failure events with
    AND/OR gates; "the goal of a traditional FTA is to identify and
    eliminate single-point failure scenarios, indicated by paths up the
    fault tree that traverse no AND gates", and "determination of hazard
    probability from component failure rates (if known) could be
    automated" — both implemented here. *)

type basic = { event_name : string; rate : float option }
(** A basic failure event with an optional failure rate (per hour). *)

type t =
  | Event of basic
  | And of string * t list  (** the output event requires all input events *)
  | Or of string * t list  (** the output event requires at least one input *)

let event ?rate event_name = Event { event_name; rate }
let and_ name children = And (name, children)
let or_ name children = Or (name, children)

let name = function Event { event_name; _ } -> event_name | And (n, _) | Or (n, _) -> n

(** All basic events of the tree, in traversal order. *)
let rec basic_events = function
  | Event e -> [ e ]
  | And (_, cs) | Or (_, cs) -> List.concat_map basic_events cs

module SS = Set.Make (String)

(** Minimal cut sets: the irredundant sets of basic events that jointly
    cause the top event (AND/OR expansion with absorption). *)
let cut_sets (tree : t) : string list list =
  let rec go = function
    | Event { event_name; _ } -> [ SS.singleton event_name ]
    | Or (_, cs) -> List.concat_map go cs
    | And (_, cs) ->
        List.fold_left
          (fun acc c ->
            let sets = go c in
            List.concat_map (fun a -> List.map (SS.union a) sets) acc)
          [ SS.empty ] cs
  in
  let sets = go tree in
  (* absorption: drop any cut set that strictly contains another *)
  let minimal =
    List.filter
      (fun s ->
        not (List.exists (fun s' -> (not (SS.equal s s')) && SS.subset s' s) sets))
      sets
  in
  List.sort_uniq compare (List.map SS.elements minimal)

(** Single-point failures: cut sets of size one — the scenarios traditional
    FTA exists to eliminate. *)
let single_points tree =
  List.filter_map (function [ e ] -> Some e | _ -> None) (cut_sets tree)

(** Top-event probability over a mission time [hours]: independent basic
    events with constant failure rates, rare-event approximation over the
    minimal cut sets. Events without a rate are treated as certain
    (conditions rather than failures). *)
let probability ~hours tree =
  let rates =
    List.map (fun { event_name; rate } -> (event_name, rate)) (basic_events tree)
  in
  let p_of n =
    match List.assoc_opt n rates with
    | Some (Some r) -> Float.min 1.0 (r *. hours)
    | _ -> 1.0
  in
  let cut_p cut = List.fold_left (fun acc e -> acc *. p_of e) 1.0 cut in
  Float.min 1.0 (List.fold_left (fun acc cut -> acc +. cut_p cut) 0.0 (cut_sets tree))

let rec pp ?(indent = 0) ppf t =
  let pad = String.make indent ' ' in
  match t with
  | Event { event_name; rate } ->
      Fmt.pf ppf "%s%s%a@," pad event_name
        (fun ppf -> function Some r -> Fmt.pf ppf "  (%.0e/hr)" r | None -> ())
        rate
  | And (n, cs) ->
      Fmt.pf ppf "%s%s [AND]@," pad n;
      List.iter (pp ~indent:(indent + 2) ppf) cs
  | Or (n, cs) ->
      Fmt.pf ppf "%s%s [OR]@," pad n;
      List.iter (pp ~indent:(indent + 2) ppf) cs

(** The partial fault tree of Fig. 2.2: unintended sudden acceleration in a
    semi-autonomous automotive system. The AND over the two subsystem
    events is the figure's example of a non-single-point scenario: "the
    hazard could occur if a high-priority subsystem cancels an attempt to
    decelerate the vehicle at the same time as a low-priority subsystem
    requests a vehicle acceleration". *)
let fig_2_2 =
  or_ "Unintended sudden acceleration"
    [
      event ~rate:1e-4 "Driver presses throttle pedal instead of brake";
      and_ "Autonomous control changes from decelerate to accelerate"
        [
          event ~rate:5e-5 "Higher priority subsystem aborts deceleration";
          event ~rate:5e-5 "Lower priority subsystem requests acceleration";
        ];
      or_ "Object detection misses object that is there"
        [
          event ~rate:1e-2 "Object's features exceed detection algorithm's margin of error";
          event ~rate:1e-3 "Sensor is blocked";
        ];
    ]
