lib/hazard/fta.mli: Format
