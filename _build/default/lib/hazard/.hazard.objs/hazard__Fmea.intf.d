lib/hazard/fmea.mli: Format
