lib/hazard/fmea.ml: Fmt List String
