lib/hazard/fta.ml: Float Fmt List Set String
