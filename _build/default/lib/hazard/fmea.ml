(** Failure Modes and Effects Analysis (§2.2.1): the forward-search, tabular
    hazard analysis whose recording format ICPA borrows. "FMEA is a forward
    search technique that lists potential faults in components and
    identifies their possible effects on the system." *)

type failure_mode = {
  mode : string;  (** e.g. "False positive" *)
  causes : string list;
  effects : string list;
  probability : float option;  (** per hour, when known *)
  criticality : int option;  (** FMECA extension: 1 (negligible) – 4 (catastrophic) *)
}

type row = { component : string; modes : failure_mode list }

type t = { title : string; rows : row list }

let mode ?probability ?criticality ~causes ~effects name =
  { mode = name; causes; effects; probability; criticality }

let make ~title rows = { title; rows }

(** Components whose single failure mode can produce a named effect — the
    forward-search counterpart of {!Fta.single_points}. *)
let components_affecting t effect_substring =
  let matches fm =
    List.exists
      (fun e ->
        let el = String.lowercase_ascii e in
        let needle = String.lowercase_ascii effect_substring in
        let nl = String.length needle and hl = String.length el in
        let rec go i = i + nl <= hl && (String.sub el i nl = needle || go (i + 1)) in
        nl = 0 || go 0)
      fm.effects
  in
  List.filter_map
    (fun r -> if List.exists matches r.modes then Some r.component else None)
    t.rows

let pp ppf t =
  Fmt.pf ppf "@[<v>%s@,@," t.title;
  Fmt.pf ppf "%-24s %-16s %-34s %-40s %s@," "Component" "Failure mode" "Causes" "Effects"
    "Probability";
  Fmt.pf ppf "%s@," (String.make 130 '-');
  List.iter
    (fun r ->
      List.iter
        (fun fm ->
          Fmt.pf ppf "%-24s %-16s %-34s %-40s %s@," r.component fm.mode
            (String.concat "; " fm.causes)
            (String.concat "; " fm.effects)
            (match fm.probability with
            | Some p -> Fmt.str "%.0e/hr" p
            | None -> "-"))
        r.modes)
    t.rows;
  Fmt.pf ppf "@]"

(** The partial FMEA of Fig. 2.3: the long-range radar sensor of a
    semi-autonomous automotive system. *)
let fig_2_3 =
  make ~title:"Partial FMEA for a semi-autonomous automotive system (Fig. 2.3)"
    [
      {
        component = "Long-range radar sensor";
        modes =
          [
            mode "False positive" ~probability:3e-2
              ~causes:[ "Signal noise" ]
              ~effects:[ "Could cause Collision Avoidance to randomly stop vehicle" ];
            mode "False negative" ~probability:1e-2
              ~causes:[ "Signal noise" ]
              ~effects:[ "Could cause Collision Avoidance to miss an object" ];
          ];
      };
    ]
