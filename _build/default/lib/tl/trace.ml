(** Finite execution traces: a sequence of states sampled at a fixed period.

    The thesis's simulation states are 1 ms apart ("the time interval of one
    state"); [dt] carries that period so bounded-duration operators can
    convert seconds into numbers of states. *)

type t = { dt : float; states : State.t array }

let make ~dt states =
  if dt <= 0. then invalid_arg "Trace.make: dt must be positive";
  { dt; states = Array.of_list states }

let of_array ~dt states =
  if dt <= 0. then invalid_arg "Trace.of_array: dt must be positive";
  { dt; states }

(** [init ~dt n f] builds a trace of [n] states where state [i] is [f i]. *)
let init ~dt n f =
  if dt <= 0. then invalid_arg "Trace.init: dt must be positive";
  { dt; states = Array.init n f }

let length tr = Array.length tr.states
let dt tr = tr.dt
let get tr i = tr.states.(i)

(** Wall-clock time of state [i] (state 0 is at time 0). *)
let time tr i = float_of_int i *. tr.dt

(** [duration_to_states ~dt d] — how many consecutive states span duration
    [d]: the smallest [k >= 1] with [k * dt >= d]. *)
let duration_to_states ~dt d =
  if d <= 0. then 1 else max 1 (int_of_float (Float.ceil ((d /. dt) -. 1e-9)))

(** Extract a signal as a float series, [(time, value)] pairs. *)
let signal tr name =
  Array.to_list
    (Array.mapi (fun i s -> (time tr i, Value.to_float (State.get s name))) tr.states)

(** Extract a boolean signal as a [(time, bool)] series. *)
let bool_signal tr name =
  Array.to_list
    (Array.mapi (fun i s -> (time tr i, Value.to_bool (State.get s name))) tr.states)

let fold f acc tr = Array.fold_left f acc tr.states
let iteri f tr = Array.iteri f tr.states
