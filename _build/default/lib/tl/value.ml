(** Runtime values of state variables.

    The thesis's goals range over booleans (flags such as [DoorClosed]),
    numeric quantities (speeds, accelerations) and symbolic enumerations
    (actuator commands such as ['STOP'], subsystem names such as ['CA']).
    Integers and floats compare interchangeably so that goal formulas may mix
    integer thresholds with float-valued signals. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | Sym of string  (** symbolic enumeration constant, e.g. ["STOP"] *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let pp ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Sym s -> Fmt.pf ppf "'%s'" s

let to_string v = Fmt.str "%a" pp v

(** [to_float v] coerces a numeric value to float. @raise Type_error on
    non-numeric values. *)
let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected a number, got %a" pp v

(** [to_bool v] projects a boolean value. @raise Type_error otherwise. *)
let to_bool = function
  | Bool b -> b
  | v -> type_error "expected a boolean, got %a" pp v

(** Structural equality with numeric coercion: [Int 1] equals [Float 1.]. *)
let equal a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Sym x, Sym y -> String.equal x y
  | (Int _ | Float _), (Int _ | Float _) -> Float.equal (to_float a) (to_float b)
  | _ -> false

(** Numeric comparison. @raise Type_error unless both values are numbers. *)
let compare_num a b = Float.compare (to_float a) (to_float b)

let is_numeric = function Int _ | Float _ -> true | Bool _ | Sym _ -> false
