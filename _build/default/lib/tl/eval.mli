(** Reference (non-incremental) semantics of formulas over finite traces.

    This is the specification against which {!Rtmon.Incremental} is
    property-tested. Future operators use finite-trace semantics: [Always]
    quantifies over the remaining suffix, [Eventually] requires a witness
    within the trace, [Next] is false in the last state. *)

val eval_atom : State.t -> Formula.atom -> bool

val eval : Trace.t -> int -> Formula.t -> bool
(** [eval trace i f] — truth of [f] at state index [i].
    @raise Invalid_argument when [i] is out of range. *)

val holds : Trace.t -> Formula.t -> bool
(** [holds trace f] — [f] holds in the initial state (the standard notion
    of a trace satisfying a goal whose outermost operator is □). *)

val series : Trace.t -> Formula.t -> bool array
(** Truth value of [f] at every state. For a goal [P ⇒ Q], use the
    {!Formula.invariant_body} to obtain the per-state satisfaction used for
    violation reporting. *)
