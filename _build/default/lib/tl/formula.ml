(** Temporal-logic formulas over system state (Fig. 2.5 of the thesis).

    The operator set follows the thesis's KAOS-derived logic:

    - past: [Prev] (●P, true in previous state), [Once] (true in some previous
      state), [Hist] (true in all previous states), [PrevFor (T, p)]
      (●ⁿ<T — P held for duration T up to and including the previous state),
      [OnceWithin (T, p)] (◆<T — P true at least once in duration T before the
      current state), and the edge operator [Rose p] (@P ≜ ●¬P ∧ P);
    - future: [Next] (○), [Eventually] (♦), [Always] (□);
    - connectives: [Not], [And], [Or], [Implies] (current-state →), [Iff];
      the thesis's entailment P ⇒ Q ≜ □(P → Q) is the derived
      {!val:entails}.

    Durations are in seconds; the trace's [dt] determines how many discrete
    states a duration spans. *)

type atom =
  | Bvar of string  (** boolean state variable used as a proposition *)
  | Eq of Term.t * Term.t
  | Ne of Term.t * Term.t
  | Lt of Term.t * Term.t
  | Le of Term.t * Term.t
  | Gt of Term.t * Term.t
  | Ge of Term.t * Term.t

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Prev of t
  | Once of t
  | Hist of t
  | PrevFor of float * t
  | OnceWithin of float * t
  | Rose of t
  | Next of t
  | Eventually of t
  | Always of t

(* Smart constructors — the DSL used throughout goal definitions. *)

let tt = True
let ff = False
let bvar v = Atom (Bvar v)
let eq a b = Atom (Eq (a, b))
let ne a b = Atom (Ne (a, b))
let lt a b = Atom (Lt (a, b))
let le a b = Atom (Le (a, b))
let gt a b = Atom (Gt (a, b))
let ge a b = Atom (Ge (a, b))

(** [var_is v s] — symbolic variable [v] currently equals symbol [s]. *)
let var_is v s = eq (Term.var v) (Term.sym s)

let not_ = function Not f -> f | True -> False | False -> True | f -> Not f

let and_ a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let implies a b = Implies (a, b)
let iff a b = Iff (a, b)
let conj = function [] -> True | f :: fs -> List.fold_left and_ f fs
let disj = function [] -> False | f :: fs -> List.fold_left or_ f fs
let prev f = Prev f
let once f = Once f
let hist f = Hist f
let prev_for t f = PrevFor (t, f)
let once_within t f = OnceWithin (t, f)
let rose f = Rose f
let next f = Next f
let eventually f = Eventually f
let always f = Always f

(** The thesis's entailment P ⇒ Q, i.e. □(P → Q). *)
let entails p q = Always (Implies (p, q))

(** [initially f] — [f] constrained to the initial state only (the thesis's
    [S₀ ⊨ f]). Encoded as [¬●true → f]: only the initial state lacks a
    predecessor. Use under a top-level □. *)
let initially f = Implies (Not (Prev True), f)

let atom_vars = function
  | Bvar v -> [ v ]
  | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b) ->
      Term.vars a @ Term.vars b

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else (
        Hashtbl.add seen x ();
        true))
    xs

(** All state variables mentioned by a formula (no duplicates). *)
let rec vars_list = function
  | True | False -> []
  | Atom a -> atom_vars a
  | Not f | Prev f | Once f | Hist f | Rose f | Next f | Eventually f | Always f ->
      vars_list f
  | PrevFor (_, f) | OnceWithin (_, f) -> vars_list f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> vars_list a @ vars_list b

let vars f = dedup (vars_list f)

(** Temporal reference of a variable occurrence, used by the realizability
    analysis: does the formula constrain the variable's present, past or
    future value? *)
type time_ref = Past | Present | Future

let shift_ref outer inner =
  (* Composition of temporal contexts: a Past context containing a Present
     occurrence yields Past; Future wins over Past conservatively (a future
     operator inside a past one still references states after the anchor of
     the past operator, so we keep Future). *)
  match (outer, inner) with
  | Present, r -> r
  | _, Future | Future, _ -> Future
  | Past, (Past | Present) -> Past

(** [var_refs f] lists each variable together with every temporal context in
    which it occurs. *)
let var_refs f =
  let rec go ctx acc = function
    | True | False -> acc
    | Atom a -> List.fold_left (fun acc v -> (v, ctx) :: acc) acc (atom_vars a)
    | Not g -> go ctx acc g
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> go ctx (go ctx acc a) b
    | Prev g | Once g | Hist g | PrevFor (_, g) | OnceWithin (_, g) ->
        go (shift_ref ctx Past) acc g
    | Rose g ->
        (* @g = ●¬g ∧ g references both previous and current state. *)
        go (shift_ref ctx Past) (go ctx acc g) g
    | Next g | Eventually g | Always g -> go (shift_ref ctx Future) acc g
  in
  go Present [] f

(** A formula is monitorable online iff it contains no future operator.
    A top-level [Always] wrapper is allowed: invariant monitoring checks the
    body at every state. *)
let rec has_future = function
  | True | False | Atom _ -> false
  | Not f | Prev f | Once f | Hist f | Rose f | PrevFor (_, f) | OnceWithin (_, f) ->
      has_future f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> has_future a || has_future b
  | Next _ | Eventually _ | Always _ -> true

(** [invariant_body f] strips a top-level □ (possibly introduced by
    {!entails}); returns [None] when the remaining body still contains future
    operators and thus cannot be monitored online. *)
let invariant_body f =
  let body = match f with Always g -> g | g -> g in
  if has_future body then None else Some body

(** [rename ren f] renames every state variable through [ren]. *)
let rec rename ren =
  let ratom = function
    | Bvar v -> Bvar (ren v)
    | Eq (a, b) -> Eq (Term.rename ren a, Term.rename ren b)
    | Ne (a, b) -> Ne (Term.rename ren a, Term.rename ren b)
    | Lt (a, b) -> Lt (Term.rename ren a, Term.rename ren b)
    | Le (a, b) -> Le (Term.rename ren a, Term.rename ren b)
    | Gt (a, b) -> Gt (Term.rename ren a, Term.rename ren b)
    | Ge (a, b) -> Ge (Term.rename ren a, Term.rename ren b)
  in
  function
  | True -> True
  | False -> False
  | Atom a -> Atom (ratom a)
  | Not f -> Not (rename ren f)
  | And (a, b) -> And (rename ren a, rename ren b)
  | Or (a, b) -> Or (rename ren a, rename ren b)
  | Implies (a, b) -> Implies (rename ren a, rename ren b)
  | Iff (a, b) -> Iff (rename ren a, rename ren b)
  | Prev f -> Prev (rename ren f)
  | Once f -> Once (rename ren f)
  | Hist f -> Hist (rename ren f)
  | PrevFor (t, f) -> PrevFor (t, rename ren f)
  | OnceWithin (t, f) -> OnceWithin (t, rename ren f)
  | Rose f -> Rose (rename ren f)
  | Next f -> Next (rename ren f)
  | Eventually f -> Eventually (rename ren f)
  | Always f -> Always (rename ren f)

(** [subst old_ replacement f] replaces each occurrence of subformula [old_]
    by [replacement] (used by elaboration tactics such as introduce
    accuracy/actuation, which substitute an equivalent variable). *)
let rec subst old_ replacement f =
  if f = old_ then replacement
  else
    let s = subst old_ replacement in
    match f with
    | True | False | Atom _ -> f
    | Not g -> Not (s g)
    | And (a, b) -> And (s a, s b)
    | Or (a, b) -> Or (s a, s b)
    | Implies (a, b) -> Implies (s a, s b)
    | Iff (a, b) -> Iff (s a, s b)
    | Prev g -> Prev (s g)
    | Once g -> Once (s g)
    | Hist g -> Hist (s g)
    | PrevFor (t, g) -> PrevFor (t, s g)
    | OnceWithin (t, g) -> OnceWithin (t, s g)
    | Rose g -> Rose (s g)
    | Next g -> Next (s g)
    | Eventually g -> Eventually (s g)
    | Always g -> Always (s g)

(** Structural size, used as a complexity measure in benches and tests. *)
let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Prev f | Once f | Hist f | Rose f | Next f | Eventually f | Always f ->
      1 + size f
  | PrevFor (_, f) | OnceWithin (_, f) -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> 1 + size a + size b

let pp_atom ppf = function
  | Bvar v -> Fmt.string ppf v
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" Term.pp a Term.pp b
  | Ne (a, b) -> Fmt.pf ppf "%a ≠ %a" Term.pp a Term.pp b
  | Lt (a, b) -> Fmt.pf ppf "%a < %a" Term.pp a Term.pp b
  | Le (a, b) -> Fmt.pf ppf "%a ≤ %a" Term.pp a Term.pp b
  | Gt (a, b) -> Fmt.pf ppf "%a > %a" Term.pp a Term.pp b
  | Ge (a, b) -> Fmt.pf ppf "%a ≥ %a" Term.pp a Term.pp b

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> pp_atom ppf a
  | Not f -> Fmt.pf ppf "¬%a" pp_paren f
  | And (a, b) -> Fmt.pf ppf "%a ∧ %a" pp_paren a pp_paren b
  | Or (a, b) -> Fmt.pf ppf "%a ∨ %a" pp_paren a pp_paren b
  | Implies (a, b) -> Fmt.pf ppf "%a → %a" pp_paren a pp_paren b
  | Iff (a, b) -> Fmt.pf ppf "%a ⇔ %a" pp_paren a pp_paren b
  | Prev f -> Fmt.pf ppf "●%a" pp_paren f
  | Once f -> Fmt.pf ppf "◆%a" pp_paren f
  | Hist f -> Fmt.pf ppf "■%a" pp_paren f
  | PrevFor (t, f) -> Fmt.pf ppf "●[<%gs]%a" t pp_paren f
  | OnceWithin (t, f) -> Fmt.pf ppf "◆[<%gs]%a" t pp_paren f
  | Rose f -> Fmt.pf ppf "@%a" pp_paren f
  | Next f -> Fmt.pf ppf "○%a" pp_paren f
  | Eventually f -> Fmt.pf ppf "♦%a" pp_paren f
  | Always (Implies (a, b)) -> Fmt.pf ppf "%a ⇒ %a" pp_paren a pp_paren b
  | Always f -> Fmt.pf ppf "□%a" pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | Not _ | Prev _ | Once _ | Hist _ | Rose _ | Next _
  | Eventually _ | PrevFor _ | OnceWithin _ ->
      pp ppf f
  | _ -> Fmt.pf ppf "(%a)" pp f

let to_string f = Fmt.str "%a" pp f
