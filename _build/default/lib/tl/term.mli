(** Terms: state-variable references, constants and arithmetic over them.

    Terms appear inside atomic comparisons of goal formulas, e.g.
    [va.value ≤ 2 m/s²] is [le (var "va.value") (float 2.)]. *)

type t =
  | Var of string
  | Const of Value.t
  | Neg of t
  | Abs of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t

val var : string -> t
val bool : bool -> t
val int : int -> t
val float : float -> t
val sym : string -> t

val eval : State.t -> t -> Value.t
(** Evaluate a term in a state.
    @raise Value.Type_error on non-numeric operands of arithmetic
    @raise State.Unbound on missing variables. *)

val vars : t -> string list
(** Free state variables, in occurrence order (may contain duplicates for
    terms; {!Formula.vars} deduplicates). *)

val rename : (string -> string) -> t -> t
(** [rename f t] renames every variable of [t] through [f]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
