(** Finite execution traces: a sequence of states sampled at a fixed period.

    The thesis's simulation states are 1 ms apart ("the time interval of
    one state"); [dt] carries that period so bounded-duration operators can
    convert seconds into numbers of states. *)

type t = { dt : float; states : State.t array }

val make : dt:float -> State.t list -> t
(** @raise Invalid_argument when [dt <= 0]. *)

val of_array : dt:float -> State.t array -> t

val init : dt:float -> int -> (int -> State.t) -> t
(** [init ~dt n f] builds a trace of [n] states where state [i] is [f i]. *)

val length : t -> int
val dt : t -> float
val get : t -> int -> State.t

val time : t -> int -> float
(** Wall-clock time of state [i] (state 0 is at time 0). *)

val duration_to_states : dt:float -> float -> int
(** [duration_to_states ~dt d] — how many consecutive states span duration
    [d]: the smallest [k >= 1] with [k * dt >= d]. *)

val signal : t -> string -> (float * float) list
(** A float signal as [(time, value)] pairs. *)

val bool_signal : t -> string -> (float * bool) list

val fold : ('a -> State.t -> 'a) -> 'a -> t -> 'a
val iteri : (int -> State.t -> unit) -> t -> unit
