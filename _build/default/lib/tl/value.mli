(** Runtime values of state variables.

    The thesis's goals range over booleans (flags such as [DoorClosed]),
    numeric quantities (speeds, accelerations) and symbolic enumerations
    (actuator commands such as ['STOP'], subsystem names such as ['CA']).
    Integers and floats compare interchangeably so that goal formulas may
    mix integer thresholds with float-valued signals. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | Sym of string  (** symbolic enumeration constant, e.g. ["STOP"] *)

exception Type_error of string
(** Raised by the typed projections on a value of the wrong kind. *)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [type_error fmt …] raises {!Type_error} with a formatted message. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_float : t -> float
(** Coerce a numeric value ([Int] or [Float]) to float.
    @raise Type_error on non-numeric values. *)

val to_bool : t -> bool
(** Project a boolean value. @raise Type_error otherwise. *)

val equal : t -> t -> bool
(** Structural equality with numeric coercion: [Int 1] equals [Float 1.]. *)

val compare_num : t -> t -> int
(** Numeric comparison. @raise Type_error unless both values are numbers. *)

val is_numeric : t -> bool
