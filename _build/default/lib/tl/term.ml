(** Terms: state-variable references, constants and arithmetic over them.

    Terms appear inside atomic comparisons of goal formulas, e.g.
    [va.value <= 2 m/s^2] is [Le (Var "va.value", Const (Float 2.))]. *)

type t =
  | Var of string
  | Const of Value.t
  | Neg of t
  | Abs of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t

let var v = Var v
let bool b = Const (Value.Bool b)
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let sym s = Const (Value.Sym s)

let rec eval (state : State.t) = function
  | Var v -> State.get state v
  | Const c -> c
  | Neg t -> Value.Float (-.Value.to_float (eval state t))
  | Abs t -> Value.Float (Float.abs (Value.to_float (eval state t)))
  | Add (a, b) -> arith state ( +. ) a b
  | Sub (a, b) -> arith state ( -. ) a b
  | Mul (a, b) -> arith state ( *. ) a b
  | Div (a, b) -> arith state ( /. ) a b
  | Min (a, b) -> arith state Float.min a b
  | Max (a, b) -> arith state Float.max a b

and arith state op a b =
  Value.Float (op (Value.to_float (eval state a)) (Value.to_float (eval state b)))

(** Free state variables of a term, in occurrence order without duplicates. *)
let rec vars = function
  | Var v -> [ v ]
  | Const _ -> []
  | Neg t | Abs t -> vars t
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b) ->
      vars a @ vars b

(** [rename f t] renames every variable of [t] through [f]. *)
let rec rename f = function
  | Var v -> Var (f v)
  | Const c -> Const c
  | Neg t -> Neg (rename f t)
  | Abs t -> Abs (rename f t)
  | Add (a, b) -> Add (rename f a, rename f b)
  | Sub (a, b) -> Sub (rename f a, rename f b)
  | Mul (a, b) -> Mul (rename f a, rename f b)
  | Div (a, b) -> Div (rename f a, rename f b)
  | Min (a, b) -> Min (rename f a, rename f b)
  | Max (a, b) -> Max (rename f a, rename f b)

let rec pp ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Value.pp ppf c
  | Neg t -> Fmt.pf ppf "-(%a)" pp t
  | Abs t -> Fmt.pf ppf "abs(%a)" pp t
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t
