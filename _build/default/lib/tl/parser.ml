(** A parser for the thesis's textual goal syntax, so formal definitions can
    be written (and round-tripped) the way the thesis prints them:

    {v
    ObjectInPath => StopVehicle
    prev(dc) & prev(dmc = 'CLOSE') -> dc
    holds[<0.3](dmc = 'CLOSE' & !db) => dc
    always(va.value <= 2 | !IsSubsystem)
    v}

    Grammar (precedence low → high):
    {v
    formula  ::= iff
    iff      ::= entail ( '<=>' entail )*
    entail   ::= imply ( '=>' imply )*            (* P => Q  ≡  always(P -> Q) *)
    imply    ::= or ( '->' or )*                  (* right associative *)
    or       ::= and ( '|' and )*
    and      ::= unary ( '&' unary )*
    unary    ::= '!' unary | temporal | atom
    temporal ::= ('prev'|'once'|'hist'|'next'|'eventually'|'always'|'rose')
                   '(' formula ')'
               | ('holds'|'within') '[' '<' NUMBER ']' '(' formula ')'
    atom     ::= 'true' | 'false' | '(' formula ')'
               | term (('='|'!='|'<'|'<='|'>'|'>=') term)?
    term     ::= sum
    sum      ::= prod (('+'|'-') prod)*
    prod     ::= prim (('*'|'/') prim)*
    prim     ::= NUMBER | IDENT | '\'' SYM '\'' | '-' prim | '(' term ')'
    v}

    Identifiers may contain dots (the thesis's [va.value]). A bare
    identifier in formula position is a boolean state variable. Unicode
    operator aliases are accepted: ⇒ (entails), → (implies), ∧, ∨, ¬, ⇔,
    ●/● (prev), ◆ (once), ■ (hist), □ (always), ♦ (eventually), ○ (next),
    ≤, ≥, ≠. *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

type token =
  | IDENT of string
  | NUMBER of float
  | SYM of string  (** 'QUOTED' enumeration constant *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | BANG
  | AMP
  | PIPE
  | ARROW  (** -> *)
  | ENTAILS  (** => *)
  | IFF  (** <=> *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | NUMBER f -> Fmt.pf ppf "number %g" f
  | SYM s -> Fmt.pf ppf "'%s'" s
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | BANG -> Fmt.string ppf "!"
  | AMP -> Fmt.string ppf "&"
  | PIPE -> Fmt.string ppf "|"
  | ARROW -> Fmt.string ppf "->"
  | ENTAILS -> Fmt.string ppf "=>"
  | IFF -> Fmt.string ppf "<=>"
  | EQ -> Fmt.string ppf "="
  | NE -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | EOF -> Fmt.string ppf "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* Unicode aliases, matched as UTF-8 byte sequences. *)
let unicode_aliases =
  [
    ("\xe2\x87\x92", ENTAILS) (* ⇒ *);
    ("\xe2\x86\x92", ARROW) (* → *);
    ("\xe2\x87\x94", IFF) (* ⇔ *);
    ("\xe2\x88\xa7", AMP) (* ∧ *);
    ("\xe2\x88\xa8", PIPE) (* ∨ *);
    ("\xc2\xac", BANG) (* ¬ *);
    ("\xe2\x89\xa4", LE) (* ≤ *);
    ("\xe2\x89\xa5", GE) (* ≥ *);
    ("\xe2\x89\xa0", NE) (* ≠ *);
  ]

let unicode_idents =
  [
    ("\xe2\x97\x8f", "prev") (* ● *);
    ("\xe2\x97\x86", "once") (* ◆ *);
    ("\xe2\x96\xa0", "hist") (* ■ *);
    ("\xe2\x96\xa1", "always") (* □ *);
    ("\xe2\x99\xa6", "eventually") (* ♦ *);
    ("\xe2\x97\x8b", "next") (* ○ *);
    ("@", "rose");
  ]

let tokenize (input : string) : token list =
  let n = String.length input in
  let out = ref [] in
  let emit t = out := t :: !out in
  let rec go i =
    if i >= n then ()
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else
        (* multi-byte aliases first *)
        match
          List.find_opt
            (fun (u, _) -> i + String.length u <= n && String.sub input i (String.length u) = u)
            unicode_aliases
        with
        | Some (u, t) ->
            emit t;
            go (i + String.length u)
        | None -> (
            match
              List.find_opt
                (fun (u, _) ->
                  i + String.length u <= n && String.sub input i (String.length u) = u)
                unicode_idents
            with
            | Some (u, name) ->
                emit (IDENT name);
                go (i + String.length u)
            | None ->
                if c = '(' then (emit LPAREN; go (i + 1))
                else if c = ')' then (emit RPAREN; go (i + 1))
                else if c = '[' then (emit LBRACKET; go (i + 1))
                else if c = ']' then (emit RBRACKET; go (i + 1))
                else if c = '&' then (emit AMP; go (i + 1))
                else if c = '|' then (emit PIPE; go (i + 1))
                else if c = '+' then (emit PLUS; go (i + 1))
                else if c = '*' then (emit STAR; go (i + 1))
                else if c = '/' then (emit SLASH; go (i + 1))
                else if c = '!' then
                  if i + 1 < n && input.[i + 1] = '=' then (emit NE; go (i + 2))
                  else (emit BANG; go (i + 1))
                else if c = '-' then
                  if i + 1 < n && input.[i + 1] = '>' then (emit ARROW; go (i + 2))
                  else (emit MINUS; go (i + 1))
                else if c = '=' then
                  if i + 1 < n && input.[i + 1] = '>' then (emit ENTAILS; go (i + 2))
                  else (emit EQ; go (i + 1))
                else if c = '<' then
                  if i + 2 < n && input.[i + 1] = '=' && input.[i + 2] = '>' then
                    (emit IFF; go (i + 3))
                  else if i + 1 < n && input.[i + 1] = '=' then (emit LE; go (i + 2))
                  else (emit LT; go (i + 1))
                else if c = '>' then
                  if i + 1 < n && input.[i + 1] = '=' then (emit GE; go (i + 2))
                  else (emit GT; go (i + 1))
                else if c = '\'' then begin
                  let j = ref (i + 1) in
                  while !j < n && input.[!j] <> '\'' do incr j done;
                  if !j >= n then fail "unterminated symbol literal";
                  emit (SYM (String.sub input (i + 1) (!j - i - 1)));
                  go (!j + 1)
                end
                else if is_digit c then begin
                  let j = ref i in
                  while
                    !j < n
                    && (is_digit input.[!j] || input.[!j] = '.'
                       || input.[!j] = 'e' || input.[!j] = 'E'
                       || (input.[!j] = '-' && !j > i
                          && (input.[!j - 1] = 'e' || input.[!j - 1] = 'E')))
                  do
                    incr j
                  done;
                  (* a trailing '.' belongs to the number only if followed by
                     a digit; dotted identifiers never start with a digit *)
                  let text = String.sub input i (!j - i) in
                  (match float_of_string_opt text with
                  | Some f -> emit (NUMBER f)
                  | None -> fail "bad number %s" text);
                  go !j
                end
                else if is_ident_char c then begin
                  let j = ref i in
                  while !j < n && is_ident_char input.[!j] do incr j done;
                  emit (IDENT (String.sub input i (!j - i)));
                  go !j
                end
                else fail "unexpected character %c" c)
  in
  go 0;
  List.rev (EOF :: !out)

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser over a mutable token cursor                  *)

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> EOF | t :: _ -> t
let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let expect c t =
  if peek c = t then advance c
  else fail "expected %a, found %a" pp_token t pp_token (peek c)

let temporal_keywords =
  [ "prev"; "once"; "hist"; "next"; "eventually"; "always"; "rose"; "holds"; "within" ]

let rec parse_formula c = parse_iff c

and parse_iff c =
  let lhs = parse_entail c in
  if peek c = IFF then begin
    advance c;
    Formula.Iff (lhs, parse_iff c)
  end
  else lhs

and parse_entail c =
  let lhs = parse_imply c in
  if peek c = ENTAILS then begin
    advance c;
    Formula.entails lhs (parse_imply c)
  end
  else lhs

and parse_imply c =
  let lhs = parse_or c in
  if peek c = ARROW then begin
    advance c;
    Formula.Implies (lhs, parse_imply c)
  end
  else lhs

and parse_or c =
  let lhs = parse_and c in
  if peek c = PIPE then begin
    advance c;
    Formula.Or (lhs, parse_or c)
  end
  else lhs

and parse_and c =
  let lhs = parse_unary c in
  if peek c = AMP then begin
    advance c;
    Formula.And (lhs, parse_and c)
  end
  else lhs

and parse_unary c =
  match peek c with
  | BANG ->
      advance c;
      Formula.not_ (parse_unary c)
  | IDENT kw when List.mem kw temporal_keywords -> (
      advance c;
      (* optional bounded-duration modifier: [<0.3] or the printer's [<0.3s] *)
      let duration =
        if peek c = LBRACKET then begin
          advance c;
          expect c LT;
          let d =
            match peek c with
            | NUMBER f -> (advance c; f)
            | t -> fail "expected duration, found %a" pp_token t
          in
          (match peek c with IDENT "s" -> advance c | _ -> ());
          expect c RBRACKET;
          Some d
        end
        else None
      in
      (* the operand binds tightly: prev p, or parenthesized prev(p & q) *)
      let body = parse_unary c in
      match (kw, duration) with
      | ("holds" | "prev"), Some d -> Formula.PrevFor (d, body)
      | ("within" | "once"), Some d -> Formula.OnceWithin (d, body)
      | _, Some _ -> fail "%s does not take a duration" kw
      | "holds", None -> fail "holds requires a duration [<T]"
      | "within", None -> fail "within requires a duration [<T]"
      | "prev", None -> Formula.Prev body
      | "once", None -> Formula.Once body
      | "hist", None -> Formula.Hist body
      | "next", None -> Formula.Next body
      | "eventually", None -> Formula.Eventually body
      | "always", None -> Formula.Always body
      | "rose", None -> Formula.Rose body
      | _ -> assert false)
  | _ -> parse_atom c

and parse_atom c =
  match peek c with
  | IDENT "true" ->
      advance c;
      Formula.True
  | IDENT "false" ->
      advance c;
      Formula.False
  | LPAREN -> (
      (* ambiguity: '(' may open a parenthesized formula or a parenthesized
         term followed by a comparison, as in [(x + 1) > 2]. Try the
         term-comparison reading first and backtrack on failure. *)
      let saved = c.toks in
      match
        (try
           let lhs = parse_term c in
           match peek c with
           | EQ | NE | LT | LE | GT | GE -> Some lhs
           | _ -> None
         with Parse_error _ -> None)
      with
      | Some lhs -> (
          match peek c with
          | EQ -> (advance c; Formula.eq lhs (parse_term c))
          | NE -> (advance c; Formula.ne lhs (parse_term c))
          | LT -> (advance c; Formula.lt lhs (parse_term c))
          | LE -> (advance c; Formula.le lhs (parse_term c))
          | GT -> (advance c; Formula.gt lhs (parse_term c))
          | GE -> (advance c; Formula.ge lhs (parse_term c))
          | _ -> assert false)
      | None ->
          c.toks <- saved;
          advance c;
          let f = parse_formula c in
          expect c RPAREN;
          f)
  | _ -> (
      let lhs = parse_term c in
      match peek c with
      | EQ -> (advance c; Formula.eq lhs (parse_term c))
      | NE -> (advance c; Formula.ne lhs (parse_term c))
      | LT -> (advance c; Formula.lt lhs (parse_term c))
      | LE -> (advance c; Formula.le lhs (parse_term c))
      | GT -> (advance c; Formula.gt lhs (parse_term c))
      | GE -> (advance c; Formula.ge lhs (parse_term c))
      | _ -> (
          (* a bare identifier in formula position is a boolean variable *)
          match lhs with
          | Term.Var v -> Formula.bvar v
          | _ -> fail "expected comparison after term"))

and parse_term c = parse_sum c

and parse_sum c =
  let rec loop lhs =
    match peek c with
    | PLUS ->
        advance c;
        loop (Term.Add (lhs, parse_prod c))
    | MINUS ->
        advance c;
        loop (Term.Sub (lhs, parse_prod c))
    | _ -> lhs
  in
  loop (parse_prod c)

and parse_prod c =
  let rec loop lhs =
    match peek c with
    | STAR ->
        advance c;
        loop (Term.Mul (lhs, parse_prim c))
    | SLASH ->
        advance c;
        loop (Term.Div (lhs, parse_prim c))
    | _ -> lhs
  in
  loop (parse_prim c)

and parse_prim c =
  match peek c with
  | NUMBER f ->
      advance c;
      Term.float f
  | SYM s ->
      advance c;
      Term.sym s
  | IDENT "abs" when (match c.toks with _ :: LPAREN :: _ -> true | _ -> false) ->
      advance c;
      expect c LPAREN;
      let t = parse_term c in
      expect c RPAREN;
      Term.Abs t
  | IDENT v ->
      advance c;
      Term.var v
  | MINUS -> (
      advance c;
      (* a leading minus on a literal is a negative constant, matching the
         printer's output for e.g. [Term.float (-2.)] *)
      match peek c with
      | NUMBER f ->
          advance c;
          Term.float (-.f)
      | _ -> Term.Neg (parse_prim c))
  | LPAREN ->
      advance c;
      let t = parse_term c in
      expect c RPAREN;
      t
  | t -> fail "expected a term, found %a" pp_token t

(** [parse input] — parse a formula. @raise Parse_error on malformed input. *)
let parse (input : string) : Formula.t =
  let c = { toks = tokenize input } in
  let f = parse_formula c in
  expect c EOF;
  f

let parse_opt input = try Some (parse input) with Parse_error _ -> None
