lib/tl/trace.ml: Array Float State Value
