lib/tl/state.ml: Bool Float Fmt Int List Map String Value
