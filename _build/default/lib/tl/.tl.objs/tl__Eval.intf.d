lib/tl/eval.mli: Formula State Trace
