lib/tl/term.ml: Float Fmt State Value
