lib/tl/parser.ml: Fmt Formula List String Term
