lib/tl/eval.ml: Array Formula State Term Trace Value
