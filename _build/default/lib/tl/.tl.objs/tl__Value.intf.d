lib/tl/value.mli: Format
