lib/tl/formula.ml: Fmt Hashtbl List Term
