lib/tl/term.mli: Format State Value
