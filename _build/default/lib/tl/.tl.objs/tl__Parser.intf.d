lib/tl/parser.mli: Formula
