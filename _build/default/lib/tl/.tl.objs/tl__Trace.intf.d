lib/tl/trace.mli: State
