lib/tl/state.mli: Format Value
