lib/tl/formula.mli: Format Term
