lib/tl/value.ml: Float Fmt String
