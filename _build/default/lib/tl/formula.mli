(** Temporal-logic formulas over system state (Fig. 2.5 of the thesis).

    The operator set follows the thesis's KAOS-derived logic:

    - past: [Prev] (●P, true in previous state), [Once] (◆P, true in some
      previous state), [Hist] (■P, true in all previous states),
      [PrevFor (T, p)] (●ⁿ<T — P held for duration T up to and including
      the previous state), [OnceWithin (T, p)] (◆<T — P true at least once
      within duration T before the current state), and the edge operator
      [Rose p] (@P ≜ ●¬P ∧ P);
    - future: [Next] (○), [Eventually] (♦), [Always] (□);
    - connectives: [Not], [And], [Or], [Implies] (current-state →), [Iff];
      the thesis's entailment P ⇒ Q ≜ □(P → Q) is the derived
      {!val:entails}.

    Durations are in seconds; a trace's [dt] determines how many discrete
    states a duration spans. *)

type atom =
  | Bvar of string  (** boolean state variable used as a proposition *)
  | Eq of Term.t * Term.t
  | Ne of Term.t * Term.t
  | Lt of Term.t * Term.t
  | Le of Term.t * Term.t
  | Gt of Term.t * Term.t
  | Ge of Term.t * Term.t

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Prev of t
  | Once of t
  | Hist of t
  | PrevFor of float * t
  | OnceWithin of float * t
  | Rose of t
  | Next of t
  | Eventually of t
  | Always of t

(** {1 Smart constructors — the DSL used throughout goal definitions} *)

val tt : t
val ff : t
val bvar : string -> t
val eq : Term.t -> Term.t -> t
val ne : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t

val var_is : string -> string -> t
(** [var_is v s] — symbolic variable [v] currently equals symbol [s]. *)

val not_ : t -> t
(** Negation, simplifying double negation and constants. *)

val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val conj : t list -> t
val disj : t list -> t
val prev : t -> t
val once : t -> t
val hist : t -> t
val prev_for : float -> t -> t
val once_within : float -> t -> t
val rose : t -> t
val next : t -> t
val eventually : t -> t
val always : t -> t

val entails : t -> t -> t
(** The thesis's entailment P ⇒ Q, i.e. □(P → Q). *)

val initially : t -> t
(** [initially f] — [f] constrained to the initial state only (the thesis's
    [S₀ ⊨ f]). Encoded as [¬●true → f]: only the initial state lacks a
    predecessor. Use under a top-level □. *)

(** {1 Analysis} *)

val atom_vars : atom -> string list

val dedup : string list -> string list
(** Order-preserving deduplication (first occurrence wins). *)

val vars_list : t -> string list
(** All state variables, in occurrence order, with duplicates. *)

val vars : t -> string list
(** All state variables, deduplicated. *)

(** Temporal reference of a variable occurrence, used by the realizability
    analysis: does the formula constrain the variable's present, past or
    future value? *)
type time_ref = Past | Present | Future

val var_refs : t -> (string * time_ref) list
(** Each variable paired with every temporal context in which it occurs. *)

val has_future : t -> bool
(** True iff the formula contains a future operator (○, ♦, □). *)

val invariant_body : t -> t option
(** Strip a top-level □ (possibly introduced by {!entails}); [None] when the
    remaining body still contains future operators and thus cannot be
    monitored online. *)

(** {1 Transformation} *)

val rename : (string -> string) -> t -> t
(** Rename every state variable. *)

val subst : t -> t -> t -> t
(** [subst old_ replacement f] replaces each occurrence of subformula
    [old_] by [replacement] (used by elaboration tactics that substitute an
    equivalent variable). *)

val size : t -> int
(** Structural size, used as a complexity measure in benches and tests. *)

(** {1 Printing}

    The printed form round-trips through {!Parser.parse} (modulo float
    precision; see the parser's documentation). *)

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
