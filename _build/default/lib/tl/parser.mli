(** A parser for the thesis's textual goal syntax, so formal definitions can
    be written (and round-tripped) the way the thesis prints them:

    {v
    ObjectInPath => StopVehicle
    prev(dc) & prev(dmc = 'CLOSE') -> dc
    holds[<0.3](dmc = 'CLOSE' & !db) => dc
    always(va.value <= 2 | !IsSubsystem)
    v}

    Identifiers may contain dots (the thesis's [va.value]); a bare
    identifier in formula position is a boolean state variable. Unicode
    operator aliases are accepted (⇒ → ⇔ ∧ ∨ ¬ ≤ ≥ ≠ ● ◆ ■ □ ♦ ○ @), so
    {!Formula.pp}'s output parses back. The round trip is exact except for
    float constants beyond 6 significant digits (the [%g] printer). *)

exception Parse_error of string

val parse : string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Formula.t option
