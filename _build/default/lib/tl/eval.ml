(** Reference (non-incremental) semantics of formulas over finite traces.

    This is the specification against which {!Rtmon.Incremental} is
    property-tested. Future operators use finite-trace semantics: [Always]
    quantifies over the remaining suffix, [Eventually] requires a witness
    within the trace, [Next] is false in the last state. *)

let eval_atom (s : State.t) = function
  | Formula.Bvar v -> State.bool s v
  | Formula.Eq (a, b) -> Value.equal (Term.eval s a) (Term.eval s b)
  | Formula.Ne (a, b) -> not (Value.equal (Term.eval s a) (Term.eval s b))
  | Formula.Lt (a, b) -> Value.compare_num (Term.eval s a) (Term.eval s b) < 0
  | Formula.Le (a, b) -> Value.compare_num (Term.eval s a) (Term.eval s b) <= 0
  | Formula.Gt (a, b) -> Value.compare_num (Term.eval s a) (Term.eval s b) > 0
  | Formula.Ge (a, b) -> Value.compare_num (Term.eval s a) (Term.eval s b) >= 0

(** [eval trace i f] — truth of [f] at state index [i] of [trace]. *)
let rec eval (tr : Trace.t) i (f : Formula.t) =
  let n = Trace.length tr in
  if i < 0 || i >= n then invalid_arg "Eval.eval: index out of range";
  match f with
  | True -> true
  | False -> false
  | Atom a -> eval_atom (Trace.get tr i) a
  | Not g -> not (eval tr i g)
  | And (a, b) -> eval tr i a && eval tr i b
  | Or (a, b) -> eval tr i a || eval tr i b
  | Implies (a, b) -> (not (eval tr i a)) || eval tr i b
  | Iff (a, b) -> eval tr i a = eval tr i b
  | Prev g -> i > 0 && eval tr (i - 1) g
  | Once g ->
      let rec go j = j >= 0 && (eval tr j g || go (j - 1)) in
      go (i - 1)
  | Hist g ->
      let rec go j = j < 0 || (eval tr j g && go (j - 1)) in
      go (i - 1)
  | PrevFor (d, g) ->
      (* g held in every one of the k states preceding i; false when fewer
         than k states of history exist. *)
      let k = Trace.duration_to_states ~dt:(Trace.dt tr) d in
      i >= k
      &&
      let rec go j = j >= i || (eval tr j g && go (j + 1)) in
      go (i - k)
  | OnceWithin (d, g) ->
      let k = Trace.duration_to_states ~dt:(Trace.dt tr) d in
      let lo = max 0 (i - k) in
      let rec go j = j < i && (eval tr j g || go (j + 1)) in
      i > 0 && go lo
  | Rose g ->
      (* @g = ●¬g ∧ g: false in the initial state, where ●¬g has no witness. *)
      eval tr i g && i > 0 && not (eval tr (i - 1) g)
  | Next g -> i + 1 < n && eval tr (i + 1) g
  | Eventually g ->
      let rec go j = j < n && (eval tr j g || go (j + 1)) in
      go i
  | Always g ->
      let rec go j = j >= n || (eval tr j g && go (j + 1)) in
      go i

(** [holds trace f] — [f] holds in the initial state (the standard notion of
    a trace satisfying a goal whose outermost operator is □). *)
let holds tr f = Trace.length tr > 0 && eval tr 0 f

(** [series trace f] — truth value of [f] at every state. For a goal
    [P ⇒ Q] (i.e. □(P → Q)), use [series trace body] with the
    {!Formula.invariant_body} to obtain the per-state satisfaction used for
    violation reporting. *)
let series tr f = Array.init (Trace.length tr) (fun i -> eval tr i f)
