lib/core/experiments.ml: Compose Elevator Fmt Format Formula Hashtbl Hazard Icpa Kaos List Mc Scenarios String Tl Vehicle
