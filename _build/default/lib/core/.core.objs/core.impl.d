lib/core/core.ml: Compose Elevator Experiments Hazard Icpa Kaos Mc Rtmon Scenarios Sim Tl Vehicle
