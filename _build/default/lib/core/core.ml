(** Composite-safety: the public façade.

    This library reproduces Black, {i System Safety as an Emergent Property
    in Composite Systems} (CMU, 2009). The thesis's three contributions map
    to:

    - {!Compose} — the formal definition of emergent and composable goal
      behaviours (Ch. 3);
    - {!Icpa} — Indirect Control Path Analysis (Ch. 4);
    - {!Rtmon} together with {!Scenarios} — hierarchical run-time safety
      monitoring and its evaluation on a semi-autonomous vehicle (Ch. 5).

    Substrates: {!Tl} (temporal logic), {!Kaos} (goal-oriented requirements
    engineering), {!Mc} (explicit-state model checking), {!Sim} (synchronous
    discrete-time simulation). Worked systems: {!Elevator} (the Ch. 4
    running example) and {!Vehicle} (the Ch. 5 evaluation system). *)

module Tl = Tl
module Kaos = Kaos
module Compose = Compose
module Mc = Mc
module Sim = Sim
module Rtmon = Rtmon
module Icpa = Icpa
module Elevator = Elevator
module Vehicle = Vehicle
module Scenarios = Scenarios
module Hazard = Hazard

(** The experiment registry regenerating every thesis table and figure. *)
module Experiments = Experiments

(** {1 Quickstart helpers} *)

(** [monitor_goal goal trace] — run the goal's monitor over a trace and
    return its violation intervals. *)
let monitor_goal (goal : Kaos.Goal.t) (trace : Tl.Trace.t) =
  let ok = Rtmon.Incremental.run_trace goal.Kaos.Goal.formal trace in
  Rtmon.Violation.of_series ~dt:(Tl.Trace.dt trace) ok

(** [decomposition_verdict ~parent subgoals] — classify a decomposition per
    Ch. 3 over all bounded boolean traces. *)
let decomposition_verdict ~parent subgoals =
  (Compose.Composability.analyze ~parent subgoals).Compose.Composability.verdict
