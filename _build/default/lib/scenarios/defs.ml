(** The ten evaluation scenarios of §5.4: "representative of real driver
    behaviors, both those that the driver is expected to do regularly … and
    those that the driver might do in error". Each was scheduled for a
    simulation time of 20 s; runs end early on collision. *)

open Tl
open Vehicle.Signals

type t = {
  number : int;
  title : string;
  description : string;
  objects : Vehicle.Plant.objects;
  events : Sim.Stimulus.event list;
  duration : float;
}

let press_pulse t v = [ Sim.Stimulus.press t v; Sim.Stimulus.release (t +. 0.2) v ]
let enable t f = Sim.Stimulus.press t (enabled f)
let engage t f = press_pulse t (engage_request f)
let throttle t x = Sim.Stimulus.set t throttle_pedal (Value.Float x)
let brake t x = Sim.Stimulus.set t brake_pedal (Value.Float x)
let reverse t = Sim.Stimulus.set t gear (Value.Sym "R")

let stopped_ahead gap = Vehicle.Plant.stationary_ahead gap

let slow_ahead gap speed =
  { Vehicle.Plant.lead_start = gap; lead_profile = (fun _ -> speed); rear_start = -1000. }

let stopped_behind gap =
  { Vehicle.Plant.lead_start = 1000.; lead_profile = (fun _ -> 0.); rear_start = -.gap }

let scenario_1 =
  {
    number = 1;
    title = "CA enabled, ACC enabled, stopped vehicle in path";
    description =
      "The host vehicle travels forward from a stop, 20 m behind a stopped \
       vehicle. ACC is enabled but not engaged; CA is enabled and expected \
       to perform a hard braking action before a collision occurs.";
    objects = stopped_ahead 20.;
    events =
      [ enable 0. "CA"; enable 0. "ACC"; throttle 0.5 0.3; throttle 4.0 0.0 ];
    duration = 20.;
  }

let scenario_2 =
  {
    number = 2;
    title = "CA engaged, ACC enabled, PA enabled, stopped vehicle in path";
    description =
      "As scenario 1, but the driver engages PA just after CA begins its \
       hard braking action. CA is expected to remain in control of vehicle \
       acceleration and stop the host vehicle; instead the reversed steering \
       arbitration routes PA's request into the acceleration command.";
    objects = stopped_ahead 20.;
    events =
      [ enable 0. "CA"; enable 0. "ACC"; enable 0. "PA"; throttle 0.5 0.3; throttle 4.0 0.0 ]
      (* The PA engage instant is calibrated to land just after CA's first
         hard-brake engagement, while the hard brake is in force. *)
      @ engage 7.78 "PA";
    duration = 20.;
  }

let scenario_3 =
  {
    number = 3;
    title = "CA engaged, ACC enabled, throttle pedal applied, stopped vehicle in path";
    description =
      "The driver holds the throttle against CA's braking. CA engages but \
       its braking is intermittent and the host vehicle hits the parked \
       vehicle in its path. ACC, merely enabled, sends acceleration requests \
       controlling toward an uninitialized set speed of 0 m/s.";
    objects = stopped_ahead 20.;
    events = [ enable 0. "CA"; enable 0. "ACC"; throttle 0.5 0.3 ];
    duration = 20.;
  }

let scenario_4 =
  {
    number = 4;
    title = "Throttle pedal applied, ACC engaged, CA enabled, slow vehicle in path";
    description =
      "ACC is engaged while the driver applies the throttle. ACC briefly \
       takes control of vehicle acceleration, loses it until the driver \
       releases the pedal, then decelerates and accelerates the vehicle in \
       a hunting cycle (integrator windup).";
    objects = slow_ahead 40. 2.0;
    events =
      [ enable 0. "CA"; enable 0. "ACC"; throttle 0.5 0.3 ]
      @ engage 3.0 "ACC"
      @ [ throttle 12.0 0.0 ];
    duration = 20.;
  }

let scenario_5 =
  {
    number = 5;
    title =
      "Throttle pedal applied, ACC engaged, CA enabled, brake pedal applied, \
       slow vehicle in path";
    description =
      "As scenario 4; after the driver releases the throttle, ACC gains \
       control 0.101 s later. A later brake application overrides ACC again.";
    objects = slow_ahead 40. 2.0;
    events =
      [ enable 0. "CA"; enable 0. "ACC"; throttle 0.5 0.3 ]
      @ engage 3.0 "ACC"
      @ [ throttle 8.0 0.0; brake 10.0 0.3; brake 11.0 0.0 ];
    duration = 20.;
  }

let scenario_6 =
  {
    number = 6;
    title =
      "Throttle pedal applied, ACC engaged, CA enabled, LCA engaged, slow \
       vehicle in path";
    description =
      "LCA is engaged and gains control of acceleration and steering one \
       state later; its steering request leaves the steering command \
       unchanged. Gap control behind the slow vehicle drives host speed \
       negative while LCA and ACC are still active and selected.";
    objects = slow_ahead 25. 0.4;
    events =
      [ enable 0. "CA"; enable 0. "ACC"; enable 0. "LCA"; throttle 0.5 0.3 ]
      @ engage 3.0 "ACC"
      @ [ throttle 4.0 0.0 ]
      @ engage 5.0 "LCA";
    duration = 20.;
  }

let scenario_7 =
  {
    number = 7;
    title = "In reverse, RCA enabled, stopped vehicle in path";
    description =
      "The host vehicle reverses toward a stopped vehicle behind it. RCA is \
       enabled but never engages to stop the host vehicle.";
    objects = stopped_behind 15.;
    events = [ reverse 0.; enable 0. "RCA"; throttle 1.0 0.3; throttle 6.0 0.0 ];
    duration = 20.;
  }

let scenario_8 =
  {
    number = 8;
    title = "In reverse, ACC engaged, stopped vehicle in path";
    description =
      "The driver reverses, releases the pedals, and engages ACC at 2.0 s. \
       ACC activates despite the reverse gear and is selected as the source \
       of the acceleration command at 2.05 s.";
    objects = stopped_behind 25.;
    events =
      [ reverse 0.; enable 0. "ACC"; throttle 0.5 0.3; throttle 1.5 0.0 ]
      @ engage 2.0 "ACC";
    duration = 20.;
  }

let scenario_9 =
  {
    number = 9;
    title = "Stopped, PA engaged, stopped vehicle in path";
    description =
      "From a standstill the driver engages PA. PA is selected as the source \
       of the acceleration command, but the command does not equal PA's \
       acceleration request.";
    objects = stopped_ahead 10.;
    events = [ enable 0. "PA" ] @ engage 2.0 "PA";
    duration = 20.;
  }

let scenario_10 =
  {
    number = 10;
    title = "Stopped, ACC engaged, stopped vehicle in path";
    description =
      "The driver attempts to engage ACC from a standstill at 4.0 s. ACC does not \
       become active, nor is it selected to control steering. The vehicle, \
       however, does begin to accelerate.";
    objects = stopped_ahead 15.;
    events = [ enable 0. "ACC" ] @ engage 4.0 "ACC";
    duration = 20.;
  }

let all =
  [
    scenario_1; scenario_2; scenario_3; scenario_4; scenario_5; scenario_6;
    scenario_7; scenario_8; scenario_9; scenario_10;
  ]

let get n = List.find (fun s -> s.number = n) all
