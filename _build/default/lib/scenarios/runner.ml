(** Scenario execution: simulate, monitor all goals and subgoals
    (Table 5.3), and classify the violations (§5.1.2). *)

open Tl

type outcome = {
  scenario : Defs.t;
  trace : Trace.t;
  results : Vehicle.Monitors.result list;
  reports : (int * Rtmon.Report.t) list;  (** per parent goal 1–9 *)
  collided : bool;
  end_time : float;
}

let run ?(defects = Vehicle.Defects.as_evaluated) ?timing ?dynamics ?window (s : Defs.t)
    : outcome =
  let trace =
    Vehicle.System.run ~defects ?timing ?dynamics ~duration:s.Defs.duration
      ~objects:s.Defs.objects ~events:s.Defs.events ()
  in
  let results = Vehicle.Monitors.run trace in
  let reports =
    List.map
      (fun n -> (n, Vehicle.Monitors.classify ?window results n))
      (List.init 9 (fun i -> i + 1))
  in
  let last = Trace.get trace (Trace.length trace - 1) in
  {
    scenario = s;
    trace;
    results;
    reports;
    collided = State.bool last Vehicle.Signals.collision;
    end_time = Trace.time trace (Trace.length trace - 1);
  }

let run_all ?defects () = List.map (run ?defects) Defs.all

(** Violating monitor entries only, for the Appendix D tables. *)
let violations (o : outcome) =
  List.filter (fun r -> r.Vehicle.Monitors.violations <> []) o.results

(** Aggregate composability estimate over a set of outcomes (§3.4). *)
let estimate (outcomes : outcome list) =
  Compose.Runtime.of_reports
    (List.concat_map (fun o -> List.map snd o.reports) outcomes)
