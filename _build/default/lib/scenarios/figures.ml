(** Regeneration of the evaluation figures (Figs. 5.2–5.15): each figure is
    a set of signal series extracted from a scenario trace over the window
    where the defect manifests, plus the key events the thesis's caption
    calls out. *)

open Tl
open Vehicle.Signals

type series = { label : string; points : (float * float) list }

type t = {
  id : string;
  caption : string;
  scenario : int;
  window : Runner.outcome -> float * float;
  signals : (string * string) list;  (** (variable, label) — bools as 0/1 *)
  events : Runner.outcome -> (float * string) list;
}

let value_as_float s v =
  match State.get s v with
  | Value.Bool b -> if b then 1. else 0.
  | x -> Value.to_float x

(** Extract a signal over a window, downsampled to at most [max_points]. *)
let extract ?(max_points = 60) (trace : Trace.t) (lo, hi) var label =
  let n = Trace.length trace in
  let dt = Trace.dt trace in
  let i0 = max 0 (int_of_float (lo /. dt)) in
  let i1 = min (n - 1) (int_of_float (hi /. dt)) in
  let span = max 1 (i1 - i0) in
  let stride = max 1 (span / max_points) in
  let rec go i acc =
    if i > i1 then List.rev acc
    else
      go (i + stride) ((Trace.time trace i, value_as_float (Trace.get trace i) var) :: acc)
  in
  { label; points = go i0 [] }

(** Times at which a boolean signal changes value. *)
let transitions (trace : Trace.t) var =
  let out = ref [] in
  let prev = ref None in
  Trace.iteri
    (fun i s ->
      let b = State.bool s var in
      (match !prev with
      | Some p when p <> b ->
          out := (Trace.time trace i, Fmt.str "%s -> %b" var b) :: !out
      | None -> ()
      | Some _ -> ());
      prev := Some b)
    trace;
  List.rev !out

let end_window ~before (o : Runner.outcome) =
  (Float.max 0. (o.Runner.end_time -. before), o.Runner.end_time)

let fixed lo hi _ = (lo, hi)

let all : t list =
  [
    {
      id = "fig_5_2";
      caption =
        "Scenario 1: CA begins a braking action, but cancels it briefly \
         before beginning it again.";
      scenario = 1;
      window = end_window ~before:6.0;
      signals = [ (accel_req "CA", "CA acceleration request (m/s^2)") ];
      events = (fun o -> transitions o.Runner.trace (active "CA"));
    };
    {
      id = "fig_5_3";
      caption = "Scenario 1: PA requests acceleration without being enabled.";
      scenario = 1;
      window = fixed 0. 12.;
      signals = [ (accel_req "PA", "PA acceleration request (m/s^2)") ];
      events = (fun _ -> []);
    };
    {
      id = "fig_5_4";
      caption =
        "Scenario 2: CA is not the source of the acceleration command when \
         PA is enabled, even though CA is selected to be in control of \
         acceleration.";
      scenario = 2;
      window = fixed 7.4 8.6;
      signals =
        [
          (accel_cmd, "Arbiter acceleration command (m/s^2)");
          (accel_req "CA", "CA acceleration request (m/s^2)");
          (selected "CA", "CA selected (0/1)");
        ];
      events = (fun o -> transitions o.Runner.trace (active "PA"));
    };
    {
      id = "fig_5_5";
      caption =
        "Scenario 3: CA engages to stop the host vehicle, even though the \
         throttle pedal is applied. The CA braking action is intermittent, \
         however, and fails to stop the host vehicle before 'hitting' the \
         parked vehicle in its path.";
      scenario = 3;
      window = end_window ~before:6.0;
      signals =
        [
          (host_speed, "Host vehicle speed (m/s)");
          (accel_req "CA", "CA acceleration request (m/s^2)");
        ];
      events =
        (fun o ->
          transitions o.Runner.trace (active "CA")
          @ if o.Runner.collided then [ (o.Runner.end_time, "collision") ] else []);
    };
    {
      id = "fig_5_6";
      caption =
        "Scenario 3: ACC sends acceleration requests to control the vehicle \
         to a set speed of 0 m/s, even though ACC is not engaged.";
      scenario = 3;
      window = fixed 0. 10.;
      signals =
        [
          (accel_req "ACC", "ACC acceleration request (m/s^2)");
          (host_speed, "Host vehicle speed (m/s)");
        ];
      events = (fun _ -> []);
    };
    {
      id = "fig_5_7";
      caption = "Scenario 4: ACC acceleration request and jerk profile.";
      scenario = 4;
      window = fixed 12.0 16.0;
      signals =
        [
          (accel_req "ACC", "ACC acceleration request (m/s^2)");
          (accel_req_jerk "ACC", "ACC request jerk (m/s^3)");
        ];
      events = (fun _ -> []);
    };
    {
      id = "fig_5_8";
      caption =
        "Scenario 4: ACC is engaged while the driver is applying the \
         throttle pedal. ACC briefly takes control of vehicle acceleration, \
         but loses control again until the driver releases the throttle \
         pedal. ACC decelerates, then accelerates the vehicle before the \
         simulation terminates.";
      scenario = 4;
      window = fixed 2.5 20.0;
      signals =
        [
          (host_speed, "Host vehicle speed (m/s)");
          (selected "ACC", "ACC selected (0/1)");
          (throttle_pedal, "Throttle pedal");
        ];
      events = (fun o -> transitions o.Runner.trace (selected "ACC"));
    };
    {
      id = "fig_5_9";
      caption =
        "Scenario 5: The driver releases the throttle pedal. Control of \
         acceleration is gained by ACC 0.101 seconds later.";
      scenario = 5;
      window = fixed 7.8 8.6;
      signals =
        [
          (throttle_pedal, "Throttle pedal");
          (selected "ACC", "ACC selected (0/1)");
        ];
      events = (fun o -> transitions o.Runner.trace (selected "ACC"));
    };
    {
      id = "fig_5_10";
      caption =
        "Scenario 6: LCA is enabled at time 5.0 s, and gains control of \
         acceleration and steering at time 5.001 s. At time 5.051, LCA \
         requests steering, but the steering command remains unchanged.";
      scenario = 6;
      window = fixed 4.9 8.0;
      signals =
        [
          (steer_req "LCA", "LCA steering request (deg)");
          (steer_cmd, "Steering command (deg)");
          (selected "LCA", "LCA selected (0/1)");
        ];
      events =
        (fun o ->
          transitions o.Runner.trace (active "LCA")
          @ transitions o.Runner.trace (req_steer "LCA"));
    };
    {
      id = "fig_5_11";
      caption =
        "Scenario 6: Vehicle speed becomes negative, LCA and ACC are still \
         active and selected to control vehicle acceleration.";
      scenario = 6;
      window = fixed 8.0 14.0;
      signals =
        [
          (host_speed, "Host vehicle speed (m/s)");
          (selected "LCA", "LCA selected (0/1)");
          (selected "ACC", "ACC selected (0/1)");
        ];
      events =
        (fun o ->
          List.filter_map
            (fun (t, v) -> if v < -0.01 then Some (t, "speed negative") else None)
            (Trace.signal o.Runner.trace host_speed)
          |> function
          | [] -> []
          | (t, e) :: _ -> [ (t, e) ]);
    };
    {
      id = "fig_5_12";
      caption =
        "Scenario 7: RCA is enabled at the simulation start, but never \
         engages to stop the host vehicle before reaching the stopped \
         vehicle behind it.";
      scenario = 7;
      window = (fun o -> (0., o.Runner.end_time));
      signals =
        [
          (host_speed, "Host vehicle speed (m/s)");
          (active "RCA", "RCA active (0/1)");
          (rear_range, "Range to rear object (m)");
        ];
      events =
        (fun o ->
          if o.Runner.collided then [ (o.Runner.end_time, "collision (rear)") ] else []);
    };
    {
      id = "fig_5_13";
      caption =
        "Scenario 8: After ACC is engaged at time 2.0 s, it is selected as \
         the source of the acceleration command at time 2.05 s.";
      scenario = 8;
      window = fixed 1.8 3.0;
      signals =
        [
          (active "ACC", "ACC active (0/1)");
          (selected "ACC", "ACC selected (0/1)");
          (host_speed, "Host vehicle speed (m/s)");
        ];
      events =
        (fun o ->
          transitions o.Runner.trace (active "ACC")
          @ transitions o.Runner.trace (selected "ACC"));
    };
    {
      id = "fig_5_14";
      caption =
        "Scenario 9: When PA is engaged, it is selected as the source of \
         the acceleration command, but the acceleration command is not \
         equal to the PA acceleration request.";
      scenario = 9;
      window = fixed 1.8 4.0;
      signals =
        [
          (accel_req "PA", "PA acceleration request (m/s^2)");
          (accel_cmd, "Arbiter acceleration command (m/s^2)");
          (selected "PA", "PA selected (0/1)");
        ];
      events = (fun o -> transitions o.Runner.trace (selected "PA"));
    };
    {
      id = "fig_5_15";
      caption =
        "Scenario 10: When the driver attempts to engage ACC at time 4.0 s, \
         ACC does not become active, nor is it selected by the Arbiter to \
         control steering. The vehicle, however, does begin to accelerate.";
      scenario = 10;
      window = fixed 3.5 8.0;
      signals =
        [
          (host_speed, "Host vehicle speed (m/s)");
          (active "ACC", "ACC active (0/1)");
          (host_accel, "Host acceleration (m/s^2)");
        ];
      events =
        (fun o ->
          List.filter_map
            (fun (t, v) -> if v > 0.01 then Some (t, "vehicle moving") else None)
            (Trace.signal o.Runner.trace host_speed)
          |> function
          | [] -> []
          | (t, e) :: _ -> [ (t, e) ]);
    };
  ]

let get id = List.find (fun f -> f.id = id) all

(** Render one figure from a scenario outcome as text series. *)
let render ppf (fig : t) (o : Runner.outcome) =
  let window = fig.window o in
  Fmt.pf ppf "@[<v>%s — %s@," (String.uppercase_ascii fig.id) fig.caption;
  Fmt.pf ppf "(scenario %d, window %.2f–%.2f s)@," fig.scenario (fst window) (snd window);
  List.iter
    (fun (var, label) ->
      let s = extract o.Runner.trace window var label in
      Fmt.pf ppf "@,%s:@," s.label;
      Fmt.pf ppf "  %a@,"
        (Fmt.list ~sep:(Fmt.any "@,  ") (fun ppf (t, v) -> Fmt.pf ppf "%8.3f  %10.4f" t v))
        s.points)
    fig.signals;
  (match fig.events o with
  | [] -> ()
  | evs ->
      Fmt.pf ppf "@,Key events:@,";
      List.iter (fun (t, e) -> Fmt.pf ppf "  t=%.3f  %s@," t e) evs);
  Fmt.pf ppf "@]"
