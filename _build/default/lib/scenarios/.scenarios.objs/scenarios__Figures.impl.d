lib/scenarios/figures.ml: Float Fmt List Runner State String Tl Trace Value Vehicle
