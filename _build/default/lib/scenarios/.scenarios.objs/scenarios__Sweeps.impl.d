lib/scenarios/sweeps.ml: Defs Fmt List Rtmon Runner String Vehicle
