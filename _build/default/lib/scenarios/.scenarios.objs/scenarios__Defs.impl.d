lib/scenarios/defs.ml: List Sim Tl Value Vehicle
