lib/scenarios/export.ml: Buffer Defs Figures Fmt Fun Kaos List Results Rtmon Runner State String Tl Trace Value Vehicle
