lib/scenarios/results.ml: Defs Fmt Kaos List Rtmon Runner String Vehicle
