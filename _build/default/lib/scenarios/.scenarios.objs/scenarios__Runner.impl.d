lib/scenarios/runner.ml: Compose Defs List Rtmon State Tl Trace Vehicle
