(** Text rendering of ICPA tables in the thesis's layout (Fig. 4.7,
    Tables 4.1–4.3). *)

val pp_relationship : Format.formatter -> Table.relationship -> unit
val pp_row : Format.formatter -> Table.row -> unit
val pp_elaboration : Format.formatter -> Table.elaboration_entry -> unit
val pp_subgoal : Format.formatter -> Table.subgoal -> unit

val pp : Format.formatter -> Table.t -> unit
(** The full table: system safety goal, indirect control path analysis,
    goal coverage strategy, goal elaboration, subsystem safety goals. *)

val to_string : Table.t -> string
