(** Coordination subgoal patterns for shared responsibility (§4.5.1):
    interlocks and lockouts, with and without actuation/communication
    delays (Eqs. 4.12–4.30). All results are formulas over boolean state
    variables, suitable for {!Mc.Checker.check_composition}. *)

open Tl

val shared_disjunction : a:string -> b:string -> Formula.t * Formula.t
(** Basic shared-responsibility subgoals for a parent [□(A ∨ B)]
    (Eqs. 4.12–4.13): each agent maintains its disjunct unless it observed
    the other's. Insufficient alone — see the interlock. *)

val interlock :
  a:string -> b:string -> lock_a:string -> lock_b:string -> Formula.t * Formula.t
(** Interlock subgoals (Eqs. 4.14–4.15): before negating its disjunct, an
    agent sets its lock variable and checks the other agent's lock — the
    thesis's mutex/semaphore analogy. *)

val actuation_relationships :
  condition:string ->
  set:string ->
  unset:string ->
  max_delay:float ->
  min_delay:float ->
  Formula.t list
(** The actuation-delay model of Eqs. 4.16–4.20 for a controlled condition
    driven by set/unset triggers. *)

val lockout :
  hazard:string ->
  condition:string ->
  enable_a:string ->
  enable_b:string ->
  window:float ->
  Formula.t list * Formula.t * Formula.t
(** Lockout subgoals (Eqs. 4.24–4.30): a lockout agent prevents another
    from violating [◆<T D ⇒ ¬C] by gating C on both agents' enables.
    Returns (shared indirect control relationships, subgoal for agA,
    subgoal for agB). *)
