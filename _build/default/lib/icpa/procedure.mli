(** The six-step ICPA procedure (Fig. 1.2), mechanized.

    1. define the system safety goal in temporal logic ({!Kaos.Goal});
    2. identify indirect control sources
       ({!Control_graph.indirect_control_path});
    3. define relationships between sources ({!Table.relationship});
    4. choose a goal coverage strategy ({!Coverage});
    5. apply tactics for goal elaboration ({!Kaos.Tactics});
    6. record the resulting subgoals ({!Table}).

    This module adds the cross-step validations: every goal variable's
    nearest indirect control level is analyzed (the minimum required by
    §4.4.4), and every responsible agent of the coverage strategy received
    at least one subgoal. *)

type issue =
  | Unanalyzed_variable of string
      (** a goal variable with no coverage in the ICPA table *)
  | Unanalyzed_source of { variable : string; source : string }
      (** a nearest-level indirect control source missing from the
          variable's rows *)
  | Unassigned_agent of string  (** a responsible agent with no subgoal *)
  | Future_reference of string
      (** a subgoal that is not monitorable/realizable as stated *)

val pp_issue : Format.formatter -> issue -> unit

val audit : Control_graph.t -> Table.t -> issue list
(** Check a completed ICPA table against its control graph. A goal variable
    counts as analyzed when it has its own row, or when a combined row
    already lists every one of its nearest indirect control sources; a
    variable analyzed across several rows (branched paths) unions their
    subsystems. *)
