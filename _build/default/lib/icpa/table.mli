(** The ICPA table (Fig. 4.7): the documented product of an analysis — the
    parent goal, the indirect control paths and numbered relationships, the
    goal coverage strategy, the elaboration record (tactics + critical
    assumptions), and the resulting subsystem subgoals. *)

open Tl

type relationship = {
  number : int;
  formal : Formula.t;
  comment : string;  (** the thesis's "%"-prefixed explanation lines *)
}

type row = {
  variable : string;  (** a state variable of the parent goal *)
  subsystems : string list;  (** indirect control path entries for this level *)
  subsystem_variables : (string * string) list;  (** (variable, description) *)
  relationships : relationship list;
}

type elaboration_entry = {
  derived : Formula.t;  (** intermediate or final formula derived *)
  uses : int list;  (** the relationship numbers relied upon *)
  tactic : string;  (** realizability tactic applied, or "" for a premise *)
}

type subgoal = {
  subsystem : string;
  controls : string list;
  observes : string list;
  goal : Kaos.Goal.t;
}

type t = {
  goal : Kaos.Goal.t;
  rows : row list;
  strategy : Coverage.t;
  elaboration : elaboration_entry list;
  subgoals : subgoal list;
}

val relationship : number:int -> comment:string -> Formula.t -> relationship

val make :
  goal:Kaos.Goal.t ->
  rows:row list ->
  strategy:Coverage.t ->
  elaboration:elaboration_entry list ->
  subgoals:subgoal list ->
  t
(** @raise Invalid_argument when the elaboration references an undefined
    relationship number. *)

val critical_assumptions : t -> relationship list
(** All numbered relationships in numeric order — the {e critical
    assumptions} of the decomposition (§4.3). *)

val subgoal_formulas : t -> Formula.t list

val verify : ?max_states:int -> t -> Mc.Kripke.t -> Mc.Checker.outcome
(** Discharge the decomposition claim (§4.4.3) by model checking: under the
    critical assumptions, the subgoals entail the parent goal on every
    reachable trace. *)
