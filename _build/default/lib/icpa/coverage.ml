(** Goal coverage strategies (§4.5): the plan for allocating subgoals so that
    a high-level goal is met, defined by goal assignment and goal scope. *)

(** Goal assignment (§4.5.1): which indirect control sources receive
    subgoals, and how those subgoals relate. *)
type assignment =
  | Single_responsibility of string
      (** one agent meets the goal (possibly a dedicated safety monitor) *)
  | Redundant_responsibility of { primary : string list; secondary : string list }
      (** if at least one group satisfies its subgoals, the parent holds *)
  | Shared_responsibility of string list
      (** coordination: all named agents' subgoals are needed jointly *)

let assignment_to_string = function
  | Single_responsibility a -> Fmt.str "Single Responsibility (%s)" a
  | Redundant_responsibility { primary; secondary } ->
      Fmt.str "Redundant Responsibility (primary: %s; secondary: %s)"
        (String.concat ", " primary) (String.concat ", " secondary)
  | Shared_responsibility agents ->
      Fmt.str "Shared Responsibility (%s)" (String.concat " & " agents)

(** Goal scope (§4.5.2): how closely the subgoals match the parent goal. *)
type scope =
  | Nonrestrictive
  | Restrictive of string  (** why behaviour is restricted beyond the parent *)

let scope_to_string = function
  | Nonrestrictive -> "Nonrestrictive"
  | Restrictive reason -> Fmt.str "Restrictive (%s)" reason

type t = { assignment : assignment; scope : scope }

let make ~assignment ~scope = { assignment; scope }

(** Agents that carry subgoals under this strategy. *)
let responsible t =
  match t.assignment with
  | Single_responsibility a -> [ a ]
  | Redundant_responsibility { primary; secondary } -> primary @ secondary
  | Shared_responsibility agents -> agents

let is_restrictive t = match t.scope with Restrictive _ -> true | Nonrestrictive -> false

let pp ppf t =
  Fmt.pf ppf "@[<v>Goal Assignment: %s@,Goal Scope: %s@]"
    (assignment_to_string t.assignment)
    (scope_to_string t.scope)
