lib/icpa/table.ml: Coverage Fmt Formula Int Kaos List Mc Tl
