lib/icpa/coverage.ml: Fmt String
