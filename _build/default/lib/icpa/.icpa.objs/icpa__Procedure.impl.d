lib/icpa/procedure.ml: Control_graph Coverage Fmt Kaos List Table Tl
