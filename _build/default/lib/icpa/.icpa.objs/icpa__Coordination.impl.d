lib/icpa/coordination.ml: Formula Tl
