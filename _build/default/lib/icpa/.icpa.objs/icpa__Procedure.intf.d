lib/icpa/procedure.mli: Control_graph Format Table
