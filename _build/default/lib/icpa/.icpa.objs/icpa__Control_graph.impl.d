lib/icpa/control_graph.ml: Fmt List String
