lib/icpa/coverage.mli: Format
