lib/icpa/render.mli: Format Table
