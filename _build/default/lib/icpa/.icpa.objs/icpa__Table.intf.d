lib/icpa/table.mli: Coverage Formula Kaos Mc Tl
