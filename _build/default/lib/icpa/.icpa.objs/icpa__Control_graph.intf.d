lib/icpa/control_graph.mli: Format
