lib/icpa/render.ml: Coverage Fmt Kaos List String Table Tl
