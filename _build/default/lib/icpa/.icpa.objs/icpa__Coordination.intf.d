lib/icpa/coordination.mli: Formula Tl
