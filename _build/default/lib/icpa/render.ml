(** Text rendering of ICPA tables in the thesis's layout (Fig. 4.7,
    Tables 4.1–4.3). *)

let hr ppf () = Fmt.pf ppf "%s@," (String.make 78 '-')

let pp_relationship ppf (r : Table.relationship) =
  Fmt.pf ppf "@[<v2>%02d  %a@,%% %s@]" r.number Tl.Formula.pp r.formal r.comment

let pp_row ppf (row : Table.row) =
  Fmt.pf ppf "@[<v>Variable: %s@,Indirect control path: %s@," row.Table.variable
    (String.concat ", " row.Table.subsystems);
  if row.Table.subsystem_variables <> [] then
    Fmt.pf ppf "Subsystem variables:@,  %a@,"
      (Fmt.list ~sep:(Fmt.any "@,  ") (fun ppf (v, d) -> Fmt.pf ppf "%s: %s" v d))
      row.Table.subsystem_variables;
  Fmt.pf ppf "Indirect control relationships:@,  %a@]"
    (Fmt.list ~sep:(Fmt.any "@,  ") pp_relationship)
    row.Table.relationships

let pp_elaboration ppf (e : Table.elaboration_entry) =
  Fmt.pf ppf "%a%a%s" Tl.Formula.pp e.Table.derived
    (fun ppf -> function
      | [] -> ()
      | uses ->
          Fmt.pf ppf "   [uses %s]"
            (String.concat ", " (List.map (Fmt.str "%02d") uses)))
    e.Table.uses
    (if e.Table.tactic = "" then "" else "  — " ^ e.Table.tactic)

let pp_subgoal ppf (s : Table.subgoal) =
  Fmt.pf ppf "@[<v>Subsystem: %s@,Controls: %s@,Observes: %s@,%a@]" s.Table.subsystem
    (String.concat ", " s.Table.controls)
    (String.concat ", " s.Table.observes)
    Kaos.Goal.pp s.Table.goal

let pp ppf (t : Table.t) =
  Fmt.pf ppf "@[<v>%aSystem Safety Goal@,%a@,%a" hr () Kaos.Goal.pp t.Table.goal hr ();
  Fmt.pf ppf "Indirect Control Path Analysis@,%a@,%a"
    (Fmt.list ~sep:(Fmt.any "@,@,") pp_row)
    t.Table.rows hr ();
  Fmt.pf ppf "Goal Coverage Strategy@,%a@,%a" Coverage.pp t.Table.strategy hr ();
  Fmt.pf ppf "Goal Elaboration@,%a@,%a"
    (Fmt.list ~sep:Fmt.cut pp_elaboration)
    t.Table.elaboration hr ();
  Fmt.pf ppf "Subsystem Safety Goals@,%a@,%a@]"
    (Fmt.list ~sep:(Fmt.any "@,@,") pp_subgoal)
    t.Table.subgoals hr ()

let to_string t = Fmt.str "%a" pp t
