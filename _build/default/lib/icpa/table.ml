(** The ICPA table (Fig. 4.7): the documented product of an analysis — the
    parent goal, the indirect control paths and numbered relationships, the
    goal coverage strategy, the elaboration record (tactics + critical
    assumptions), and the resulting subsystem subgoals. *)

open Tl

type relationship = {
  number : int;
  formal : Formula.t;
  comment : string;  (** the thesis's "%"-prefixed explanation lines *)
}

type row = {
  variable : string;  (** a state variable of the parent goal *)
  subsystems : string list;  (** indirect control path entries for this level *)
  subsystem_variables : (string * string) list;  (** (variable, description) *)
  relationships : relationship list;
}

type elaboration_entry = {
  derived : Formula.t;  (** intermediate or final formula derived *)
  uses : int list;  (** the relationship numbers relied upon *)
  tactic : string;  (** realizability tactic applied, or "" for a premise *)
}

type subgoal = {
  subsystem : string;
  controls : string list;
  observes : string list;
  goal : Kaos.Goal.t;
}

type t = {
  goal : Kaos.Goal.t;
  rows : row list;
  strategy : Coverage.t;
  elaboration : elaboration_entry list;
  subgoals : subgoal list;
}

let relationship ~number ~comment formal = { number; formal; comment }

let make ~goal ~rows ~strategy ~elaboration ~subgoals =
  (* Every relationship number referenced by the elaboration must exist. *)
  let defined =
    List.concat_map (fun r -> List.map (fun rel -> rel.number) r.relationships) rows
  in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          if not (List.mem n defined) then
            invalid_arg (Fmt.str "elaboration references undefined relationship %d" n))
        e.uses)
    elaboration;
  { goal; rows; strategy; elaboration; subgoals }

(** All numbered relationships, in numeric order — these are the *critical
    assumptions* of the decomposition (§4.3). *)
let critical_assumptions t =
  List.sort
    (fun a b -> Int.compare a.number b.number)
    (List.concat_map (fun r -> r.relationships) t.rows)

let subgoal_formulas (t : t) =
  List.map (fun (s : subgoal) -> s.goal.Kaos.Goal.formal) t.subgoals

(** Verify the decomposition claim (§4.4.3) by model checking: under the
    critical assumptions, the subgoals entail the parent goal on every
    reachable trace of [kripke]. *)
let verify ?max_states t (kripke : Mc.Kripke.t) =
  Mc.Checker.check_composition ?max_states kripke
    ~assumptions:(List.map (fun r -> r.formal) (critical_assumptions t))
    ~subgoals:(subgoal_formulas t)
    ~goal:t.goal.Kaos.Goal.formal
