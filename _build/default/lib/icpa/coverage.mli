(** Goal coverage strategies (§4.5): the plan for allocating subgoals so
    that a high-level goal is met, defined by goal assignment and goal
    scope. *)

(** Goal assignment (§4.5.1): which indirect control sources receive
    subgoals, and how those subgoals relate. *)
type assignment =
  | Single_responsibility of string
      (** one agent meets the goal (possibly a dedicated safety monitor) *)
  | Redundant_responsibility of { primary : string list; secondary : string list }
      (** if at least one group satisfies its subgoals, the parent holds *)
  | Shared_responsibility of string list
      (** coordination: all named agents' subgoals are needed jointly *)

val assignment_to_string : assignment -> string

(** Goal scope (§4.5.2): how closely the subgoals match the parent goal. *)
type scope =
  | Nonrestrictive
  | Restrictive of string  (** why behaviour is restricted beyond the parent *)

val scope_to_string : scope -> string

type t = { assignment : assignment; scope : scope }

val make : assignment:assignment -> scope:scope -> t

val responsible : t -> string list
(** Agents that carry subgoals under this strategy. *)

val is_restrictive : t -> bool
val pp : Format.formatter -> t -> unit
