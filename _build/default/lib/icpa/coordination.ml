(** Coordination subgoal patterns for shared responsibility (§4.5.1):
    interlocks and lockouts, with and without actuation/communication
    delays (Eqs. 4.12–4.30). *)

open Tl

(** Basic shared-responsibility subgoals for a parent goal [□(A ∨ B)] where
    agent agA indirectly controls [a] and agB controls [b] (Eqs. 4.12–4.13):
    each agent maintains its disjunct unless it has observed the other's. *)
let shared_disjunction ~a ~b =
  let va = Formula.bvar a and vb = Formula.bvar b in
  ( Formula.entails (Formula.prev (Formula.not_ vb)) va,
    Formula.entails (Formula.prev (Formula.not_ va)) vb )

(** Interlock subgoals (Eqs. 4.14–4.15): before negating its disjunct, an
    agent sets its lock variable and checks the other agent's lock — the
    mutex/semaphore analogy of the thesis. *)
let interlock ~a ~b ~lock_a ~lock_b =
  let va = Formula.bvar a and vb = Formula.bvar b in
  let la = Formula.bvar lock_a and lb = Formula.bvar lock_b in
  ( Formula.entails (Formula.prev (Formula.or_ (Formula.not_ la) lb)) va,
    Formula.entails (Formula.prev (Formula.or_ (Formula.not_ lb) la)) vb )

(** Actuation-delay model for a controlled condition [c] driven by trigger
    [set] / [unset] (Eqs. 4.16–4.20): [c] is set after at most [max_delay]
    of continuous [set]; within [min_delay] of a rising edge the previous
    value persists; set and unset are mutually exclusive. *)
let actuation_relationships ~condition ~set ~unset ~max_delay ~min_delay =
  let c = Formula.bvar condition in
  let s = Formula.bvar set and u = Formula.bvar unset in
  [
    Formula.entails (Formula.prev_for max_delay s) c;
    Formula.entails
      (Formula.and_ (Formula.prev (Formula.not_ c)) (Formula.once_within min_delay (Formula.rose s)))
      (Formula.not_ c);
    Formula.entails (Formula.prev_for max_delay u) (Formula.not_ c);
    Formula.entails
      (Formula.and_ (Formula.prev c) (Formula.once_within min_delay (Formula.rose u)))
      c;
    Formula.always (Formula.not_ (Formula.and_ s u));
  ]

(** Lockout subgoals (Eqs. 4.24–4.30): a lockout agent agB prevents agA from
    violating [◆<T D ⇒ ¬C] by gating [C] on the conjunction of both agents'
    enables [a] and [b]. Returns the shared indirect control relationships
    and the per-agent subgoals. *)
let lockout ~hazard:d ~condition:c ~enable_a:a ~enable_b:b ~window =
  let vd = Formula.bvar d and vc = Formula.bvar c in
  let va = Formula.bvar a and vb = Formula.bvar b in
  let relationships =
    [
      Formula.entails (Formula.prev (Formula.and_ va vb)) vc;
      Formula.entails
        (Formula.prev (Formula.or_ (Formula.not_ va) (Formula.not_ vb)))
        (Formula.not_ vc);
    ]
  in
  let subgoal_a = Formula.entails (Formula.once_within window vd) (Formula.not_ va) in
  let subgoal_b = Formula.entails (Formula.once_within window vd) (Formula.not_ vb) in
  (relationships, subgoal_a, subgoal_b)
