(** The six-step ICPA procedure (Fig. 1.2), mechanized.

    1. define the system safety goal in temporal logic ({!Kaos.Goal});
    2. identify indirect control sources
       ({!Control_graph.indirect_control_path});
    3. define relationships between sources ({!Table.relationship});
    4. choose a goal coverage strategy ({!Coverage});
    5. apply tactics for goal elaboration ({!Kaos.Tactics});
    6. record the resulting subgoals ({!Table}).

    This module adds the cross-step validations: that every goal variable's
    nearest indirect control level was analyzed (the minimum required by
    §4.4.4), and that every responsible agent of the coverage strategy
    received at least one subgoal. *)

type issue =
  | Unanalyzed_variable of string
      (** a goal variable with no row in the ICPA table *)
  | Unanalyzed_source of { variable : string; source : string }
      (** a nearest-level indirect control source missing from the variable's
          row *)
  | Unassigned_agent of string
      (** a responsible agent with no subgoal *)
  | Future_reference of string
      (** a subgoal that is not monitorable/realizable as stated *)

let pp_issue ppf = function
  | Unanalyzed_variable v -> Fmt.pf ppf "goal variable %s has no analysis row" v
  | Unanalyzed_source { variable; source } ->
      Fmt.pf ppf "nearest indirect control source %s of %s not analyzed" source
        variable
  | Unassigned_agent a -> Fmt.pf ppf "responsible agent %s has no subgoal" a
  | Future_reference g -> Fmt.pf ppf "subgoal %s references the future" g

(** [audit graph table] — check the completed ICPA table against the control
    graph. Returns the (possibly empty) list of issues. *)
let audit (graph : Control_graph.t) (table : Table.t) : issue list =
  let goal_vars = Kaos.Goal.vars table.Table.goal in
  let row_for v =
    List.find_opt (fun r -> r.Table.variable = v) table.Table.rows
  in
  let all_row_subsystems =
    List.concat_map (fun r -> r.Table.subsystems) table.Table.rows
  in
  let nearest_sources v =
    List.map
      (fun n -> n.Control_graph.pnode.Control_graph.id)
      (Control_graph.indirect_control_path ~max_depth:1 graph v)
  in
  (* A goal variable counts as analyzed when it has its own row, or when a
     combined row already lists every one of its nearest indirect control
     sources (common when several goal variables share the same control
     path, as the vehicle goals do). *)
  let covered v =
    row_for v <> None
    || List.for_all (fun src -> List.mem src all_row_subsystems) (nearest_sources v)
  in
  let unanalyzed_vars =
    List.filter_map
      (fun v ->
        (* Only variables that exist in the control graph need a row:
           parameters and thresholds are not controlled by anything. *)
        match Control_graph.find graph v with
        | Some _ when Control_graph.producers graph v <> [] ->
            if covered v then None else Some (Unanalyzed_variable v)
        | _ -> None)
      goal_vars
  in
  let unanalyzed_sources =
    (* A variable may be analyzed across several rows (branched paths, like
       dc's DoorController and Passenger branches in Table 4.1/4.2): union
       the subsystems of every row for the variable. *)
    List.concat_map
      (fun v ->
        let rows = List.filter (fun r -> r.Table.variable = v) table.Table.rows in
        if rows = [] then []
        else
          let subsystems = List.concat_map (fun r -> r.Table.subsystems) rows in
          List.filter_map
            (fun src ->
              if List.mem src subsystems then None
              else Some (Unanalyzed_source { variable = v; source = src }))
            (nearest_sources v))
      goal_vars
  in
  let unassigned =
    List.filter_map
      (fun agent ->
        if List.exists (fun s -> s.Table.subsystem = agent) table.Table.subgoals then
          None
        else Some (Unassigned_agent agent))
      (Coverage.responsible table.Table.strategy)
  in
  let future =
    List.filter_map
      (fun (s : Table.subgoal) ->
        let g = s.Table.goal in
        match Tl.Formula.invariant_body g.Kaos.Goal.formal with
        | Some _ -> None
        | None -> Some (Future_reference g.Kaos.Goal.name))
      table.Table.subgoals
  in
  unanalyzed_vars @ unanalyzed_sources @ unassigned @ future
