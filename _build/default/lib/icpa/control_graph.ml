(** Control graphs: the architectural substrate of ICPA (§4.2, Fig. 4.4).

    Nodes are agents (software agents, actuators, sensors, environmental
    agents) and state variables (actuation signals, network messages, shared
    variables, sensed and physical variables). A directed edge [src → dst]
    means [src] *influences* [dst]: an agent produces a variable, a variable
    feeds an agent, an actuator changes a physical quantity, a sensor
    produces a sensed variable from a physical quantity.

    The *indirect control path* of a goal variable is the backward-reachable
    slice from that variable: exactly the agents ICPA must analyze. *)

type node_kind =
  | Software_agent
  | Actuator
  | Sensor
  | Environment_agent
  | Variable  (** actuation signal, network message, shared or sensed variable *)
  | Physical  (** a physical quantity (vehicle speed, door position) *)

let kind_to_string = function
  | Software_agent -> "software agent"
  | Actuator -> "actuator"
  | Sensor -> "sensor"
  | Environment_agent -> "environmental agent"
  | Variable -> "variable"
  | Physical -> "physical quantity"

type node = { id : string; kind : node_kind }

type t = { nodes : node list; edges : (string * string) list }

let node kind id = { id; kind }

let make ~nodes ~edges =
  let ids = List.map (fun n -> n.id) nodes in
  List.iter
    (fun (a, b) ->
      if not (List.mem a ids) then invalid_arg (Fmt.str "unknown edge source %s" a);
      if not (List.mem b ids) then invalid_arg (Fmt.str "unknown edge target %s" b))
    edges;
  { nodes; edges }

let find g id = List.find_opt (fun n -> n.id = id) g.nodes

let kind_of g id =
  match find g id with Some n -> Some n.kind | None -> None

(** Immediate influencers of a node. *)
let producers g id = List.filter_map (fun (a, b) -> if b = id then Some a else None) g.edges

(** Immediate consumers of a node. *)
let consumers g id = List.filter_map (fun (a, b) -> if a = id then Some b else None) g.edges

type path_node = {
  pnode : node;
  via : string option;  (** the variable through which this agent influences its parent *)
  children : path_node list;
}

(** [indirect_control_path g var] — the backward influence tree rooted at the
    goal variable [var] (step 2 of Fig. 1.2). Variables are folded into the
    [via] labels of the agent tree; cycles are cut. Agents closest to the
    goal variable appear at the shallowest depth, matching the thesis's
    "start from the indirect control level nearest the parent goal variable
    and work outward" (§4.4.3). *)
let indirect_control_path ?(max_depth = 10) g var =
  let rec agents_behind seen id via =
    (* Collect the agent-or-actuator nodes that influence [id]; pass through
       intermediate variables (remembering the variable nearest the agent)
       and through sensors: "if the state variable is a sensed value … the
       nearest sources of indirect control are the actuators" (§4.4.1). *)
    List.concat_map
      (fun p ->
        if List.mem p seen then []
        else
          match kind_of g p with
          | Some (Variable | Physical) -> agents_behind (p :: seen) p (Some p)
          | Some Sensor -> agents_behind (p :: seen) p via
          | Some _ -> [ (p, via) ]
          | None -> [])
      (producers g id)
  and expand depth seen (id, via) =
    match find g id with
    | None -> None
    | Some n ->
        let children =
          if depth >= max_depth then []
          else
            List.filter_map
              (expand (depth + 1) (id :: seen))
              (List.filter
                 (fun (p, _) -> not (List.mem p seen))
                 (agents_behind seen id None))
        in
        Some { pnode = n; via; children }
  in
  List.filter_map (expand 1 [ var ]) (agents_behind [ var ] var (Some var))

(** Flatten a path forest into (depth, agent, via-variable) rows — the
    "Indirect Control Path / Subsystem" column of the ICPA table. *)
let levels forest =
  let rec go depth acc n =
    let acc = (depth, n.pnode, n.via) :: acc in
    List.fold_left (go (depth + 1)) acc n.children
  in
  List.rev (List.fold_left (go 1) [] forest)

let rec pp_path_node ?(indent = 0) ppf n =
  Fmt.pf ppf "%s%s (%s)%a@," (String.make indent ' ') n.pnode.id
    (kind_to_string n.pnode.kind)
    (fun ppf -> function Some v -> Fmt.pf ppf " via %s" v | None -> ())
    n.via;
  List.iter (pp_path_node ~indent:(indent + 2) ppf) n.children

let pp_forest ppf forest =
  Fmt.pf ppf "@[<v>%a@]" (fun ppf -> List.iter (pp_path_node ppf)) forest
