(** Control graphs: the architectural substrate of ICPA (§4.2, Fig. 4.4).

    Nodes are agents (software agents, actuators, sensors, environmental
    agents) and state variables (actuation signals, network messages,
    shared variables, sensed and physical quantities). A directed edge
    [src → dst] means [src] {e influences} [dst]. The {e indirect control
    path} of a goal variable is the backward-reachable slice from that
    variable: exactly the agents ICPA must analyze. *)

type node_kind =
  | Software_agent
  | Actuator
  | Sensor
  | Environment_agent
  | Variable  (** actuation signal, network message, shared or sensed variable *)
  | Physical  (** a physical quantity (vehicle speed, door position) *)

val kind_to_string : node_kind -> string

type node = { id : string; kind : node_kind }
type t = { nodes : node list; edges : (string * string) list }

val node : node_kind -> string -> node

val make : nodes:node list -> edges:(string * string) list -> t
(** @raise Invalid_argument on an edge naming an unknown node. *)

val find : t -> string -> node option
val kind_of : t -> string -> node_kind option

val producers : t -> string -> string list
(** Immediate influencers of a node. *)

val consumers : t -> string -> string list

type path_node = {
  pnode : node;
  via : string option;
      (** the variable through which this agent influences its parent *)
  children : path_node list;
}

val indirect_control_path : ?max_depth:int -> t -> string -> path_node list
(** The backward influence forest rooted at a goal variable (step 2 of
    Fig. 1.2). Intermediate variables fold into the [via] labels; sensors
    are transparent ("the nearest sources of indirect control are the
    actuators", §4.4.1); cycles are cut. Agents closest to the goal
    variable appear at the shallowest depth. *)

val levels : path_node list -> (int * node * string option) list
(** Flatten a forest into (depth, agent, via-variable) rows — the
    "Indirect Control Path / Subsystem" column of the ICPA table. *)

val pp_path_node : ?indent:int -> Format.formatter -> path_node -> unit
val pp_forest : Format.formatter -> path_node list -> unit
