(** Finite Kripke structures: the abstract transition systems over which
    ICPA decompositions are verified (§4.4.3: "the parent goals could be
    verified against the subgoals and indirect control relationships with
    model-checking"). *)

open Tl

type t = {
  name : string;
  init : State.t list;  (** initial states *)
  next : State.t -> State.t list;  (** successor relation *)
}

let make ~name ~init ~next = { name; init; next }

(** [product vars domains] — helper to enumerate all assignments of the
    given variable domains, for building [init] sets or constraining
    successor generation. *)
let assignments (domains : (string * Value.t list) list) : State.t list =
  List.fold_left
    (fun states (v, dom) ->
      List.concat_map (fun s -> List.map (fun x -> State.set v x s) dom) states)
    [ State.empty ]
    domains

let bools = [ Value.Bool false; Value.Bool true ]
let syms xs = List.map (fun x -> Value.Sym x) xs
