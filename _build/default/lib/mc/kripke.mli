(** Finite Kripke structures: the abstract transition systems over which
    ICPA decompositions are verified (§4.4.3). *)

open Tl

type t = {
  name : string;
  init : State.t list;  (** initial states *)
  next : State.t -> State.t list;  (** successor relation *)
}

val make : name:string -> init:State.t list -> next:(State.t -> State.t list) -> t

val assignments : (string * Value.t list) list -> State.t list
(** Enumerate all assignments of the given variable domains, for building
    [init] sets or fully nondeterministic successor relations. *)

val bools : Value.t list
(** [[Bool false; Bool true]] *)

val syms : string list -> Value.t list
