lib/mc/checker.mli: Format Formula Kripke State Tl
