lib/mc/checker.ml: Array Fmt Formula Fun Hashtbl Kripke List Marshal Queue Rtmon State Tl
