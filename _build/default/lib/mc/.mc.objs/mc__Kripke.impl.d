lib/mc/kripke.ml: List State Tl Value
