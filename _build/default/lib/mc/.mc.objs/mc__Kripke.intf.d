lib/mc/kripke.mli: State Tl Value
