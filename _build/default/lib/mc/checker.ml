(** Explicit-state checking of past-time invariants and of ICPA goal
    compositions.

    Monitors compiled by {!Rtmon.Incremental} have a bounded integer memory
    vector, so the product of a finite Kripke structure with any number of
    monitors is finite; a breadth-first search decides the properties and
    produces shortest counterexample traces. *)

open Tl

type outcome =
  | Valid of { states_explored : int }
  | Counterexample of { path : State.t list }
      (** a shortest trace ending in the violating state *)
  | Bound_exceeded of { states_explored : int }

let pp_outcome ppf = function
  | Valid { states_explored } -> Fmt.pf ppf "valid (%d product states)" states_explored
  | Counterexample { path } ->
      Fmt.pf ppf "counterexample of length %d:@,%a" (List.length path)
        (Fmt.list ~sep:Fmt.cut State.pp) path
  | Bound_exceeded { states_explored } ->
      Fmt.pf ppf "bound exceeded after %d states" states_explored

(* A product node: the system state plus each monitor's memory vector. The
   key marshals the canonical representation for hashing. *)
let key state mems flags =
  Marshal.to_string (State.to_list state, List.map Array.to_list mems, flags) []

let search ?(max_states = 500_000) ?(prune = fun _flags -> false) (k : Kripke.t)
    ~monitors ~transition_flags ~violated =
  (* [monitors]: initial monitor list; [transition_flags flags outputs]
     updates auxiliary boolean flags from monitor outputs (e.g. "premise has
     held historically"); [violated flags outputs] detects a violation in the
     current product state; [prune flags] cuts branches that can no longer
     produce a violation. Returns the outcome. *)
  let table = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let explored = ref 0 in
  let rec path_of kk acc =
    match Hashtbl.find_opt table kk with
    | None -> acc
    | Some (state, pred) -> (
        match pred with
        | None -> state :: acc
        | Some pk -> path_of pk (state :: acc))
  in
  (* The violation check must run on every generated transition: the
     product key uses *post*-step monitor memories, and two transitions can
     share a post-memory while producing different monitor outputs. Only
     exploration is deduplicated. *)
  let transition state mons flags pred =
    let pairs = List.map (fun m -> Rtmon.Incremental.step m state) mons in
    let outs = List.map fst pairs and mons' = List.map snd pairs in
    let flags' = transition_flags flags outs in
    if violated flags' outs then
      let prefix = match pred with None -> [] | Some pk -> path_of pk [] in
      Error (prefix @ [ state ])
    else begin
      let kk = key state (List.map Rtmon.Incremental.mem mons') flags' in
      if not (Hashtbl.mem table kk) then begin
        Hashtbl.add table kk (state, pred);
        if not (prune flags') then Queue.add (kk, state, mons', flags') queue
      end;
      Ok ()
    end
  in
  let rec init_loop = function
    | [] -> None
    | s :: rest -> (
        (* Flags start as [] and are produced by transition_flags on the
           first step, which handles their initialization. *)
        match transition s monitors ([] : bool list) None with
        | Error path -> Some path
        | Ok () -> init_loop rest)
  in
  match init_loop k.init with
  | Some path -> Counterexample { path }
  | None ->
      let result = ref None in
      (try
         while not (Queue.is_empty queue) do
           let kk, state, mons, flags = Queue.take queue in
           incr explored;
           if !explored > max_states then begin
             result := Some (Bound_exceeded { states_explored = !explored });
             raise Exit
           end;
           List.iter
             (fun s' ->
               match transition s' mons flags (Some kk) with
               | Error path ->
                   result := Some (Counterexample { path });
                   raise Exit
               | Ok () -> ())
             (k.next state)
         done
       with Exit -> ());
      (match !result with
      | Some r -> r
      | None -> Valid { states_explored = !explored })

(** [check_invariant k f] — does the past-time invariant [f] hold in every
    reachable state of [k]? *)
let check_invariant ?max_states (k : Kripke.t) (f : Formula.t) : outcome =
  let dt = 1.0 in
  let m = Rtmon.Incremental.create ~dt f in
  search ?max_states k ~monitors:[ m ]
    ~transition_flags:(fun _ _ -> [])
    ~violated:(fun _ outs -> match outs with [ ok ] -> not ok | _ -> assert false)

(** [check_composition k ~assumptions ~subgoals ~goal] — the ICPA
    composition obligation (§4.4.3): in every reachable state where the
    critical assumptions (indirect control relationships) and the derived
    subgoals have held *historically* (in every state so far, including the
    current one), the parent goal holds.

    A counterexample is a trace along which every assumption and subgoal is
    satisfied throughout, yet the parent goal is violated in the final
    state — i.e. a witness that the subgoals do not even partially compose
    the parent under the stated assumptions. *)
let check_composition ?max_states (k : Kripke.t) ~(assumptions : Formula.t list)
    ~(subgoals : Formula.t list) ~(goal : Formula.t) : outcome =
  let dt = 1.0 in
  let premise = assumptions @ subgoals in
  let monitors = List.map (Rtmon.Incremental.create ~dt) (premise @ [ goal ]) in
  let n_premise = List.length premise in
  let premise_outs outs = List.filteri (fun i _ -> i < n_premise) outs in
  let goal_out outs = List.nth outs n_premise in
  search ?max_states k ~monitors
    ~prune:(fun flags -> flags = [ false ])
    ~transition_flags:(fun flags outs ->
      let held_before = match flags with [] -> true | [ h ] -> h | _ -> assert false in
      [ held_before && List.for_all Fun.id (premise_outs outs) ])
    ~violated:(fun flags outs ->
      let held = match flags with [ h ] -> h | _ -> true in
      held && not (goal_out outs))
