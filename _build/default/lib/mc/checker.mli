(** Explicit-state checking of past-time invariants and of ICPA goal
    compositions.

    Monitors compiled by {!Rtmon.Incremental} have a bounded integer memory
    vector, so the product of a finite Kripke structure with any number of
    monitors is finite; a breadth-first search decides the properties and
    produces shortest counterexample traces. *)

open Tl

type outcome =
  | Valid of { states_explored : int }
  | Counterexample of { path : State.t list }
      (** a shortest trace ending in the violating state *)
  | Bound_exceeded of { states_explored : int }

val pp_outcome : Format.formatter -> outcome -> unit

val check_invariant : ?max_states:int -> Kripke.t -> Formula.t -> outcome
(** Does the past-time invariant hold in every reachable state? *)

val check_composition :
  ?max_states:int ->
  Kripke.t ->
  assumptions:Formula.t list ->
  subgoals:Formula.t list ->
  goal:Formula.t ->
  outcome
(** The ICPA composition obligation (§4.4.3): in every reachable state where
    the critical assumptions (indirect control relationships) and the
    derived subgoals have held {e historically} (in every state so far,
    including the current one), the parent goal holds.

    A counterexample is a trace along which every assumption and subgoal is
    satisfied throughout, yet the parent goal is violated in the final
    state — a witness that the subgoals do not even partially compose the
    parent under the stated assumptions. Branches whose premise has already
    failed are pruned, so unconstrained Kripke structures stay tractable. *)
