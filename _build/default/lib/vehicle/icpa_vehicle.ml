(** The ICPA of the nine vehicle safety goals (Appendix C, Figs. C.1–C.38),
    assembled into {!Icpa.Table} values.

    Goal coverage (§5.3): goals 1–2 and 4–9 use a *redundant responsibility*
    assignment — the Arbiter, as the final source of acceleration and
    steering commands, is primary; the feature subsystems are secondary,
    protecting against single-point Arbiter selection failures. Goal 3 uses
    *single responsibility* (Arbiter only): maintaining the arbitration
    priority logic in every feature subsystem is impractical in a
    distributed development environment. Every goal's scope is restrictive:
    worst-case actuation delays throughout, and OR-reduction on the feature
    subgoals (always limit requests, not only when they are selected). *)

open Tl
open Signals

let relationships_accel =
  [
    Icpa.Table.relationship ~number:1
      ~comment:
        "The vehicle acceleration follows the arbiter's acceleration command \
         through the powertrain/brake actuation response (worst-case delay \
         ~0.2 s, with rebound overshoot)"
      Formula.tt;
    Icpa.Table.relationship ~number:2
      ~comment:
        "The arbiter's acceleration command equals the selected source's \
         acceleration request (feature subsystems or driver pedals)"
      Formula.tt;
    Icpa.Table.relationship ~number:3
      ~comment:
        "A feature subsystem influences the acceleration command only when \
         active and requesting; the arbiter selects the highest-priority \
         requesting feature (CA > RCA > PA > LCA > ACC)"
      Formula.tt;
    Icpa.Table.relationship ~number:4
      ~comment:"LCA's longitudinal control is performed by ACC (shared requests)"
      Formula.tt;
  ]

let relationships_steer =
  [
    Icpa.Table.relationship ~number:5
      ~comment:
        "Vehicle steering follows the arbiter's steering command through the \
         steering actuator"
      Formula.tt;
    Icpa.Table.relationship ~number:6
      ~comment:
        "The arbiter's steering command is arbitrated separately from \
         acceleration, over the features requesting steering (LCA, PA)"
      Formula.tt;
  ]

let accel_row variable =
  {
    Icpa.Table.variable;
    subsystems = [ "Arbiter"; "CA"; "RCA"; "ACC"; "LCA"; "PA"; "Driver"; "Powertrain" ];
    subsystem_variables =
      [
        (accel_cmd, "arbiter acceleration command");
        (accel_req "CA", "CA acceleration request (likewise per feature)");
        (req_accel "CA", "CA requesting-acceleration flag (likewise per feature)");
        (throttle_pedal, "driver throttle pedal");
        (brake_pedal, "driver brake pedal");
      ];
    relationships = relationships_accel;
  }

let steer_row variable =
  {
    Icpa.Table.variable;
    subsystems = [ "Arbiter"; "LCA"; "PA"; "Driver"; "SteeringActuator" ];
    subsystem_variables =
      [
        (steer_cmd, "arbiter steering command");
        (steer_req "LCA", "LCA steering request (likewise for PA)");
        (steering_wheel_active, "driver steering-wheel activity");
      ];
    relationships = relationships_steer;
  }

(* LCA shares acceleration requests with ACC, so it carries no secondary
   subgoal of its own for the acceleration goals (§5.3.2). *)
let redundant_with secondary =
  Icpa.Coverage.make
    ~assignment:
      (Icpa.Coverage.Redundant_responsibility { primary = [ "Arbiter" ]; secondary })
    ~scope:
      (Icpa.Coverage.Restrictive
         "Worst-case actuation delays; feature subgoals use OR-reduction \
          (requests are always limited, not only when selected).")

let redundant = redundant_with Monitors.accel_features

let single =
  Icpa.Coverage.make
    ~assignment:(Icpa.Coverage.Single_responsibility "Arbiter")
    ~scope:
      (Icpa.Coverage.Restrictive
         "Maintaining arbitration logic in every feature subsystem is \
          impractical in distributed development; worst-case actuation \
          delays.")

let elab ?(uses = [ 1; 2; 3 ]) tactic (g : Kaos.Goal.t) =
  { Icpa.Table.derived = g.Kaos.Goal.formal; uses; tactic }

let sub ~subsystem ~controls ~observes goal =
  { Icpa.Table.subsystem; controls; observes; goal }

let arbiter_sub goal =
  sub ~subsystem:"Arbiter" ~controls:[ accel_cmd; accel_source; steer_cmd; steer_source ]
    ~observes:
      (List.concat_map (fun f -> [ accel_req f; req_accel f; active f ]) features
      @ [ throttle_pedal; brake_pedal; host_speed ])
    goal

let feature_sub f goal =
  sub ~subsystem:f
    ~controls:[ accel_req f; req_accel f; steer_req f; req_steer f ]
    ~observes:[ host_speed; object_detected; hmi_go; throttle_pedal ]
    goal

let accel_feature_subs mk = List.map (fun f -> feature_sub f (mk f)) Monitors.accel_features

(** One table per system goal, in Table 5.3 / Appendix C order. *)
let tables : (int * Icpa.Table.t) list =
  [
    ( 1,
      Icpa.Table.make ~goal:Goals.g1
        ~rows:[ accel_row host_accel ]
        ~strategy:redundant
        ~elaboration:
          [
            elab "introduce actuation goal (acceleration follows command)" Subgoals.a1;
            elab "OR-reduction: always limit feature requests" (Subgoals.b1 "CA");
          ]
        ~subgoals:(arbiter_sub Subgoals.a1 :: accel_feature_subs Subgoals.b1) );
    ( 2,
      Icpa.Table.make ~goal:Goals.g2
        ~rows:[ accel_row host_jerk ]
        ~strategy:redundant
        ~elaboration:
          [
            elab "introduce actuation goal (jerk follows command jerk)" Subgoals.a2;
            elab "OR-reduction: always limit feature request jerk" (Subgoals.b2 "CA");
          ]
        ~subgoals:(arbiter_sub Subgoals.a2 :: accel_feature_subs Subgoals.b2) );
    ( 3,
      Icpa.Table.make ~goal:Goals.g3
        ~rows:[ accel_row va_source; steer_row vst_source ]
        ~strategy:single
        ~elaboration:
          [ elab ~uses:[ 2; 3; 6 ] "single responsibility at the arbiter" Subgoals.a3 ]
        ~subgoals:[ arbiter_sub Subgoals.a3 ] );
    ( 4,
      Icpa.Table.make ~goal:Goals.g4
        ~rows:[ accel_row host_accel ]
        ~strategy:redundant
        ~elaboration:
          [
            elab "split by case (command non-positive from stop)" Subgoals.a4;
            elab "OR-reduction on feature requests from stop" (Subgoals.b4 "CA");
          ]
        ~subgoals:(arbiter_sub Subgoals.a4 :: accel_feature_subs Subgoals.b4) );
    ( 5,
      Icpa.Table.make ~goal:Goals.g5
        ~rows:[ accel_row va_source ]
        ~strategy:redundant
        ~elaboration:
          [
            elab "introduce accuracy goal (selection reflects override)" Subgoals.a5;
            elab "restrictive: features withdraw requests entirely" (Subgoals.b5 "ACC");
          ]
        ~subgoals:(arbiter_sub Subgoals.a5 :: accel_feature_subs Subgoals.b5) );
    ( 6,
      Icpa.Table.make ~goal:Goals.g6
        ~rows:[ accel_row va_source ]
        ~strategy:redundant
        ~elaboration:
          [
            elab "introduce accuracy goal (selection reflects override)" Subgoals.a6;
            elab "restrictive: features withdraw requests entirely" (Subgoals.b6 "RCA");
          ]
        ~subgoals:(arbiter_sub Subgoals.a6 :: accel_feature_subs Subgoals.b6) );
    ( 7,
      Icpa.Table.make ~goal:Goals.g7
        ~rows:[ steer_row vst_source ]
        ~strategy:(redundant_with Monitors.steer_features)
        ~elaboration:
          [
            elab ~uses:[ 5; 6 ] "introduce accuracy goal (steering selection)" Subgoals.a7;
            elab ~uses:[ 5; 6 ] "restrictive: features withdraw steering requests"
              (Subgoals.b7 "LCA");
          ]
        ~subgoals:
          (arbiter_sub Subgoals.a7
          :: List.map (fun f -> feature_sub f (Subgoals.b7 f)) Monitors.steer_features) );
    ( 8,
      Icpa.Table.make ~goal:Goals.g8
        ~rows:[ accel_row va_source; steer_row vst_source ]
        ~strategy:(redundant_with [ "RCA" ])
        ~elaboration:
          [
            elab ~uses:[ 2; 3; 6 ] "split by case on motion direction" Subgoals.a8;
            elab ~uses:[ 3 ] "restrictive: RCA never requests in forward motion" Subgoals.b8;
          ]
        ~subgoals:[ arbiter_sub Subgoals.a8; feature_sub "RCA" Subgoals.b8 ] );
    ( 9,
      Icpa.Table.make ~goal:Goals.g9
        ~rows:[ accel_row va_source; steer_row vst_source ]
        ~strategy:(redundant_with [ "CA"; "ACC"; "LCA" ])
        ~elaboration:
          [
            elab ~uses:[ 2; 3; 6 ] "split by case on motion direction" Subgoals.a9;
            elab ~uses:[ 3 ]
              "restrictive: CA/ACC/LCA never request in backward motion"
              (Subgoals.b9 "CA");
          ]
        ~subgoals:
          (arbiter_sub Subgoals.a9
          :: List.map (fun f -> feature_sub f (Subgoals.b9 f)) [ "CA"; "ACC"; "LCA" ]) );
  ]

let table n = List.assoc n tables
