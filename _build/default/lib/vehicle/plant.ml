(** The physical substrate replacing CarSim®: lead/rear objects, host
    longitudinal dynamics, object sensors and derived jerk signals.

    Host acceleration tracks the arbiter's command through a second-order
    underdamped response (ωn = 30 rad/s, ζ = 0.30): powertrain/brake
    hydraulics plus suspension pitch rebound. The rebound is what makes a
    cancelled hard brake overshoot past +2 m/s² — the mechanism behind the
    thesis's vehicle-level goal-1/goal-2 violations that no command-level
    subgoal predicts (§5.4.1). *)

open Tl
open Signals

type dynamics = { omega_n : float; zeta : float }

(** The default actuation response: ωn = 30 rad/s, ζ = 0.30 — underdamped
    enough that a cancelled hard brake rebounds past +2 m/s² (§5.4.1). *)
let default_dynamics = { omega_n = 30.0; zeta = 0.30 }

type objects = {
  lead_start : float;  (** initial position of the forward object, m *)
  lead_profile : float -> float;  (** lead speed as a function of time *)
  rear_start : float;  (** position of the object behind the host, m *)
}

let stationary_ahead gap = { lead_start = gap; lead_profile = (fun _ -> 0.); rear_start = -1000. }

let lead_vehicle objects =
  Sim.Component.make ~name:"LeadVehicle"
    ~outputs:
      [
        (lead_pos, Value.Float objects.lead_start);
        (lead_speed, Value.Float (objects.lead_profile 0.));
        (rear_pos, Value.Float objects.rear_start);
      ]
    (fun ctx ->
      let p = Sim.Component.read_float ctx lead_pos in
      let v = objects.lead_profile ctx.Sim.Component.now in
      [
        (lead_pos, Value.Float (p +. (v *. ctx.Sim.Component.dt)));
        (lead_speed, Value.Float v);
      ])

(** Host longitudinal dynamics, including the engage-creep defect
    (Fig. 5.15) and collision detection (the thesis's early-termination
    condition). *)
let host ?(dynamics = default_dynamics) (defects : Defects.t) =
  let { omega_n; zeta } = dynamics in
  let jerk_state = ref 0. in
  let creep_left = ref 0. in
  Sim.Component.make ~name:"HostDynamics"
    ~outputs:
      [
        (host_pos, Value.Float 0.);
        (host_speed, Value.Float 0.);
        (host_accel, Value.Float 0.);
        (host_jerk, Value.Float 0.);
        (collision, Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let dt = ctx.dt in
      let a = read_float ctx host_accel in
      let v = read_float ctx host_speed in
      let p = read_float ctx host_pos in
      let u = read_float ctx accel_cmd in
      (* Defect: a failed ACC engage attempt at standstill leaks a creep
         torque into the powertrain for a few seconds. *)
      if
        defects.Defects.powertrain_creep_on_engage
        && read_bool ctx (engage_request "ACC")
        && Float.abs v < 0.05
        && not (read_bool ctx (active "ACC"))
      then creep_left := 3.0;
      let creep =
        if !creep_left > 0. then begin
          creep_left := !creep_left -. dt;
          0.8
        end
        else 0.
      in
      let u = u +. creep in
      (* Second-order response; [jerk_state] is da/dt. *)
      let s = !jerk_state in
      let s' = s +. ((omega_n *. omega_n *. (u -. a)) -. (2. *. zeta *. omega_n *. s)) *. dt in
      jerk_state := s';
      let a' = a +. (s' *. dt) in
      (* Standing still with no drive torque (or with the brake applied
         against the direction of travel): friction holds the vehicle. *)
      let v' = v +. (a' *. dt) in
      (* The brake controller holds the vehicle at standstill against
         commands opposing the direction of travel — except that autonomous
         torque requests bypass the standstill hold (the plant-side face of
         the no-standstill-clamp defect): a subsystem commanding negative
         acceleration at standstill pushes the vehicle backward through
         zero, the Fig. 5.11 negative speed. *)
      let braking_demand =
        if read_sym ctx gear = "R" then u >= -0.05 else u <= 0.05
      in
      let hold_bypassed =
        defects.Defects.acc_no_standstill_clamp
        && read_sym ctx accel_source <> "Driver"
        && Float.abs u >= 0.05
      in
      (* The capture band must exceed the largest per-step Δv (hard braking
         changes v by ~9 mm/s per millisecond state). *)
      let held =
        Float.abs v' < 0.02
        && (Float.abs u < 0.05 || (braking_demand && not hold_bypassed))
      in
      let v' = if held then 0. else v' in
      let p' = p +. (v' *. dt) in
      let lead = read_float ctx lead_pos in
      let rear = read_float ctx rear_pos in
      let hit = p' >= lead || p' <= rear in
      [
        (host_pos, Value.Float p');
        (host_speed, Value.Float v');
        (host_accel, Value.Float a');
        (host_jerk, Value.Float s');
        (collision, Value.Bool hit);
      ])

(** Forward and rear object sensors. The forward radar has a 2 m minimum
    range; with the dropout defect, objects closer than that vanish — the
    Fig. 2.2 fault-tree branch "object detection misses object that is
    there". *)
let sensors (defects : Defects.t) =
  Sim.Component.make ~name:"ObjectSensors"
    ~outputs:
      [
        (object_detected, Value.Bool false);
        (object_range, Value.Float 1000.);
        (object_closing_speed, Value.Float 0.);
        (rear_object_detected, Value.Bool false);
        (rear_range, Value.Float 1000.);
      ]
    (fun ctx ->
      let open Sim.Component in
      let range = read_float ctx lead_pos -. read_float ctx host_pos in
      let closing = read_float ctx host_speed -. read_float ctx lead_speed in
      let min_range = if defects.Defects.radar_min_range_dropout then 2.0 else 0.0 in
      let detected = range > min_range && range < 60. in
      let rrange = read_float ctx host_pos -. read_float ctx rear_pos in
      let rdetected = rrange > 0. && rrange < 30. in
      [
        (object_detected, Value.Bool detected);
        (object_range, Value.Float range);
        (object_closing_speed, Value.Float closing);
        (rear_object_detected, Value.Bool rdetected);
        (rear_range, Value.Float rrange);
      ])

(** Jerk derivation for the acceleration command and every feature request
    (needed by subgoals 2A/2B). The derivative is one state delayed, like
    every monitored value. *)
let jerk_derivation () =
  let tracked = (accel_cmd, accel_cmd_jerk) :: List.map (fun f -> (accel_req f, accel_req_jerk f)) features in
  let last : (string, float) Hashtbl.t = Hashtbl.create 8 in
  Sim.Component.make ~name:"JerkDerivation"
    ~outputs:(List.map (fun (_, out) -> (out, Value.Float 0.)) tracked)
    (fun ctx ->
      List.map
        (fun (src, out) ->
          let v = Sim.Component.read_float ctx src in
          let prev = Option.value (Hashtbl.find_opt last src) ~default:v in
          Hashtbl.replace last src v;
          (out, Value.Float ((v -. prev) /. ctx.Sim.Component.dt)))
        tracked)
