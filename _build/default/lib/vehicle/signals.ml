(** Signal naming conventions and shared formula fragments for the
    semi-autonomous automotive system (Fig. 5.1).

    Feature subsystems are identified by the symbols ["CA"], ["RCA"],
    ["ACC"], ["LCA"], ["PA"]; the arbiter's source tags additionally use
    ["Driver"] and ["None"]. *)

open Tl

let features = [ "CA"; "RCA"; "ACC"; "LCA"; "PA" ]

let lc = String.lowercase_ascii

(* Per-feature outputs *)
let active f = lc f ^ "_active"
let accel_req f = lc f ^ "_accel_req"
let accel_req_jerk f = lc f ^ "_accel_req_jerk"
let req_accel f = lc f ^ "_req_accel"  (* requesting-acceleration flag *)
let steer_req f = lc f ^ "_steer_req"
let req_steer f = lc f ^ "_req_steer"
let enabled f = lc f ^ "_enabled"
let selected f = lc f ^ "_selected"

(* Arbiter outputs. The arbiter exposes *two* attribution signals per axis:
   the immediate command source ([accel_source]/[steer_source]) and the
   flag-derived attribution ([va_source]/[vst_source]) built from the
   'selected' flags, which the latch defect can hold past the actual source
   change (§5.3.2). Vehicle-level goals see the flag-derived attribution —
   the only one observable outside the arbiter — while arbiter subgoals see
   the immediate source. *)
let accel_cmd = "accel_cmd"
let accel_cmd_jerk = "accel_cmd_jerk"
let accel_source = "accel_source"
let steer_cmd = "steer_cmd"
let steer_source = "steer_source"
let va_source = "va_source"
let vst_source = "vst_source"
let driver_selected = "driver_selected"

(* Driver / HMI inputs *)
let throttle_pedal = "throttle_pedal"
let brake_pedal = "brake_pedal"
let steering_wheel_active = "steering_wheel_active"
let hmi_go = "hmi_go"
let gear = "gear"  (* "D" | "R" *)
let acc_set_speed = "acc_set_speed"
let engage_request f = "hmi_" ^ lc f ^ "_engage"

(* Plant / sensors *)
let host_pos = "host_pos"
let host_speed = "host_speed"
let host_accel = "host_accel"
let host_jerk = "host_jerk"
let lead_pos = "lead_pos"
let lead_speed = "lead_speed"
let rear_pos = "rear_pos"
let object_detected = "object_detected"
let object_range = "object_range"
let object_closing_speed = "object_closing_speed"
let rear_object_detected = "rear_object_detected"
let rear_range = "rear_range"
let collision = "collision"

(* ------------------------------------------------------------------ *)
(* Formula fragments shared by the goals of Tables 5.1–5.2.            *)

let fvar = Term.var

(** IsSubsystem(source): the source tag names a feature subsystem. *)
let is_subsystem source_var =
  Formula.disj (List.map (fun f -> Formula.var_is source_var f) features)

let source_is source_var f = Formula.var_is source_var f

(** Pedal application uses a 5% dead band. *)
let throttle_applied = Formula.gt (fvar throttle_pedal) (Term.float 0.05)
let brake_applied = Formula.gt (fvar brake_pedal) (Term.float 0.05)

let stopped = Formula.lt (Term.Abs (fvar host_speed)) (Term.float 0.01)

(* Directed motion uses a wider dead band than [stopped]: centimetre-scale
   rollback during a brake release is not "backward motion" in the sense of
   goals 6, 8 and 9. *)
let in_forward_motion = Formula.gt (fvar host_speed) (Term.float 0.05)
let in_backward_motion = Formula.lt (fvar host_speed) (Term.float (-0.05))
let is_accelerating = Formula.gt (fvar host_accel) (Term.float 0.1)

(* Thresholds of Tables 5.1–5.2 *)
let accel_limit = 2.0  (* m/s^2 *)
let jerk_limit = 2.5  (* m/s^3 *)
let hard_brake = -2.0  (* m/s^2: requests at or below this are emergency stops *)
let stopped_time = 0.3  (* s: StoppedTime *)
let go_time = 0.5  (* s: GoTime *)
