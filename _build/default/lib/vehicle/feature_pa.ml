(** Park Assist (PA): finds a parking space and parks the vehicle on driver
    request (§5.2.1).

    Seeded defect (Fig. 5.3): while *not even enabled*, PA emits the ghost
    acceleration-request profile the thesis observed — +2 m/s² from the
    start of simulation until 2.186 s, 0 until 9.33 s, −2 m/s² until
    9.624 s, then 0. PA never signals active, so the Arbiter's redundancy
    masks the requests; the subgoal monitors (2B, 4B) still flag them —
    false positives that reveal a real subsystem defect (§5.4.1).

    When genuinely engaged, PA aligns (steering + zero acceleration) while
    the vehicle moves and creeps (+0.3 m/s²) from standstill. *)

open Tl
open Signals

let ghost_profile now =
  if now < 2.186 then 2.0 else if now >= 9.33 && now < 9.624 then -2.0 else 0.0

let request_jerk_limit = 2.0 (* m/s^3: engaged-mode requests are ramped *)

let component (defects : Defects.t) =
  let active_state = ref false in
  let prev_engage = ref false in
  let prev_req = ref 0. in
  Sim.Component.make ~name:"PA"
    ~outputs:
      [
        (active "PA", Value.Bool false);
        (accel_req "PA", Value.Float 0.);
        (req_accel "PA", Value.Bool false);
        (steer_req "PA", Value.Float 0.);
        (req_steer "PA", Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let enabled = read_bool ctx (enabled "PA") in
      let engage = read_bool ctx (engage_request "PA") in
      if engage && not !prev_engage && enabled then active_state := true;
      prev_engage := engage;
      if not enabled then active_state := false;
      let v = read_float ctx host_speed in
      let ramp target =
        let step = request_jerk_limit *. ctx.Sim.Component.dt in
        let r = !prev_req +. Float.max (-.step) (Float.min step (target -. !prev_req)) in
        prev_req := r;
        r
      in
      if !active_state then
        if Float.abs v > 0.3 then
          (* align phase: searching for a space — steering authority is
             claimed but the request is still neutral, and speed is held *)
          [
            (active "PA", Value.Bool true);
            (accel_req "PA", Value.Float (ramp 0.));
            (req_accel "PA", Value.Bool true);
            (steer_req "PA", Value.Float 0.);
            (req_steer "PA", Value.Bool true);
          ]
        else
          (* creep phase from standstill *)
          [
            (active "PA", Value.Bool true);
            (accel_req "PA", Value.Float (ramp 0.3));
            (req_accel "PA", Value.Bool true);
            (steer_req "PA", Value.Float 0.);
            (req_steer "PA", Value.Bool false);
          ]
      else
        [
          (active "PA", Value.Bool false);
          ( accel_req "PA",
            Value.Float
              (let g = if defects.Defects.pa_ghost_requests then ghost_profile ctx.now else 0. in
               prev_req := g;
               g) );
          (req_accel "PA", Value.Bool false);
          (steer_req "PA", Value.Float 0.);
          (req_steer "PA", Value.Bool false);
        ])
