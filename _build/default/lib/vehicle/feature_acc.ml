(** Adaptive Cruise Control (ACC): controls to a driver-set speed, or to a
    following distance behind a slower lead vehicle (§5.2.1). Also performs
    the longitudinal control for LCA.

    The request is jerk-limited to 2.0 m/s³ (Fig. 5.7), below the 2.5 m/s³
    subgoal threshold, and capped at +1.8 m/s² — the safety-envelope
    restriction of Eq. 3.48.

    Seeded defects:
    - controls toward an uninitialized 0 m/s set speed whenever merely
      enabled (Fig. 5.6);
    - no gear check on engagement (Fig. 5.13);
    - integrator windup during driver override (the Fig. 5.8 hunting);
    - no standstill clamp: gap control can command the vehicle through zero
      speed (Fig. 5.11). *)

open Tl
open Signals

let kp = 0.8
let ki = 0.3
let request_max = 1.8
let request_min = -3.0
let jerk_rate = 2.0
let min_engage_speed = 0.3
let desired_gap = 6.0

let component (defects : Defects.t) =
  let active_state = ref false in
  let integ = ref 0. in
  let prev_req = ref 0. in
  let prev_engage = ref false in
  Sim.Component.make ~name:"ACC"
    ~outputs:
      [
        (active "ACC", Value.Bool false);
        (accel_req "ACC", Value.Float 0.);
        (req_accel "ACC", Value.Bool false);
        (steer_req "ACC", Value.Float 0.);
        (req_steer "ACC", Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let dt = ctx.dt in
      let enabled = read_bool ctx (enabled "ACC") in
      let engage = read_bool ctx (engage_request "ACC") in
      let v = read_float ctx host_speed in
      let in_drive = read_sym ctx gear = "D" in
      (* Engagement on the rising edge of the HMI request. *)
      (if engage && not !prev_engage then
         let gear_ok = defects.Defects.acc_no_gear_check || in_drive in
         if enabled && gear_ok && Float.abs v >= min_engage_speed then begin
           active_state := true;
           integ := 0.
         end);
      prev_engage := engage;
      if not enabled then active_state := false;
      let set = read_float ctx acc_set_speed in
      let detected = read_bool ctx object_detected in
      let range = read_float ctx object_range in
      let lead_v = read_float ctx lead_speed in
      let target_of set_speed =
        if detected && range < Float.max 10. (2.0 *. Float.abs v *. 1.5) then
          Float.min set_speed (lead_v +. (0.25 *. (range -. desired_gap)))
        else set_speed
      in
      let control set_speed =
        let target = target_of set_speed in
        let target =
          if (not defects.Defects.acc_no_standstill_clamp) && target < 0. then 0.
          else target
        in
        let err = target -. v in
        let selected = read_sym ctx accel_source = "ACC" || read_sym ctx accel_source = "LCA" in
        if selected || defects.Defects.acc_integrator_windup then
          integ := !integ +. (err *. dt);
        let raw = (kp *. err) +. (ki *. !integ) in
        let raw = Float.max request_min (Float.min request_max raw) in
        let raw =
          if (not defects.Defects.acc_no_standstill_clamp) && v <= 0.01 then
            Float.max 0. raw
          else raw
        in
        (* jerk limiter *)
        let step = jerk_rate *. dt in
        let r = !prev_req +. Float.max (-.step) (Float.min step (raw -. !prev_req)) in
        prev_req := r;
        r
      in
      let request =
        if !active_state then control set
        else if enabled && defects.Defects.acc_controls_when_disengaged then
          (* uninitialized set speed: controls the vehicle toward 0 m/s *)
          control 0.
        else begin
          prev_req := 0.;
          integ := 0.;
          0.
        end
      in
      [
        (active "ACC", Value.Bool !active_state);
        (accel_req "ACC", Value.Float request);
        (req_accel "ACC", Value.Bool !active_state);
        (steer_req "ACC", Value.Float 0.);
        (req_steer "ACC", Value.Bool false);
      ])
