(** Rear Collision Avoidance (RCA): stops the vehicle before an object
    behind it when reversing (§5.2.1).

    Seeded defect (Fig. 5.12, §5.4.7): the engage condition tests the wrong
    gear — it requires drive instead of reverse, so RCA never engages and
    the vehicle backs into the stopped object with no goal violation at all:
    the hazard corresponds to a *missing* goal, the first emergence problem
    of §3.1 that monitoring cannot detect. *)

open Tl
open Signals

let engage_ttc = 2.5
let brake_request = 6.0
(* Braking while reversing is a positive acceleration. *)

let component (defects : Defects.t) =
  Sim.Component.make ~name:"RCA"
    ~outputs:
      [
        (active "RCA", Value.Bool false);
        (accel_req "RCA", Value.Float 0.);
        (req_accel "RCA", Value.Bool false);
        (steer_req "RCA", Value.Float 0.);
        (req_steer "RCA", Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let enabled = read_bool ctx (enabled "RCA") in
      let detected = read_bool ctx rear_object_detected in
      let range = read_float ctx rear_range in
      let v = read_float ctx host_speed in
      let gear_now = read_sym ctx gear in
      let gear_ok =
        if defects.Defects.rca_never_engages then gear_now = "D" (* wrong gear *)
        else gear_now = "R"
      in
      let closing = -.v in
      let ttc = if closing > 0.05 then range /. closing else Float.infinity in
      let engaged = enabled && gear_ok && detected && ttc < engage_ttc in
      [
        (active "RCA", Value.Bool engaged);
        (accel_req "RCA", Value.Float (if engaged then brake_request else 0.));
        (req_accel "RCA", Value.Bool engaged);
        (steer_req "RCA", Value.Float 0.);
        (req_steer "RCA", Value.Bool false);
      ])
