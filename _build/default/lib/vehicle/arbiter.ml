(** The Arbiter: selects which subsystem (or the driver) controls vehicle
    acceleration and steering (§5.2.1). In the research vehicle this logic
    was distributed across processors with *separate* arbitration of
    acceleration and steering — the root of several defects the thesis
    uncovered (§5.3.2, §6.1.2):

    - steering arbitration priority is the *reverse* of acceleration
      priority, and the steering stage determines which request value is
      actually passed along as the acceleration command (Fig. 5.4);
    - 'selected' flags are latched past the actual source change, so
      transients are attributed to subsystems (§5.4.1);
    - when PA is the acceleration source the wrong slot is routed and the
      command differs from PA's request (Fig. 5.14);
    - LCA bypasses the selection debounce and gains control one state after
      activation (Fig. 5.10);
    - LCA and ACC can be flagged 'selected' simultaneously (Fig. 5.11).

    Selection timing (matching §5.4): a candidate feature is selected after
    a 50 ms debounce; pedal override deselects it after 50 ms and blocks
    re-selection while the pedals are applied; a previously overridden
    feature needs a 100 ms debounce to regain control after pedal release —
    the 0.101 s handoff of Fig. 5.9. *)

open Tl
open Signals

let accel_priority = [ "CA"; "RCA"; "PA"; "LCA"; "ACC" ]

type timing = {
  select_debounce : float;  (** candidate persistence before selection *)
  reselect_debounce : float;  (** re-selection after a pedal override (Fig. 5.9) *)
  override_debounce : float;  (** pedal persistence before override *)
  latch_time : float;  (** 'selected'-flag hold past the source change *)
}

(** The timing the thesis's system exhibited (§5.4). *)
let default_timing =
  {
    select_debounce = 0.05;
    reselect_debounce = 0.1;
    override_debounce = 0.05;
    latch_time = 0.15;
  }

type state = {
  mutable cur : string;  (** current acceleration source: feature or "Driver" *)
  mutable pend : string option;
  mutable pend_t : float;
  mutable override_t : float;
  mutable blocked : (string, unit) Hashtbl.t;  (** overridden while pedals applied *)
  mutable was_overridden : (string, unit) Hashtbl.t;
  mutable latch : (string * float) list;  (** (feature, time left) selected latches *)
  mutable last_cmd : float;
  mutable last_steer : float;
}

let fresh () =
  {
    cur = "Driver";
    pend = None;
    pend_t = 0.;
    override_t = 0.;
    blocked = Hashtbl.create 4;
    was_overridden = Hashtbl.create 4;
    latch = [];
    last_cmd = 0.;
    last_steer = 0.;
  }

let hard_stop_request ~v request =
  (* an emergency stop the driver may not override (§5.2.3) *)
  if v >= 0. then request < hard_brake else request > -.hard_brake

let component ?(timing = default_timing) (defects : Defects.t) =
  let { select_debounce; reselect_debounce; override_debounce; latch_time } = timing in
  let st = fresh () in
  Sim.Component.make ~name:"Arbiter"
    ~outputs:
      ([
         (accel_cmd, Value.Float 0.);
         (accel_source, Value.Sym "Driver");
         (va_source, Value.Sym "Driver");
         (steer_cmd, Value.Float 0.);
         (steer_source, Value.Sym "Driver");
         (vst_source, Value.Sym "Driver");
         (driver_selected, Value.Bool true);
       ]
      @ List.map (fun f -> (selected f, Value.Bool false)) features)
    (fun ctx ->
      let open Sim.Component in
      let dt = ctx.dt in
      let v = read_float ctx host_speed in
      let throttle = read_float ctx throttle_pedal in
      let brake = read_float ctx brake_pedal in
      let pedals = throttle > 0.05 || brake > 0.05 in
      let req_of f = read_float ctx (accel_req f) in
      let requesting f = read_bool ctx (active f) && read_bool ctx (req_accel f) in
      if not pedals then Hashtbl.reset st.blocked;
      (* --- acceleration arbitration --- *)
      let candidates = List.filter requesting accel_priority in
      let top = match candidates with [] -> None | f :: _ -> Some f in
      (* override evaluation of the currently selected feature *)
      (match st.cur with
      | "Driver" -> st.override_t <- 0.
      | f ->
          if requesting f then begin
            if pedals && not (hard_stop_request ~v (req_of f)) then begin
              st.override_t <- st.override_t +. dt;
              if st.override_t >= override_debounce then begin
                st.cur <- "Driver";
                Hashtbl.replace st.blocked f ();
                Hashtbl.replace st.was_overridden f ();
                st.override_t <- 0.
              end
            end
            else st.override_t <- 0.
          end
          else begin
            (* the feature withdrew: fall back immediately *)
            st.cur <- "Driver";
            st.override_t <- 0.
          end);
      (* selection of a new source. The repaired arbiter refuses to select
         a feature while the pedals are applied unless it is demanding an
         emergency stop; the evaluated arbiter checks the pedals only after
         selection, via the override logic. *)
      let pedal_gate f =
        defects.Defects.arbiter_selects_under_pedals
        || (not pedals)
        || hard_stop_request ~v (req_of f)
      in
      let blocked_now f =
        (* an overridden feature stays blocked while the pedals are applied —
           but an emergency stop request is never blocked (§5.2.3) *)
        Hashtbl.mem st.blocked f && pedals && not (hard_stop_request ~v (req_of f))
      in
      (match top with
      | Some f when st.cur = "Driver" && (not (blocked_now f)) && pedal_gate f ->
          if f = "LCA" then st.cur <- f (* defect-adjacent: LCA bypasses the debounce *)
          else begin
            let threshold =
              if Hashtbl.mem st.was_overridden f then reselect_debounce
              else select_debounce
            in
            (match st.pend with
            | Some p when p = f -> st.pend_t <- st.pend_t +. dt
            | _ ->
                st.pend <- Some f;
                st.pend_t <- dt);
            if st.pend_t >= threshold then begin
              st.cur <- f;
              st.pend <- None;
              st.pend_t <- 0.
            end
          end
      | Some f when st.cur <> "Driver" && f <> st.cur ->
          (* a higher-priority feature preempts after the debounce *)
          (match st.pend with
          | Some p when p = f -> st.pend_t <- st.pend_t +. dt
          | _ ->
              st.pend <- Some f;
              st.pend_t <- dt);
          if st.pend_t >= select_debounce then begin
            st.cur <- f;
            st.pend <- None;
            st.pend_t <- 0.
          end
      | _ ->
          st.pend <- None;
          st.pend_t <- 0.);
      (* driver demand *)
      let driver_demand =
        if brake > 0.05 then
          if v > 0.01 then -7. *. brake else if v < -0.01 then 7. *. brake else 0.
        else
          let dir = if read_sym ctx gear = "R" then -1. else 1. in
          dir *. 2.5 *. throttle
      in
      let cmd = match st.cur with "Driver" -> driver_demand | f -> req_of f in
      (* --- steering arbitration --- *)
      let steer_candidates =
        List.filter
          (fun f -> read_bool ctx (active f) && read_bool ctx (req_steer f))
          (if defects.Defects.arbiter_steering_priority_reversed then
             List.rev accel_priority
           else accel_priority)
      in
      let wheel = read_bool ctx steering_wheel_active in
      let steer_winner =
        if wheel then None else (match steer_candidates with [] -> None | f :: _ -> Some f)
      in
      let s_cmd, s_src =
        match steer_winner with
        | None -> ((if wheel then st.last_steer else st.last_steer), "Driver")
        | Some f ->
            let value =
              if f = "LCA" && defects.Defects.lca_steering_ignored then st.last_steer
              else read_float ctx (steer_req f)
            in
            (value, f)
      in
      st.last_steer <- s_cmd;
      (* Defect: the steering stage determines which acceleration request
         value is passed along (§5.4.2). *)
      let cmd =
        match steer_winner with
        | Some f
          when defects.Defects.arbiter_steering_priority_reversed && st.cur <> "Driver"
          -> req_of f
        | _ -> cmd
      in
      (* Defect: wrong slot routed when PA is the acceleration source. *)
      let cmd =
        if st.cur = "PA" && defects.Defects.pa_command_mismatch then
          read_float ctx (steer_req "PA")
        else cmd
      in
      st.last_cmd <- cmd;
      (* --- selected flags, with the latch defect --- *)
      let selected_now f = st.cur = f || s_src = f in
      let selected_now f =
        selected_now f
        || (defects.Defects.arbiter_dual_selected && f = "ACC" && st.cur = "LCA")
        (* Defect: the HMI engage request drives the 'selected' indicator
           directly, even when the activation failed — the Fig. 5.15
           phantom attribution. *)
        || defects.Defects.arbiter_dual_selected
           && f = "ACC"
           && read_bool ctx (engage_request "ACC")
           && read_bool ctx (enabled "ACC")
           && not (read_bool ctx (active "ACC"))
      in
      st.latch <-
        List.filter_map
          (fun f ->
            if selected_now f then Some (f, latch_time)
            else
              match List.assoc_opt f st.latch with
              | Some left when left -. dt > 0. && defects.Defects.arbiter_selected_latch ->
                  Some (f, left -. dt)
              | _ -> None)
          features;
      let flag f = List.mem_assoc f st.latch in
      (* The flag-derived attribution (the only attribution visible outside
         the arbiter) follows the latched 'selected' flags: during the latch
         window a transient is still attributed to the subsystem (§5.4.1). *)
      let flag_attribution =
        if st.cur <> "Driver" then st.cur
        else
          match List.find_opt (fun f -> flag f) accel_priority with
          | Some f when defects.Defects.arbiter_selected_latch -> f
          | _ -> "Driver"
      in
      [
        (accel_cmd, Value.Float cmd);
        (accel_source, Value.Sym st.cur);
        (va_source, Value.Sym flag_attribution);
        (steer_cmd, Value.Float s_cmd);
        (steer_source, Value.Sym s_src);
        (vst_source, Value.Sym s_src);
        (driver_selected, Value.Bool (st.cur = "Driver"));
      ]
      @ List.map (fun f -> (selected f, Value.Bool (flag f))) features)
