(** The formal indirect control relationships of the vehicle ICPA
    (Appendix C): the critical assumptions each goal decomposition relies
    on, written as monitorable temporal-logic formulas.

    Unlike the elevator's relationships (which feed the model checker), the
    vehicle's are validated *empirically*: they are monitored over every
    evaluation scenario, and the seeded defects show up as violations of
    exactly the assumptions they break — the thesis's "as the development
    cycle progresses, changes to the design can be checked against the
    critical assumptions to determine if those changes impact the safety
    subgoals" (§4.3), mechanized. *)

open Tl
open Signals

type t = {
  number : int;
  name : string;
  formal : Formula.t;
  comment : string;
  broken_by : string list;
      (** names of the {!Defects} fields expected to violate this
          assumption at run time *)
}

let actuation_settle = 0.5 (* s: worst-case powertrain/brake settling time *)
let arbitration_settle = 0.35 (* s: selection debounce + override + latch *)

(** R1 — the physical plant tracks the arbiter's command: whenever the
    command has been (approximately) constant for the settling time, the
    measured acceleration is within a tolerance band of it. *)
let r1_accel_follows_command =
  let err = Term.Abs (Term.Sub (fvar host_accel, fvar accel_cmd)) in
  let cmd_steady =
    (* |cmd jerk| small for the settling window *)
    Formula.prev_for actuation_settle
      (Formula.le (Term.Abs (fvar accel_cmd_jerk)) (Term.float 1.0))
  in
  (* The derived jerk signal is one state delayed, so a command step is not
     yet visible in the premise at the step state itself: tolerate a single
     state of tracking error. *)
  let tracks = Formula.le err (Term.float 0.5) in
  {
    number = 1;
    name = "AccelerationFollowsCommand";
    formal =
      Formula.entails cmd_steady
        (Formula.disj
           [ tracks; Formula.prev tracks; Formula.prev (Formula.prev tracks) ]);
    comment =
      "Vehicle acceleration follows the arbiter's command through the \
       powertrain/brake response: a command steady for the settling time is \
       tracked within 0.5 m/s2.";
    broken_by = [ "powertrain_creep_on_engage" ];
  }

(** R2 — the command equals the selected source's request: whenever a
    feature has been the acceleration source continuously, the command
    equals that feature's (previous-state) request. *)
let r2_command_equals_request =
  let per_feature f =
    let tracks =
      Formula.le
        (Term.Abs (Term.Sub (fvar accel_cmd, fvar (accel_req f))))
        (Term.float 0.05)
    in
    Formula.implies
      (Formula.and_ (source_is accel_source f)
         (Formula.prev (source_is accel_source f)))
      (* the command lags the request by one state; tolerate request steps *)
      (Formula.or_ tracks (Formula.prev tracks))
  in
  {
    number = 2;
    name = "CommandEqualsSelectedRequest";
    formal = Formula.always (Formula.conj (List.map per_feature features));
    comment =
      "The arbiter's acceleration command equals the selected feature's \
       acceleration request.";
    broken_by = [ "arbiter_steering_priority_reversed"; "pa_command_mismatch" ];
  }

(** R3 — only active, requesting features are selected. *)
let r3_selection_requires_requesting =
  let per_feature f =
    Formula.implies
      (source_is accel_source f)
      (Formula.prev (Formula.and_ (Formula.bvar (active f)) (Formula.bvar (req_accel f))))
  in
  {
    number = 3;
    name = "SelectionRequiresRequesting";
    formal = Formula.always (Formula.conj (List.map per_feature features));
    comment =
      "A feature is the acceleration source only while active and \
       requesting acceleration (one state earlier).";
    broken_by = [];
  }

(** R4 — the flag-derived attribution agrees with the command source once
    arbitration has settled. *)
let r4_attribution_agrees =
  let agree = Formula.eq (fvar va_source) (fvar accel_source) in
  {
    number = 4;
    name = "AttributionAgreesWithSource";
    formal = Formula.entails (Formula.prev_for arbitration_settle agree) agree;
    comment =
      "The externally visible 'selected'-flag attribution agrees with the \
       arbiter's command source (modulo the settling window).";
    broken_by = [ "arbiter_selected_latch"; "arbiter_dual_selected" ];
  }

(** R5 — priority: CA preempts every other requesting feature once the
    selection debounce has passed. *)
let r5_ca_priority =
  {
    number = 5;
    name = "CaHasPriority";
    formal =
      Formula.entails
        (Formula.prev_for 0.1
           (Formula.and_ (Formula.bvar (active "CA")) (Formula.bvar (req_accel "CA"))))
        (Formula.disj
           [ source_is accel_source "CA"; Formula.var_is accel_source "Driver" ]);
    comment =
      "A CA request outstanding past the selection debounce is either \
       selected or overridden by the driver — no lower-priority feature \
       holds the source.";
    broken_by = [];
  }

(** R6 — the steering command follows the steering winner's request. *)
let r6_steer_follows_winner =
  let per_feature f =
    Formula.implies
      (Formula.and_ (source_is steer_source f) (Formula.prev (source_is steer_source f)))
      (Formula.le
         (Term.Abs (Term.Sub (fvar steer_cmd, fvar (steer_req f))))
         (Term.float 0.05))
  in
  {
    number = 6;
    name = "SteeringFollowsWinner";
    formal =
      Formula.always (Formula.conj (List.map per_feature [ "LCA"; "PA" ]));
    comment = "The steering command equals the steering winner's request.";
    broken_by = [ "lca_steering_ignored" ];
  }

(** R7 — standstill hold: a stopped vehicle with a non-positive command does
    not move. *)
let r7_standstill_hold =
  {
    number = 7;
    name = "StandstillHold";
    formal =
      Formula.entails
        (Formula.conj
           [
             Formula.once_within 0.5 stopped;
             Formula.prev_for 0.5 (Formula.le (fvar accel_cmd) (Term.float 0.05));
             Formula.le (fvar accel_cmd) (Term.float 0.05);
             Formula.var_is gear "D";
           ])
        (Formula.not_ in_backward_motion);
    comment =
      "In drive, a vehicle at standstill under a non-positive command is \
       held by the brakes and cannot move backward.";
    broken_by = [ "acc_no_standstill_clamp" ];
  }

(** R8 — features request only in their operating direction: CA/ACC/LCA
    forward, RCA backward (§5.2.3). *)
let r8_direction_discipline =
  {
    number = 8;
    name = "DirectionDiscipline";
    formal =
      (* sustained motion (100 ms), so a centimetre-scale brake-release
         rollback does not count as driving backward *)
      Formula.always
        (Formula.conj
           [
             Formula.implies
               (Formula.prev_for 0.1 in_backward_motion)
               (Formula.conj
                  (List.map
                     (fun f -> Formula.not_ (Formula.bvar (req_accel f)))
                     [ "CA"; "ACC"; "LCA" ]));
             Formula.implies
               (Formula.prev_for 0.1 in_forward_motion)
               (Formula.not_ (Formula.bvar (req_accel "RCA")));
           ]);
    comment = "Features only request control in their designed direction of motion.";
    broken_by = [ "acc_no_gear_check" ];
  }

(** R9 — inactive features do not emit acceleration requests. *)
let r9_inactive_features_quiet =
  let per_feature f =
    Formula.implies
      (Formula.not_ (Formula.bvar (active f)))
      (Formula.le (Term.Abs (fvar (accel_req f))) (Term.float 0.01))
  in
  {
    number = 9;
    name = "InactiveFeaturesQuiet";
    formal =
      (* LCA mirrors ACC's request by design (§5.3.2), so it is exempt. *)
      Formula.always
        (Formula.conj
           (List.map per_feature [ "CA"; "RCA"; "ACC"; "PA" ]));
    comment = "A feature that is not active emits no acceleration request.";
    broken_by = [ "pa_ghost_requests"; "acc_controls_when_disengaged" ];
  }

(** R10 — engaged braking is not abandoned: once CA requests a hard brake
    toward a detected object, it keeps requesting until the vehicle stops
    or the object clears. *)
let r10_braking_continuity =
  {
    number = 10;
    name = "BrakingContinuity";
    formal =
      Formula.entails
        (Formula.conj
           [
             Formula.prev (Formula.bvar (active "CA"));
             Formula.prev (Formula.not_ stopped);
             Formula.prev (Formula.bvar object_detected);
             Formula.prev (Formula.gt (fvar object_closing_speed) (Term.float 0.1));
             (* …and the collision is imminent: a correct CA may stand down
                once the time-to-collision is ample again *)
             Formula.prev
               (Formula.lt (fvar object_range)
                  (Term.Mul (Term.float 3.0, fvar object_closing_speed)));
           ])
        (Formula.bvar (active "CA"));
    comment =
      "CA stays engaged while the vehicle still closes on a detected \
       object — a hard brake is not cancelled mid-approach.";
    broken_by = [ "ca_no_hysteresis"; "radar_min_range_dropout" ];
  }

let all =
  [
    r1_accel_follows_command;
    r2_command_equals_request;
    r3_selection_requires_requesting;
    r4_attribution_agrees;
    r5_ca_priority;
    r6_steer_follows_winner;
    r7_standstill_hold;
    r8_direction_discipline;
    r9_inactive_features_quiet;
    r10_braking_continuity;
  ]

(** [check trace] — monitor every critical assumption over a scenario
    trace; returns (relationship, violation intervals). *)
let check (trace : Trace.t) =
  List.map
    (fun r ->
      let ok = Rtmon.Incremental.run_trace r.formal trace in
      (r, Rtmon.Violation.of_series ~dt:(Trace.dt trace) ok))
    all
