(** Collision Avoidance (CA): detects objects in the forward path and stops
    the vehicle before a collision (§5.2.1).

    Seeded defects:
    - no engage hysteresis: braking raises the time-to-collision back above
      the engage threshold, so CA cancels and re-engages in a chatter
      (Fig. 5.2);
    - no hold-at-stop: CA releases the brake instead of holding the vehicle
      until the driver initiates motion (§5.4.1);
    the radar minimum-range dropout (in [Plant.sensors]) additionally makes
    CA release its final hard brake just before impact. *)

open Tl
open Signals

let engage_ttc = 2.2
let brake_request = -9.0

let release_jerk_limit = 2.0 (* m/s^3: the repaired CA releases gradually *)

let component (defects : Defects.t) =
  let engaged = ref false in
  let releasing = ref false in
  let prev_req = ref 0. in
  Sim.Component.make ~name:"CA"
    ~outputs:
      [
        (active "CA", Value.Bool false);
        (accel_req "CA", Value.Float 0.);
        (req_accel "CA", Value.Bool false);
        (steer_req "CA", Value.Float 0.);
        (req_steer "CA", Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let enabled = read_bool ctx (enabled "CA") in
      let detected = read_bool ctx object_detected in
      let range = read_float ctx object_range in
      let closing = read_float ctx object_closing_speed in
      let speed = read_float ctx host_speed in
      let forward_gear = read_sym ctx gear = "D" in
      let ttc = if closing > 0.05 then range /. closing else Float.infinity in
      let should_engage = enabled && forward_gear && detected && ttc < engage_ttc in
      (if defects.Defects.ca_no_hysteresis then
         (* the engage condition is re-evaluated every state: braking pushes
            ttc back over the threshold and CA cancels *)
         engaged := should_engage
       else if should_engage then begin
         engaged := true;
         releasing := false
       end
       else if
         (* repaired behaviour: once engaged, brake until stopped, then hold
            until the driver applies the throttle AND the path is clear (an
            emergency hold is never released into an obstacle); the release
            then bleeds the request off jerk-limited while CA stays active *)
         !engaged
         && Float.abs speed < 0.01
         && read_float ctx throttle_pedal > 0.05
         && not (detected && range < 4.0)
       then begin
         engaged := false;
         releasing := true
       end
       else if not (enabled && forward_gear) then begin
         engaged := false;
         releasing := !releasing && !prev_req < -0.01
       end);
      if !releasing && !prev_req >= -0.01 then releasing := false;
      let raw =
        if !engaged then
          if (not defects.Defects.ca_no_hysteresis) && Float.abs speed < 0.01 then -0.25
          else brake_request
        else 0.
      in
      let still_active = !engaged || !releasing in
      (* Brake application is immediate; the repaired CA releases the brake
         jerk-limited, while the defective CA drops the request instantly —
         the Fig. 5.2 step and the 2B.CA violations. *)
      let request =
        if raw <= !prev_req || defects.Defects.ca_no_hysteresis then raw
        else
          Float.min raw (!prev_req +. (release_jerk_limit *. ctx.Sim.Component.dt))
      in
      prev_req := request;
      [
        (active "CA", Value.Bool still_active);
        (accel_req "CA", Value.Float request);
        (req_accel "CA", Value.Bool still_active);
        (steer_req "CA", Value.Float 0.);
        (req_steer "CA", Value.Bool false);
      ])
