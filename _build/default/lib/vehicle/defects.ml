(** The design and implementation defects of the research vehicle.

    The thesis evaluated ICPA monitoring on a *partially complete* system and
    its findings are the defects themselves (§5.4, §6.1.2). We reproduce the
    evaluation by seeding exactly those defects; each is represented by a
    toggle so tests can run the system both ways (defect present → thesis
    behaviour; defect absent → goals hold). *)

type t = {
  pa_ghost_requests : bool;
      (** PA emits acceleration requests while not enabled (Fig. 5.3);
          masked by Arbiter redundancy but violates subgoals 2B/4B. *)
  ca_no_hysteresis : bool;
      (** CA's engage condition has no hysteresis: braking raises the
          time-to-collision above the threshold, so CA cancels and re-engages
          repeatedly (Fig. 5.2, "begins a braking action, but cancels it
          briefly before beginning it again"). *)
  radar_min_range_dropout : bool;
      (** The forward radar loses objects closer than its minimum range, so
          CA releases its final hard brake just before impact (the Fig. 2.2
          fault-tree branch "object detection misses object that is there"). *)
  arbiter_steering_priority_reversed : bool;
      (** Steering arbitration priority is the reverse of acceleration
          arbitration, and the steering stage determines which request value
          is passed along — CA stays 'selected' while PA's request becomes
          the acceleration command (Fig. 5.4, §5.4.2). *)
  arbiter_selected_latch : bool;
      (** 'Selected' flags are latched ~50 ms after the source actually
          changes, so control actions are attributed to a subsystem during
          rebound transients (§5.3.2: "control actions attributed to
          multiple sources"). *)
  acc_controls_when_disengaged : bool;
      (** ACC computes requests toward an uninitialized set speed of 0 m/s
          whenever merely enabled (Fig. 5.6, §5.4.3). *)
  acc_no_gear_check : bool;
      (** ACC engages in reverse and is selected to control acceleration
          (Fig. 5.13, §5.4.8). *)
  acc_integrator_windup : bool;
      (** ACC keeps integrating while the driver overrides, so on regaining
          control it decelerates/accelerates in a hunting cycle (Fig. 5.8). *)
  acc_no_standstill_clamp : bool;
      (** Gap control can command negative speed through zero — vehicle
          speed becomes negative with ACC/LCA active (Fig. 5.11, §5.4.6). *)
  lca_steering_ignored : bool;
      (** When LCA wins steering arbitration, the steering command keeps its
          stale value instead of LCA's request (Fig. 5.10). *)
  rca_never_engages : bool;
      (** RCA's engage condition tests the wrong gear, so it never brakes in
          reverse (Fig. 5.12, §5.4.7). *)
  pa_command_mismatch : bool;
      (** When PA is the acceleration source the Arbiter routes the wrong
          slot, so the command differs from PA's request (Fig. 5.14). *)
  powertrain_creep_on_engage : bool;
      (** A failed ACC engage attempt at standstill leaks a creep torque to
          the powertrain: the vehicle accelerates although ACC never becomes
          active nor selected (Fig. 5.15, §5.4.10). *)
  arbiter_dual_selected : bool;
      (** Separate 'selected' flags per subsystem allow two subsystems (e.g.
          LCA and ACC) to be flagged simultaneously (§5.3.2). *)
  arbiter_selects_under_pedals : bool;
      (** Selection ignores the pedals: a newly engaged feature briefly
          takes control while the driver is applying the throttle, until the
          override logic re-evaluates (Fig. 5.8, §5.4.4). *)
}

(** The system exactly as the thesis found it. *)
let as_evaluated =
  {
    pa_ghost_requests = true;
    ca_no_hysteresis = true;
    radar_min_range_dropout = true;
    arbiter_steering_priority_reversed = true;
    arbiter_selected_latch = true;
    acc_controls_when_disengaged = true;
    acc_no_gear_check = true;
    acc_integrator_windup = true;
    acc_no_standstill_clamp = true;
    lca_steering_ignored = true;
    rca_never_engages = true;
    pa_command_mismatch = true;
    powertrain_creep_on_engage = true;
    arbiter_dual_selected = true;
    arbiter_selects_under_pedals = true;
  }

(** Every defect repaired — the system as it should have been built. *)
let repaired =
  {
    pa_ghost_requests = false;
    ca_no_hysteresis = false;
    radar_min_range_dropout = false;
    arbiter_steering_priority_reversed = false;
    arbiter_selected_latch = false;
    acc_controls_when_disengaged = false;
    acc_no_gear_check = false;
    acc_integrator_windup = false;
    acc_no_standstill_clamp = false;
    lca_steering_ignored = false;
    rca_never_engages = false;
    pa_command_mismatch = false;
    powertrain_creep_on_engage = false;
    arbiter_dual_selected = false;
    arbiter_selects_under_pedals = false;
  }
