(** Lane Change Assist (LCA): performs a driver-requested lane change in
    conjunction with ACC, which provides the longitudinal control — LCA and
    ACC share acceleration requests (§5.3.2).

    Behaviour matching Fig. 5.10: engaged at t, active one state later, and
    the steering request begins 50 ms after activation. *)

open Tl
open Signals

let steer_angle = 12.0 (* degrees *)
let maneuver_delay = 0.05
let maneuver_time = 2.5

let component (_defects : Defects.t) =
  let active_state = ref false in
  let active_since = ref 0. in
  let prev_engage = ref false in
  Sim.Component.make ~name:"LCA"
    ~outputs:
      [
        (active "LCA", Value.Bool false);
        (accel_req "LCA", Value.Float 0.);
        (req_accel "LCA", Value.Bool false);
        (steer_req "LCA", Value.Float 0.);
        (req_steer "LCA", Value.Bool false);
      ]
    (fun ctx ->
      let open Sim.Component in
      let now = ctx.now in
      let engage = read_bool ctx (engage_request "LCA") in
      let enabled = read_bool ctx (enabled "LCA") in
      let acc_on = read_bool ctx (active "ACC") in
      (if engage && not !prev_engage && enabled && acc_on then begin
         active_state := true;
         active_since := now
       end);
      prev_engage := engage;
      if not (enabled && acc_on) then active_state := false;
      let elapsed = now -. !active_since in
      let maneuvering =
        !active_state && elapsed >= maneuver_delay && elapsed < maneuver_delay +. maneuver_time
      in
      let steer =
        if maneuvering then
          (* half-sine lane-change profile *)
          steer_angle
          *. Float.sin (Float.pi *. (elapsed -. maneuver_delay) /. maneuver_time)
        else 0.
      in
      [
        (active "LCA", Value.Bool !active_state);
        (* longitudinal control shared with ACC *)
        (accel_req "LCA", Value.Float (read_float ctx (accel_req "ACC")));
        (req_accel "LCA", Value.Bool !active_state);
        (steer_req "LCA", Value.Float steer);
        (req_steer "LCA", Value.Bool maneuvering);
      ])
