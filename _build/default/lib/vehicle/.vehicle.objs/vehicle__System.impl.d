lib/vehicle/system.ml: Arbiter Defects Feature_acc Feature_ca Feature_lca Feature_pa Feature_rca Icpa Kaos List Plant Signals Sim State Tl Value
