lib/vehicle/goals.ml: Formula Kaos List Signals Term Tl
