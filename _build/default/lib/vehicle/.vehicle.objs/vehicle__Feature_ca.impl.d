lib/vehicle/feature_ca.ml: Defects Float Signals Sim Tl Value
