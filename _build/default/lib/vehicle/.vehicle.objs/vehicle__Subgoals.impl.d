lib/vehicle/subgoals.ml: Fmt Formula Goals Kaos Signals Term Tl
