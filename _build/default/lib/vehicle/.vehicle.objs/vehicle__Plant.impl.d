lib/vehicle/plant.ml: Defects Float Hashtbl List Option Signals Sim Tl Value
