lib/vehicle/arbiter.ml: Defects Hashtbl List Signals Sim Tl Value
