lib/vehicle/feature_acc.ml: Defects Float Signals Sim Tl Value
