lib/vehicle/signals.ml: Formula List String Term Tl
