lib/vehicle/feature_lca.ml: Defects Float Signals Sim Tl Value
