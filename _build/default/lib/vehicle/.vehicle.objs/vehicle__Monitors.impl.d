lib/vehicle/monitors.ml: Compose Fmt Goals Kaos List Rtmon Subgoals Tl Trace
