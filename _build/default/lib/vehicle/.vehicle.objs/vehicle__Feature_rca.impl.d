lib/vehicle/feature_rca.ml: Defects Float Signals Sim Tl Value
