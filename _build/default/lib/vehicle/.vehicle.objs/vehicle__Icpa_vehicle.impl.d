lib/vehicle/icpa_vehicle.ml: Formula Goals Icpa Kaos List Monitors Signals Subgoals Tl
