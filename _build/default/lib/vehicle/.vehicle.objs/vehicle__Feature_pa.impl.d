lib/vehicle/feature_pa.ml: Defects Float Signals Sim Tl Value
