lib/vehicle/relationships.ml: Formula List Rtmon Signals Term Tl Trace
