lib/vehicle/defects.ml:
