(** The nine system safety goals of the semi-autonomous vehicle
    (Tables 5.1–5.2). Goal numbers follow Table 5.3.

    Each source-attribution goal is built by a parameterized constructor so
    the vehicle level can monitor the externally observable flag-derived
    attribution ([va_source]/[vst_source]) while the Arbiter level monitors
    its own immediate command source (see {!Signals}). *)

open Tl
open Signals

(* ------------------------------------------------------------------ *)
(* Parameterized bodies shared with the Arbiter subgoals               *)

let g3_body ~asrc ~ssrc =
  let per_feature f =
    Formula.implies
      (Formula.conj
         [
           Formula.bvar (req_accel f);
           Formula.bvar (req_steer f);
           Formula.or_ (source_is asrc f) (source_is ssrc f);
         ])
      (Formula.and_ (source_is asrc f) (source_is ssrc f))
  in
  Formula.always (Formula.conj (List.map per_feature features))

let g4_premise ~asrc =
  Formula.conj
    [
      Formula.prev_for stopped_time stopped;
      Formula.not_ (Formula.once_within go_time (Formula.rose throttle_applied));
      is_subsystem asrc;
      Formula.not_ (Formula.once_within go_time (Formula.bvar hmi_go));
    ]

let override_premise ~forward f =
  Formula.conj
    [
      (if forward then in_forward_motion else in_backward_motion);
      Formula.or_ brake_applied throttle_applied;
      Formula.bvar (req_accel f);
      (if forward then Formula.ge (fvar (accel_req f)) (Term.float hard_brake)
       else Formula.le (fvar (accel_req f)) (Term.float (-.hard_brake)));
    ]

let override_body ~forward ~asrc =
  Formula.always
    (Formula.conj
       (List.map
          (fun f ->
            Formula.implies (override_premise ~forward f)
              (Formula.not_ (source_is asrc f)))
          features))

let steering_override_body ~ssrc =
  Formula.entails (Formula.bvar steering_wheel_active) (Formula.not_ (is_subsystem ssrc))

let forward_block_body ~asrc ~ssrc =
  Formula.entails in_forward_motion
    (Formula.not_ (Formula.or_ (source_is asrc "RCA") (source_is ssrc "RCA")))

let backward_block_body ~asrc ~ssrc =
  Formula.entails in_backward_motion
    (Formula.not_
       (Formula.disj
          (List.concat_map
             (fun f -> [ source_is asrc f; source_is ssrc f ])
             [ "CA"; "ACC"; "LCA" ])))

(* ------------------------------------------------------------------ *)
(* The nine vehicle-level goals                                        *)

(** Goal 1 — Achieve[AutoAccelBelowThreshold]: vehicle acceleration caused
    by autonomous control shall not exceed 2 m/s². (One-sided: hard
    *decelerations* remain allowed for emergency stops, §5.2.3.) *)
let g1 =
  Kaos.Goal.achieve "AutoAccelBelowThreshold"
    ~informal:
      "Vehicle acceleration caused by autonomous vehicle control shall not \
       exceed 2 m/s2."
    (Formula.entails (is_subsystem va_source)
       (Formula.le (fvar host_accel) (Term.float accel_limit)))

(** Goal 2 — Achieve[AutoJerkBelowThreshold]. *)
let g2 =
  Kaos.Goal.achieve "AutoJerkBelowThreshold"
    ~informal:
      "Vehicle jerk caused by autonomous vehicle control shall not exceed \
       2.5 m/s3."
    (Formula.entails (is_subsystem va_source)
       (Formula.le (fvar host_jerk) (Term.float jerk_limit)))

(** Goal 3 — Achieve[SubsystemAccelSteeringAgreement]. *)
let g3 =
  Kaos.Goal.achieve "SubsystemAccelSteeringAgreement"
    ~informal:
      "If a subsystem a) requests control of acceleration and steering and \
       b) is granted control of either, then the subsystem shall control \
       both acceleration and steering."
    (g3_body ~asrc:va_source ~ssrc:vst_source)

(** Goal 4 — Achieve[NoAutoAccelFromStop]. *)
let g4 =
  Kaos.Goal.achieve "NoAutoAccelFromStop"
    ~informal:
      "If the vehicle is stopped for StoppedTime, the throttle pedal has not \
       been applied within GoTime, a subsystem is controlling acceleration, \
       and the HMI has not sent a go signal within GoTime, then there shall \
       be no vehicle acceleration."
    (Formula.entails (g4_premise ~asrc:va_source) (Formula.not_ is_accelerating))

(** Goal 5 — Achieve[DriverForwardAccelOverride]. *)
let g5 =
  Kaos.Goal.achieve "DriverForwardAccelOverride"
    ~informal:
      "If the vehicle is moving forward, the driver is applying the brake or \
       throttle pedal, and a subsystem is requesting an acceleration >= -2 \
       m/s2 (not a hard stop), then the subsystem shall not control vehicle \
       acceleration."
    (override_body ~forward:true ~asrc:va_source)

(** Goal 6 — Achieve[DriverBackwardAccelOverride]. *)
let g6 =
  Kaos.Goal.achieve "DriverBackwardAccelOverride"
    ~informal:
      "If the vehicle is moving backward, the driver is applying the brake \
       or throttle pedal, and a subsystem is requesting an acceleration <= 2 \
       m/s2 (not a hard stop), then the subsystem shall not control vehicle \
       acceleration."
    (override_body ~forward:false ~asrc:va_source)

(** Goal 7 — Achieve[DriverSteeringOverride]. *)
let g7 =
  Kaos.Goal.achieve "DriverSteeringOverride"
    ~informal:
      "If the driver is turning the steering wheel, then no subsystem shall \
       control vehicle steering."
    (steering_override_body ~ssrc:vst_source)

(** Goal 8 — Achieve[ForwardBlockAccelSteering]. *)
let g8 =
  Kaos.Goal.achieve "ForwardBlockAccelSteering"
    ~informal:
      "If the vehicle is moving forward, then the subsystem RCA shall not \
       control vehicle acceleration or steering."
    (forward_block_body ~asrc:va_source ~ssrc:vst_source)

(** Goal 9 — Achieve[BackwardBlockAccelSteering]. *)
let g9 =
  Kaos.Goal.achieve "BackwardBlockAccelSteering"
    ~informal:
      "If the vehicle is moving backward, then the subsystems CA, ACC, and \
       LCA shall not control vehicle acceleration or steering."
    (backward_block_body ~asrc:va_source ~ssrc:vst_source)

(** All nine goals in Table 5.3 order. *)
let all = [ (1, g1); (2, g2); (3, g3); (4, g4); (5, g5); (6, g6); (7, g7); (8, g8); (9, g9) ]
