(** ICPA-derived subsystem subgoals for the nine vehicle safety goals
    (Table 5.3, Appendix C).

    Arbiter subgoals ([nA]) mirror the system goal on the *command* the
    Arbiter directly controls. Feature subgoals ([nB]) are restrictive
    OR-reductions on the feature's *requests*: "it is simpler to always
    prohibit the subsystems from requesting excessive vehicle acceleration
    or jerk, rather than prohibiting it only when those requests are used to
    control vehicle acceleration" (§5.3).

    LCA shares acceleration requests with ACC, so LCA carries no
    acceleration-request subgoals of its own (§5.3.2). *)

open Tl
open Signals

(* --------------------------- Arbiter (nA) --------------------------- *)

let a1 =
  Kaos.Goal.achieve "AutoAccelCommandBelowThreshold"
    ~informal:"The acceleration command from a subsystem shall not exceed 2 m/s2."
    (Formula.entails (is_subsystem accel_source)
       (Formula.le (fvar accel_cmd) (Term.float accel_limit)))

let a2 =
  Kaos.Goal.achieve "AutoJerkCommandBelowThreshold"
    ~informal:"The jerk of a subsystem acceleration command shall not exceed 2.5 m/s3."
    (Formula.entails (is_subsystem accel_source)
       (Formula.le (fvar accel_cmd_jerk) (Term.float jerk_limit)))

let a3 =
  Kaos.Goal.achieve "SubsystemAccelSteeringCommandAgreement"
    ~informal:"The arbiter shall not mix acceleration and steering control sources."
    (Goals.g3_body ~asrc:accel_source ~ssrc:steer_source)

let a4 =
  Kaos.Goal.achieve "NoAutoAccelCommandFromStop"
    ~informal:
      "From a stop, without throttle or go signal, a subsystem acceleration \
       command shall not be positive."
    (Formula.entails
       (Goals.g4_premise ~asrc:accel_source)
       (Formula.le (fvar accel_cmd) (Term.float 0.)))

let a5 =
  Kaos.Goal.achieve "DriverForwardAccelOverrideAccelCommand"
    ~informal:"Pedal application shall deselect subsystem acceleration commands."
    (Goals.override_body ~forward:true ~asrc:accel_source)

let a6 =
  Kaos.Goal.achieve "DriverBackwardAccelOverrideAccelCommand"
    ~informal:"Pedal application shall deselect subsystem acceleration commands."
    (Goals.override_body ~forward:false ~asrc:accel_source)

let a7 =
  Kaos.Goal.achieve "DriverSteeringOverrideSteeringCommand"
    ~informal:"Steering wheel activity shall deselect subsystem steering commands."
    (Goals.steering_override_body ~ssrc:steer_source)

let a8 =
  Kaos.Goal.achieve "ForwardBlockAccelSteeringCommand"
    ~informal:"In forward motion the arbiter shall not select RCA."
    (Goals.forward_block_body ~asrc:accel_source ~ssrc:steer_source)

let a9 =
  Kaos.Goal.achieve "BackwardBlockAccelSteeringCommand"
    ~informal:"In backward motion the arbiter shall not select CA, ACC or LCA."
    (Goals.backward_block_body ~asrc:accel_source ~ssrc:steer_source)

(* --------------------------- Features (nB) --------------------------- *)

(** 1B: Maintain[AutoAccelRequestBelowThreshold] — restrictive
    OR-reduction: requests are always bounded. *)
let b1 f =
  Kaos.Goal.maintain
    (Fmt.str "AutoAccelRequestBelowThreshold.%s" f)
    ~informal:(Fmt.str "%s shall never request acceleration above 2 m/s2." f)
    (Formula.always (Formula.le (fvar (accel_req f)) (Term.float accel_limit)))

(** 2B: Maintain[AutoJerkRequestBelowThreshold]. *)
let b2 f =
  Kaos.Goal.maintain
    (Fmt.str "AutoJerkRequestBelowThreshold.%s" f)
    ~informal:(Fmt.str "%s request jerk shall never exceed 2.5 m/s3." f)
    (Formula.always (Formula.le (fvar (accel_req_jerk f)) (Term.float jerk_limit)))

(** 4B: Achieve[NoAutoAccelRequestFromStop]. *)
let b4 f =
  Kaos.Goal.achieve
    (Fmt.str "NoAutoAccelRequestFromStop.%s" f)
    ~informal:
      (Fmt.str
         "%s shall not request positive acceleration from a stop without a \
          go signal or throttle."
         f)
    (Formula.entails
       (Formula.conj
          [
            Formula.prev_for stopped_time stopped;
            Formula.not_ (Formula.once_within go_time (Formula.rose throttle_applied));
            Formula.not_ (Formula.once_within go_time (Formula.bvar hmi_go));
          ])
       (Formula.le (fvar (accel_req f)) (Term.float 0.)))

(** 5B/6B: Achieve[Driver{Forward,Backward}AccelOverrideAccelRequest] —
    restrictive: the feature must withdraw its request entirely. *)
let b5 f =
  Kaos.Goal.achieve
    (Fmt.str "DriverForwardAccelOverrideAccelRequest.%s" f)
    ~informal:(Fmt.str "%s shall withdraw non-emergency requests under pedal override." f)
    (Formula.entails
       (Goals.override_premise ~forward:true f)
       (Formula.not_ (Formula.bvar (req_accel f))))

let b6 f =
  Kaos.Goal.achieve
    (Fmt.str "DriverBackwardAccelOverrideAccelRequest.%s" f)
    ~informal:(Fmt.str "%s shall withdraw non-emergency requests under pedal override." f)
    (Formula.entails
       (Goals.override_premise ~forward:false f)
       (Formula.not_ (Formula.bvar (req_accel f))))

(** 7B: Achieve[DriverSteeringOverrideSteeringRequest]. *)
let b7 f =
  Kaos.Goal.achieve
    (Fmt.str "DriverSteeringOverrideSteeringRequest.%s" f)
    ~informal:(Fmt.str "%s shall withdraw steering requests when the driver steers." f)
    (Formula.entails
       (Formula.and_ (Formula.prev (Formula.bvar steering_wheel_active))
          (Formula.bvar (active f)))
       (Formula.not_ (Formula.bvar (req_steer f))))

(** 8B: RCA shall not request control in forward motion. *)
let b8 =
  Kaos.Goal.achieve "ForwardBlockAccelSteeringRequest.RCA"
    ~informal:"RCA shall not request acceleration or steering in forward motion."
    (Formula.entails
       (Formula.prev in_forward_motion)
       (Formula.not_
          (Formula.or_ (Formula.bvar (req_accel "RCA")) (Formula.bvar (req_steer "RCA")))))

(** 9B: CA/ACC/LCA shall not request control in backward motion. *)
let b9 f =
  Kaos.Goal.achieve
    (Fmt.str "BackwardBlockAccelSteeringRequest.%s" f)
    ~informal:(Fmt.str "%s shall not request control in backward motion." f)
    (Formula.entails
       (Formula.prev in_backward_motion)
       (Formula.not_
          (Formula.or_ (Formula.bvar (req_accel f)) (Formula.bvar (req_steer f)))))
