(** Goal realizability analysis after Letier & van Lamsweerde (§2.3.2,
    §4.1.2, §4.5.3).

    A goal [G(M, C)] is strictly realizable by agent [ag] iff
    [M ⊆ Mon(ag) ∪ Ctrl(ag)], [C ⊆ Ctrl(ag)], and the formula contains no
    reference to the future. A variable occurrence in the {e present} state
    counts as a reference to the future unless the evaluating agent itself
    controls that variable — monitored values are only available one state
    later (§4.1.3). *)

open Tl

type defect =
  | Lack_of_monitorability of string list
      (** variables the agent can neither monitor nor control *)
  | Lack_of_control of string list
      (** present/future-constrained variables the agent does not control *)
  | Reference_to_future of string list
      (** variables constrained strictly in the future (♦, □, ○), or
          present-state variables the agent can only monitor *)
  | Unsatisfiable

val pp_defect : Format.formatter -> defect -> unit

type verdict = Realizable | Unrealizable of defect list

val is_realizable : verdict -> bool

(** Temporal obligations a formula places on each of its variables. *)
type obligation = Needs_observation | Needs_control | Needs_prescience

val obligations : Formula.t -> (string * obligation) list
(** For each variable (with the top-level □ stripped), the strongest
    obligation implied by its occurrences: a past occurrence needs
    observation; a present occurrence needs control (by the realizing
    agent, in the same state); a future occurrence needs prescience and
    makes the goal unrealizable outright. *)

val check : Goal.t -> Agent.t -> verdict
(** Letier & van Lamsweerde's realizability check of a goal by an agent (or
    by a coordinated group via {!Agent.union}). *)
