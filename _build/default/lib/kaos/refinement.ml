(** AND/OR goal refinement graphs (§2.3.2).

    A goal node carries zero or more *and-reductions* (alternative complete
    decompositions, each a list of subgoals that jointly satisfy the parent)
    — OR-choice between reductions, AND within one. Assignments record which
    agent is responsible for a leaf goal. *)

type node = {
  goal : Goal.t;
  reductions : node list list;  (** alternative and-reductions *)
  assigned_to : string option;  (** responsible agent for a leaf goal *)
}

let leaf ?agent goal = { goal; reductions = []; assigned_to = agent }
let refine goal reductions = { goal; reductions; assigned_to = None }

let rec leaves node =
  match node.reductions with
  | [] -> [ node ]
  | rs -> List.concat_map (fun r -> List.concat_map leaves r) rs

(** All goals in the graph, parents before children. *)
let rec all_goals node =
  node.goal :: List.concat_map (fun r -> List.concat_map all_goals r) node.reductions

(** Check every leaf has a responsible agent (completeness of assignment). *)
let fully_assigned node =
  List.for_all (fun l -> l.assigned_to <> None) (leaves node)

let rec pp ?(indent = 0) ppf node =
  let pad = String.make indent ' ' in
  Fmt.pf ppf "%s%s%a@." pad node.goal.Goal.name
    (fun ppf -> function
      | Some ag -> Fmt.pf ppf "  [agent: %s]" ag
      | None -> ())
    node.assigned_to;
  List.iteri
    (fun i red ->
      if List.length node.reductions > 1 then
        Fmt.pf ppf "%s alternative %d:@." pad (i + 1);
      List.iter (fun child -> pp ~indent:(indent + 2) ppf child) red)
    node.reductions
