(** AND/OR goal refinement graphs (§2.3.2).

    A goal node carries zero or more {e and-reductions} (alternative
    complete decompositions, each a list of subgoals that jointly satisfy
    the parent) — OR-choice between reductions, AND within one. Assignments
    record which agent is responsible for a leaf goal. *)

type node = {
  goal : Goal.t;
  reductions : node list list;  (** alternative and-reductions *)
  assigned_to : string option;  (** responsible agent for a leaf goal *)
}

val leaf : ?agent:string -> Goal.t -> node
val refine : Goal.t -> node list list -> node
val leaves : node -> node list

val all_goals : node -> Goal.t list
(** All goals in the graph, parents before children. *)

val fully_assigned : node -> bool
(** Every leaf has a responsible agent. *)

val pp : ?indent:int -> Format.formatter -> node -> unit
