(** Goal elaboration tactics (§2.3.2, §4.1.2, §3.3.4–3.3.5).

    Each tactic records its name, the produced subgoals, the proof
    obligations (critical assumptions) the decomposition relies on, and
    whether the result is restrictive — exactly the information the ICPA
    elaboration field documents (Table 4.3). *)

open Tl

type result = {
  tactic : string;
  subgoals : Formula.t list;
  obligations : Formula.t list;  (** domain properties that must hold *)
  restrictive : bool;
}

let body = function Formula.Always g -> g | g -> g

let as_implication f =
  match body f with
  | Formula.Implies (p, q) -> (p, q)
  | _ -> invalid_arg "tactic requires a goal of the form P ⇒ Q"

(** Introduce accuracy/actuation goal (Fig. 4.1): replace variable [on] by an
    equivalent variable [replacement] (a sensor reading or actuator set
    point); the equivalence [□(on ⇔ replacement)] becomes an accuracy goal.
    Works on boolean state variables. *)
let introduce_accuracy_actuation ~on ~replacement goal =
  let ren v = if v = on then replacement else v in
  {
    tactic = "introduce accuracy/actuation goal";
    subgoals = [ Formula.rename ren goal ];
    obligations = [ Formula.always (Formula.iff (Formula.bvar on) (Formula.bvar replacement)) ];
    restrictive = false;
  }

(** Split lack of monitorability/controllability by chaining (Fig. 4.2):
    [P ⇒ Q] becomes [P ⇒ M] and [M ⇒ Q] through milestone [M]. *)
let split_by_chaining ~milestone goal =
  let p, q = as_implication goal in
  {
    tactic = "split lack of monitorability/controllability by chaining";
    subgoals = [ Formula.entails p milestone; Formula.entails milestone q ];
    obligations = [];
    restrictive = false;
  }

(** Split lack of monitorability/controllability by case (Fig. 4.3):
    [P ⇒ Q] becomes [P ∧ fᵢ ⇒ Qᵢ] for each case [(fᵢ, Qᵢ)], under the
    completeness obligation [□(f₁ ∨ … ∨ fₙ)]. *)
let split_by_case ~cases goal =
  let p, _q = as_implication goal in
  {
    tactic = "split lack of monitorability/controllability by case";
    subgoals =
      List.map (fun (cond, qi) -> Formula.entails (Formula.and_ p cond) qi) cases;
    obligations = [ Formula.always (Formula.disj (List.map fst cases)) ];
    restrictive = false;
  }

(** OR-reduction on an invariant disjunction (§3.3.5): [□(A ∨ X)] is
    satisfied by the more restrictive [□A]. *)
let or_reduce ~keep goal =
  ignore (body goal);
  {
    tactic = "OR reduction";
    subgoals = [ Formula.always keep ];
    obligations = [];
    restrictive = true;
  }

(** Antecedent strengthening (§3.3.5): [A ∧ X ⇒ B] is satisfied by the more
    restrictive [A ⇒ B], dropping the unknown/unrealizable conjunct [X]. *)
let drop_antecedent_conjunct ~keep goal =
  let _p, q = as_implication goal in
  {
    tactic = "antecedent OR reduction (drop unrealizable conjunct)";
    subgoals = [ Formula.entails keep q ];
    obligations = [];
    restrictive = true;
  }

(** Conjunctive split (§3.3.4): [□(A ∧ X)] divides into [□A] and [□X];
    [A ∨ X ⇒ B] divides into [A ⇒ B] and [X ⇒ B]. The division is exact —
    useful because the realizable part can be ensured even when [X] cannot. *)
let conjunctive_split goal =
  match body goal with
  | Formula.And (x, y) ->
      {
        tactic = "conjunctive split";
        subgoals = [ Formula.always x; Formula.always y ];
        obligations = [];
        restrictive = false;
      }
  | Formula.Implies (p, q) ->
      let cases = (match p with Formula.Or (x, y) -> [ x; y ] | _ -> [ p ]) in
      {
        tactic = "conjunctive split";
        subgoals = List.map (fun x -> Formula.entails x q) cases;
        obligations = [];
        restrictive = false;
      }
  | _ -> invalid_arg "conjunctive_split: expected □(A ∧ X) or (A ∨ X) ⇒ B"

(** Safety margin (§4.5.2): strengthen every upper-bound comparison
    [t ≤ u] to [t ≤ u − margin] (and [t ≥ u] to [t ≥ u + margin]),
    shrinking the allowed envelope as in Eq. 3.48 / Eq. 4.31. *)
let safety_margin ~margin goal =
  let m = Term.float margin in
  let rec go (f : Formula.t) : Formula.t =
    match f with
    | Atom (Le (x, y)) -> Formula.le x (Term.Sub (y, m))
    | Atom (Lt (x, y)) -> Formula.lt x (Term.Sub (y, m))
    | Atom (Ge (x, y)) -> Formula.ge x (Term.Add (y, m))
    | Atom (Gt (x, y)) -> Formula.gt x (Term.Add (y, m))
    | True | False | Atom _ -> f
    | Not g -> Formula.Not (go g)
    | And (x, y) -> Formula.And (go x, go y)
    | Or (x, y) -> Formula.Or (go x, go y)
    | Implies (x, y) -> Formula.Implies (x, go y)
    | Iff (x, y) -> Formula.Iff (x, y)
    | Prev g -> Formula.Prev (go g)
    | Once g -> Formula.Once (go g)
    | Hist g -> Formula.Hist (go g)
    | PrevFor (t, g) -> Formula.PrevFor (t, go g)
    | OnceWithin (t, g) -> Formula.OnceWithin (t, go g)
    | Rose g -> Formula.Rose (go g)
    | Next g -> Formula.Next (go g)
    | Eventually g -> Formula.Eventually (go g)
    | Always g -> Formula.Always (go g)
  in
  {
    tactic = Fmt.str "safety margin (%g)" margin;
    subgoals = [ go goal ];
    obligations = [];
    restrictive = margin > 0.;
  }

(** The alarm/response refinement for safety goals (§2.3.2): introduce a
    monitor subgoal raising [alarm] when [hazard_precursor] holds, and a
    response subgoal restoring [safe] within the response window. *)
let introduce_alarm_response ~hazard_precursor ~alarm ~safe ~response_time =
  {
    tactic = "introduce alarm/response";
    subgoals =
      [
        Formula.entails hazard_precursor alarm;
        Formula.entails (Formula.prev_for response_time alarm) safe;
      ];
    obligations = [];
    restrictive = false;
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>Tactic: %s%s@,Subgoals:@,  %a%a@]" r.tactic
    (if r.restrictive then " (restrictive)" else "")
    Fmt.(list ~sep:(any "@,  ") Formula.pp)
    r.subgoals
    (fun ppf obs ->
      if obs <> [] then
        Fmt.pf ppf "@,Obligations:@,  %a" Fmt.(list ~sep:(any "@,  ") Formula.pp) obs)
    r.obligations
