(** Goal realizability patterns and alternative goals — a mechanized,
    machine-checked reproduction of Table 4.5 and Appendix B (Tables
    B.1–B.13).

    For each goal form (a temporal template over metavariables A, B, C) and
    each assignment of agent capabilities to the metavariables, {!analyze}
    decides whether the goal is realizable as stated or through a logically
    equivalent representation, and otherwise derives *restrictive alternative
    goals*: strictly stronger goals that are realizable with the given
    capabilities. Every alternative is verified to entail the parent goal by
    exhaustive evaluation over all boolean traces up to a bounded length, so
    the catalog is correct by construction rather than transcription. *)

open Tl

type capability = Controllable | Observable | Unavailable

let capability_to_string = function
  | Controllable -> "Ctrl"
  | Observable -> "Obs"
  | Unavailable -> "—"

type form = { form_name : string; body : Formula.t; form_vars : string list }
(** [body] is the un-quantified invariant body; the goal is [□ body]. *)

let a = Formula.bvar "A"
let b = Formula.bvar "B"
let c = Formula.bvar "C"

let mk name vars body = { form_name = name; body; form_vars = vars }

(** The fifteen goal forms of Table 4.5 (first three) and Appendix B. *)
let forms : form list =
  let open Formula in
  [
    mk "A ⇒ B" [ "A"; "B" ] (implies a b);
    mk "●A ⇒ B" [ "A"; "B" ] (implies (prev a) b);
    mk "A ⇒ ●B" [ "A"; "B" ] (implies a (prev b));
    mk "A ∨ B ⇒ C" [ "A"; "B"; "C" ] (implies (or_ a b) c);
    mk "●A ∨ B ⇒ C" [ "A"; "B"; "C" ] (implies (or_ (prev a) b) c);
    mk "A ∨ B ⇒ ●C" [ "A"; "B"; "C" ] (implies (or_ a b) (prev c));
    mk "A ∧ B ⇒ C" [ "A"; "B"; "C" ] (implies (and_ a b) c);
    mk "●A ∧ B ⇒ C" [ "A"; "B"; "C" ] (implies (and_ (prev a) b) c);
    mk "A ∧ B ⇒ ●C" [ "A"; "B"; "C" ] (implies (and_ a b) (prev c));
    mk "A ⇒ B ∧ C" [ "A"; "B"; "C" ] (implies a (and_ b c));
    mk "●A ⇒ B ∧ C" [ "A"; "B"; "C" ] (implies (prev a) (and_ b c));
    mk "A ⇒ ●B ∧ C" [ "A"; "B"; "C" ] (implies a (and_ (prev b) c));
    mk "A ⇒ B ∨ C" [ "A"; "B"; "C" ] (implies a (or_ b c));
    mk "●A ⇒ B ∨ C" [ "A"; "B"; "C" ] (implies (prev a) (or_ b c));
    mk "A ⇒ ●B ∨ C" [ "A"; "B"; "C" ] (implies a (or_ (prev b) c));
  ]

(* ------------------------------------------------------------------ *)
(* Exhaustive small-trace semantics over boolean metavariables.        *)

let all_states vars =
  let rec go = function
    | [] -> [ State.empty ]
    | v :: rest ->
        let tails = go rest in
        List.concat_map
          (fun s ->
            [ State.set v (Value.Bool false) s; State.set v (Value.Bool true) s ])
          tails
  in
  go vars

(** All traces over [vars] of length exactly [len]. *)
let all_traces vars len =
  let states = all_states vars in
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      List.concat_map (fun tr -> List.map (fun s -> s :: tr) states) shorter
  in
  List.map (fun ss -> Trace.make ~dt:1.0 ss) (go len)

(** [trace_sat tr body] — the invariant [□ body] holds on [tr]. *)
let trace_sat tr body =
  let n = Trace.length tr in
  let rec go i = i >= n || (Eval.eval tr i body && go (i + 1)) in
  go 0

let check_len = 3
(* One state of temporal depth (●) plus slack: for formulas whose past depth
   is ≤ 1, entailment over all traces of length ≤ 3 coincides with entailment
   over all finite traces. *)

let entails_on_all_traces vars cand_body parent_body =
  List.for_all
    (fun len ->
      List.for_all
        (fun tr -> (not (trace_sat tr cand_body)) || trace_sat tr parent_body)
        (all_traces vars len))
    [ 1; 2; check_len ]

let equivalent_on_all_traces vars f g =
  entails_on_all_traces vars f g && entails_on_all_traces vars g f

(* ------------------------------------------------------------------ *)
(* Realizability of a representation under a capability assignment.    *)

let realizable_body caps body =
  let goal = Formula.Always body in
  List.for_all
    (fun (v, ob) ->
      match (List.assoc_opt v caps, ob) with
      | Some Controllable, _ -> ob <> Realizability.Needs_prescience
      | Some Observable, Realizability.Needs_observation -> true
      | _, _ -> false)
    (Realizability.obligations goal)

(** Candidate logically-equivalent representations of an implication body:
    itself and its contrapositive (the thesis's example: [A ⇒ ●B] is
    realizable via the equivalent [¬●B ⇒ ¬A], §4.5.3). *)
let equivalent_reps body =
  match body with
  | Formula.Implies (p, q) -> [ body; Formula.implies (Formula.not_ q) (Formula.not_ p) ]
  | _ -> [ body ]

(* ------------------------------------------------------------------ *)
(* Restrictive alternatives.                                           *)

let rec conjuncts = function
  | Formula.And (x, y) -> conjuncts x @ conjuncts y
  | f -> [ f ]

let rec disjuncts = function
  | Formula.Or (x, y) -> disjuncts x @ disjuncts y
  | f -> [ f ]

let nonempty_subsets xs =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let tails = go rest in
        tails @ List.map (fun t -> x :: t) tails
  in
  List.filter (fun s -> s <> []) (go xs)

(** Literal-conjunction candidates [□(ℓ₁ ∧ … ∧ ℓₙ)] over controllable
    variables — the OR-reduction family of §3.3.5. *)
let literal_candidates caps =
  let ctrl = List.filter_map (fun (v, c) -> if c = Controllable then Some v else None) caps in
  List.concat_map
    (fun vs ->
      let rec polarities = function
        | [] -> [ [] ]
        | v :: rest ->
            let tails = polarities rest in
            List.concat_map
              (fun t ->
                [ Formula.bvar v :: t; Formula.not_ (Formula.bvar v) :: t ])
              tails
      in
      List.map Formula.conj (polarities vs))
    (nonempty_subsets ctrl)

(** Implication candidates: strengthen the parent implication by dropping
    antecedent conjuncts (weakening the premise) or consequent disjuncts. *)
let implication_candidates body =
  match body with
  | Formula.Implies (p, q) ->
      let ants = List.map Formula.conj (nonempty_subsets (conjuncts p)) in
      let cons = List.map Formula.disj (nonempty_subsets (disjuncts q)) in
      List.concat_map (fun p' -> List.map (fun q' -> Formula.implies p' q') cons) ants
  | _ -> []

type alternative = { alt_body : Formula.t; realizable_as : Formula.t }
(** [realizable_as] is the representation (possibly the contrapositive) that
    satisfies the capability check. *)

type verdict =
  | Realizable_as of Formula.t
      (** realizable without restriction, via this representation *)
  | Alternatives of alternative list
      (** only restrictive alternatives are realizable; each is
          machine-checked to entail the parent goal *)
  | No_alternative  (** nothing realizable with these capabilities *)

(** [analyze form caps] — the Appendix B row for [form] under [caps]. *)
let analyze (form : form) (caps : (string * capability) list) : verdict =
  let vars = form.form_vars in
  let realizable_rep body =
    List.find_opt (realizable_body caps) (equivalent_reps body)
  in
  match realizable_rep form.body with
  | Some rep -> Realizable_as rep
  | None ->
      let candidates =
        literal_candidates caps @ implication_candidates form.body
      in
      let sound =
        List.filter_map
          (fun cand ->
            if
              cand <> form.body
              && entails_on_all_traces vars cand form.body
              && not (equivalent_on_all_traces vars cand form.body)
            then
              match realizable_rep cand with
              | Some rep -> Some { alt_body = cand; realizable_as = rep }
              | None -> None
            else None)
          candidates
      in
      (* Keep only the maximally permissive alternatives: drop any candidate
         strictly stronger than another surviving candidate. *)
      let minimal =
        List.filter
          (fun x ->
            not
              (List.exists
                 (fun y ->
                   y.alt_body <> x.alt_body
                   && entails_on_all_traces vars x.alt_body y.alt_body
                   && not (entails_on_all_traces vars y.alt_body x.alt_body))
                 sound))
          sound
      in
      let dedup =
        List.fold_left
          (fun acc x ->
            if
              List.exists
                (fun y -> equivalent_on_all_traces vars x.alt_body y.alt_body)
                acc
            then acc
            else x :: acc)
          [] minimal
        |> List.rev
      in
      if dedup = [] then No_alternative else Alternatives dedup

(** All capability combinations for a form's variables (3ⁿ rows). *)
let all_caps vars =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = go rest in
        List.concat_map
          (fun t ->
            [ (v, Controllable) :: t; (v, Observable) :: t; (v, Unavailable) :: t ])
          tails
  in
  go vars

type row = { caps : (string * capability) list; verdict : verdict }

(** [table form] — the full Appendix-B-style table for one goal form. *)
let table form = List.map (fun caps -> { caps; verdict = analyze form caps }) (all_caps form.form_vars)

let pp_verdict ppf = function
  | Realizable_as rep -> Fmt.pf ppf "realizable as %a" Formula.pp rep
  | Alternatives alts ->
      Fmt.pf ppf "restrictive alternatives: %a"
        Fmt.(list ~sep:(any " | ") (fun ppf alt -> Formula.pp ppf alt.alt_body))
        alts
  | No_alternative -> Fmt.string ppf "unrealizable (no alternative)"

let pp_row ppf r =
  Fmt.pf ppf "%-24s %a"
    (String.concat " "
       (List.map (fun (v, c) -> Fmt.str "%s:%s" v (capability_to_string c)) r.caps))
    pp_verdict r.verdict
