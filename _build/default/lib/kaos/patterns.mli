(** Goal realizability patterns and alternative goals — a mechanized,
    machine-checked reproduction of Table 4.5 and Appendix B (Tables
    B.1–B.13).

    For each goal form (a temporal template over metavariables A, B, C) and
    each assignment of agent capabilities to the metavariables, {!analyze}
    decides whether the goal is realizable as stated or through a logically
    equivalent representation, and otherwise derives {e restrictive
    alternative goals}: strictly stronger goals that are realizable with
    the given capabilities. Every alternative is verified to entail the
    parent goal by exhaustive evaluation over all boolean traces up to a
    bounded length, so the catalog is correct by construction rather than
    transcription. *)

open Tl

type capability = Controllable | Observable | Unavailable

val capability_to_string : capability -> string

type form = { form_name : string; body : Formula.t; form_vars : string list }
(** [body] is the un-quantified invariant body; the goal is [□ body]. *)

val forms : form list
(** The fifteen goal forms of Table 4.5 (first three) and Appendix B. *)

(** {1 Bounded-trace semantics (shared with {!Compose})} *)

val all_states : string list -> State.t list
(** All boolean assignments of the given variables. *)

val all_traces : string list -> int -> Trace.t list
(** All boolean traces of exactly the given length. *)

val trace_sat : Trace.t -> Formula.t -> bool
(** The invariant [□ body] holds on the trace. *)

val check_len : int
(** Bounded-trace length (3): for formulas of past depth ≤ 1, entailment
    over all traces of length ≤ 3 coincides with entailment over all
    finite traces. *)

val entails_on_all_traces : string list -> Formula.t -> Formula.t -> bool
val equivalent_on_all_traces : string list -> Formula.t -> Formula.t -> bool

val equivalent_reps : Formula.t -> Formula.t list
(** Candidate logically-equivalent representations of an implication body:
    itself and its contrapositive (§4.5.3's [¬●B ⇒ ¬A]). *)

(** {1 Analysis} *)

type alternative = { alt_body : Formula.t; realizable_as : Formula.t }
(** [realizable_as] is the representation (possibly the contrapositive)
    that satisfies the capability check. *)

type verdict =
  | Realizable_as of Formula.t
      (** realizable without restriction, via this representation *)
  | Alternatives of alternative list
      (** only restrictive alternatives are realizable; each is
          machine-checked to entail the parent goal and to be maximally
          permissive among the candidates *)
  | No_alternative  (** nothing realizable with these capabilities *)

val analyze : form -> (string * capability) list -> verdict
(** The Appendix B row for a form under a capability assignment. *)

val all_caps : string list -> (string * capability) list list
(** All capability combinations for a form's variables (3ⁿ rows). *)

type row = { caps : (string * capability) list; verdict : verdict }

val table : form -> row list
(** The full Appendix-B-style table for one goal form. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_row : Format.formatter -> row -> unit
