(** KAOS goals (§2.3.2): named, informally described, formally defined
    objectives, classified by the goal patterns of Table 2.2. *)

open Tl

(** Goal pattern classes from Darimont & van Lamsweerde (Table 2.2). *)
type category =
  | Achieve  (** P ⇒ ♦Q *)
  | Cease  (** P ⇒ ♦¬Q *)
  | Maintain  (** P ⇒ □Q *)
  | Avoid  (** P ⇒ □¬Q *)
  | Invariant  (** □P — the thesis's "static safety requirement" form *)

val category_to_string : category -> string

type t = {
  name : string;  (** e.g. ["Achieve[AutoAccelBelowThreshold]"] *)
  category : category;
  informal : string;  (** natural-language definition *)
  formal : Formula.t;
  monitored : string list;  (** M of the goal relation G(M, C) *)
  controlled : string list;  (** C of the goal relation G(M, C) *)
}

val default_mon_ctrl : Formula.t -> string list * string list
(** Default split of a formula's variables into (monitored, controlled):
    variables that only occur under past operators are monitored; variables
    with a present-state occurrence are controlled — matching the thesis's
    reading that control actions can depend on present values only of
    variables the realizing agent itself controls (§4.1.3). The top-level
    □ of an entailment goal is stripped first. *)

val make :
  ?category:category ->
  ?monitored:string list ->
  ?controlled:string list ->
  name:string ->
  informal:string ->
  Formula.t ->
  t

val achieve :
  ?monitored:string list ->
  ?controlled:string list ->
  informal:string ->
  string ->
  Formula.t ->
  t
(** [achieve base …] names the goal ["Achieve[base]"]; likewise the other
    category constructors below. *)

val cease :
  ?monitored:string list ->
  ?controlled:string list ->
  informal:string ->
  string ->
  Formula.t ->
  t

val maintain :
  ?monitored:string list ->
  ?controlled:string list ->
  informal:string ->
  string ->
  Formula.t ->
  t

val avoid :
  ?monitored:string list ->
  ?controlled:string list ->
  informal:string ->
  string ->
  Formula.t ->
  t

val vars : t -> string list

val pp : Format.formatter -> t -> unit
(** Render in the thesis's Goal/InformalDef/FormalDef style (Fig. 2.6). *)

val to_string : t -> string
