(** Agents: the entities that perform actions to achieve goals — subsystems,
    software components, actuators, environmental actors (§2.3.2, §4.2).

    Each agent declares the state variables it can monitor (observe the
    value of) and the variables it directly controls (is the producer of).
    Indirect control — the ability to {e influence} a variable through the
    control path — is modelled separately by {!Icpa.Control_graph}. *)

module SS : Set.S with type elt = string

type kind = Software | Actuator | Sensor | Environment | Human

val kind_to_string : kind -> string

type t = { name : string; kind : kind; monitors : SS.t; controls : SS.t }

val make : ?kind:kind -> monitors:string list -> controls:string list -> string -> t
val monitors : t -> string -> bool
val controls : t -> string -> bool

val observes : t -> string -> bool
(** Can the agent at least observe the variable? Monitoring or controlling
    grants observation of one's own outputs. *)

val union : string -> t list -> t
(** The capability set of a coordinated group of agents, used when a goal
    is assigned with shared responsibility (§4.5.1). *)

val pp : Format.formatter -> t -> unit
