(** Agents: the entities that perform actions to achieve goals — subsystems,
    software components, actuators, environmental actors (§2.3.2, §4.2).

    Each agent declares the state variables it can monitor (observe the value
    of) and the variables it directly controls (is the producer of). Indirect
    control — the ability to *influence* a variable through the control
    path — is modelled separately by {!Icpa.Control_graph}. *)

module SS = Set.Make (String)

type kind = Software | Actuator | Sensor | Environment | Human

let kind_to_string = function
  | Software -> "software agent"
  | Actuator -> "actuator"
  | Sensor -> "sensor"
  | Environment -> "environmental agent"
  | Human -> "human agent"

type t = { name : string; kind : kind; monitors : SS.t; controls : SS.t }

let make ?(kind = Software) ~monitors ~controls name =
  { name; kind; monitors = SS.of_list monitors; controls = SS.of_list controls }

let monitors t v = SS.mem v t.monitors
let controls t v = SS.mem v t.controls

(** Can the agent at least observe [v] (monitoring or controlling grants
    observation of one's own outputs)? *)
let observes t v = monitors t v || controls t v

(** [union agents] — the capability set of a coordinated group of agents,
    used when a goal is assigned with shared responsibility (§4.5.1). *)
let union name agents =
  {
    name;
    kind = Software;
    monitors = List.fold_left (fun acc a -> SS.union acc a.monitors) SS.empty agents;
    controls = List.fold_left (fun acc a -> SS.union acc a.controls) SS.empty agents;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>Agent: %s (%s)@,Monitors: %a@,Controls: %a@]" t.name
    (kind_to_string t.kind)
    Fmt.(list ~sep:comma string)
    (SS.elements t.monitors)
    Fmt.(list ~sep:comma string)
    (SS.elements t.controls)
