(** KAOS goals (§2.3.2): named, informally described, formally defined
    objectives, classified by the goal patterns of Table 2.2. *)

open Tl

(** Goal pattern classes from Darimont & van Lamsweerde (Table 2.2). *)
type category =
  | Achieve  (** P ⇒ ♦Q *)
  | Cease  (** P ⇒ ♦¬Q *)
  | Maintain  (** P ⇒ □Q *)
  | Avoid  (** P ⇒ □¬Q *)
  | Invariant  (** □P — the thesis's "static safety requirement" form *)

let category_to_string = function
  | Achieve -> "Achieve"
  | Cease -> "Cease"
  | Maintain -> "Maintain"
  | Avoid -> "Avoid"
  | Invariant -> "Invariant"

type t = {
  name : string;  (** e.g. ["Achieve[AutoAccelBelowThreshold]"] *)
  category : category;
  informal : string;  (** natural-language definition *)
  formal : Formula.t;
  monitored : string list;  (** M of the goal relation G(M, C) *)
  controlled : string list;  (** C of the goal relation G(M, C) *)
}

(** Default split of a formula's variables into monitored and controlled
    sets: variables that only occur under past operators are monitored;
    variables with a present-state occurrence are controlled. This matches
    the thesis's reading that "control actions can depend on present values
    … if the agent realizing the goal is also the agent controlling those
    state variables" (§4.1.3). *)
let default_mon_ctrl formal =
  (* Analyze the invariant body: the top-level □ of a Maintain/entailment
     goal would otherwise put every occurrence in a Future context. *)
  let body = match formal with Formula.Always g -> g | g -> g in
  let refs = Formula.var_refs body in
  let vars = Formula.vars body in
  let controlled =
    List.filter
      (fun v ->
        List.exists (fun (v', r) -> v = v' && (r = Formula.Present || r = Formula.Future)) refs)
      vars
  in
  let monitored = List.filter (fun v -> not (List.mem v controlled)) vars in
  (monitored, controlled)

let make ?(category = Invariant) ?monitored ?controlled ~name ~informal formal =
  let dm, dc = default_mon_ctrl formal in
  {
    name;
    category;
    informal;
    formal;
    monitored = Option.value monitored ~default:dm;
    controlled = Option.value controlled ~default:dc;
  }

(** [achieve base ...] names the goal ["Achieve[base]"]; similarly for the
    other categories. *)
let achieve ?monitored ?controlled ~informal base formal =
  make ~category:Achieve ?monitored ?controlled ~name:(Fmt.str "Achieve[%s]" base)
    ~informal formal

let cease ?monitored ?controlled ~informal base formal =
  make ~category:Cease ?monitored ?controlled ~name:(Fmt.str "Cease[%s]" base) ~informal
    formal

let maintain ?monitored ?controlled ~informal base formal =
  make ~category:Maintain ?monitored ?controlled ~name:(Fmt.str "Maintain[%s]" base)
    ~informal formal

let avoid ?monitored ?controlled ~informal base formal =
  make ~category:Avoid ?monitored ?controlled ~name:(Fmt.str "Avoid[%s]" base) ~informal
    formal

let vars g = Formula.vars g.formal

(** Render in the thesis's three-line Goal/InformalDef/FormalDef style
    (e.g. Fig. 2.6). *)
let pp ppf g =
  Fmt.pf ppf "@[<v>Goal: %s@,InformalDef: %s@,FormalDef: %a@]" g.name g.informal
    Formula.pp g.formal

let to_string g = Fmt.str "%a" pp g
