lib/kaos/patterns.ml: Eval Fmt Formula List Realizability State String Tl Trace Value
