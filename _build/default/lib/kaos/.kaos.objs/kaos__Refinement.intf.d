lib/kaos/refinement.mli: Format Goal
