lib/kaos/goal.mli: Format Formula Tl
