lib/kaos/agent.ml: Fmt List Set String
