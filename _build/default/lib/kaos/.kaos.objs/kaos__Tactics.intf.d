lib/kaos/tactics.mli: Format Formula Tl
