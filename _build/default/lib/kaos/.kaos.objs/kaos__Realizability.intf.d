lib/kaos/realizability.mli: Agent Format Formula Goal Tl
