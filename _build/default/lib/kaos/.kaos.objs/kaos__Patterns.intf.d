lib/kaos/patterns.mli: Format Formula State Tl Trace
