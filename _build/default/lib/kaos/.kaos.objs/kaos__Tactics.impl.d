lib/kaos/tactics.ml: Fmt Formula List Term Tl
