lib/kaos/refinement.ml: Fmt Goal List String
