lib/kaos/goal.ml: Fmt Formula List Option Tl
