lib/kaos/agent.mli: Format Set
