lib/kaos/realizability.ml: Agent Fmt Formula Goal List Tl
