(** Goal realizability analysis after Letier & van Lamsweerde (§2.3.2,
    §4.1.2, §4.5.3).

    A goal [G(M, C)] is strictly realizable by agent [ag] iff
    [M ⊆ Mon(ag) ∪ Ctrl(ag)], [C ⊆ Ctrl(ag)], and the formula contains no
    reference to the future. A variable occurrence in the *present* state
    counts as a reference to the future unless the evaluating agent itself
    controls that variable — monitored values are only available one state
    later (§4.1.3). *)

open Tl

type defect =
  | Lack_of_monitorability of string list
      (** variables the agent can neither monitor nor control *)
  | Lack_of_control of string list
      (** present/future-constrained variables the agent does not control *)
  | Reference_to_future of string list
      (** variables constrained strictly in the future (♦, □, ○) *)
  | Unsatisfiable  (** the goal formula is unsatisfiable *)

let pp_defect ppf = function
  | Lack_of_monitorability vs ->
      Fmt.pf ppf "lack of monitorability: %a" Fmt.(list ~sep:comma string) vs
  | Lack_of_control vs ->
      Fmt.pf ppf "lack of control: %a" Fmt.(list ~sep:comma string) vs
  | Reference_to_future vs ->
      Fmt.pf ppf "reference to future: %a" Fmt.(list ~sep:comma string) vs
  | Unsatisfiable -> Fmt.string ppf "unsatisfiable"

type verdict = Realizable | Unrealizable of defect list

let is_realizable = function Realizable -> true | Unrealizable _ -> false

(** Temporal obligations a formula places on each of its variables. *)
type obligation = Needs_observation | Needs_control | Needs_prescience

(** [obligations f] — for each variable of [f] (with the top-level □
    stripped), the strongest obligation implied by its occurrences: a past
    occurrence needs observation; a present occurrence needs control (by the
    realizing agent, in the same state); a future occurrence needs
    prescience and makes the goal unrealizable outright. *)
let obligations (f : Formula.t) : (string * obligation) list =
  let body = match f with Formula.Always g -> g | g -> g in
  let refs = Formula.var_refs body in
  let vars = Formula.vars body in
  List.map
    (fun v ->
      let here r = List.exists (fun (v', r') -> v = v' && r = r') refs in
      let ob =
        if here Formula.Future then Needs_prescience
        else if here Formula.Present then Needs_control
        else Needs_observation
      in
      (v, ob))
    vars

(** [check goal agent] — Letier & van Lamsweerde's realizability check of
    [goal] by [agent] (or by a coordinated group via {!Agent.union}). *)
let check (goal : Goal.t) (agent : Agent.t) : verdict =
  let obs = obligations goal.formal in
  let future = List.filter_map (fun (v, o) -> if o = Needs_prescience then Some v else None) obs in
  let unctrl =
    List.filter_map
      (fun (v, o) ->
        if o = Needs_control && not (Agent.controls agent v) then Some v else None)
      obs
  in
  let unmon =
    List.filter_map
      (fun (v, o) ->
        if o = Needs_observation && not (Agent.observes agent v) then Some v else None)
      obs
  in
  let defects =
    (if future <> [] then [ Reference_to_future future ] else [])
    @ (if unmon <> [] then [ Lack_of_monitorability unmon ] else [])
    @
    if unctrl <> [] then
      (* present-state variables the agent cannot set: if it can observe them
         the defect is the thesis's "reference to the future" (it would have
         to react in the same state); otherwise it is lack of control. *)
      let refs, ctrl =
        List.partition (fun v -> Agent.monitors agent v) unctrl
      in
      (if refs <> [] then [ Reference_to_future refs ] else [])
      @ if ctrl <> [] then [ Lack_of_control ctrl ] else []
    else []
  in
  if defects = [] then Realizable else Unrealizable defects
