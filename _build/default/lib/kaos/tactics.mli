(** Goal elaboration tactics (§2.3.2, §4.1.2, §3.3.4–3.3.5).

    Each tactic records its name, the produced subgoals, the proof
    obligations (critical assumptions) the decomposition relies on, and
    whether the result is restrictive — exactly the information the ICPA
    elaboration field documents (Table 4.3). *)

open Tl

type result = {
  tactic : string;
  subgoals : Formula.t list;
  obligations : Formula.t list;  (** domain properties that must hold *)
  restrictive : bool;
}

val introduce_accuracy_actuation : on:string -> replacement:string -> Formula.t -> result
(** Fig. 4.1: replace variable [on] by an equivalent variable (a sensor
    reading or actuator set point); the equivalence [□(on ⇔ replacement)]
    becomes an accuracy goal. Works on boolean state variables. *)

val split_by_chaining : milestone:Formula.t -> Formula.t -> result
(** Fig. 4.2: [P ⇒ Q] becomes [P ⇒ M] and [M ⇒ Q].
    @raise Invalid_argument unless the goal is an entailment. *)

val split_by_case : cases:(Formula.t * Formula.t) list -> Formula.t -> result
(** Fig. 4.3: [P ⇒ Q] becomes [P ∧ fᵢ ⇒ Qᵢ] per case, under the
    completeness obligation [□(f₁ ∨ … ∨ fₙ)]. *)

val or_reduce : keep:Formula.t -> Formula.t -> result
(** §3.3.5: [□(A ∨ X)] is satisfied by the more restrictive [□A]. *)

val drop_antecedent_conjunct : keep:Formula.t -> Formula.t -> result
(** §3.3.5: [A ∧ X ⇒ B] is satisfied by the more restrictive [A ⇒ B]. *)

val conjunctive_split : Formula.t -> result
(** §3.3.4: [□(A ∧ X)] divides into [□A] and [□X]; [(A ∨ X) ⇒ B] into
    [A ⇒ B] and [X ⇒ B]. Exact — the realizable part can be ensured even
    when X cannot. *)

val safety_margin : margin:float -> Formula.t -> result
(** §4.5.2: strengthen every upper-bound comparison [t ≤ u] to
    [t ≤ u − margin] (and [t ≥ u] to [t ≥ u + margin]) in controlled
    (consequent) position, shrinking the envelope as in Eq. 3.48. *)

val introduce_alarm_response :
  hazard_precursor:Formula.t ->
  alarm:Formula.t ->
  safe:Formula.t ->
  response_time:float ->
  result
(** The alarm/response refinement for safety goals (§2.3.2). *)

val pp : Format.formatter -> result -> unit
