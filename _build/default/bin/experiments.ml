(** [experiments] — regenerate the thesis's tables and figures.

    {v
    experiments list            # list experiment ids
    experiments all             # run every experiment
    experiments run table_d_1 fig_5_2 ...
    v} *)

open Cmdliner

let run_one (e : Core.Experiments.t) =
  Fmt.pr "==================================================================@.";
  Fmt.pr "%s — %s@." e.Core.Experiments.id e.Core.Experiments.title;
  Fmt.pr "==================================================================@.";
  e.Core.Experiments.run Fmt.stdout;
  Fmt.pr "@.@."

let list_cmd =
  let doc = "List experiment ids." in
  Cmd.v (Cmd.info "list" ~doc)
    (Term.(
       const (fun () ->
           List.iter
             (fun (e : Core.Experiments.t) ->
               Fmt.pr "%-14s %s@." e.Core.Experiments.id e.Core.Experiments.title)
             Core.Experiments.all)
       $ const ()))

let all_cmd =
  let doc = "Run every experiment (regenerates every table and figure)." in
  Cmd.v (Cmd.info "all" ~doc)
    (Term.(const (fun () -> List.iter run_one Core.Experiments.all) $ const ()))

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let doc = "Run the named experiments." in
  let run ids =
    List.iter
      (fun id ->
        match Core.Experiments.get id with
        | Some e -> run_one e
        | None ->
            Fmt.epr "unknown experiment %s (try 'experiments list')@." id;
            exit 1)
      ids
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids)

let () =
  let doc = "Regenerate the tables and figures of the thesis evaluation." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "experiments" ~doc) [ list_cmd; all_cmd; run_cmd ]))
