(** [icpa_tool] — render the completed ICPA tables and audit them against
    their control graphs.

    {v
    icpa_tool elevator            # the Ch. 4 running example
    icpa_tool hoistway            # the redundant-responsibility example
    icpa_tool vehicle [N]         # Appendix C table(s)
    icpa_tool audit               # cross-step validation (Fig. 1.2)
    v} *)

open Cmdliner

let render t = Fmt.pr "%a@." Icpa.Render.pp t

let elevator_cmd =
  Cmd.v
    (Cmd.info "elevator" ~doc:"Render the Maintain[DoorClosedOrElevatorStopped] ICPA.")
    Term.(const (fun () -> render Elevator.Icpa_tables.door_closed_or_stopped) $ const ())

let hoistway_cmd =
  Cmd.v
    (Cmd.info "hoistway" ~doc:"Render the hoistway-limit ICPA (redundant responsibility).")
    Term.(const (fun () -> render Elevator.Icpa_tables.below_hoistway_limit) $ const ())

let vehicle_cmd =
  let n = Arg.(value & pos 0 (some int) None & info [] ~docv:"N") in
  let run n =
    match n with
    | Some n -> render (Vehicle.Icpa_vehicle.table n)
    | None -> List.iter (fun (_, t) -> render t) Vehicle.Icpa_vehicle.tables
  in
  Cmd.v (Cmd.info "vehicle" ~doc:"Render the Appendix C ICPA tables.") Term.(const run $ n)

let audit_cmd =
  let run () =
    let report name graph table =
      match Icpa.Procedure.audit graph table with
      | [] -> Fmt.pr "%-45s OK@." name
      | issues ->
          Fmt.pr "%-45s %d issue(s)@." name (List.length issues);
          List.iter (fun i -> Fmt.pr "  - %a@." Icpa.Procedure.pp_issue i) issues
    in
    report "elevator: DoorClosedOrElevatorStopped" Elevator.System.graph
      Elevator.Icpa_tables.door_closed_or_stopped;
    report "elevator: BelowHoistwayUpperLimit" Elevator.System.graph
      Elevator.Icpa_tables.below_hoistway_limit;
    List.iter
      (fun (n, t) ->
        report (Fmt.str "vehicle: goal %d" n) Vehicle.System.graph t)
      Vehicle.Icpa_vehicle.tables
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Audit every completed ICPA against its control graph.")
    Term.(const run $ const ())

let () =
  let doc = "Render and audit Indirect Control Path Analysis tables." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "icpa_tool" ~doc)
          [ elevator_cmd; hoistway_cmd; vehicle_cmd; audit_cmd ]))
