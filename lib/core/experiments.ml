(** The experiment registry: one entry per table and figure of the thesis
    that this repository regenerates (see DESIGN.md's per-experiment index).

    Each experiment renders the corresponding artifact to a formatter;
    [bin/experiments.exe] prints them and [bench/main.exe] times them. *)

open Tl

type t = { id : string; title : string; run : Format.formatter -> unit }

(* Scenario outcomes are shared by the D tables, the figures and the
   summary through the process-wide cache inside [Scenarios.Runner]; the
   same outcomes back [bin/export], [bin/simulate], the tests and the
   bench harness. *)
let outcome n = Scenarios.Runner.run (Scenarios.Defs.get n)
let clear_cache () = Scenarios.Runner.clear_cache ()

let prewarm ?domains () =
  (* Fill the outcome cache for the whole fleet in parallel; every
     experiment below then reads simulated outcomes instead of paying for
     its own 20-second simulations. *)
  ignore (Scenarios.Runner.run_all ?domains ())

(* ------------------------------------------------------------------ *)

let fig_2_2 ppf =
  Fmt.pf ppf
    "@[<v>Figure 2.2 — Partial fault tree for a semi-autonomous automotive \
     system@,@,%a@,"
    (fun ppf () -> Hazard.Fta.pp ppf Hazard.Fta.fig_2_2)
    ();
  Fmt.pf ppf "@,Minimal cut sets:@,";
  List.iter
    (fun cut -> Fmt.pf ppf "  {%s}@," (String.concat ", " cut))
    (Hazard.Fta.cut_sets Hazard.Fta.fig_2_2);
  Fmt.pf ppf "@,Single-point failures: %s@,"
    (String.concat "; " (Hazard.Fta.single_points Hazard.Fta.fig_2_2));
  Fmt.pf ppf "Top-event probability over 1000 h: %.2e@]"
    (Hazard.Fta.probability ~hours:1000. Hazard.Fta.fig_2_2)

let fig_2_3 ppf = Hazard.Fmea.pp ppf Hazard.Fmea.fig_2_3

let table_2_2 ppf =
  Fmt.pf ppf "@[<v>Goal pattern classifications (Table 2.2)@,";
  List.iter
    (fun (cls, pattern) -> Fmt.pf ppf "%-10s %s@," cls pattern)
    [
      ("Achieve", "P => eventually Q");
      ("Cease", "P => eventually not Q");
      ("Maintain", "P => always Q");
      ("Avoid", "P => always not Q");
    ];
  Fmt.pf ppf "@]"

let pp_andred ppf name parent subgoals =
  Fmt.pf ppf "%-22s %a@,  %a@," name
    Fmt.(list ~sep:(any " ; ") Formula.pp)
    subgoals Compose.Andred.pp
    (Compose.Andred.check ~parent subgoals)

let table_3_1 ppf =
  let open Compose.Examples.Table_3_1 in
  Fmt.pf ppf "@[<v>Table 3.1 — Subgoals for goal G: %a@," Formula.pp goal;
  pp_andred ppf "reduction {G1_1,G1_2,G1_3}" goal reduction_1;
  pp_andred ppf "reduction {G2_1,G2_2}" goal reduction_2;
  Fmt.pf ppf "@]"

let table_3_2 ppf =
  let open Compose.Examples.Table_3_2 in
  Fmt.pf ppf "@[<v>Table 3.2 — Same subgoals with emergence acknowledged@,";
  Fmt.pf ppf "Hidden dependency: %a@," Formula.pp hidden_dependency;
  Fmt.pf ppf "Missing subgoal:   %a@," Formula.pp missing_subgoal;
  let a = Compose.Composability.analyze ~parent:goal achievable_reduction in
  Fmt.pf ppf "achievable reduction, X1 unresolved: %a@,"
    Compose.Composability.pp_analysis a;
  let a2 =
    Compose.Composability.analyze ~parent:goal (achievable_reduction @ [ missing_subgoal ])
  in
  Fmt.pf ppf "achievable reduction + missing subgoal □¬F: %a@,"
    Compose.Composability.pp_analysis a2;
  Fmt.pf ppf "@]"

let fig_3_x ppf =
  let open Compose.Examples.Stop_vehicle in
  Fmt.pf ppf "@[<v>Figures 3.1–3.6 — Composability of the stop-vehicle goal@,";
  Fmt.pf ppf "Goal: %a@,@," Formula.pp goal;
  let show name analysis =
    Fmt.pf ppf "%-52s %a@," name Compose.Composability.pp_analysis analysis
  in
  show "fully composable (Eqs. 3.5-3.6)"
    (Compose.Composability.analyze ~parent:goal fully_composable_subgoals);
  show "fully composable with redundancy (Eqs. 3.12-3.13)"
    (Compose.Composability.analyze_redundant ~parent:goal [ redundant_subgoals ]);
  show "partial: realizable subgoals only (Eq. 3.19 in X)"
    (Compose.Composability.analyze ~parent:goal
       (detection_assumption :: realizable_subgoals));
  show "partial, completed by the unrealizable subgoal"
    (Compose.Composability.analyze ~parent:goal
       ((detection_assumption :: realizable_subgoals) @ [ unrealizable_subgoal ]));
  Fmt.pf ppf "@,Conjunctive division (Eqs. 3.39-3.41):@,";
  let c =
    Compose.Andred.check ~parent:conjunctive_goal
      [ conjunctive_realizable; conjunctive_unrealizable ]
  in
  Fmt.pf ppf "  {realizable, unrealizable} of the detection split: %a@," Compose.Andred.pp c;
  Fmt.pf ppf "@]"

let elevator_table part ppf =
  let t = Elevator.Icpa_tables.door_closed_or_stopped in
  match part with
  | `Rows_dc ->
      Fmt.pf ppf
        "@[<v>Table 4.1 — Indirect control paths for \
         Maintain[DoorClosedOrElevatorStopped] (1 of 2)@,%a@]"
        (Fmt.list ~sep:(Fmt.any "@,@,") Icpa.Render.pp_row)
        (List.filteri (fun i _ -> i = 0) t.Icpa.Table.rows)
  | `Rows_es ->
      Fmt.pf ppf
        "@[<v>Table 4.2 — Indirect control paths for \
         Maintain[DoorClosedOrElevatorStopped] (2 of 2)@,%a@]"
        (Fmt.list ~sep:(Fmt.any "@,@,") Icpa.Render.pp_row)
        (List.filteri (fun i _ -> i > 0) t.Icpa.Table.rows)
  | `Full -> Fmt.pf ppf "%a" Icpa.Render.pp t

let table_4_4 ppf =
  let t = Elevator.Icpa_tables.door_closed_or_stopped in
  Fmt.pf ppf
    "@[<v>Table 4.4 — Subgoals of Maintain[DoorClosedOrElevatorStopped]@,%a@]"
    (Fmt.list ~sep:(Fmt.any "@,@,") Icpa.Render.pp_subgoal)
    t.Icpa.Table.subgoals

let check_4_4 ppf =
  Fmt.pf ppf "@[<v>Mechanized verification of the Ch. 4 decomposition@,";
  Fmt.pf ppf "Table 4.4 subgoals + relationships 01-22 |= parent goal: %a@,"
    Mc.Checker.pp_outcome
    (Elevator.Verification.check ());
  Fmt.pf ppf "@,Without the closed-door domain assumption (r22): %a@,"
    Mc.Checker.pp_outcome
    (Elevator.Verification.check_without_closed_door_assumption ());
  Fmt.pf ppf
    "@,Naive decomposition (Figs. 4.12-4.13, single-agent subgoals): %a@,"
    Mc.Checker.pp_outcome
    (Elevator.Verification.check_naive ());
  Fmt.pf ppf "@]"

let table_4_5 ppf =
  Fmt.pf ppf
    "@[<v>Table 4.5 — Goal controllability/observability requirements for \
     A => B forms@,";
  List.iter
    (fun form ->
      Fmt.pf ppf "@,Form %s:@," form.Kaos.Patterns.form_name;
      List.iter
        (fun row -> Fmt.pf ppf "  %a@," Kaos.Patterns.pp_row row)
        (Kaos.Patterns.table form))
    (List.filteri (fun i _ -> i < 3) Kaos.Patterns.forms);
  Fmt.pf ppf "@]"

let table_b n ppf =
  (* B.1 covers the three two-variable forms; B.2–B.13 the twelve
     three-variable forms. *)
  let forms =
    if n = 1 then List.filteri (fun i _ -> i < 3) Kaos.Patterns.forms
    else [ List.nth Kaos.Patterns.forms (n + 1) ]
  in
  Fmt.pf ppf "@[<v>Table B.%d — Goal realizability patterns and alternative goals@," n;
  List.iter
    (fun form ->
      Fmt.pf ppf "@,Form %s:@," form.Kaos.Patterns.form_name;
      List.iter
        (fun row -> Fmt.pf ppf "  %a@," Kaos.Patterns.pp_row row)
        (Kaos.Patterns.table form))
    forms;
  Fmt.pf ppf "@]"

let fig_4_5 ppf =
  Fmt.pf ppf "@[<v>Figure 4.5 — Partial design of a distributed elevator control system@,";
  Fmt.pf ppf "@,Indirect control paths of dc (DoorClosed):@,%a" Icpa.Control_graph.pp_forest
    (Icpa.Control_graph.indirect_control_path ~max_depth:4 Elevator.System.graph "dc");
  Fmt.pf ppf "@,Indirect control paths of es_stopped (ElevatorSpeed):@,%a"
    Icpa.Control_graph.pp_forest
    (Icpa.Control_graph.indirect_control_path ~max_depth:4 Elevator.System.graph
       "es_stopped");
  Fmt.pf ppf "@]"

let fig_5_1 ppf =
  Fmt.pf ppf "@[<v>Figure 5.1 — Semi-autonomous automotive system@,";
  Fmt.pf ppf "@,Indirect control paths of host_accel (VehicleAcceleration):@,%a"
    Icpa.Control_graph.pp_forest
    (Icpa.Control_graph.indirect_control_path ~max_depth:3 Vehicle.System.graph
       "host_accel");
  Fmt.pf ppf "@]"

let table_5 part ppf =
  let goals =
    match part with
    | `One -> List.filteri (fun i _ -> i < 4) Vehicle.Goals.all
    | `Two -> List.filteri (fun i _ -> i >= 4) Vehicle.Goals.all
  in
  Fmt.pf ppf "@[<v>Safety goals for a semi-autonomous vehicle (Table 5.%s)@,"
    (match part with `One -> "1" | `Two -> "2");
  List.iter (fun (n, g) -> Fmt.pf ppf "@,%d. %a@," n Kaos.Goal.pp g) goals;
  Fmt.pf ppf "@]"

let table_5_3 ppf =
  Fmt.pf ppf "@[<v>Table 5.3 — Monitoring locations of goals and subgoals@,";
  Fmt.pf ppf "%-6s %-55s %s@," "Id" "Goal/Subgoal" "Location";
  Fmt.pf ppf "%s@," (String.make 84 '-');
  List.iter
    (fun (e : Vehicle.Monitors.entry) ->
      Fmt.pf ppf "%-6s %-55s %s@," e.Vehicle.Monitors.id
        e.Vehicle.Monitors.goal.Kaos.Goal.name
        (Vehicle.Monitors.location_to_string e.Vehicle.Monitors.location))
    Vehicle.Monitors.all;
  Fmt.pf ppf "@]"

let appendix_c ppf =
  Fmt.pf ppf "@[<v>Appendix C — ICPA for the semi-autonomous automotive system@,";
  List.iter
    (fun (n, t) -> Fmt.pf ppf "@,=== ICPA for goal %d ===@,%a@," n Icpa.Render.pp t)
    Vehicle.Icpa_vehicle.tables;
  Fmt.pf ppf "@]"

let table_d n ppf = Scenarios.Results.pp_table ppf (outcome n)

let fig_5 id ppf =
  let fig = Scenarios.Figures.get id in
  Scenarios.Figures.render ppf fig (outcome fig.Scenarios.Figures.scenario)

let summary ppf =
  let outcomes = List.map outcome (List.init 10 (fun i -> i + 1)) in
  Fmt.pf ppf "@[<v>Evaluation summary (all scenarios)@,@,%a@,@,"
    Scenarios.Results.pp_summary outcomes;
  Fmt.pf ppf "Composability estimate (§3.4): %a@,@," Compose.Runtime.pp
    (Scenarios.Runner.estimate outcomes);
  Fmt.pf ppf
    "False negatives witness residual emergence (X != {}); false positives \
     witness restrictive/redundant coverage and masked subsystem defects — \
     the subgoals only partially compose the system goals (§5.5).@]"

let assumption_check ppf =
  (* §4.3/§4.4.4 mechanized: the documented critical assumptions of the
     vehicle ICPA, monitored over every scenario. The seeded defects appear
     as violations of exactly the assumptions they break; the repaired
     system leaves (almost) all of them intact. *)
  Fmt.pf ppf "@[<v>Critical-assumption monitoring (Appendix C relationships)@,@,";
  Fmt.pf ppf "%-4s" "Rel";
  List.iter (fun n -> Fmt.pf ppf " S%-3d" n) (List.init 10 (fun i -> i + 1));
  Fmt.pf ppf "  Name / expected breakers@,%s@," (String.make 96 '-');
  let per_scenario =
    List.map (fun n -> (n, Vehicle.Relationships.check (outcome n).Scenarios.Runner.trace))
      (List.init 10 (fun i -> i + 1))
  in
  List.iter
    (fun (r : Vehicle.Relationships.t) ->
      Fmt.pf ppf "R%-3d" r.Vehicle.Relationships.number;
      List.iter
        (fun (_, checks) ->
          let _, ivs =
            List.find
              (fun ((r' : Vehicle.Relationships.t), _) ->
                r'.Vehicle.Relationships.number = r.Vehicle.Relationships.number)
              checks
          in
          Fmt.pf ppf " %-4d" (List.length ivs))
        per_scenario;
      Fmt.pf ppf "  %s%s@," r.Vehicle.Relationships.name
        (match r.Vehicle.Relationships.broken_by with
        | [] -> ""
        | ds -> Fmt.str "  [breakers: %s]" (String.concat ", " ds)))
    Vehicle.Relationships.all;
  Fmt.pf ppf "@]"

let sweep mk ppf = Scenarios.Sweeps.pp ppf (mk ())

let inject_campaign ppf =
  (* The CI smoke grid: three fault models × three scenarios on the forward
     object sensors, against the repaired baseline so every new violation is
     attributable to the injected fault. *)
  let c = Scenarios.Campaign.run (Scenarios.Campaign.smoke ()) in
  Fmt.pf ppf
    "@[<v>Fault-injection detection coverage (smoke grid, seed %d)@,@,%a@]"
    c.Scenarios.Campaign.seed Scenarios.Campaign.pp c

let repaired ppf =
  (* The counterfactual the thesis could not run: the same scenarios with
     every defect repaired. The nine goals then hold everywhere. *)
  let outcomes = Scenarios.Runner.run_all ~defects:Vehicle.Defects.repaired () in
  Fmt.pf ppf "@[<v>Ablation — all defects repaired@,@,%a@]"
    Scenarios.Results.pp_summary outcomes

(* ------------------------------------------------------------------ *)

let all : t list =
  [
    { id = "fig_2_2"; title = "Fault tree for unintended sudden acceleration"; run = fig_2_2 };
    { id = "fig_2_3"; title = "FMEA for the long-range radar sensor"; run = fig_2_3 };
    { id = "table_2_2"; title = "Goal pattern classes"; run = table_2_2 };
    { id = "table_3_1"; title = "And-reductions of G = A => B"; run = table_3_1 };
    { id = "table_3_2"; title = "And-reductions with emergence"; run = table_3_2 };
    { id = "fig_3_x"; title = "Composability classifications (Figs. 3.1-3.6)"; run = fig_3_x };
    { id = "table_4_1"; title = "Elevator indirect control paths (1/2)"; run = elevator_table `Rows_dc };
    { id = "table_4_2"; title = "Elevator indirect control paths (2/2)"; run = elevator_table `Rows_es };
    { id = "table_4_3"; title = "Elevator goal elaboration (full ICPA)"; run = elevator_table `Full };
    { id = "table_4_4"; title = "Elevator subsystem subgoals"; run = table_4_4 };
    { id = "check_4_4"; title = "Model-checked composition of Table 4.4"; run = check_4_4 };
    { id = "table_4_5"; title = "Realizability of A => B forms"; run = table_4_5 };
  ]
  @ List.map
      (fun n ->
        {
          id = Fmt.str "table_b_%d" n;
          title = Fmt.str "Appendix B realizability table B.%d" n;
          run = table_b n;
        })
      (List.init 13 (fun i -> i + 1))
  @ [
      { id = "fig_4_5"; title = "Elevator control graph"; run = fig_4_5 };
      { id = "fig_5_1"; title = "Vehicle control graph"; run = fig_5_1 };
      { id = "table_5_1"; title = "Vehicle safety goals (1/2)"; run = table_5 `One };
      { id = "table_5_2"; title = "Vehicle safety goals (2/2)"; run = table_5 `Two };
      { id = "table_5_3"; title = "Monitoring locations"; run = table_5_3 };
      { id = "appendix_c"; title = "ICPA tables for the nine goals"; run = appendix_c };
    ]
  @ List.map
      (fun n ->
        {
          id = Fmt.str "table_d_%d" n;
          title = Fmt.str "Scenario %d goal/subgoal violations" n;
          run = table_d n;
        })
      (List.init 10 (fun i -> i + 1))
  @ List.map
      (fun (f : Scenarios.Figures.t) ->
        { id = f.Scenarios.Figures.id; title = f.Scenarios.Figures.caption; run = fig_5 f.Scenarios.Figures.id })
      Scenarios.Figures.all
  @ [
      { id = "assumption_check"; title = "Critical-assumption monitoring across scenarios"; run = assumption_check };
      { id = "ablation_latch"; title = "Sweep: attribution latch vs false negatives"; run = sweep Scenarios.Sweeps.latch_sweep };
      { id = "ablation_debounce"; title = "Sweep: selection debounce vs override window"; run = sweep Scenarios.Sweeps.debounce_sweep };
      { id = "ablation_damping"; title = "Sweep: plant damping vs goal-1 excursions"; run = sweep Scenarios.Sweeps.damping_sweep };
      { id = "ablation_window"; title = "Sweep: classification window vs hit/FP/FN"; run = sweep Scenarios.Sweeps.window_sweep };
      { id = "summary"; title = "Cross-scenario summary and composability estimate"; run = summary };
      { id = "repaired"; title = "Ablation: all defects repaired"; run = repaired };
      { id = "inject_campaign"; title = "Fault-injection detection-coverage matrix (smoke grid)"; run = inject_campaign };
    ]

let get id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
