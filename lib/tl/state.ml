(** A system state: a finite assignment of state variables to values.

    States are immutable maps so that traces can share structure and so the
    model checker can use them as hashtable keys. *)

module M = Map.Make (String)

type t = Value.t M.t

let empty : t = M.empty
let of_list bindings : t = List.fold_left (fun m (k, v) -> M.add k v m) M.empty bindings
let to_list (s : t) = M.bindings s
let set name v (s : t) : t = M.add name v s
let update bindings (s : t) : t = List.fold_left (fun m (k, v) -> M.add k v m) s bindings

exception Unbound of string

(** [get s name] looks a variable up. @raise Unbound when absent. *)
let get (s : t) name =
  match M.find_opt name s with Some v -> v | None -> raise (Unbound name)

let find_opt name (s : t) = M.find_opt name s
let mem name (s : t) = M.mem name s
let vars (s : t) = List.map fst (M.bindings s)
let iter f (s : t) = M.iter f s

(* Convenience typed accessors used pervasively by components and monitors. *)
let bool s name = Value.to_bool (get s name)
let float s name = Value.to_float (get s name)
let sym s name =
  match get s name with
  | Value.Sym x -> x
  | v -> Value.type_error "variable %s: expected a symbol, got %a" name Value.pp v

let equal (a : t) (b : t) = M.equal Value.equal a b

let compare (a : t) (b : t) =
  M.compare
    (fun x y ->
      match (x, y) with
      | Value.Bool p, Value.Bool q -> Bool.compare p q
      | Value.Sym p, Value.Sym q -> String.compare p q
      | Value.Int p, Value.Int q -> Int.compare p q
      | _ -> Float.compare (Value.to_float x) (Value.to_float y))
    a b

let pp ppf (s : t) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ";@ ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%a" k Value.pp v))
    (M.bindings s)
