(** Finite execution traces: a sequence of states sampled at a fixed period.

    The thesis's simulation states are 1 ms apart ("the time interval of
    one state"); [dt] carries that period so bounded-duration operators can
    convert seconds into numbers of states.

    Traces are stored {e columnar}: one typed column per state variable
    (unboxed [floatarray] for numeric signals, packed bytes for booleans,
    interned ids for symbolic enumerations) instead of one [State.t] map
    per tick. The flat, pointer-free columns cost the GC nothing to
    retain, [Marshal] ships them as near-memcpy blobs across shard-worker
    pipes, and {!Rtmon.Incremental} reads one signal across all states
    without a map lookup per atom. The packed form is {e canonical} — a
    function of [dt] and the cell values alone — so structurally equal
    traces marshal to identical bytes regardless of how they were built.

    [get], [fold] and [iteri] materialize classic [State.t] rows on
    demand; all row-oriented consumers behave exactly as before. *)

type t

val make : dt:float -> State.t list -> t
(** @raise Invalid_argument when [dt <= 0]. *)

val of_array : dt:float -> State.t array -> t

val init : dt:float -> int -> (int -> State.t) -> t
(** [init ~dt n f] builds a trace of [n] states where state [i] is [f i]. *)

val length : t -> int
val dt : t -> float

val get : t -> int -> State.t
(** The state at index [i], materialized from the columns (a fresh
    [State.t] per call — hot per-state loops should read columns via
    {!column} instead). @raise Invalid_argument when out of bounds. *)

val time : t -> int -> float
(** Wall-clock time of state [i] (state 0 is at time 0). *)

val duration_to_states : dt:float -> float -> int
(** [duration_to_states ~dt d] — how many consecutive states span duration
    [d]: the smallest [k >= 1] with [k * dt >= d]. *)

val signal : t -> string -> (float * float) list
(** A float signal as [(time, value)] pairs.
    @raise State.Unbound when the variable is absent in any state. *)

val bool_signal : t -> string -> (float * bool) list

val fold : ('a -> State.t -> 'a) -> 'a -> t -> 'a
val iteri : (int -> State.t -> unit) -> t -> unit

(** {1 Columnar access}

    The typed column view behind the monitor fast path. Treat the arrays
    as read-only: they {e are} the trace. *)

type col =
  | FCol of floatarray  (** every present cell is [Value.Float] *)
  | ICol of int array  (** every present cell is [Value.Int] *)
  | BCol of Bytes.t  (** [Value.Bool] packed as 0/1 bytes *)
  | SCol of { values : Value.t array; ids : Bytes.t }
      (** [Value.Sym] cells interned: [values] is the symbol table in
          first-occurrence order (at most 256 entries), [ids] one table
          index per state *)
  | VCol of Value.t array  (** mixed-type signal, stored exactly *)

val column : t -> string -> (col * Bytes.t option) option
(** [column tr v] — the packed column of variable [v] and its presence
    mask ([None] = bound in every state; [Some p] = bound exactly where
    [p] has byte 1, other cells are padding and must not be read).
    [None] when no state binds [v]. *)

val approx_bytes : t -> int
(** Rough in-memory footprint of the packed representation, in bytes —
    the accounting behind the [trace_store.bytes] counter. *)

(** {1 Incremental construction}

    The allocation-friendly way to record a simulation: append snapshots
    as they are computed — cells go straight into typed columns, so the
    run never retains one map per tick. *)

module Builder : sig
  type b

  val create : ?hint:int -> dt:float -> unit -> b
  (** [hint] — expected number of states (the initial column capacity).
      @raise Invalid_argument when [dt <= 0]. *)

  val add : b -> State.t -> unit
  (** Append one state. Variables never seen before open a new column
      (absent in all earlier states); variables missing from this state
      are recorded as absent. *)

  val length : b -> int
  val finish : b -> t
end
