(** A system state: a finite assignment of state variables to values.

    States are immutable maps so that traces can share structure and so the
    model checker can use them as keys. *)

type t

val empty : t
val of_list : (string * Value.t) list -> t
val to_list : t -> (string * Value.t) list

val set : string -> Value.t -> t -> t
(** [set name v s] — [s] with [name] (re)bound to [v]. *)

val update : (string * Value.t) list -> t -> t
(** [update bindings s] — apply every binding, later entries winning. *)

exception Unbound of string

val get : t -> string -> Value.t
(** @raise Unbound when the variable is absent. *)

val find_opt : string -> t -> Value.t option
val mem : string -> t -> bool
val vars : t -> string list

val iter : (string -> Value.t -> unit) -> t -> unit
(** [iter f s] applies [f] to every binding in ascending name order,
    without building an intermediate list (the allocation-free form of
    [to_list] used by the trace builder's hot path). *)

val bool : t -> string -> bool
(** Typed accessor. @raise Value.Type_error / @raise Unbound as applicable. *)

val float : t -> string -> float
val sym : t -> string -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
