(** Finite execution traces: a sequence of states sampled at a fixed period.

    The thesis's simulation states are 1 ms apart ("the time interval of one
    state"); [dt] carries that period so bounded-duration operators can
    convert seconds into numbers of states.

    Storage is columnar: one typed column per state variable (unboxed
    [floatarray] for numeric signals, packed bytes for booleans, interned
    ids for symbols), rather than one [State.t] map per tick. A 20-second
    vehicle run is then a handful of flat, pointer-free blobs — the GC never
    traverses it, [Marshal] is effectively a memcpy, and monitors can read
    one signal across all states without a single map lookup. [get] and the
    iterators materialize classic [State.t] rows on demand, so every
    consumer of the old row-oriented representation behaves identically. *)

(* A column's cells, one per state. The constructor is chosen canonically
   from the cell values alone (see [Builder]), so structurally equal traces
   have structurally equal — and therefore Marshal-equal — columns:
   - [FCol]  : every present cell is [Value.Float] (NaN included);
   - [ICol]  : every present cell is [Value.Int];
   - [BCol]  : every present cell is [Value.Bool], packed as 0/1 bytes;
   - [SCol]  : every present cell is [Value.Sym] with at most 256 distinct
               symbols; [values] is the intern table in first-occurrence
               order and [ids] one table index per state;
   - [VCol]  : anything else (mixed-type signals), stored exactly. *)
type col =
  | FCol of floatarray
  | ICol of int array
  | BCol of Bytes.t
  | SCol of { values : Value.t array; ids : Bytes.t }
  | VCol of Value.t array

type column = {
  name : string;
  col : col;
  presence : Bytes.t option;
      (** [None] = the variable is bound in every state; [Some p] = bound
          exactly where [p] has byte 1 (cells elsewhere are padding). *)
}

type t = { dt : float; len : int; cols : column array (* sorted by name *) }

let length tr = tr.len
let dt tr = tr.dt

(* Shared immediate-ish values so packed-column reads allocate nothing for
   booleans. *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false

let cell_value col i =
  match col with
  | FCol a -> Value.Float (Float.Array.get a i)
  | ICol a -> Value.Int a.(i)
  | BCol b -> if Bytes.get b i = '\001' then vtrue else vfalse
  | SCol { values; ids } -> values.(Char.code (Bytes.get ids i))
  | VCol a -> a.(i)

let present c i =
  match c.presence with None -> true | Some p -> Bytes.get p i = '\001'

(* Binary search over the name-sorted column array. *)
let find_column tr name =
  let cols = tr.cols in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare name cols.(mid).name in
      if c = 0 then Some cols.(mid)
      else if c < 0 then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length cols)

let column tr name =
  match find_column tr name with
  | Some c -> Some (c.col, c.presence)
  | None -> None

let get tr i =
  if i < 0 || i >= tr.len then invalid_arg "index out of bounds";
  let bindings = ref [] in
  for k = Array.length tr.cols - 1 downto 0 do
    let c = tr.cols.(k) in
    if present c i then bindings := (c.name, cell_value c.col i) :: !bindings
  done;
  State.of_list !bindings

(** Wall-clock time of state [i] (state 0 is at time 0). *)
let time tr i = float_of_int i *. tr.dt

(** [duration_to_states ~dt d] — how many consecutive states span duration
    [d]: the smallest [k >= 1] with [k * dt >= d]. *)
let duration_to_states ~dt d =
  if d <= 0. then 1 else max 1 (int_of_float (Float.ceil ((d /. dt) -. 1e-9)))

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)

module Builder = struct
  (* Growable typed stores. A column starts in the narrowest store its
     first value fits and is promoted to [GV] (exact [Value.t] cells) on
     the first type conflict, so [finish] emits the canonical column kind
     for the cells actually seen. *)
  type store =
    | GF of floatarray
    | GI of int array
    | GB of Bytes.t
    | GS of {
        mutable values : Value.t array;  (* Sym intern table *)
        mutable nvalues : int;
        tbl : (string, int) Hashtbl.t;
        ids : Bytes.t;
      }
    | GV of Value.t array

  type bcolumn = {
    cname : string;
    mutable store : store;
    mutable pres : Bytes.t;  (* 0/1 per row, sized like the stores *)
    mutable last : int;  (* last row this column was written at *)
  }

  type b = {
    bdt : float;
    mutable rows : int;
    mutable cap : int;
    mutable bcols : bcolumn list;  (* creation order; sorted at finish *)
    index : (string, bcolumn) Hashtbl.t;
  }

  let create ?(hint = 1024) ~dt () =
    if dt <= 0. then invalid_arg "Trace.Builder.create: dt must be positive";
    {
      bdt = dt;
      rows = 0;
      cap = max 16 hint;
      bcols = [];
      index = Hashtbl.create 64;
    }

  let length b = b.rows

  let grow_store cap = function
    | GF a ->
        let a' = Float.Array.make cap 0. in
        Float.Array.blit a 0 a' 0 (Float.Array.length a);
        GF a'
    | GI a ->
        let a' = Array.make cap 0 in
        Array.blit a 0 a' 0 (Array.length a);
        GI a'
    | GB s ->
        let s' = Bytes.make cap '\000' in
        Bytes.blit s 0 s' 0 (Bytes.length s);
        GB s'
    | GS g ->
        let ids = Bytes.make cap '\000' in
        Bytes.blit g.ids 0 ids 0 (Bytes.length g.ids);
        GS { g with ids }
    | GV a ->
        let a' = Array.make cap vfalse in
        Array.blit a 0 a' 0 (Array.length a);
        GV a'

  let ensure b c =
    match c.store with
    | GF a when Float.Array.length a < b.cap -> c.store <- grow_store b.cap c.store
    | GI a when Array.length a < b.cap -> c.store <- grow_store b.cap c.store
    | GB s when Bytes.length s < b.cap -> c.store <- grow_store b.cap c.store
    | GS { ids; _ } when Bytes.length ids < b.cap ->
        c.store <- grow_store b.cap c.store
    | GV a when Array.length a < b.cap -> c.store <- grow_store b.cap c.store
    | _ -> ()

  let ensure_pres b c =
    if Bytes.length c.pres < b.cap then begin
      let p = Bytes.make b.cap '\000' in
      Bytes.blit c.pres 0 p 0 (Bytes.length c.pres);
      c.pres <- p
    end

  (* Rebuild the first [n] cells of a store as exact values — the promotion
     path when a column stops being monomorphic. Only present cells are ever
     read back, so reconstructing padding cells as typed zeros is sound. *)
  let promote cap n = function
    | GF a -> Array.init cap (fun i -> if i < n then Value.Float (Float.Array.get a i) else vfalse)
    | GI a -> Array.init cap (fun i -> if i < n then Value.Int a.(i) else vfalse)
    | GB s ->
        Array.init cap (fun i ->
            if i < n then if Bytes.get s i = '\001' then vtrue else vfalse
            else vfalse)
    | GS { values; ids; _ } ->
        Array.init cap (fun i ->
            if i < n then values.(Char.code (Bytes.get ids i)) else vfalse)
    | GV a -> Array.init cap (fun i -> if i < Array.length a && i < n then a.(i) else vfalse)

  let fresh_store cap (v : Value.t) =
    match v with
    | Value.Float f ->
        let a = Float.Array.make cap 0. in
        Float.Array.set a 0 f;
        GF a
    | Value.Int i ->
        let a = Array.make cap 0 in
        a.(0) <- i;
        GI a
    | Value.Bool bv ->
        let s = Bytes.make cap '\000' in
        if bv then Bytes.set s 0 '\001';
        GB s
    | Value.Sym s ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add tbl s 0;
        GS { values = Array.make 8 (Value.Sym s); nvalues = 1; tbl; ids = Bytes.make cap '\000' }

  (* The fresh store writes row 0; shift the first value to [row] when the
     column first appears later in the trace. *)
  let fresh_store_at cap row v =
    let s = fresh_store cap v in
    if row > 0 then begin
      (match (s, v) with
      | GF a, Value.Float f ->
          Float.Array.set a 0 0.;
          Float.Array.set a row f
      | GI a, Value.Int i ->
          a.(0) <- 0;
          a.(row) <- i
      | GB b, Value.Bool bv ->
          Bytes.set b 0 '\000';
          if bv then Bytes.set b row '\001'
      | GS g, Value.Sym _ -> Bytes.set g.ids row '\000'
      | _ -> assert false);
      ()
    end;
    s

  let write b c row (v : Value.t) =
    ensure b c;
    ensure_pres b c;
    (match (c.store, v) with
    | GF a, Value.Float f -> Float.Array.set a row f
    | GI a, Value.Int i -> a.(row) <- i
    | GB s, Value.Bool bv -> Bytes.set s row (if bv then '\001' else '\000')
    | GS g, Value.Sym s -> (
        match Hashtbl.find_opt g.tbl s with
        | Some id -> Bytes.set g.ids row (Char.chr id)
        | None when g.nvalues < 256 ->
            let id = g.nvalues in
            if id >= Array.length g.values then begin
              let values = Array.make (2 * Array.length g.values) v in
              Array.blit g.values 0 values 0 g.nvalues;
              g.values <- values
            end;
            g.values.(id) <- v;
            g.nvalues <- id + 1;
            Hashtbl.add g.tbl s id;
            Bytes.set g.ids row (Char.chr id)
        | None ->
            (* intern table overflow: fall back to exact storage *)
            let a = promote b.cap row c.store in
            a.(row) <- v;
            c.store <- GV a)
    | GV a, v -> a.(row) <- v
    | store, v ->
        let a = promote b.cap row store in
        a.(row) <- v;
        c.store <- GV a);
    Bytes.set c.pres row '\001';
    c.last <- row

  let add b (st : State.t) =
    let row = b.rows in
    if row >= b.cap then b.cap <- b.cap * 2;
    State.iter
      (fun name v ->
        match Hashtbl.find_opt b.index name with
        | Some c -> write b c row v
        | None ->
            let c =
              {
                cname = name;
                store = fresh_store_at b.cap row v;
                pres = Bytes.make b.cap '\000';
                last = row;
              }
            in
            Bytes.set c.pres row '\001';
            Hashtbl.add b.index name c;
            b.bcols <- c :: b.bcols)
      st;
    (* Columns absent from this state keep pad cells; their presence byte
       stays 0 (the pres array is grown lazily on the next write, and
       [finish] treats missing tail bytes as absent). *)
    b.rows <- row + 1

  let finish b : t =
    let len = b.rows in
    (* Columns that stopped being written early may hold stores shorter
       than the trace; grow every store to at least [len] so trimming is
       total (the grown tail is padding under absent presence bytes). *)
    b.cap <- max b.cap len;
    List.iter (fun c -> ensure b c) b.bcols;
    let trim_pres c =
      (* All-present columns collapse to [None]; otherwise emit the first
         [len] presence bytes (absent tail bytes included). *)
      let p = Bytes.make len '\000' in
      let have = min len (Bytes.length c.pres) in
      Bytes.blit c.pres 0 p 0 have;
      let all = ref true in
      for i = 0 to len - 1 do
        if Bytes.get p i <> '\001' then all := false
      done;
      if !all then None else Some p
    in
    let trim_col c =
      match c.store with
      | GF a -> FCol (Float.Array.sub a 0 len)
      | GI a -> ICol (Array.sub a 0 len)
      | GB s -> BCol (Bytes.sub s 0 len)
      | GS g ->
          SCol { values = Array.sub g.values 0 g.nvalues; ids = Bytes.sub g.ids 0 len }
      | GV a -> VCol (Array.sub a 0 len)
    in
    let cols =
      List.map (fun c -> { name = c.cname; col = trim_col c; presence = trim_pres c }) b.bcols
      |> List.sort (fun a b -> String.compare a.name b.name)
      |> Array.of_list
    in
    { dt = b.bdt; len; cols }
end

(* ------------------------------------------------------------------ *)
(* Row-oriented constructors, over the builder                          *)

let of_seq ~dt ~hint states =
  let b = Builder.create ~hint ~dt () in
  Seq.iter (Builder.add b) states;
  Builder.finish b

let make ~dt states =
  if dt <= 0. then invalid_arg "Trace.make: dt must be positive";
  of_seq ~dt ~hint:(List.length states) (List.to_seq states)

let of_array ~dt states =
  if dt <= 0. then invalid_arg "Trace.of_array: dt must be positive";
  of_seq ~dt ~hint:(Array.length states) (Array.to_seq states)

(** [init ~dt n f] builds a trace of [n] states where state [i] is [f i]. *)
let init ~dt n f =
  if dt <= 0. then invalid_arg "Trace.init: dt must be positive";
  of_seq ~dt ~hint:n (Seq.init n f)

(* ------------------------------------------------------------------ *)
(* Signals and iteration                                                *)

(** Extract a signal as a float series, [(time, value)] pairs. *)
let signal tr name =
  match find_column tr name with
  | None -> raise (State.Unbound name)
  | Some c ->
      List.init tr.len (fun i ->
          if present c i then (time tr i, Value.to_float (cell_value c.col i))
          else raise (State.Unbound name))

(** Extract a boolean signal as a [(time, bool)] series. *)
let bool_signal tr name =
  match find_column tr name with
  | None -> raise (State.Unbound name)
  | Some c ->
      List.init tr.len (fun i ->
          if present c i then (time tr i, Value.to_bool (cell_value c.col i))
          else raise (State.Unbound name))

let fold f acc tr =
  let acc = ref acc in
  for i = 0 to tr.len - 1 do
    acc := f !acc (get tr i)
  done;
  !acc

let iteri f tr =
  for i = 0 to tr.len - 1 do
    f i (get tr i)
  done

(* ------------------------------------------------------------------ *)

(** Rough in-memory footprint of the packed representation, in bytes —
    the accounting behind the [trace_store.bytes] counter. *)
let approx_bytes tr =
  Array.fold_left
    (fun acc c ->
      let cells =
        match c.col with
        | FCol a -> 8 * Float.Array.length a
        | ICol a -> 8 * Array.length a
        | BCol s -> Bytes.length s
        | SCol { values; ids } -> Bytes.length ids + (32 * Array.length values)
        | VCol a -> 24 * Array.length a
      in
      acc + cells + String.length c.name + 16
      + (match c.presence with None -> 0 | Some p -> Bytes.length p))
    64 tr.cols
