(** Hierarchical monitoring reports (§3.4, §5.1.2).

    For each system goal monitored alongside its ICPA-derived subgoals:
    - a {e hit} is a goal violation with at least one corresponding subgoal
      violation (the subgoals predicted the hazard);
    - a {e false negative} is a goal violation with no corresponding
      subgoal violation — evidence of residual emergence (the demon [X] of
      Eq. 3.14);
    - a {e false positive} is a subgoal violation with no corresponding
      goal violation — restrictive or redundant goal coverage (the angel
      [Y] of Eq. 3.23), or a masked subsystem defect. *)

type outcome = Hit | False_negative | False_positive | Monitor_inhibited

val outcome_to_string : outcome -> string

type entry = {
  goal_name : string;  (** the goal or subgoal violated *)
  location : string;  (** monitoring location, e.g. "Vehicle", "Arbiter", "CA" *)
  interval : Violation.interval;
  outcome : outcome;
}

type t = {
  window : float;
  entries : entry list;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;  (** total inhibition intervals across all monitors *)
  inhibitions : (string * int) list;
      (** per-monitor inhibition-interval counts (monitor name → count);
          monitors never inhibited are omitted *)
}

val classify :
  window:float ->
  ?inhibitions:(string * string * Violation.interval list) list ->
  goal:string * string * Violation.interval list ->
  subgoals:(string * string * Violation.interval list) list ->
  unit ->
  t
(** [classify ~window ?inhibitions ~goal:(name, location, intervals)
    ~subgoals ()] — classify every violation by temporal correspondence
    within [window]. [inhibitions] lists per-monitor intervals during which
    the monitor could not judge (missing/NaN/stale inputs under runtime
    faults); each becomes a [Monitor_inhibited] entry, counted separately
    from hits/FNs/FPs. *)

type totals = {
  total_hits : int;
  total_false_negatives : int;
  total_false_positives : int;
  total_inhibited : int;
}

val totals : t list -> totals
(** Sum the classification counters over a set of reports (e.g. all the
    reports of one campaign cell, or of a whole resumed run). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
