(** Pure incremental monitors for the past-time fragment.

    A formula is compiled once into a flat instruction array; the monitor's
    dynamic state is a plain [int array] of memory slots (booleans as 0/1,
    counters for the bounded-duration operators). Because the dynamic state is
    a small comparable vector, the same monitor drives both online monitoring
    during simulation ({!Rtmon.Online}) and the finite product construction of
    the model checker ({!Mc.Checker}).

    Equivalence with the reference semantics {!Tl.Eval.eval} is established by
    the property tests in [test/test_rtmon.ml]. *)

open Tl

type op =
  | OTrue
  | OFalse
  | OAtom of Formula.atom
  | ONot of int
  | OAnd of int * int
  | OOr of int * int
  | OImplies of int * int
  | OIff of int * int
  | OPrev of int * int  (** child, memory slot holding child's previous value *)
  | OOnce of int * int
  | OHist of int * int
  | OPrevFor of int * int * int  (** child, k states, slot: run length capped at k *)
  | OOnceWithin of int * int * int  (** child, k states, slot: age capped at k *)
  | ORose of int * int  (** child, slot: 2 = no previous state, else prev value *)

type compiled = { ops : op array; init_mem : int array; root : int; dt : float }

exception Not_monitorable of string

(** [compile ~dt f] compiles the past-time formula [f]. A top-level [Always]
    is stripped (invariant monitoring evaluates the body at every state).
    @raise Not_monitorable if a future operator remains. *)
let compile ~dt (f : Formula.t) : compiled =
  let body =
    match Formula.invariant_body f with
    | Some b -> b
    | None ->
        raise
          (Not_monitorable
             (Fmt.str "formula contains future operators: %a" Formula.pp f))
  in
  let ops = ref [] and nops = ref 0 and mem = ref [] and nmem = ref 0 in
  let emit op =
    ops := op :: !ops;
    incr nops;
    !nops - 1
  in
  let alloc init =
    mem := init :: !mem;
    incr nmem;
    !nmem - 1
  in
  let rec go (f : Formula.t) =
    match f with
    | True -> emit OTrue
    | False -> emit OFalse
    | Atom a -> emit (OAtom a)
    | Not g ->
        let c = go g in
        emit (ONot c)
    | And (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OAnd (ca, cb))
    | Or (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OOr (ca, cb))
    | Implies (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OImplies (ca, cb))
    | Iff (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OIff (ca, cb))
    | Prev g ->
        let c = go g in
        emit (OPrev (c, alloc 0))
    | Once g ->
        let c = go g in
        emit (OOnce (c, alloc 0))
    | Hist g ->
        let c = go g in
        emit (OHist (c, alloc 1))
    | PrevFor (d, g) ->
        let k = Trace.duration_to_states ~dt d in
        let c = go g in
        emit (OPrevFor (c, k, alloc 0))
    | OnceWithin (d, g) ->
        let k = Trace.duration_to_states ~dt d in
        let c = go g in
        emit (OOnceWithin (c, k, alloc k))
    | Rose g ->
        let c = go g in
        emit (ORose (c, alloc 2))
    | Next _ | Eventually _ | Always _ ->
        raise (Not_monitorable "nested future operator")
  in
  let root = go body in
  {
    ops = Array.of_list (List.rev !ops);
    init_mem = Array.of_list (List.rev !mem);
    root;
    dt;
  }

type t = { c : compiled; mem : int array }

let create ~dt f =
  let c = compile ~dt f in
  { c; mem = Array.copy c.init_mem }

(** Dynamic state alone, for use as a model-checking product component. *)
let mem t = t.mem

let with_mem t mem = { t with mem }

(** [step t state] evaluates one state transition, returning the formula's
    truth value in [state] and the successor monitor. The input monitor is not
    mutated. *)
let step (t : t) (state : State.t) : bool * t =
  let { ops; root; _ } = t.c in
  let n = Array.length ops in
  let v = Array.make n false in
  let mem' = Array.copy t.mem in
  for i = 0 to n - 1 do
    (match ops.(i) with
    | OTrue -> v.(i) <- true
    | OFalse -> v.(i) <- false
    | OAtom a -> v.(i) <- Eval.eval_atom state a
    | ONot c -> v.(i) <- not v.(c)
    | OAnd (a, b) -> v.(i) <- v.(a) && v.(b)
    | OOr (a, b) -> v.(i) <- v.(a) || v.(b)
    | OImplies (a, b) -> v.(i) <- (not v.(a)) || v.(b)
    | OIff (a, b) -> v.(i) <- v.(a) = v.(b)
    | OPrev (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if v.(c) then 1 else 0)
    | OOnce (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if t.mem.(s) = 1 || v.(c) then 1 else 0)
    | OHist (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if t.mem.(s) = 1 && v.(c) then 1 else 0)
    | OPrevFor (c, k, s) ->
        v.(i) <- t.mem.(s) >= k;
        mem'.(s) <- (if v.(c) then min k (t.mem.(s) + 1) else 0)
    | OOnceWithin (c, k, s) ->
        v.(i) <- t.mem.(s) <= k - 1;
        mem'.(s) <- (if v.(c) then 0 else min k (t.mem.(s) + 1))
    | ORose (c, s) ->
        v.(i) <- v.(c) && t.mem.(s) = 0;
        mem'.(s) <- (if v.(c) then 1 else 0));
    ()
  done;
  (v.(root), { t with mem = mem' })

(** [run_trace ~dt f trace] — truth value of [f]'s invariant body at every
    state, computed incrementally. Agrees with
    [Tl.Eval.series trace (invariant_body f)]. *)
let run_trace f (trace : Trace.t) : bool array =
  let t0 = create ~dt:(Trace.dt trace) f in
  let n = Trace.length trace in
  let out = Array.make n true in
  let rec go i t =
    if i < n then begin
      let ok, t' = step t (Trace.get trace i) in
      out.(i) <- ok;
      go (i + 1) t'
    end
  in
  go 0 t0;
  out

(* ------------------------------------------------------------------ *)
(* Degradation-aware monitoring: under runtime faults (dropout, NaN,
   frozen sensors) a monitor's inputs can be missing or garbage. Rather
   than silently classifying over garbage, the three-valued runner reports
   [Inhibited] for such states — the monitor knows it cannot judge. *)

type status = Pass | Fail | Inhibited

(** A value a monitor must refuse to judge on. *)
let degraded = function Value.Float f -> Float.is_nan f | _ -> false

(** [inhibited state vars] — is any monitored input missing or NaN? *)
let inhibited state vars =
  List.exists
    (fun v ->
      match State.find_opt v state with None -> true | Some x -> degraded x)
    vars

(** [run_trace_status ?stale f trace] — three-valued verdict per state.

    A state is [Inhibited] when any state variable of [f] is missing or
    NaN, or when a variable listed in [stale] has held the exact same value
    for longer than its bound (opt-in, for signals with known activity:
    hold-last dropout is otherwise indistinguishable from a legitimately
    constant signal). The monitor's memory is {e frozen} across inhibited
    states — it resumes from its pre-fault state rather than absorbing
    garbage. *)
let run_trace_status ?(stale = []) f (trace : Trace.t) : status array =
  let vars = Formula.vars f in
  let n = Trace.length trace in
  let out = Array.make n Pass in
  let dt = Trace.dt trace in
  (* per-stale-variable run length of the unchanged value *)
  let stale_k =
    List.map (fun (v, bound) -> (v, Trace.duration_to_states ~dt bound)) stale
  in
  let runs = Hashtbl.create 8 in
  let stale_now state =
    List.exists
      (fun (v, k) ->
        match State.find_opt v state with
        | None -> false (* missing is the [inhibited] check's business *)
        | Some x -> (
            match Hashtbl.find_opt runs v with
            | Some (prev, len) when Value.equal prev x ->
                Hashtbl.replace runs v (x, len + 1);
                len + 1 > k
            | _ ->
                Hashtbl.replace runs v (x, 1);
                false))
      stale_k
  in
  let rec go i t =
    if i < n then begin
      let state = Trace.get trace i in
      let is_stale = stale_now state in
      if inhibited state vars || is_stale then begin
        out.(i) <- Inhibited;
        go (i + 1) t (* memory frozen *)
      end
      else begin
        let ok, t' = step t state in
        out.(i) <- (if ok then Pass else Fail);
        go (i + 1) t'
      end
    end
  in
  go 0 (create ~dt f);
  out

(** Violation intervals of a status series (maximal [Fail] runs). *)
let fails ~dt status =
  Violation.of_series ~dt (Array.map (fun s -> s <> Fail) status)

(** Inhibition intervals of a status series (maximal [Inhibited] runs). *)
let inhibitions ~dt status =
  Violation.of_series ~dt (Array.map (fun s -> s <> Inhibited) status)
