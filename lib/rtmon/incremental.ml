(** Pure incremental monitors for the past-time fragment.

    A formula is compiled once into a flat instruction array; the monitor's
    dynamic state is a plain [int array] of memory slots (booleans as 0/1,
    counters for the bounded-duration operators). Because the dynamic state is
    a small comparable vector, the same monitor drives both online monitoring
    during simulation ({!Rtmon.Online}) and the finite product construction of
    the model checker ({!Mc.Checker}).

    Equivalence with the reference semantics {!Tl.Eval.eval} is established by
    the property tests in [test/test_rtmon.ml]. *)

open Tl

type op =
  | OTrue
  | OFalse
  | OAtom of Formula.atom
  | ONot of int
  | OAnd of int * int
  | OOr of int * int
  | OImplies of int * int
  | OIff of int * int
  | OPrev of int * int  (** child, memory slot holding child's previous value *)
  | OOnce of int * int
  | OHist of int * int
  | OPrevFor of int * int * int  (** child, k states, slot: run length capped at k *)
  | OOnceWithin of int * int * int  (** child, k states, slot: age capped at k *)
  | ORose of int * int  (** child, slot: 2 = no previous state, else prev value *)

type compiled = { ops : op array; init_mem : int array; root : int; dt : float }

exception Not_monitorable of string

(** [compile ~dt f] compiles the past-time formula [f]. A top-level [Always]
    is stripped (invariant monitoring evaluates the body at every state).
    @raise Not_monitorable if a future operator remains. *)
let compile ~dt (f : Formula.t) : compiled =
  let body =
    match Formula.invariant_body f with
    | Some b -> b
    | None ->
        raise
          (Not_monitorable
             (Fmt.str "formula contains future operators: %a" Formula.pp f))
  in
  let ops = ref [] and nops = ref 0 and mem = ref [] and nmem = ref 0 in
  let emit op =
    ops := op :: !ops;
    incr nops;
    !nops - 1
  in
  let alloc init =
    mem := init :: !mem;
    incr nmem;
    !nmem - 1
  in
  let rec go (f : Formula.t) =
    match f with
    | True -> emit OTrue
    | False -> emit OFalse
    | Atom a -> emit (OAtom a)
    | Not g ->
        let c = go g in
        emit (ONot c)
    | And (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OAnd (ca, cb))
    | Or (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OOr (ca, cb))
    | Implies (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OImplies (ca, cb))
    | Iff (a, b) ->
        let ca = go a in
        let cb = go b in
        emit (OIff (ca, cb))
    | Prev g ->
        let c = go g in
        emit (OPrev (c, alloc 0))
    | Once g ->
        let c = go g in
        emit (OOnce (c, alloc 0))
    | Hist g ->
        let c = go g in
        emit (OHist (c, alloc 1))
    | PrevFor (d, g) ->
        let k = Trace.duration_to_states ~dt d in
        let c = go g in
        emit (OPrevFor (c, k, alloc 0))
    | OnceWithin (d, g) ->
        let k = Trace.duration_to_states ~dt d in
        let c = go g in
        emit (OOnceWithin (c, k, alloc k))
    | Rose g ->
        let c = go g in
        emit (ORose (c, alloc 2))
    | Next _ | Eventually _ | Always _ ->
        raise (Not_monitorable "nested future operator")
  in
  let root = go body in
  {
    ops = Array.of_list (List.rev !ops);
    init_mem = Array.of_list (List.rev !mem);
    root;
    dt;
  }

type t = { c : compiled; mem : int array }

let create ~dt f =
  let c = compile ~dt f in
  { c; mem = Array.copy c.init_mem }

(** Dynamic state alone, for use as a model-checking product component. *)
let mem t = t.mem

let with_mem t mem = { t with mem }

(** [step t state] evaluates one state transition, returning the formula's
    truth value in [state] and the successor monitor. The input monitor is not
    mutated. *)
let step (t : t) (state : State.t) : bool * t =
  let { ops; root; _ } = t.c in
  let n = Array.length ops in
  let v = Array.make n false in
  let mem' = Array.copy t.mem in
  for i = 0 to n - 1 do
    (match ops.(i) with
    | OTrue -> v.(i) <- true
    | OFalse -> v.(i) <- false
    | OAtom a -> v.(i) <- Eval.eval_atom state a
    | ONot c -> v.(i) <- not v.(c)
    | OAnd (a, b) -> v.(i) <- v.(a) && v.(b)
    | OOr (a, b) -> v.(i) <- v.(a) || v.(b)
    | OImplies (a, b) -> v.(i) <- (not v.(a)) || v.(b)
    | OIff (a, b) -> v.(i) <- v.(a) = v.(b)
    | OPrev (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if v.(c) then 1 else 0)
    | OOnce (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if t.mem.(s) = 1 || v.(c) then 1 else 0)
    | OHist (c, s) ->
        v.(i) <- t.mem.(s) = 1;
        mem'.(s) <- (if t.mem.(s) = 1 && v.(c) then 1 else 0)
    | OPrevFor (c, k, s) ->
        v.(i) <- t.mem.(s) >= k;
        mem'.(s) <- (if v.(c) then min k (t.mem.(s) + 1) else 0)
    | OOnceWithin (c, k, s) ->
        v.(i) <- t.mem.(s) <= k - 1;
        mem'.(s) <- (if v.(c) then 0 else min k (t.mem.(s) + 1))
    | ORose (c, s) ->
        v.(i) <- v.(c) && t.mem.(s) = 0;
        mem'.(s) <- (if v.(c) then 1 else 0));
    ()
  done;
  (v.(root), { t with mem = mem' })

(* ------------------------------------------------------------------ *)
(* Columnar fast path: compile every atom of a formula against one
   trace's typed columns ({!Tl.Trace.column}), so the per-state loop
   reads unboxed cells directly instead of materializing a [State.t]
   map per state and searching it per atom. Compilation refuses (returns
   [None]) whenever the column types cannot {e prove} the compiled
   reader equivalent to [Eval.eval_atom] over the materialized state —
   mixed-type columns, ordered comparisons over non-numeric terms,
   and (in [strict] mode, used where the slow path would raise
   [State.Unbound]) partially-present columns. Refusal falls back to
   the reference per-state path, never to different semantics; the
   QCheck property tests against {!Tl.Eval} exercise both paths. *)

(* Exact [Value.t] of a column cell — only sound where the cell is
   present. *)
let cell col i =
  match col with
  | Trace.FCol a -> Value.Float (Float.Array.get a i)
  | Trace.ICol a -> Value.Int a.(i)
  | Trace.BCol b -> Value.Bool (Bytes.get b i = '\001')
  | Trace.SCol { values; ids } -> values.(Char.code (Bytes.get ids i))
  | Trace.VCol a -> a.(i)

(* A term compiled to a typed per-state reader. [TNum] readers return
   exactly [Value.to_float (Term.eval state t)]; likewise for the other
   shapes. *)
type tterm =
  | TNum of (int -> float)
  | TSym of (int -> string)
  | TBool of (int -> bool)

let rec typed_term ~strict tr (t : Term.t) : tterm option =
  let num t =
    match typed_term ~strict tr t with Some (TNum f) -> Some f | _ -> None
  in
  let arith op a b =
    match (num a, num b) with
    | Some fa, Some fb -> Some (TNum (fun i -> op (fa i) (fb i)))
    | _ -> None
  in
  match t with
  | Term.Var v -> (
      match Trace.column tr v with
      | Some (col, pres) when (not strict) || pres = None -> (
          match col with
          | Trace.FCol a -> Some (TNum (fun i -> Float.Array.get a i))
          | Trace.ICol a -> Some (TNum (fun i -> float_of_int a.(i)))
          | Trace.BCol b -> Some (TBool (fun i -> Bytes.get b i = '\001'))
          | Trace.SCol { values; ids } ->
              let strs =
                Array.map
                  (function Value.Sym s -> s | _ -> assert false)
                  values
              in
              Some (TSym (fun i -> strs.(Char.code (Bytes.get ids i))))
          | Trace.VCol _ -> None)
      | _ -> None)
  | Term.Const (Value.Float f) -> Some (TNum (fun _ -> f))
  | Term.Const (Value.Int n) ->
      let f = float_of_int n in
      Some (TNum (fun _ -> f))
  | Term.Const (Value.Bool b) -> Some (TBool (fun _ -> b))
  | Term.Const (Value.Sym s) -> Some (TSym (fun _ -> s))
  | Term.Neg t -> (
      match num t with Some f -> Some (TNum (fun i -> -.f i)) | None -> None)
  | Term.Abs t -> (
      match num t with
      | Some f -> Some (TNum (fun i -> Float.abs (f i)))
      | None -> None)
  | Term.Add (a, b) -> arith ( +. ) a b
  | Term.Sub (a, b) -> arith ( -. ) a b
  | Term.Mul (a, b) -> arith ( *. ) a b
  | Term.Div (a, b) -> arith ( /. ) a b
  | Term.Min (a, b) -> arith Float.min a b
  | Term.Max (a, b) -> arith Float.max a b

let compile_atom ~strict tr (a : Formula.atom) : (int -> bool) option =
  let typed t = typed_term ~strict tr t in
  (* [Value.equal] has numeric coercion, [String.equal] on symbols,
     structural equality on booleans, and is [false] across shapes. *)
  let equality x y =
    match (typed x, typed y) with
    | Some (TNum fx), Some (TNum fy) -> Some (fun i -> Float.equal (fx i) (fy i))
    | Some (TSym fx), Some (TSym fy) -> Some (fun i -> String.equal (fx i) (fy i))
    | Some (TBool fx), Some (TBool fy) -> Some (fun i -> fx i = fy i)
    | Some _, Some _ -> Some (fun _ -> false)
    | _ -> None
  in
  (* [Value.compare_num] raises [Type_error] on non-numeric values; only
     provably numeric terms compile, everything else falls back. *)
  let ordered op x y =
    match (typed x, typed y) with
    | Some (TNum fx), Some (TNum fy) ->
        Some (fun i -> op (Float.compare (fx i) (fy i)) 0)
    | _ -> None
  in
  match a with
  | Formula.Bvar v -> (
      match Trace.column tr v with
      | Some (Trace.BCol b, pres) when (not strict) || pres = None ->
          Some (fun i -> Bytes.get b i = '\001')
      | _ -> None)
  | Formula.Eq (x, y) -> equality x y
  | Formula.Ne (x, y) ->
      Option.map (fun f i -> not (f i)) (equality x y)
  | Formula.Lt (x, y) -> ordered ( < ) x y
  | Formula.Le (x, y) -> ordered ( <= ) x y
  | Formula.Gt (x, y) -> ordered ( > ) x y
  | Formula.Ge (x, y) -> ordered ( >= ) x y

(* One compiled reader per [OAtom] op; [None] if any atom refuses. *)
let compile_atoms ~strict tr (c : compiled) : (int -> bool) array option =
  let n = Array.length c.ops in
  let afuns = Array.make n (fun _ -> false) in
  let ok = ref true in
  Array.iteri
    (fun k op ->
      match op with
      | OAtom a -> (
          match compile_atom ~strict tr a with
          | Some f -> afuns.(k) <- f
          | None -> ok := false)
      | _ -> ())
    c.ops;
  if !ok then Some afuns else None

(* One transition of the op program at state [i], reading column-compiled
   atoms: the loop body of {!step} with the per-state [v]/[mem'] arrays
   preallocated by the caller (each memory slot has a unique owner op
   that writes it on every step, so [mem]/[mem'] swap instead of copy). *)
let fast_step ops afuns v mem mem' i =
  let n = Array.length ops in
  for k = 0 to n - 1 do
    match ops.(k) with
    | OTrue -> v.(k) <- true
    | OFalse -> v.(k) <- false
    | OAtom _ -> v.(k) <- afuns.(k) i
    | ONot c -> v.(k) <- not v.(c)
    | OAnd (a, b) -> v.(k) <- v.(a) && v.(b)
    | OOr (a, b) -> v.(k) <- v.(a) || v.(b)
    | OImplies (a, b) -> v.(k) <- (not v.(a)) || v.(b)
    | OIff (a, b) -> v.(k) <- v.(a) = v.(b)
    | OPrev (c, s) ->
        v.(k) <- mem.(s) = 1;
        mem'.(s) <- (if v.(c) then 1 else 0)
    | OOnce (c, s) ->
        v.(k) <- mem.(s) = 1;
        mem'.(s) <- (if mem.(s) = 1 || v.(c) then 1 else 0)
    | OHist (c, s) ->
        v.(k) <- mem.(s) = 1;
        mem'.(s) <- (if mem.(s) = 1 && v.(c) then 1 else 0)
    | OPrevFor (c, k', s) ->
        v.(k) <- mem.(s) >= k';
        mem'.(s) <- (if v.(c) then min k' (mem.(s) + 1) else 0)
    | OOnceWithin (c, k', s) ->
        v.(k) <- mem.(s) <= k' - 1;
        mem'.(s) <- (if v.(c) then 0 else min k' (mem.(s) + 1))
    | ORose (c, s) ->
        v.(k) <- v.(c) && mem.(s) = 0;
        mem'.(s) <- (if v.(c) then 1 else 0)
  done

(** [run_trace ~dt f trace] — truth value of [f]'s invariant body at every
    state, computed incrementally. Agrees with
    [Tl.Eval.series trace (invariant_body f)]. *)
let run_trace f (trace : Trace.t) : bool array =
  let t0 = create ~dt:(Trace.dt trace) f in
  let n = Trace.length trace in
  let out = Array.make n true in
  (* Strict compile: the reference path raises [State.Unbound] on a
     missing variable, so only fully-present columns may fast-path. *)
  (match compile_atoms ~strict:true trace t0.c with
  | Some afuns ->
      let ops = t0.c.ops in
      let v = Array.make (Array.length ops) false in
      let mem = ref (Array.copy t0.c.init_mem) in
      let mem' = ref (Array.copy t0.c.init_mem) in
      for i = 0 to n - 1 do
        fast_step ops afuns v !mem !mem' i;
        out.(i) <- v.(t0.c.root);
        let m = !mem in
        mem := !mem';
        mem' := m
      done
  | None ->
      let rec go i t =
        if i < n then begin
          let ok, t' = step t (Trace.get trace i) in
          out.(i) <- ok;
          go (i + 1) t'
        end
      in
      go 0 t0);
  out

(* ------------------------------------------------------------------ *)
(* Degradation-aware monitoring: under runtime faults (dropout, NaN,
   frozen sensors) a monitor's inputs can be missing or garbage. Rather
   than silently classifying over garbage, the three-valued runner reports
   [Inhibited] for such states — the monitor knows it cannot judge. *)

type status = Pass | Fail | Inhibited

(** A value a monitor must refuse to judge on. *)
let degraded = function Value.Float f -> Float.is_nan f | _ -> false

(** [inhibited state vars] — is any monitored input missing or NaN? *)
let inhibited state vars =
  List.exists
    (fun v ->
      match State.find_opt v state with None -> true | Some x -> degraded x)
    vars

(** [run_trace_status ?stale f trace] — three-valued verdict per state.

    A state is [Inhibited] when any state variable of [f] is missing or
    NaN, or when a variable listed in [stale] has held the exact same value
    for longer than its bound (opt-in, for signals with known activity:
    hold-last dropout is otherwise indistinguishable from a legitimately
    constant signal). The monitor's memory is {e frozen} across inhibited
    states — it resumes from its pre-fault state rather than absorbing
    garbage. *)
let run_trace_status ?(stale = []) f (trace : Trace.t) : status array =
  let vars = Formula.vars f in
  let n = Trace.length trace in
  let out = Array.make n Pass in
  let dt = Trace.dt trace in
  (* per-stale-variable run length of the unchanged value *)
  let stale_k =
    List.map (fun (v, bound) -> (v, Trace.duration_to_states ~dt bound)) stale
  in
  let runs = Hashtbl.create 8 in
  let t0 = create ~dt f in
  (match compile_atoms ~strict:false trace t0.c with
  | Some afuns ->
      (* Compiled inhibition check, one closure per monitored variable:
         missing column is always-inhibited, a presence mask marks
         per-state absence, and only float-bearing columns can carry a
         degraded (NaN) cell. Padding cells are never read: [absent]
         short-circuits first. *)
      let inh_checks =
        List.map
          (fun var ->
            match Trace.column trace var with
            | None -> fun _ -> true
            | Some (col, pres) -> (
                let absent =
                  match pres with
                  | None -> fun _ -> false
                  | Some p -> fun i -> Bytes.get p i <> '\001'
                in
                match col with
                | Trace.FCol a ->
                    fun i -> absent i || Float.is_nan (Float.Array.get a i)
                | Trace.VCol a -> fun i -> absent i || degraded a.(i)
                | _ -> absent))
          vars
      in
      let inh i = List.exists (fun c -> c i) inh_checks in
      let stale_reads =
        List.map
          (fun (var, k) ->
            let read =
              match Trace.column trace var with
              | None -> fun _ -> None
              | Some (col, pres) -> (
                  match pres with
                  | None -> fun i -> Some (cell col i)
                  | Some p ->
                      fun i ->
                        if Bytes.get p i = '\001' then Some (cell col i)
                        else None)
            in
            (var, k, read))
          stale_k
      in
      let stale_now i =
        List.exists
          (fun (var, k, read) ->
            match read i with
            | None -> false (* missing is the inhibition check's business *)
            | Some x -> (
                match Hashtbl.find_opt runs var with
                | Some (prev, len) when Value.equal prev x ->
                    Hashtbl.replace runs var (x, len + 1);
                    len + 1 > k
                | _ ->
                    Hashtbl.replace runs var (x, 1);
                    false))
          stale_reads
      in
      let ops = t0.c.ops in
      let v = Array.make (Array.length ops) false in
      let mem = ref (Array.copy t0.c.init_mem) in
      let mem' = ref (Array.copy t0.c.init_mem) in
      for i = 0 to n - 1 do
        let is_stale = stale_now i in
        if inh i || is_stale then out.(i) <- Inhibited (* memory frozen *)
        else begin
          fast_step ops afuns v !mem !mem' i;
          out.(i) <- (if v.(t0.c.root) then Pass else Fail);
          let m = !mem in
          mem := !mem';
          mem' := m
        end
      done
  | None ->
      let stale_now state =
        List.exists
          (fun (var, k) ->
            match State.find_opt var state with
            | None -> false (* missing is the [inhibited] check's business *)
            | Some x -> (
                match Hashtbl.find_opt runs var with
                | Some (prev, len) when Value.equal prev x ->
                    Hashtbl.replace runs var (x, len + 1);
                    len + 1 > k
                | _ ->
                    Hashtbl.replace runs var (x, 1);
                    false))
          stale_k
      in
      let rec go i t =
        if i < n then begin
          let state = Trace.get trace i in
          let is_stale = stale_now state in
          if inhibited state vars || is_stale then begin
            out.(i) <- Inhibited;
            go (i + 1) t (* memory frozen *)
          end
          else begin
            let ok, t' = step t state in
            out.(i) <- (if ok then Pass else Fail);
            go (i + 1) t'
          end
        end
      in
      go 0 t0);
  out

(** Violation intervals of a status series (maximal [Fail] runs). *)
let fails ~dt status =
  Violation.of_series ~dt (Array.map (fun s -> s <> Fail) status)

(** Inhibition intervals of a status series (maximal [Inhibited] runs). *)
let inhibitions ~dt status =
  Violation.of_series ~dt (Array.map (fun s -> s <> Inhibited) status)
