(** Hierarchical monitoring reports (§3.4, §5.1.2).

    For each system goal monitored alongside its ICPA-derived subgoals:
    - a *hit* is a goal violation with at least one corresponding subgoal
      violation (the subgoals predicted the hazard);
    - a *false negative* is a goal violation with no corresponding subgoal
      violation — evidence of residual emergence (the demon [X] of Eq. 3.14);
    - a *false positive* is a subgoal violation with no corresponding goal
      violation — restrictive or redundant goal coverage (the angel [Y] of
      Eq. 3.23), or a masked subsystem defect. *)

type outcome = Hit | False_negative | False_positive | Monitor_inhibited

let outcome_to_string = function
  | Hit -> "hit"
  | False_negative -> "false negative"
  | False_positive -> "false positive"
  | Monitor_inhibited -> "monitor inhibited"

type entry = {
  goal_name : string;  (** the goal or subgoal violated *)
  location : string;  (** monitoring location, e.g. "Vehicle", "Arbiter", "CA" *)
  interval : Violation.interval;
  outcome : outcome;
}

type t = {
  window : float;
  entries : entry list;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;  (** total inhibition intervals across all monitors *)
  inhibitions : (string * int) list;
      (** per-monitor inhibition-interval counts (monitor name → count);
          monitors that were never inhibited are omitted *)
}

(* Report assembly is on the hot path of every classified outcome (nine
   goals per scenario per window), so its cost is tracked: the counter
   says how many reports a run assembled, the histogram what each one
   cost. *)
let m_reports = Obs.Metrics.counter "rtmon.reports"
let h_classify = Obs.Metrics.histogram "rtmon.classify_s"

(** [classify ~window ?inhibitions ~goal ~subgoals] classifies every
    violation. [goal = (name, location, intervals)]; each subgoal likewise.
    [inhibitions] lists per-monitor intervals during which the monitor
    could not judge (degraded inputs); they appear as [Monitor_inhibited]
    entries and counts, distinct from hits/FNs/FPs. *)
let classify ~window ?(inhibitions = []) ~goal:(gname, gloc, givs)
    ~(subgoals : (string * string * Violation.interval list) list) () : t =
  let t_classify = Obs.Clock.now () in
  let sub_ivs = List.concat_map (fun (_, _, ivs) -> ivs) subgoals in
  let goal_entries =
    List.map
      (fun iv ->
        let matched =
          List.exists (fun siv -> Violation.overlap_within ~window iv siv) sub_ivs
        in
        {
          goal_name = gname;
          location = gloc;
          interval = iv;
          outcome = (if matched then Hit else False_negative);
        })
      givs
  in
  let sub_entries =
    List.concat_map
      (fun (sname, sloc, sivs) ->
        List.map
          (fun siv ->
            let matched =
              List.exists (fun giv -> Violation.overlap_within ~window giv siv) givs
            in
            {
              goal_name = sname;
              location = sloc;
              interval = siv;
              outcome = (if matched then Hit else False_positive);
            })
          sivs)
      subgoals
  in
  let inhibited_entries =
    List.concat_map
      (fun (name, loc, ivs) ->
        List.map
          (fun iv ->
            { goal_name = name; location = loc; interval = iv; outcome = Monitor_inhibited })
          ivs)
      inhibitions
  in
  let entries = goal_entries @ sub_entries @ inhibited_entries in
  let count o = List.length (List.filter (fun e -> e.outcome = o) entries) in
  let report =
    {
      window;
      entries;
      hits = List.length (List.filter (fun e -> e.outcome = Hit) goal_entries);
      false_negatives = count False_negative;
      false_positives = count False_positive;
      inhibited = List.length inhibited_entries;
      inhibitions =
        List.filter_map
          (fun (name, _, ivs) ->
            if ivs = [] then None else Some (name, List.length ivs))
          inhibitions;
    }
  in
  Obs.Metrics.incr m_reports;
  Obs.Metrics.observe h_classify (Obs.Clock.now () -. t_classify);
  report

type totals = {
  total_hits : int;
  total_false_negatives : int;
  total_false_positives : int;
  total_inhibited : int;
}

(** Sum the classification counters over a set of reports — the one
    aggregation every campaign summary (per cell, per grid, per resumed
    run) needs, kept here so the counts can never drift between
    consumers. *)
let totals reports =
  List.fold_left
    (fun acc r ->
      {
        total_hits = acc.total_hits + r.hits;
        total_false_negatives = acc.total_false_negatives + r.false_negatives;
        total_false_positives = acc.total_false_positives + r.false_positives;
        total_inhibited = acc.total_inhibited + r.inhibited;
      })
    {
      total_hits = 0;
      total_false_negatives = 0;
      total_false_positives = 0;
      total_inhibited = 0;
    }
    reports

let pp_entry ppf e =
  Fmt.pf ppf "%-12s %-48s %a %s" e.location e.goal_name Violation.pp_interval
    e.interval
    (outcome_to_string e.outcome)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,hits=%d false_negatives=%d false_positives=%d%a@]"
    (Fmt.list ~sep:Fmt.cut pp_entry)
    t.entries t.hits t.false_negatives t.false_positives
    (fun ppf n -> if n > 0 then Fmt.pf ppf " inhibited=%d" n)
    t.inhibited
