(** Pure incremental monitors for the past-time fragment.

    A formula is compiled once into a flat instruction array; the monitor's
    dynamic state is a plain [int array] of memory slots (booleans as 0/1,
    counters for the bounded-duration operators). Because the dynamic state
    is a small comparable vector, the same monitor drives both online
    monitoring during simulation and the finite product construction of the
    model checker ({!Mc.Checker}).

    Equivalence with the reference semantics {!Tl.Eval.eval} is established
    by the property tests in [test/test_rtmon.ml]. *)

open Tl

exception Not_monitorable of string
(** Raised when the formula contains future operators beneath the top-level
    □ — goals with ♦ are not realizable nor monitorable (§4.5.3). *)

type t
(** A monitor: compiled formula plus current memory. Immutable — {!step}
    returns the successor. *)

val create : dt:float -> Formula.t -> t
(** Compile a past-time formula. A top-level [Always] is stripped:
    invariant monitoring checks the body at every state.
    @raise Not_monitorable if a future operator remains. *)

val mem : t -> int array
(** The dynamic state alone, for use as a model-checking product component.
    Treat as opaque and do not mutate. *)

val with_mem : t -> int array -> t

val step : t -> State.t -> bool * t
(** [step t state] evaluates one state transition, returning the formula's
    truth value in [state] and the successor monitor. The input monitor is
    not mutated. *)

val run_trace : Formula.t -> Trace.t -> bool array
(** Truth value of the formula's invariant body at every state, computed
    incrementally; agrees with [Tl.Eval.series] on the body. *)

(** {1 Degradation-aware monitoring}

    Under runtime faults (sensor dropout, NaN measurements) a monitor's
    inputs can be missing or garbage; the three-valued runner reports
    {!Inhibited} for such states instead of silently classifying. *)

type status = Pass | Fail | Inhibited

val degraded : Value.t -> bool
(** A value a monitor must refuse to judge on (NaN). *)

val inhibited : State.t -> string list -> bool
(** Is any of the given state variables missing or degraded? *)

val run_trace_status :
  ?stale:(string * float) list -> Formula.t -> Trace.t -> status array
(** Three-valued verdict per state: [Inhibited] when any variable of the
    formula is missing or NaN in that state, or when a variable listed in
    [stale] has held the exact same value for longer than its bound
    (seconds; opt-in, since hold-last dropout is indistinguishable from a
    legitimately constant signal). The monitor's memory is frozen across
    inhibited states. *)

val fails : dt:float -> status array -> Violation.interval list
(** Maximal [Fail] runs — the violation intervals. *)

val inhibitions : dt:float -> status array -> Violation.interval list
(** Maximal [Inhibited] runs. *)
