(** Splittable seeded PRNG (SplitMix64): each fault derives a private
    generator from the campaign seed, so draws never cross fault or run
    boundaries and parallel campaigns are bit-for-bit reproducible. *)

val derive : int -> int -> int
(** [derive seed i] — the [i]-th child seed of [seed] (pure; plans store
    the integers, generators are built per run). *)

type t

val create : int -> t
val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val gaussian : t -> float
(** Standard normal (Box–Muller). *)
