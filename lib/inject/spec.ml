(** Textual fault specs for the [--inject] command-line flag.

    Grammar (inverse of {!Fault.pp}):

    {v
    SPEC    ::= MODEL ":" TARGET [ "@" [FROM] ".." [UNTIL] ]
    MODEL   ::= "stuck=" VALUE | "hold" | "nan" | "delay=" STATES
              | "noise=" SIGMA | "drift=" RATE | "spike=" MAG "/" RATE
              | "flicker=" PERIOD
    VALUE   ::= "true" | "false" | NUMBER | SYMBOL
    v}

    Examples: [nan:object_range\@2..8] (range reads NaN between 2 s and
    8 s), [stuck=false:object_detected] (radar blind for the whole run),
    [delay=150:object_range\@5..] (range 150 states late from 5 s on). *)

open Tl

let parse_value s =
  match s with
  | "true" -> Value.Bool true
  | "false" -> Value.Bool false
  | _ -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> Value.Sym s)

(* first index of ".." in [s], skipping a '.' that is part of a decimal *)
let dotdot s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '.' && s.[i + 1] = '.' then Some i
    else go (i + 1)
  in
  go 0

let parse_window s =
  (* "FROM..UNTIL", either side optional *)
  match dotdot s with
  | Some i ->
      let from_s = String.sub s 0 i in
      let until_s = String.sub s (i + 2) (String.length s - i - 2) in
      let parse_bound default b =
        if b = "" then Some default else float_of_string_opt b
      in
      Option.bind (parse_bound 0. from_s) (fun from_t ->
          Option.map
            (fun until_t -> (from_t, until_t))
            (parse_bound infinity until_s))
  | _ -> Option.map (fun t -> (t, infinity)) (float_of_string_opt s)

let parse_model s : (Fault.model, string) result =
  let num name v k =
    match float_of_string_opt v with
    | Some f -> k f
    | None -> Error (Fmt.str "%s wants a number, got %S" name v)
  in
  match String.index_opt s '=' with
  | None -> (
      match s with
      | "hold" -> Ok Fault.Dropout_hold
      | "nan" -> Ok Fault.Dropout_missing
      | _ -> Error (Fmt.str "unknown fault model %S" s))
  | Some i -> (
      let name = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match name with
      | "stuck" ->
          if arg = "" then Error "stuck wants a value (stuck=VALUE)"
          else Ok (Fault.Stuck_at (parse_value arg))
      | "delay" -> (
          match int_of_string_opt arg with
          | Some k when k > 0 -> Ok (Fault.Delay k)
          | _ -> Error (Fmt.str "delay wants a positive state count, got %S" arg))
      | "noise" -> num "noise" arg (fun f -> Ok (Fault.Noise f))
      | "drift" -> num "drift" arg (fun f -> Ok (Fault.Drift f))
      | "flicker" -> num "flicker" arg (fun f -> Ok (Fault.Intermittent f))
      | "spike" -> (
          match String.index_opt arg '/' with
          | Some j ->
              let mag = String.sub arg 0 j in
              let rate = String.sub arg (j + 1) (String.length arg - j - 1) in
              num "spike magnitude" mag (fun m ->
                  num "spike rate" rate (fun r -> Ok (Fault.Spike (m, r))))
          | None -> Error "spike wants MAGNITUDE/RATE")
      | _ -> Error (Fmt.str "unknown fault model %S" name))

(** [parse s] — parse one [--inject] SPEC. *)
let parse s : (Fault.t, string) result =
  match String.index_opt s ':' with
  | None -> Error (Fmt.str "missing ':' in fault spec %S (MODEL:TARGET[@FROM..UNTIL])" s)
  | Some i -> (
      let model_s = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let target, window_s =
        match String.index_opt rest '@' with
        | None -> (rest, None)
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      if target = "" then Error (Fmt.str "empty target in fault spec %S" s)
      else
        match parse_model model_s with
        | Error e -> Error e
        | Ok model -> (
            match window_s with
            | None -> Ok (Fault.make ~target model)
            | Some w -> (
                match parse_window w with
                | Some (from_t, until_t) ->
                    Ok (Fault.make ~from_t ~until_t ~target model)
                | None -> Error (Fmt.str "bad window %S (FROM..UNTIL)" w))))

let parse_exn s =
  match parse s with Ok f -> f | Error e -> invalid_arg ("--inject: " ^ e)

(** Cmdliner converter for [--inject]. *)
let conv_doc = "MODEL:TARGET[@FROM..UNTIL] — see Inject.Spec"
