(** Runtime fault models applied as signal interposers on component
    outputs. A fault is pure data (target, model, activation window); all
    per-run mutable state lives in a {!runtime} created fresh per
    simulation, keeping same-seed campaigns deterministic. *)

open Tl

type model =
  | Stuck_at of Value.t  (** output frozen at a constant *)
  | Dropout_hold  (** output holds the last pre-fault value *)
  | Dropout_missing
      (** numeric output replaced by NaN; non-numeric targets degrade to
          hold-last *)
  | Delay of int  (** output delayed by [k] states *)
  | Noise of float  (** additive Gaussian noise, sigma in signal units *)
  | Drift of float  (** additive ramp, signal units per second *)
  | Spike of float * float  (** (magnitude, expected spikes per second) *)
  | Intermittent of float
      (** mean gate period, seconds: alternates passing / holding with
          exponentially distributed gate durations *)

type t = {
  target : string;
  model : model;
  from_t : float;
  until_t : float;
}

val make : ?from_t:float -> ?until_t:float -> target:string -> model -> t
(** Window defaults: active for the whole run. *)

val active : t -> float -> bool

val model_name : model -> string
val pp_model : Format.formatter -> model -> unit

val pp : Format.formatter -> t -> unit
(** Prints the [--inject] SPEC syntax; inverse of {!Spec.parse}. *)

val to_string : t -> string

type runtime

val runtime : seed:int -> t -> runtime
(** Fresh per-run interposer state (delay line, PRNG, hold/drift/gate). *)

val apply : runtime -> dt:float -> now:float -> State.t -> State.t
(** Interpose the fault on one freshly computed snapshot. A target absent
    from the state is a no-op. *)
