(** Textual fault specs for [--inject]:
    [MODEL:TARGET[@FROM..UNTIL]] with models [stuck=V], [hold], [nan],
    [delay=K], [noise=SIGMA], [drift=RATE], [spike=MAG/RATE],
    [flicker=PERIOD]. {!Fault.pp} prints this syntax back. *)

val parse : string -> (Fault.t, string) result
val parse_exn : string -> Fault.t
(** @raise Invalid_argument on a malformed spec. *)

val conv_doc : string
