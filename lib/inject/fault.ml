(** Runtime fault models, applied as signal interposers on the simulation
    snapshot (the fault-injection direction of Gleirscher & Kugele's
    pattern survey; cf. the Fig. 2.2 fault-tree branch "object detection
    misses object that is there").

    A fault is *pure data*: target signal, model, activation window, and
    (implicitly, via its position in a {!Plan}) a derived PRNG seed. All
    mutable per-run state lives in a {!runtime} created fresh for every
    simulation, which is what keeps same-seed campaigns bit-for-bit
    reproducible on the domain pool.

    Because the kernel is double-buffered, an interposed value is what every
    downstream reader — feature subsystems, the arbiter, the monitors —
    observes on the next tick. Faults on sensor outputs therefore behave
    exactly like sensor faults; faults on plant-owned integrator state would
    alter the physics itself and are not what campaigns target. *)

open Tl

type model =
  | Stuck_at of Value.t  (** output frozen at a constant *)
  | Dropout_hold  (** output holds the last pre-fault value *)
  | Dropout_missing
      (** numeric output replaced by NaN (a missing measurement); non-numeric
          targets degrade to hold-last *)
  | Delay of int  (** output delayed by [k] states *)
  | Noise of float  (** additive Gaussian noise, sigma in signal units *)
  | Drift of float  (** additive ramp, signal units per second *)
  | Spike of float * float
      (** [(magnitude, rate)]: one-state additive spikes, expected [rate]
          spikes per second *)
  | Intermittent of float
      (** mean gate period in seconds: the signal alternates between passing
          and holding, with exponentially distributed gate durations *)

type t = {
  target : string;  (** the interposed state variable *)
  model : model;
  from_t : float;  (** activation window start, seconds (inclusive) *)
  until_t : float;  (** activation window end, seconds *)
}

let make ?(from_t = 0.) ?(until_t = infinity) ~target model =
  { target; model; from_t; until_t }

let active f now = now >= f.from_t -. 1e-12 && now <= f.until_t +. 1e-12

let model_name = function
  | Stuck_at _ -> "stuck"
  | Dropout_hold -> "hold"
  | Dropout_missing -> "nan"
  | Delay _ -> "delay"
  | Noise _ -> "noise"
  | Drift _ -> "drift"
  | Spike _ -> "spike"
  | Intermittent _ -> "flicker"

let pp_value ppf = function
  | Value.Bool b -> Fmt.bool ppf b
  | Value.Int i -> Fmt.int ppf i
  | Value.Float f -> Fmt.pf ppf "%g" f
  | Value.Sym s -> Fmt.string ppf s

let pp_model ppf = function
  | Stuck_at v -> Fmt.pf ppf "stuck=%a" pp_value v
  | Dropout_hold -> Fmt.string ppf "hold"
  | Dropout_missing -> Fmt.string ppf "nan"
  | Delay k -> Fmt.pf ppf "delay=%d" k
  | Noise sigma -> Fmt.pf ppf "noise=%g" sigma
  | Drift rate -> Fmt.pf ppf "drift=%g" rate
  | Spike (mag, rate) -> Fmt.pf ppf "spike=%g/%g" mag rate
  | Intermittent period -> Fmt.pf ppf "flicker=%g" period

(** The [--inject] SPEC syntax: [MODEL:TARGET[@FROM..UNTIL]]. *)
let pp ppf f =
  Fmt.pf ppf "%a:%s" pp_model f.model f.target;
  if f.from_t > 0. || f.until_t < infinity then
    if f.until_t = infinity then Fmt.pf ppf "@@%g.." f.from_t
    else Fmt.pf ppf "@@%g..%g" f.from_t f.until_t

let to_string f = Fmt.str "%a" pp f

(* ------------------------------------------------------------------ *)
(* Per-run mutable state                                                *)

type runtime = {
  fault : t;
  gen : Prng.t;
  queue : Value.t Queue.t;  (** delay line (fed every tick, window or not) *)
  mutable last : Value.t option;  (** last value passed through un-faulted *)
  mutable drift : float;  (** accumulated ramp while active *)
  mutable gate_passing : bool;  (** intermittent: currently transparent? *)
  mutable gate_left : float;  (** seconds until the gate toggles *)
}

let runtime ~seed fault =
  {
    fault;
    gen = Prng.create seed;
    queue = Queue.create ();
    last = None;
    drift = 0.;
    gate_passing = true;
    gate_left = 0.;
  }

let perturb v f =
  match v with
  | Value.Float x -> Value.Float (x +. f)
  | Value.Int x -> Value.Float (float_of_int x +. f)
  | v -> v (* non-numeric targets pass through unperturbed *)

let hold_last rt v = match rt.last with Some l -> l | None -> v

(** [apply rt ~dt ~now state] — interpose one fault on one freshly computed
    snapshot. A target absent from the state is a no-op, so a plan written
    for the vehicle world is harmless on a mini-world that lacks the
    signal. *)
let apply rt ~dt ~now state =
  match State.find_opt rt.fault.target state with
  | None -> state
  | Some v ->
      (* The delay line is fed unconditionally so that a window-activated
         delay has history to serve from its first active tick. *)
      let delayed k =
        Queue.push v rt.queue;
        if Queue.length rt.queue > k then Queue.pop rt.queue
        else Queue.peek rt.queue
      in
      let faulted =
        if not (active rt.fault now) then begin
          (match rt.fault.model with Delay k -> ignore (delayed k) | _ -> ());
          rt.last <- Some v;
          rt.drift <- 0.;
          None
        end
        else
          match rt.fault.model with
          | Stuck_at x -> Some x
          | Dropout_hold -> Some (hold_last rt v)
          | Dropout_missing -> (
              match v with
              | Value.Float _ | Value.Int _ -> Some (Value.Float Float.nan)
              | _ -> Some (hold_last rt v))
          | Delay k -> Some (delayed k)
          | Noise sigma -> Some (perturb v (sigma *. Prng.gaussian rt.gen))
          | Drift rate ->
              rt.drift <- rt.drift +. (rate *. dt);
              Some (perturb v rt.drift)
          | Spike (mag, rate) ->
              if Prng.float rt.gen < rate *. dt then Some (perturb v mag)
              else None
          | Intermittent period ->
              rt.gate_left <- rt.gate_left -. dt;
              if rt.gate_left <= 0. then begin
                rt.gate_passing <- not rt.gate_passing;
                (* exponentially distributed gate duration, mean [period] *)
                rt.gate_left <-
                  -.period *. Float.log (Float.max (1. -. Prng.float rt.gen) 0x1p-53)
              end;
              if rt.gate_passing then begin
                rt.last <- Some v;
                None
              end
              else Some (hold_last rt v)
      in
      match faulted with
      | None -> state
      | Some v' -> State.set rt.fault.target v' state
