(** An injection plan: campaign seed + faults. Pure, closure-free data that
    marshals deterministically (it extends the scenario outcome-cache
    digest); interposer state is rebuilt fresh for every run. *)



type t = { seed : int; faults : Fault.t list }

val make : ?seed:int -> Fault.t list -> t
val empty : t
val is_empty : t -> bool

val interposer : dt:float -> t -> now:float -> Tl.State.t -> Tl.State.t
(** A stateful per-run snapshot transform; pass to [Sim.World.run
    ~transform] (via [Vehicle.System.run ~interpose]). Fault [i] draws from
    a private PRNG seeded [Prng.derive seed i]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
