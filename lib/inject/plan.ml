(** An injection plan: a campaign seed plus the faults to interpose.

    The plan is pure, closure-free data — it marshals deterministically, so
    {!Scenarios.Runner} folds it straight into the outcome-cache digest: an
    identical (scenario, plan) pair is never re-simulated.

    Determinism contract: fault [i] draws from the private generator seeded
    [Prng.derive seed i]; every run builds fresh interposer state from the
    plan, so sequential and parallel executions of the same plan produce
    bit-for-bit identical traces. *)


type t = { seed : int; faults : Fault.t list }

let make ?(seed = 0) faults = { seed; faults }
let empty = { seed = 0; faults = [] }
let is_empty p = p.faults = []

(** [interposer ~dt plan] — a stateful snapshot transform for one run.
    Faults are applied in plan order; each owns a derived PRNG. *)
let interposer ~dt plan =
  let rts =
    List.mapi (fun i f -> Fault.runtime ~seed:(Prng.derive plan.seed i) f) plan.faults
  in
  fun ~now state ->
    List.fold_left (fun st rt -> Fault.apply rt ~dt ~now st) state rts

let pp ppf p =
  Fmt.pf ppf "@[<h>seed=%d %a@]" p.seed
    (Fmt.list ~sep:Fmt.sp Fault.pp)
    p.faults

let to_string p = Fmt.str "%a" pp p
