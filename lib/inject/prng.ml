(** Splittable seeded PRNG (SplitMix64).

    Every injected fault owns its own generator, derived from the campaign
    seed and the fault's position in the plan — no global state, so a fault
    consumes random draws at its own pace and parallel runs on the domain
    pool stay bit-for-bit identical to sequential ones. *)

let golden = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer: a bijective avalanche mix. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [derive seed i] — the [i]-th child seed of [seed], as pure data. Plans
    store only integers; generators are created fresh for every run. *)
let derive seed i =
  Int64.to_int (mix (Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (i + 1)) golden)))

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

(** Uniform float in [0, 1), from the top 53 bits. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

(** Standard normal via Box–Muller (one draw per call; the sine half is
    discarded to keep the draw count per tick fixed). *)
let gaussian t =
  let u1 = Float.max (float t) 0x1p-53 in
  let u2 = float t in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
