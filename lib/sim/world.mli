(** The simulation kernel: synchronous, discrete-time, double-buffered.

    At each tick every component reads the snapshot of tick [i−1] and
    writes its outputs into the snapshot of tick [i]; variables not written
    keep their previous values. The recorded trace therefore has exactly
    the one-state observation delay assumed by the thesis's goal
    semantics. *)

open Tl

exception Conflict of string
(** Two components declare direct control of the same variable. The thesis
    relaxes KAOS's strict single-controller rule (§4.2), so conflicts are
    only rejected when [check_conflicts] is true (the default). *)

type t

val make :
  ?check_conflicts:bool ->
  ?extra_init:(string * Value.t) list ->
  dt:float ->
  Component.t list ->
  t
(** @raise Conflict per [check_conflicts]. *)

val step : t -> float -> State.t -> State.t
(** [step world now prev] — the snapshot at time [now] from the previous
    snapshot. *)

val run :
  ?stop:(State.t -> bool) ->
  ?transform:(now:float -> State.t -> State.t) ->
  until:float ->
  t ->
  Trace.t
(** Simulate from time 0 to [until] seconds, recording every snapshot (the
    initial state is state 0 at time 0). [stop] terminates the run early
    when it returns true on a freshly computed snapshot (the thesis's runs
    end early on collision); the terminating snapshot is included.

    [transform] interposes on every freshly computed snapshot before it is
    recorded or tested by [stop] — the runtime fault-injection hook: with
    the double-buffered kernel, an interposed value is exactly what every
    component and monitor observes on the following tick. The initial state
    is not transformed. *)
