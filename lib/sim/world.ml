(** The simulation kernel: synchronous, discrete-time, double-buffered.

    At each tick every component reads the snapshot of tick [i−1] and writes
    its outputs into the snapshot of tick [i]; variables not written keep
    their previous values. The recorded trace therefore has exactly the
    one-state observation delay assumed by the thesis's goal semantics. *)

open Tl

exception Conflict of string
(** Two components declare direct control of the same variable. The thesis
    relaxes KAOS's strict single-controller rule (§4.2), so conflicts are
    only rejected when [check_conflicts] is requested. *)

type t = { dt : float; components : Component.t list; initial : State.t }

let make ?(check_conflicts = true) ?(extra_init = []) ~dt components =
  if check_conflicts then begin
    let seen = Hashtbl.create 64 in
    List.iter
      (fun c ->
        List.iter
          (fun v ->
            match Hashtbl.find_opt seen v with
            | Some other ->
                raise
                  (Conflict
                     (Fmt.str "variable %s controlled by both %s and %s" v other
                        c.Component.name))
            | None -> Hashtbl.add seen v c.Component.name)
          (Component.controlled c))
      components
  end;
  let initial =
    State.of_list
      (extra_init @ List.concat_map (fun c -> c.Component.outputs) components)
  in
  { dt; components; initial }

(** [step world now prev] — compute the snapshot at time [now] from the
    previous snapshot. *)
let step world now prev =
  let ctx = { Component.now; dt = world.dt; state = prev } in
  List.fold_left
    (fun next c -> State.update (c.Component.step ctx) next)
    prev world.components

(** [run world ~until ?stop ?transform ()] — simulate from time 0 to
    [until] seconds, recording every snapshot (the initial state is state 0
    at time 0). [stop] terminates the run early when it returns true on a
    freshly computed snapshot (the thesis's runs end early on collision);
    the terminating snapshot is included.

    [transform] interposes on every freshly computed snapshot before it is
    recorded or tested by [stop] — the hook behind runtime fault injection
    ({!Inject}): because the kernel is double buffered, an interposed value
    is exactly what every component and monitor observes on the following
    tick. The initial state is not transformed (no component has produced
    an output yet). *)
let run ?stop ?transform ~until world : Trace.t =
  let n_max = int_of_float (Float.ceil (until /. world.dt)) in
  (* Snapshots stream straight into typed trace columns: the run never
     retains one [State.t] map per tick. *)
  let buf = Trace.Builder.create ~hint:(n_max + 1) ~dt:world.dt () in
  Trace.Builder.add buf world.initial;
  let apply now next =
    match transform with None -> next | Some f -> f ~now next
  in
  let rec go i prev =
    if i > n_max then ()
    else
      let now = float_of_int i *. world.dt in
      let next = apply now (step world now prev) in
      Trace.Builder.add buf next;
      match stop with
      | Some f when f next -> ()
      | _ -> go (i + 1) next
  in
  go 1 world.initial;
  Trace.Builder.finish buf
