(** Rendering of the Appendix D violation tables (Tables D.1–D.11): for each
    scenario, every goal and subgoal violation with its monitoring location,
    start time, duration and hit / false-positive / false-negative
    classification. *)


let classification_of (o : Runner.outcome) (r : Vehicle.Monitors.result) iv =
  let report = List.assoc r.Vehicle.Monitors.entry.Vehicle.Monitors.parent o.Runner.reports in
  let matches (e : Rtmon.Report.entry) =
    e.Rtmon.Report.goal_name = r.Vehicle.Monitors.entry.Vehicle.Monitors.goal.Kaos.Goal.name
    && e.Rtmon.Report.interval.Rtmon.Violation.start_index = iv.Rtmon.Violation.start_index
  in
  match List.find_opt matches report.Rtmon.Report.entries with
  | Some e -> Rtmon.Report.outcome_to_string e.Rtmon.Report.outcome
  | None -> "?"

let pp_table ppf (o : Runner.outcome) =
  let s = o.Runner.scenario in
  Fmt.pf ppf "@[<v>Table D.%d — Goal and subgoal violations for Scenario %d@,"
    s.Defs.number s.Defs.number;
  Fmt.pf ppf "%s@," s.Defs.title;
  Fmt.pf ppf "(simulation ended at %.3f s%s)@,@," o.Runner.end_time
    (if o.Runner.collided then ", early termination: collision" else "");
  Fmt.pf ppf "%-10s %-52s %-10s %-10s %-9s %s@," "Location" "Goal/Subgoal" "Id" "Start (s)"
    "Dur (ms)" "Class";
  Fmt.pf ppf "%s@," (String.make 110 '-');
  let rows = Runner.violations o in
  if rows = [] then Fmt.pf ppf "(no violations detected)@,"
  else
    List.iter
      (fun (r : Vehicle.Monitors.result) ->
        List.iter
          (fun iv ->
            Fmt.pf ppf "%-10s %-52s %-10s %-10.3f %-9.0f %s@,"
              (Vehicle.Monitors.location_to_string
                 r.Vehicle.Monitors.entry.Vehicle.Monitors.location)
              r.Vehicle.Monitors.entry.Vehicle.Monitors.goal.Kaos.Goal.name
              r.Vehicle.Monitors.entry.Vehicle.Monitors.id iv.Rtmon.Violation.start_time
              (iv.Rtmon.Violation.duration *. 1000.)
              (classification_of o r iv))
          r.Vehicle.Monitors.violations)
      rows;
  (* Monitors inhibited by degraded inputs (fault injection): distinct
     rows, never mixed into the violation classes. *)
  List.iter
    (fun (r : Vehicle.Monitors.result) ->
      List.iter
        (fun (iv : Rtmon.Violation.interval) ->
          Fmt.pf ppf "%-10s %-52s %-10s %-10.3f %-9.0f %s@,"
            (Vehicle.Monitors.location_to_string
               r.Vehicle.Monitors.entry.Vehicle.Monitors.location)
            r.Vehicle.Monitors.entry.Vehicle.Monitors.goal.Kaos.Goal.name
            r.Vehicle.Monitors.entry.Vehicle.Monitors.id iv.Rtmon.Violation.start_time
            (iv.Rtmon.Violation.duration *. 1000.)
            "monitor inhibited")
        r.Vehicle.Monitors.inhibited)
    o.Runner.results;
  let hits = List.fold_left (fun acc (_, (r : Rtmon.Report.t)) -> acc + r.Rtmon.Report.hits) 0 o.Runner.reports in
  let fns =
    List.fold_left
      (fun acc (_, (r : Rtmon.Report.t)) -> acc + r.Rtmon.Report.false_negatives)
      0 o.Runner.reports
  in
  let fps =
    List.fold_left
      (fun acc (_, (r : Rtmon.Report.t)) -> acc + r.Rtmon.Report.false_positives)
      0 o.Runner.reports
  in
  let inhibited =
    List.fold_left
      (fun acc (r : Vehicle.Monitors.result) ->
        acc + List.length r.Vehicle.Monitors.inhibited)
      0 o.Runner.results
  in
  Fmt.pf ppf "@,hits=%d  false negatives=%d  false positives=%d" hits fns fps;
  if inhibited > 0 then Fmt.pf ppf "  inhibited=%d" inhibited;
  Fmt.pf ppf "@]@."

(** Summary across all scenarios: the evidence table for §5.5/§6.2. *)
let pp_summary ppf (outcomes : Runner.outcome list) =
  Fmt.pf ppf "@[<v>%-4s %-10s %-8s %-6s %-6s %-6s %s@," "Sc." "End (s)" "Collide" "Hits"
    "FN" "FP" "Goal violations";
  Fmt.pf ppf "%s@," (String.make 80 '-');
  List.iter
    (fun (o : Runner.outcome) ->
      let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 o.Runner.reports in
      let goal_violations =
        List.filter
          (fun (r : Vehicle.Monitors.result) ->
            r.Vehicle.Monitors.entry.Vehicle.Monitors.location = Vehicle.Monitors.Vehicle
            && r.Vehicle.Monitors.violations <> [])
          o.Runner.results
        |> List.map (fun (r : Vehicle.Monitors.result) ->
               r.Vehicle.Monitors.entry.Vehicle.Monitors.id)
      in
      Fmt.pf ppf "%-4d %-10.3f %-8b %-6d %-6d %-6d %s@," o.Runner.scenario.Defs.number
        o.Runner.end_time o.Runner.collided
        (sum (fun r -> r.Rtmon.Report.hits))
        (sum (fun r -> r.Rtmon.Report.false_negatives))
        (sum (fun r -> r.Rtmon.Report.false_positives))
        (String.concat "," goal_violations))
    outcomes;
  Fmt.pf ppf "@]"
