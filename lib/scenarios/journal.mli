(** Crash-safe, append-only result journal.

    A journal is a flat file of self-delimiting records, each holding one
    [(key, value)] pair: a record is [magic | payload length | CRC-32 of
    the payload | payload], with the payload a [Marshal]ed pair. Appends
    are flushed {e and fsynced} before returning, so every record that
    [append] completed survives [SIGKILL] or power loss; a record that was
    being written when the process died is torn, fails its length or CRC
    check on replay, and is skipped — never fatal.

    Replay is tolerant by construction: an absent or empty file replays as
    empty; a torn or bit-flipped tail is detected (magic, length bound,
    CRC, unmarshal) and dropped, keeping every intact record before it;
    duplicate keys resolve to the last occurrence, so re-running a
    partially journaled campaign is idempotent.

    The value type is fixed by the caller at use site (the payload is
    [Marshal]ed with [Closures] mode, so closure-carrying values work
    within one binary); replaying a journal at a different type — or one
    written by a different binary, for closure-carrying values — is
    detected by the unmarshal guard at worst, but is the caller's contract
    to avoid, exactly as with [Marshal] itself. Writers serialize appends
    internally and are safe to share across domains; concurrent writers in
    {e separate processes} are not supported. *)

exception Io_error of { path : string; op : string; error : string }
(** A device-level failure (ENOSPC, EIO, a [Sys_error]) in a journal
    operation: which file, which operation ([op] is the syscall name —
    ["write"], ["fsync"], ["close"]), and the errno message. Raw
    [Unix.Unix_error] / [Sys_error] never escape {!append}; callers — and
    the [`Degrade] policy below — match on this instead. *)

type 'a writer

val create :
  ?fresh:bool ->
  ?on_error:[ `Raise | `Degrade ] ->
  ?fault:([ `Write | `Fsync ] -> bool) ->
  string ->
  'a writer
(** [create ?fresh path] opens [path] for appending, creating it if
    absent. [~fresh:true] (default [false]) truncates an existing file
    first — a new run rather than a resumed one.

    [on_error] is the degradation policy for device failures inside
    {!append}: [`Raise] (default) raises the typed {!Io_error};
    [`Degrade] marks the writer {!degraded} and keeps going — the
    campaign keeps running, just without durability. Degradation is
    {e terminal} for the writer: replay stops at the first invalid
    record, so after one torn append no later record could ever be
    replayed anyway; every subsequent append is skipped and counted in
    [journal.appends_dropped], while the failed append itself counts in
    [journal.write_errors].

    [fault] is the chaos hook (derive from a plan with
    {!Exec.Chaos.journal_fault}): each append consults it once with
    [`Write] — [true] tears the record (half the bytes reach the file)
    and fails with EIO — and once with [`Fsync] — [true] fails the
    append with ENOSPC after the full record was flushed. Test/CI only. *)

val append : 'a writer -> key:string -> 'a -> unit
(** Append one record and fsync it to disk before returning.
    Domain-safe.

    @raise Io_error on a device failure under the [`Raise] policy. Under
    [`Degrade] the error is absorbed (see {!create}); use {!degraded} to
    observe it. *)

val degraded : 'a writer -> bool
(** Whether a device failure has switched this writer to degraded
    (memory-only) mode — results are no longer journaled, and a resume
    will re-execute the cells appended after the failure. Surfaced as the
    campaign robustness [degraded] flag. *)

val close : 'a writer -> unit

val with_writer :
  ?fresh:bool ->
  ?on_error:[ `Raise | `Degrade ] ->
  ?fault:([ `Write | `Fsync ] -> bool) ->
  string ->
  ('a writer -> 'b) ->
  'b
(** [create], run, then [close] (also on exception). *)

type fold_stats = {
  fold_records : int;
      (** intact records streamed to [f], duplicates included *)
  fold_valid_bytes : int;
      (** byte offset of the end of the last intact record — the length
          {!repair} would truncate the file to *)
  fold_dropped_bytes : int;
      (** trailing bytes discarded as torn or corrupt (0 for a clean
          file) *)
}
(** What {!fold} saw besides the records themselves. *)

val fold : string -> init:'acc -> f:('acc -> string -> 'a -> 'acc) -> 'acc * fold_stats
(** [fold path ~init ~f] streams every intact record of the journal at
    [path] through [f acc key value] in append order, without ever
    materializing the record list: live state is [f]'s accumulator plus
    one record's payload, so a multi-gigabyte journal replays in constant
    memory. Duplicate keys are {e not} collapsed — [f] sees every intact
    append, last occurrence last, so a last-wins consumer (the resume
    path, {!replay}) gets it by simply overwriting.

    An absent file folds as [init]. Torn, truncated or bit-flipped tails
    never raise: the first record that fails validation ends the fold and
    the remaining bytes are counted in [fold_dropped_bytes], exactly as
    in {!replay} (which is implemented on top of this). *)

val repair : string -> int
(** [repair path] truncates a torn or corrupt tail off the journal in
    place, returning the number of bytes removed (0 for a clean or
    absent file). Appending to a journal whose tail is torn — a resumed
    campaign after a SIGKILL landed mid-append — would otherwise leave
    the new records unreachable: replay stops at the first invalid
    record, so everything written after the tear could never be read
    back. The resume path calls this before reopening the journal for
    appending. *)

type 'a replay = {
  entries : (string * 'a) list;
      (** intact records in first-appearance order; for a duplicated key
          the {e last} appended value wins *)
  records : int;  (** intact records read, duplicates included *)
  duplicates : int;  (** records whose key had already appeared *)
  dropped_bytes : int;
      (** trailing bytes discarded as torn or corrupt (0 for a clean
          file) *)
}

val replay : string -> 'a replay
(** Read every intact record of the journal at [path]. An absent file
    replays as empty. Never raises on torn, truncated or bit-flipped
    data: the first record that fails validation ends the replay and the
    remaining bytes are counted in [dropped_bytes]. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3, as in gzip) of a string — exposed for tests
    and for callers that want to checksum derived artifacts the same
    way. *)
