(** Ablation sweeps over the design choices DESIGN.md calls out: the
    arbiter's attribution latch, its selection debounce, the plant damping,
    and the hit/FP/FN classification window. Each sweep re-runs a scenario
    with one parameter varied and reports how the monitoring outcome moves —
    quantifying which mechanism produces which phenomenon of the thesis's
    evaluation. *)

type point = {
  parameter : float;
  hits : int;
  false_negatives : int;
  false_positives : int;
  goal_violations : (string * int) list;  (** vehicle-level goal id → count *)
}

type t = {
  sweep_name : string;
  parameter_name : string;
  scenario : int;
  what : string;  (** what the sweep demonstrates *)
  points : point list;
}

let vehicle_counts (o : Runner.outcome) =
  List.filter_map
    (fun (r : Vehicle.Monitors.result) ->
      if
        r.Vehicle.Monitors.entry.Vehicle.Monitors.location = Vehicle.Monitors.Vehicle
        && r.Vehicle.Monitors.violations <> []
      then
        Some
          ( r.Vehicle.Monitors.entry.Vehicle.Monitors.id,
            List.length r.Vehicle.Monitors.violations )
      else None)
    o.Runner.results

let point_of parameter (o : Runner.outcome) =
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 o.Runner.reports in
  {
    parameter;
    hits = sum (fun (r : Rtmon.Report.t) -> r.Rtmon.Report.hits);
    false_negatives = sum (fun r -> r.Rtmon.Report.false_negatives);
    false_positives = sum (fun r -> r.Rtmon.Report.false_positives);
    goal_violations = vehicle_counts o;
  }

(* Sweep points are independent simulations: fan them out over the domain
   pool. Each point lands in the shared outcome cache (the parameter is
   part of the cache key), so re-rendering a sweep is free. *)
let points_of ?domains params run_point =
  Exec.Pool.map ?domains (fun p -> point_of p (run_point p)) params

(** Attribution latch (the `arbiter_selected_latch` mechanism): with no
    latch the rebound transients are attributed to the driver and the
    vehicle-level goal-1/goal-2 false negatives of scenario 1 disappear. *)
let latch_sweep ?domains () =
  let scenario = Defs.get 1 in
  {
    sweep_name = "ablation_latch";
    parameter_name = "latch_time (s)";
    scenario = 1;
    what =
      "How long the 'selected' flags outlive the source change determines \
       how many physical transients are attributed to a subsystem — the \
       mechanism behind the thesis's vehicle-level false negatives (§5.4.1).";
    points =
      points_of ?domains
        [ 0.0; 0.05; 0.15; 0.3 ]
        (fun latch ->
          let timing = { Vehicle.Arbiter.default_timing with latch_time = latch } in
          Runner.run ~timing scenario);
  }

(** Selection debounce: how long ACC controls the vehicle under the driver's
    throttle in scenario 4 before the override catches it. *)
let debounce_sweep ?domains () =
  let scenario = Defs.get 4 in
  {
    sweep_name = "ablation_debounce";
    parameter_name = "select_debounce (s)";
    scenario = 4;
    what =
      "The selection debounce bounds how long a newly engaged feature \
       controls the vehicle against the driver's pedals (Fig. 5.8's \
       \"briefly takes control\").";
    points =
      points_of ?domains
        [ 0.02; 0.05; 0.1; 0.2 ]
        (fun d ->
          let timing = { Vehicle.Arbiter.default_timing with select_debounce = d } in
          Runner.run ~timing scenario);
  }

(** Plant damping: the rebound overshoot that violates goal 1 needs an
    underdamped actuation response; at ζ ≳ 0.5 the +2 m/s² excursions
    disappear while the jerk violations largely remain. *)
let damping_sweep ?domains () =
  let scenario = Defs.get 1 in
  {
    sweep_name = "ablation_damping";
    parameter_name = "zeta";
    scenario = 1;
    what =
      "Goal 1's acceleration excursions come from the underdamped actuation \
       rebound after a cancelled hard brake; damping the plant removes them \
       without fixing the defect that causes the cancellations.";
    points =
      points_of ?domains
        [ 0.2; 0.3; 0.5; 0.8 ]
        (fun zeta ->
          let dynamics = { Vehicle.Plant.default_dynamics with zeta } in
          Runner.run ~dynamics scenario);
  }

(** Classification window: how hit/FP/FN counts move with the temporal
    correspondence window of §5.1.2 (EXPERIMENTS.md divergence 4). *)
let window_sweep ?domains () =
  let scenario = Defs.get 1 in
  {
    sweep_name = "ablation_window";
    parameter_name = "window (s)";
    scenario = 1;
    what =
      "The hit/false-positive/false-negative classification depends on the \
       correspondence window: too narrow misses genuine precursors, too \
       wide turns coincidences into hits.";
    points =
      points_of ?domains
        [ 0.01; 0.02; 0.05; 0.1; 0.3 ]
        (fun w -> Runner.run ~window:w scenario);
  }

let all ?domains () =
  [
    latch_sweep ?domains (); debounce_sweep ?domains (); damping_sweep ?domains ();
    window_sweep ?domains ();
  ]

let pp ppf (s : t) =
  Fmt.pf ppf "@[<v>%s — scenario %d@,%s@,@," s.sweep_name s.scenario s.what;
  Fmt.pf ppf "%-16s %-6s %-6s %-6s %s@," s.parameter_name "hits" "FN" "FP"
    "vehicle-goal violations";
  Fmt.pf ppf "%s@," (String.make 72 '-');
  List.iter
    (fun p ->
      Fmt.pf ppf "%-16g %-6d %-6d %-6d %s@," p.parameter p.hits p.false_negatives
        p.false_positives
        (String.concat ", "
           (List.map (fun (id, n) -> Fmt.str "%s:%d" id n) p.goal_violations)))
    s.points;
  Fmt.pf ppf "@]"
