(** CSV export of scenario traces, figure series and violation tables, for
    external plotting of the regenerated figures. *)

open Tl

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let value_to_csv = function
  | Value.Bool b -> if b then "1" else "0"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Fmt.str "%g" f
  | Value.Sym s -> escape s

(** [trace_csv ?signals ?stride trace] — one row per (strided) state, one
    column per signal (default: every variable of the first state, sorted). *)
let trace_csv ?signals ?(stride = 1) (trace : Trace.t) : string =
  let signals =
    match signals with
    | Some s -> s
    | None -> List.sort compare (State.vars (Trace.get trace 0))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("time," ^ String.concat "," (List.map escape signals) ^ "\n");
  Trace.iteri
    (fun i s ->
      if i mod stride = 0 then begin
        Buffer.add_string buf (Fmt.str "%g" (Trace.time trace i));
        List.iter
          (fun v ->
            Buffer.add_char buf ',';
            Buffer.add_string buf
              (match State.find_opt v s with
              | Some x -> value_to_csv x
              | None -> ""))
          signals;
        Buffer.add_char buf '\n'
      end)
    trace;
  Buffer.contents buf

(** [figure_csv fig outcome] — the figure's signals over its window, one row
    per sample. *)
let figure_csv (fig : Figures.t) (o : Runner.outcome) : string =
  let window = fig.Figures.window o in
  let series =
    List.map
      (fun (var, label) ->
        (label, Figures.extract ~max_points:2000 o.Runner.trace window var label))
      fig.Figures.signals
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    ("time," ^ String.concat "," (List.map (fun (l, _) -> escape l) series) ^ "\n");
  (match series with
  | [] -> ()
  | (_, first) :: _ ->
      List.iteri
        (fun i (t, _) ->
          Buffer.add_string buf (Fmt.str "%g" t);
          List.iter
            (fun (_, s) ->
              Buffer.add_char buf ',';
              match List.nth_opt s.Figures.points i with
              | Some (_, v) -> Buffer.add_string buf (Fmt.str "%g" v)
              | None -> ())
            series;
          Buffer.add_char buf '\n')
        first.Figures.points);
  Buffer.contents buf

(** [violations_csv outcome] — one row per violation with its location, id,
    timing and classification. *)
let violations_csv (o : Runner.outcome) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "scenario,location,id,goal,start_s,duration_ms,class\n";
  List.iter
    (fun (r : Vehicle.Monitors.result) ->
      List.iter
        (fun (iv : Rtmon.Violation.interval) ->
          Buffer.add_string buf
            (Fmt.str "%d,%s,%s,%s,%g,%g,%s\n" o.Runner.scenario.Defs.number
               (Vehicle.Monitors.location_to_string
                  r.Vehicle.Monitors.entry.Vehicle.Monitors.location)
               r.Vehicle.Monitors.entry.Vehicle.Monitors.id
               (escape r.Vehicle.Monitors.entry.Vehicle.Monitors.goal.Kaos.Goal.name)
               iv.Rtmon.Violation.start_time
               (iv.Rtmon.Violation.duration *. 1000.)
               (Results.classification_of o r iv)))
        r.Vehicle.Monitors.violations)
    o.Runner.results;
  Buffer.contents buf

(** [campaign_csv campaign] — one row per (fault, scenario) cell of the
    detection-coverage matrix, with the per-cell classification counts. *)
let campaign_csv (c : Campaign.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "fault,scenario,detection,lead_s,hits,false_negatives,false_positives,\
     inhibited,collided,baseline_collided\n";
  List.iter
    (fun (cell : Campaign.cell) ->
      let detection, lead =
        match cell.Campaign.detection with
        | Campaign.Detected lead -> ("detected", Fmt.str "%g" lead)
        | Campaign.Missed -> ("missed", "")
        | Campaign.Spurious -> ("spurious", "")
        | Campaign.No_effect -> ("no_effect", "")
      in
      Buffer.add_string buf
        (Fmt.str "%s,%d,%s,%s,%d,%d,%d,%d,%d,%d\n"
           (escape (Inject.Fault.to_string cell.Campaign.fault))
           cell.Campaign.scenario detection lead cell.Campaign.hits
           cell.Campaign.false_negatives cell.Campaign.false_positives
           cell.Campaign.inhibited
           (if cell.Campaign.collided then 1 else 0)
           (if cell.Campaign.baseline_collided then 1 else 0)))
    c.Campaign.cells;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
