(** Scenario execution: simulate, monitor all goals and subgoals
    (Table 5.3), and classify the violations (§5.1.2).

    Execution goes through [lib/exec]: outcomes are memoized in a
    process-wide cache keyed by a structural digest of the full scenario
    configuration, and fleet runs fan out over a fixed-size domain pool
    with deterministic (submission-order) results. *)

open Tl

type outcome = {
  scenario : Defs.t;
  trace : Trace.t;
  results : Vehicle.Monitors.result list;
  reports : (int * Rtmon.Report.t) list;  (** per parent goal 1–9 *)
  collided : bool;
  end_time : float;
}

(** The default classification window of §5.1.2 (±50 ms). *)
let default_window = 0.05

let classify ~window (s : Defs.t) trace results : outcome =
  let reports =
    List.map
      (fun n -> (n, Vehicle.Monitors.classify ~window results n))
      (List.init 9 (fun i -> i + 1))
  in
  let last = Trace.get trace (Trace.length trace - 1) in
  {
    scenario = s;
    trace;
    results;
    reports;
    collided = State.bool last Vehicle.Signals.collision;
    end_time = Trace.time trace (Trace.length trace - 1);
  }

let monitored ~defects ~timing ~dynamics ~inject (s : Defs.t) =
  let interpose =
    if Inject.Plan.is_empty inject then None
    else Some (Inject.Plan.interposer ~dt:Vehicle.System.dt inject)
  in
  let trace =
    Vehicle.System.run ~defects ~timing ~dynamics ?interpose
      ~duration:s.Defs.duration ~objects:s.Defs.objects ~events:s.Defs.events ()
  in
  (trace, Vehicle.Monitors.run trace)

(* ------------------------------------------------------------------ *)
(* Process-wide outcome cache: every consumer (experiments, export,
   simulate, tests, bench) shares simulated outcomes instead of
   re-running 20-second simulations from scratch.

   Two levels, because the classification window affects neither the
   simulation nor the goal monitors: the expensive simulate-and-monitor
   step is keyed by (scenario, defects, timing, dynamics) alone, and the
   classified outcome by the same key plus the window — so a window sweep
   re-simulates nothing. *)

(* Both levels are capacity-bounded (FIFO eviction, counted in
   [stats.evictions]): a week-long campaign sweeping thousands of faults
   must not accumulate every 20 k-state trace it ever simulated. The
   sim level is {!Trace_store} — the shared-trace store, holding full
   traces (heavy — bound tightly, with [trace_store.*] telemetry); the
   outcome level additionally varies per classification window (lighter
   per entry, so a larger bound keeps window sweeps warm, mirrored as
   cache.runner.outcome). *)
let outcome_cache : (string, outcome) Exec.Memo.t =
  Exec.Memo.create ~size:64 ~capacity:1024 ~name:"runner.outcome" ()

let cache_stats () = Exec.Memo.stats outcome_cache

let clear_cache () =
  Trace_store.clear ();
  Exec.Memo.clear outcome_cache

let run ?(use_cache = true) ?(defects = Vehicle.Defects.as_evaluated)
    ?(timing = Vehicle.Arbiter.default_timing)
    ?(dynamics = Vehicle.Plant.default_dynamics)
    ?(inject = Inject.Plan.empty) ?(window = default_window) (s : Defs.t) :
    outcome =
  if not use_cache then
    let trace, results = monitored ~defects ~timing ~dynamics ~inject s in
    classify ~window s trace results
  else
    (* [Defs.t] contains the scripted lead-speed closure; [Exec.Memo.digest]
       handles closures, and the cache never outlives the process. The
       injection plan is pure data (no closures, no PRNG state — runtime
       fault state is re-derived per run from the plan seed), so equal plans
       digest equally and campaign repeats hit the cache. *)
    let sim_key = Exec.Memo.digest (s, defects, timing, dynamics, inject) in
    Exec.Memo.find_or_add outcome_cache
      (Exec.Memo.digest (sim_key, window))
      (fun () ->
        let trace, results =
          Trace_store.find_or_simulate sim_key (fun () ->
              monitored ~defects ~timing ~dynamics ~inject s)
        in
        classify ~window s trace results)

(** [retry] supervises the fleet fan-out: scenarios whose task fails a
    transient way (the retry policy's [retry_on]) are re-attempted with
    backoff before the failure is re-raised; without it a task failure
    re-raises immediately after the batch settles, as before. The fleet
    result always contains every scenario — [run_all] never thins the
    fleet, because its consumers (sweeps, figures, estimates) index it
    positionally.

    [shards] fans the fleet out over the resident worker fleet instead
    ([Exec.Shard], [domains] domains per worker, [batch] scenarios per
    assignment frame); results are identical to the in-process
    dispatches. Without [retry] the sharded fleet keeps the fail-fast
    contract (a single-attempt policy), so crashes and task failures
    re-raise rather than thin the fleet. [chaos] injects the plan's
    worker and spawn faults into the sharded dispatch ([Exec.Chaos] —
    all recoverable, results unchanged); [hang_timeout_s] / [deadline_s]
    configure the coordinator's liveness sweep. All three are ignored by
    the in-process dispatches. *)
let run_all ?domains ?shards ?batch ?use_cache ?defects ?timing ?dynamics
    ?inject ?window ?retry ?chaos ?hang_timeout_s ?deadline_s () =
  Obs.span "runner.fleet" (fun () ->
      let f = run ?use_cache ?defects ?timing ?dynamics ?inject ?window in
      match shards with
      | Some s ->
          let policy =
            match retry with
            | Some p -> p
            | None -> Exec.Supervise.policy ~max_attempts:1 ()
          in
          Exec.Shard.map ~shards:s ?domains ?batch ~policy
            ?havoc:(Option.bind chaos Exec.Chaos.worker_fault)
            ?spawn_fault:(Option.bind chaos Exec.Chaos.spawn_fault)
            ?hang_timeout_s ?deadline_s f Defs.all
      | None -> (
          match retry with
          | None -> Exec.Pool.map ?domains f Defs.all
          | Some policy -> Exec.Supervise.map ?domains ~policy f Defs.all))

(* ------------------------------------------------------------------ *)
(* Cross-process persistence: journaled single-scenario runs.

   The in-process cache digests [Defs.t] itself, closures included —
   perfect within one process, meaningless after it dies. The journal key
   must survive process death, so it is built from closure-free pure data
   only: the scenario *number* (definitions are versioned with the
   binary) plus everything else the outcome depends on. The journaled
   outcome payload does carry the scenario's closures ([Marshal] in
   [Closures] mode), so it only unmarshals inside the same binary; a
   journal written by a different build fails the unmarshal guard and
   replays as empty — a clean re-run, never a crash. *)

let stable_key ?(defects = Vehicle.Defects.as_evaluated)
    ?(timing = Vehicle.Arbiter.default_timing)
    ?(dynamics = Vehicle.Plant.default_dynamics)
    ?(inject = Inject.Plan.empty) ?(window = default_window) (s : Defs.t) =
  Exec.Memo.digest (s.Defs.number, defects, timing, dynamics, inject, window)

type provenance =
  | Replayed  (** restored from the journal; nothing simulated *)
  | Ran of int  (** simulated by this run, after [attempts] attempts *)

(** [run_journaled ?journal ?resume ?retry … s] — the crash-safe form of
    {!run}: with [journal] and [resume], an outcome already journaled
    under this exact configuration is returned without simulating;
    otherwise the scenario runs (supervised by [retry] when given, which
    re-attempts transient failures with backoff before re-raising) and,
    when a journal is named, the classified outcome is fsync-appended to
    it before returning. *)
let run_journaled ?journal ?(resume = false) ?retry ?use_cache ?defects
    ?timing ?dynamics ?inject ?window (s : Defs.t) : outcome * provenance =
  let key = stable_key ?defects ?timing ?dynamics ?inject ?window s in
  let replayed =
    match journal with
    | Some path when resume ->
        (* Streaming lookup: scan for [key] without materializing the
           record list (later occurrences win, as in a full replay). *)
        fst
          (Journal.fold path ~init:None ~f:(fun acc k (o : outcome) ->
               if k = key then Some o else acc))
    | _ -> None
  in
  match replayed with
  | Some o -> (o, Replayed)
  | None ->
      let compute () = run ?use_cache ?defects ?timing ?dynamics ?inject ?window s in
      let o, attempts =
        match retry with
        | None -> (compute (), 1)
        | Some policy -> (
            match Exec.Supervise.try_map ~domains:1 ~policy compute [ () ] with
            | [ { Exec.Supervise.status = Exec.Supervise.Done o; attempts } ] ->
                (o, attempts)
            | [ { Exec.Supervise.status = Exec.Supervise.Quarantined e; _ } ] ->
                Printexc.raise_with_backtrace e.Exec.Pool.exn e.Exec.Pool.backtrace
            | _ -> assert false)
      in
      Option.iter
        (fun path ->
          Journal.with_writer ~fresh:(not resume) path (fun w ->
              Journal.append w ~key o))
        journal;
      (o, Ran attempts)

(** Violating monitor entries only, for the Appendix D tables. *)
let violations (o : outcome) =
  List.filter (fun r -> r.Vehicle.Monitors.violations <> []) o.results

(** Aggregate composability estimate over a set of outcomes (§3.4). *)
let estimate (outcomes : outcome list) =
  Compose.Runtime.of_reports
    (List.concat_map (fun o -> List.map snd o.reports) outcomes)
