(** Scenario execution: simulate, monitor all goals and subgoals
    (Table 5.3), and classify the violations (§5.1.2).

    Execution goes through [lib/exec]: outcomes are memoized in a
    process-wide cache keyed by a structural digest of the full scenario
    configuration, and fleet runs fan out over a fixed-size domain pool
    with deterministic (submission-order) results. *)

open Tl

type outcome = {
  scenario : Defs.t;
  trace : Trace.t;
  results : Vehicle.Monitors.result list;
  reports : (int * Rtmon.Report.t) list;  (** per parent goal 1–9 *)
  collided : bool;
  end_time : float;
}

(** The default classification window of §5.1.2 (±50 ms). *)
let default_window = 0.05

let classify ~window (s : Defs.t) trace results : outcome =
  let reports =
    List.map
      (fun n -> (n, Vehicle.Monitors.classify ~window results n))
      (List.init 9 (fun i -> i + 1))
  in
  let last = Trace.get trace (Trace.length trace - 1) in
  {
    scenario = s;
    trace;
    results;
    reports;
    collided = State.bool last Vehicle.Signals.collision;
    end_time = Trace.time trace (Trace.length trace - 1);
  }

let monitored ~defects ~timing ~dynamics ~inject (s : Defs.t) =
  let interpose =
    if Inject.Plan.is_empty inject then None
    else Some (Inject.Plan.interposer ~dt:Vehicle.System.dt inject)
  in
  let trace =
    Vehicle.System.run ~defects ~timing ~dynamics ?interpose
      ~duration:s.Defs.duration ~objects:s.Defs.objects ~events:s.Defs.events ()
  in
  (trace, Vehicle.Monitors.run trace)

(* ------------------------------------------------------------------ *)
(* Process-wide outcome cache: every consumer (experiments, export,
   simulate, tests, bench) shares simulated outcomes instead of
   re-running 20-second simulations from scratch.

   Two levels, because the classification window affects neither the
   simulation nor the goal monitors: the expensive simulate-and-monitor
   step is keyed by (scenario, defects, timing, dynamics) alone, and the
   classified outcome by the same key plus the window — so a window sweep
   re-simulates nothing. *)

let sim_cache : (string, Trace.t * Vehicle.Monitors.result list) Exec.Memo.t =
  Exec.Memo.create ~size:64 ()

let outcome_cache : (string, outcome) Exec.Memo.t = Exec.Memo.create ~size:64 ()

let cache_stats () = Exec.Memo.stats outcome_cache

let clear_cache () =
  Exec.Memo.clear sim_cache;
  Exec.Memo.clear outcome_cache

let run ?(use_cache = true) ?(defects = Vehicle.Defects.as_evaluated)
    ?(timing = Vehicle.Arbiter.default_timing)
    ?(dynamics = Vehicle.Plant.default_dynamics)
    ?(inject = Inject.Plan.empty) ?(window = default_window) (s : Defs.t) :
    outcome =
  if not use_cache then
    let trace, results = monitored ~defects ~timing ~dynamics ~inject s in
    classify ~window s trace results
  else
    (* [Defs.t] contains the scripted lead-speed closure; [Exec.Memo.digest]
       handles closures, and the cache never outlives the process. The
       injection plan is pure data (no closures, no PRNG state — runtime
       fault state is re-derived per run from the plan seed), so equal plans
       digest equally and campaign repeats hit the cache. *)
    let sim_key = Exec.Memo.digest (s, defects, timing, dynamics, inject) in
    Exec.Memo.find_or_add outcome_cache
      (Exec.Memo.digest (sim_key, window))
      (fun () ->
        let trace, results =
          Exec.Memo.find_or_add sim_cache sim_key (fun () ->
              monitored ~defects ~timing ~dynamics ~inject s)
        in
        classify ~window s trace results)

let run_all ?domains ?use_cache ?defects ?timing ?dynamics ?inject ?window () =
  Exec.Pool.map ?domains
    (run ?use_cache ?defects ?timing ?dynamics ?inject ?window)
    Defs.all

(** Violating monitor entries only, for the Appendix D tables. *)
let violations (o : outcome) =
  List.filter (fun r -> r.Vehicle.Monitors.violations <> []) o.results

(** Aggregate composability estimate over a set of outcomes (§3.4). *)
let estimate (outcomes : outcome list) =
  Compose.Runtime.of_reports
    (List.concat_map (fun o -> List.map snd o.reports) outcomes)
