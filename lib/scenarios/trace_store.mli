(** The shared-trace store: one simulation per scenario configuration,
    arbitrarily many evaluations against it.

    A campaign grid varies faults, windows and monitors far faster than
    it varies the physics: every cell of a (fault × scenario) grid that
    agrees on the simulation inputs — scenario, defect set, timing,
    dynamics, injection plan — observes the {e same} trace. The store
    memoizes that trace (plus the goal-monitor results, which depend on
    nothing else) under a structural digest of exactly those inputs, so
    each distinct configuration simulates once per process and every
    other evaluation — window sweeps, fault classification, exports —
    reads the shared copy.

    Storage is single-flight and capacity-bounded (FIFO eviction) via
    {!Exec.Memo}. Telemetry: [trace_store.hits] / [trace_store.misses]
    count lookups, [trace_store.bytes] accumulates the approximate packed
    size ({!Tl.Trace.approx_bytes}) of every trace the store simulated —
    the resident-memory budget the campaign actually paid, as opposed to
    the work it avoided. *)

val find_or_simulate :
  string ->
  (unit -> Tl.Trace.t * Vehicle.Monitors.result list) ->
  Tl.Trace.t * Vehicle.Monitors.result list
(** [find_or_simulate key supply] — the trace (and monitor results) for
    the configuration digested as [key], simulating via [supply] only on
    a cold key. The key must digest every input the simulation reads
    (see {!Runner.run} for the canonical construction). *)

val length : unit -> int
(** Live entries. *)

val stats : unit -> Exec.Memo.stats
(** Cumulative hit/miss/eviction counters of the underlying table. *)

val clear : unit -> unit
(** Drop every stored trace and reset the table's counters. *)
