(** Shared-trace store (see trace_store.mli). *)

open Tl

let m_hits = Obs.Metrics.counter "trace_store.hits"
let m_misses = Obs.Metrics.counter "trace_store.misses"
let m_bytes = Obs.Metrics.counter "trace_store.bytes"

(* The underlying memo table: single-flight, FIFO-bounded. Traces are
   heavy (a 20 s run is ~13 k states of ~60 columns), so the capacity is
   tight; the store's own [trace_store.*] counters are maintained here
   rather than via [Memo]'s [~name] mirror because a byte count must ride
   along with each miss. *)
let store : (string, Trace.t * Vehicle.Monitors.result list) Exec.Memo.t =
  Exec.Memo.create ~size:64 ~capacity:256 ()

let find_or_simulate key supply =
  let ran = ref false in
  let v =
    Exec.Memo.find_or_add store key (fun () ->
        ran := true;
        let ((trace, _) as v) = supply () in
        Obs.Metrics.incr ~by:(Trace.approx_bytes trace) m_bytes;
        v)
  in
  Obs.Metrics.incr (if !ran then m_misses else m_hits);
  v

let length () = Exec.Memo.length store
let stats () = Exec.Memo.stats store
let clear () = Exec.Memo.clear store
