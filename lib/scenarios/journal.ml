(** Crash-safe, append-only result journal (see journal.mli).

    Record layout, all integers little-endian:

    {v
    +-------+-----------+-----------+-------------------+
    | "SJL1"| len : u32 | crc : u32 | payload (len bytes)|
    +-------+-----------+-----------+-------------------+
    v}

    where [payload] is [Marshal.to_string (key, value) [Closures]] and
    [crc] its CRC-32. A replay accepts the longest valid prefix of
    records and drops the rest: a record can only be torn by a crash
    mid-append, and append order means nothing after the tear can be
    intact anyway. *)

let magic = "SJL1"
let header_len = 12

(* A record claiming a payload beyond this bound is treated as corrupt
   rather than allocated: a bit-flip in the length field must not turn
   replay into a multi-gigabyte allocation. *)
let max_payload = 1 lsl 28

(* The checksum is the shared IEEE CRC-32 used by every framed record
   protocol in the repo (journal "SJL1" records, shard "SHD1" frames). *)
let crc32 = Exec.Crc32.digest

(* ------------------------------------------------------------------ *)
(* Writer                                                               *)

exception Io_error of { path : string; op : string; error : string }

type 'a writer = {
  oc : out_channel;
  path : string;
  lock : Mutex.t;  (** appends may come from pool worker domains *)
  on_error : [ `Raise | `Degrade ];
  fault : ([ `Write | `Fsync ] -> bool) option;
      (** chaos hook ({!Exec.Chaos.journal_fault}): consulted once per
          append for [`Write] (fail mid-record) and once for [`Fsync] *)
  mutable closed : bool;
  mutable degraded : bool;
}

(* Telemetry: append/byte volume and the cost of durability. fsync
   dominates the journal's overhead, so its latency gets a histogram of
   its own — p95 here is the honest per-cell price of crash safety.
   write_errors counts appends that failed at the device (injected or
   real); appends_dropped the appends skipped after a writer degraded. *)
let m_appends = Obs.Metrics.counter "journal.appends"
let m_bytes = Obs.Metrics.counter "journal.bytes"
let m_replays = Obs.Metrics.counter "journal.replays"
let m_write_errors = Obs.Metrics.counter "journal.write_errors"
let m_dropped = Obs.Metrics.counter "journal.appends_dropped"
let m_repaired = Obs.Metrics.counter "journal.repaired_bytes"
let h_fsync = Obs.Metrics.histogram "journal.fsync_s"

let create ?(fresh = false) ?(on_error = `Raise) ?fault path =
  let flags =
    [ Open_wronly; Open_creat; Open_binary ]
    @ if fresh then [ Open_trunc ] else [ Open_append ]
  in
  {
    oc = open_out_gen flags 0o644 path;
    path;
    lock = Mutex.create ();
    on_error;
    fault;
    closed = false;
    degraded = false;
  }

let degraded w = w.degraded

let append w ~key v =
  let payload = Marshal.to_string (key, v) [ Marshal.Closures ] in
  if String.length payload > max_payload then
    invalid_arg "Journal.append: payload too large";
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_int32_le buf (crc32 payload);
  Buffer.add_string buf payload;
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if w.closed then invalid_arg "Journal.append: writer is closed";
      if w.degraded then
        (* Degradation is terminal for the file, not just the append:
           replay stops at the first invalid record, so once an append
           tore mid-file no later record would ever be replayed — writing
           more would only fake durability the resume path cannot see. *)
        Obs.Metrics.incr m_dropped
      else
        let fault op = match w.fault with Some h -> h op | None -> false in
        match
          if fault `Write then begin
            (* Injected torn write: half the record reaches the file,
               then the device errors — the on-disk shape of a crash
               mid-append combined with EIO. *)
            let s = Buffer.contents buf in
            output_string w.oc (String.sub s 0 (String.length s / 2));
            flush w.oc;
            raise (Unix.Unix_error (Unix.EIO, "write", w.path))
          end;
          Buffer.output_buffer w.oc buf;
          flush w.oc;
          (* The record is only durable once the kernel has it on disk: a
             flushed-but-unsynced append can still vanish with the page
             cache on power loss, breaking the resume-equals-uninterrupted
             contract. *)
          let t0 = Obs.Clock.now () in
          if fault `Fsync then
            raise (Unix.Unix_error (Unix.ENOSPC, "fsync", w.path));
          Unix.fsync (Unix.descr_of_out_channel w.oc);
          Obs.Metrics.observe h_fsync (Obs.Clock.now () -. t0)
        with
        | () ->
            Obs.Metrics.incr m_appends;
            Obs.Metrics.incr ~by:(Buffer.length buf) m_bytes
        | exception (Unix.Unix_error _ | Sys_error _ as e) ->
            Obs.Metrics.incr m_write_errors;
            (* Raw device errors never escape as themselves: callers and
               the degradation path below match on the typed error. *)
            let err =
              match e with
              | Unix.Unix_error (code, op, _) ->
                  Io_error
                    { path = w.path; op; error = Unix.error_message code }
              | Sys_error msg ->
                  Io_error { path = w.path; op = "write"; error = msg }
              | _ -> assert false
            in
            (match w.on_error with
            | `Raise -> raise err
            | `Degrade -> w.degraded <- true))

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        match close_out w.oc with
        | () -> ()
        | exception Sys_error msg ->
            raise (Io_error { path = w.path; op = "close"; error = msg })
      end)

let with_writer ?fresh ?on_error ?fault path f =
  let w = create ?fresh ?on_error ?fault path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)

type 'a replay = {
  entries : (string * 'a) list;
  records : int;
  duplicates : int;
  dropped_bytes : int;
}

let empty_replay = { entries = []; records = 0; duplicates = 0; dropped_bytes = 0 }

(** Read one record at the current position; [None] on any validation
    failure (short header, bad magic, absurd length, short payload, CRC
    mismatch, unmarshal failure) — all of which stop the replay. *)
let read_record (type a) ic size : (string * a) option =
  match
    let header = Bytes.create header_len in
    really_input ic header 0 header_len;
    header
  with
  | exception End_of_file -> None
  | header ->
      if Bytes.sub_string header 0 4 <> magic then None
      else
        let len = Int32.to_int (Bytes.get_int32_le header 4) in
        let crc = Bytes.get_int32_le header 8 in
        if len < 0 || len > max_payload || len > size - pos_in ic then None
        else begin
          let payload = Bytes.create len in
          match really_input ic payload 0 len with
          | exception End_of_file -> None
          | () ->
              let payload = Bytes.unsafe_to_string payload in
              if crc32 payload <> crc then None
              else (
                try Some (Marshal.from_string payload 0 : string * a)
                with _ -> None)
        end

type fold_stats = {
  fold_records : int;
  fold_valid_bytes : int;
  fold_dropped_bytes : int;
}

let empty_fold_stats =
  { fold_records = 0; fold_valid_bytes = 0; fold_dropped_bytes = 0 }

let fold (type a acc) path ~(init : acc) ~(f : acc -> string -> a -> acc) :
    acc * fold_stats =
  (* Every full pass over a journal counts as a replay, whether it goes
     through the list-materializing [replay] or streams through here. *)
  Obs.Metrics.incr m_replays;
  if not (Sys.file_exists path) then (init, empty_fold_stats)
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let rec loop acc records =
          let pos = pos_in ic in
          match (read_record ic size : (string * a) option) with
          | None ->
              ( acc,
                {
                  fold_records = records;
                  fold_valid_bytes = pos;
                  fold_dropped_bytes = size - pos;
                } )
          | Some (key, v) -> loop (f acc key v) (records + 1)
        in
        loop init 0)
  end

(* Truncation must run with the file closed for writing: the resume path
   calls this before it reopens the journal in append mode, so the next
   append lands exactly at the end of the valid prefix. *)
let repair path =
  let (), stats = fold path ~init:() ~f:(fun () _key _value -> ()) in
  if stats.fold_dropped_bytes > 0 then begin
    Unix.truncate path stats.fold_valid_bytes;
    Obs.Metrics.incr ~by:stats.fold_dropped_bytes m_repaired
  end;
  stats.fold_dropped_bytes

let replay (type a) path : a replay =
  if not (Sys.file_exists path) then empty_replay
  else begin
    let latest : (string, a) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let duplicates = ref 0 in
    let (), stats =
      fold path ~init:() ~f:(fun () key (v : a) ->
          if Hashtbl.mem latest key then incr duplicates else order := key :: !order;
          Hashtbl.replace latest key v)
    in
    {
      entries = List.rev_map (fun k -> (k, Hashtbl.find latest k)) !order;
      records = stats.fold_records;
      duplicates = !duplicates;
      dropped_bytes = stats.fold_dropped_bytes;
    }
  end
