(** Fault-injection campaigns: enumerate a fault-specimen × scenario grid,
    run every cell through the shared outcome cache on the domain pool, and
    report a detection-coverage matrix.

    Each cell compares an injected run against the fault-free baseline of
    the same scenario (same defects, default [Vehicle.Defects.repaired] so
    new violations are attributable to the fault):

    - {e detected} — the fault produced a goal-level effect (a new
      vehicle-level violation, or a new collision) that some subgoal
      monitor anticipated within the classification window; the lead time
      is how far ahead the earliest new subgoal alarm ran;
    - {e missed} — a goal-level effect with no (timely) subgoal warning:
      the hierarchical monitors were defeated, e.g. because the fault
      blinds the very sensors the subgoals observe;
    - {e spurious} — subgoal alarms with no goal-level effect;
    - {e no effect} — the fault perturbed nothing the monitors judge.

    Monitors inhibited by degraded inputs (NaN / missing under dropout
    faults) are counted separately — an inhibited monitor is not a false
    negative, it is a known coverage gap. *)

type detection =
  | Detected of float  (** goal-level effect anticipated; lead time, s *)
  | Missed  (** goal-level effect, no timely subgoal warning *)
  | Spurious  (** subgoal alarms only *)
  | No_effect

let detection_to_string = function
  | Detected lead -> Fmt.str "detected (lead %.3fs)" lead
  | Missed -> "missed"
  | Spurious -> "spurious"
  | No_effect -> "no effect"

type goal_counts = {
  goal : int;  (** parent goal number 1–9 *)
  goal_hits : int;
  goal_false_negatives : int;
  goal_false_positives : int;
  goal_inhibited : int;
}

type cell = {
  scenario : int;
  fault : Inject.Fault.t;
  seed : int;  (** the campaign seed the cell ran under *)
  window : float;  (** the classification window, seconds *)
  detection : detection;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;  (** inhibition intervals across all monitors *)
  inhibitions : (string * int) list;  (** per-monitor (id, intervals) *)
  goal_flips : (string * float) list;
      (** vehicle-level goal monitors the fault flipped — monitor id
          (["1"]..["9"], or ["collision"] for a fault-induced collision)
          with the first new-violation time, sorted by id. A cell's
          goal-level effect is the minimum over these times. *)
  sub_flips : (string * int * float) list;
      (** subgoal monitors with new violations — (id, parent goal,
          first new-violation time), sorted by id *)
  per_goal : goal_counts list;
      (** per-parent-goal classification counters, goals 1–9 in order;
          the cell hit/FN/FP totals above are their sums *)
  collided : bool;
  baseline_collided : bool;
}

type robustness = {
  executed : int;  (** cells simulated by this run *)
  replayed : int;  (** cells restored from the journal, not re-simulated *)
  retried : int;  (** executed cells that needed more than one attempt *)
  retries : int;  (** total extra attempts across the grid *)
  quarantined : int;  (** cells abandoned after exhausting their attempts *)
  degraded : bool;
      (** the journal hit a device error mid-campaign and switched to
          memory-only mode: results are complete but not durable, and a
          resume will re-execute the cells appended after the failure *)
}

type t = {
  seed : int;
  window : float;
  scenarios : int list;  (** column order *)
  cells : cell list;  (** fault-major, scenario-minor *)
  detected : int;
  missed : int;
  spurious : int;
  no_effect : int;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;
  robustness : robustness;
}

type grid = {
  faults : Inject.Fault.t list;
  grid_scenarios : Defs.t list;
  seed : int;
}

(* Telemetry: deterministic cell accounting (the timing lives in the
   spans and in the pool/journal histograms). The per-phase spans —
   campaign.replay, cell.baseline, cell.injected, cell.classify,
   campaign.grid — let a snapshot show where a campaign's wall clock
   went. *)
let m_cells_executed = Obs.Metrics.counter "campaign.cells_executed"
let m_cells_replayed = Obs.Metrics.counter "campaign.cells_replayed"

(* ------------------------------------------------------------------ *)
(* Cell classification                                                 *)

(** Violations of an injected run with no corresponding baseline violation
    (within the window) — the fault's own footprint. *)
let new_intervals ~window base ivs =
  List.filter
    (fun iv ->
      not
        (List.exists (fun biv -> Rtmon.Violation.overlap_within ~window iv biv) base))
    ivs

let first_time = function
  | [] -> None
  | ivs ->
      Some
        (List.fold_left
           (fun acc (iv : Rtmon.Violation.interval) ->
             Float.min acc iv.Rtmon.Violation.start_time)
           infinity ivs)

let classify_cell ~window ~seed (fault : Inject.Fault.t)
    ~(baseline : Runner.outcome) (injected : Runner.outcome) : cell =
  let base_of (r : Vehicle.Monitors.result) =
    match
      List.find_opt
        (fun (b : Vehicle.Monitors.result) ->
          b.Vehicle.Monitors.entry.Vehicle.Monitors.id
          = r.Vehicle.Monitors.entry.Vehicle.Monitors.id)
        baseline.Runner.results
    with
    | Some b -> b.Vehicle.Monitors.violations
    | None -> []
  in
  (* Per-monitor first new-violation times — the raw material both for
     the cell's own detection verdict and for the fleet-scale analytics
     (cascade grouping, per-goal residual attribution) mined from the
     journal later. *)
  let flips loc_pred =
    List.filter_map
      (fun (r : Vehicle.Monitors.result) ->
        let e = r.Vehicle.Monitors.entry in
        if loc_pred e.Vehicle.Monitors.location then
          Option.map
            (fun t -> (e.Vehicle.Monitors.id, e.Vehicle.Monitors.parent, t))
            (first_time
               (new_intervals ~window (base_of r) r.Vehicle.Monitors.violations))
        else None)
      injected.Runner.results
  in
  let new_collision =
    if injected.Runner.collided && not baseline.Runner.collided then
      Some injected.Runner.end_time
    else None
  in
  let goal_flips =
    List.sort compare
      (List.map
         (fun (id, _, t) -> (id, t))
         (flips (fun l -> l = Vehicle.Monitors.Vehicle))
      @ match new_collision with None -> [] | Some t -> [ ("collision", t) ])
  in
  let sub_flips =
    List.sort compare (flips (fun l -> l <> Vehicle.Monitors.Vehicle))
  in
  let first = function
    | [] -> None
    | ts -> Some (List.fold_left Float.min infinity ts)
  in
  let goal_first = first (List.map snd goal_flips) in
  let sub_first = first (List.map (fun (_, _, t) -> t) sub_flips) in
  let detection =
    match (goal_first, sub_first) with
    | None, None -> No_effect
    | None, Some _ -> Spurious
    | Some g, Some s when s <= g +. window -> Detected (Float.max 0. (g -. s))
    | Some _, _ -> Missed
  in
  let totals = Rtmon.Report.totals (List.map snd injected.Runner.reports) in
  let inhibitions =
    List.filter_map
      (fun (r : Vehicle.Monitors.result) ->
        match r.Vehicle.Monitors.inhibited with
        | [] -> None
        | ivs -> Some (r.Vehicle.Monitors.entry.Vehicle.Monitors.id, List.length ivs))
      injected.Runner.results
  in
  let per_goal =
    List.map
      (fun (n, (r : Rtmon.Report.t)) ->
        {
          goal = n;
          goal_hits = r.Rtmon.Report.hits;
          goal_false_negatives = r.Rtmon.Report.false_negatives;
          goal_false_positives = r.Rtmon.Report.false_positives;
          goal_inhibited = r.Rtmon.Report.inhibited;
        })
      injected.Runner.reports
  in
  {
    scenario = injected.Runner.scenario.Defs.number;
    fault;
    seed;
    window;
    detection;
    hits = totals.Rtmon.Report.total_hits;
    false_negatives = totals.Rtmon.Report.total_false_negatives;
    false_positives = totals.Rtmon.Report.total_false_positives;
    inhibited =
      List.fold_left
        (fun acc (r : Vehicle.Monitors.result) ->
          acc + List.length r.Vehicle.Monitors.inhibited)
        0 injected.Runner.results;
    inhibitions;
    goal_flips;
    sub_flips;
    per_goal;
    collided = injected.Runner.collided;
    baseline_collided = baseline.Runner.collided;
  }

(* ------------------------------------------------------------------ *)
(* Grid execution                                                      *)

(** The journal key of one grid cell. Deliberately {e not} the runner's
    in-process cache digest: [Defs.t] carries the scripted lead-speed
    closure, whose [Marshal] image is only stable within one binary
    invocation, and a resume key must survive process death. Everything
    the cell's outcome depends on is closure-free pure data — the scenario
    {e number} (scenario definitions are versioned with the binary), the
    fault, the campaign seed, the window and the defect set — so the key
    is stable across runs and independent of grid position: resuming with
    a reordered or enlarged grid still reuses every completed cell. *)
let cell_key ~seed ~window ~defects (fault : Inject.Fault.t) (s : Defs.t) =
  Exec.Memo.digest (s.Defs.number, fault, seed, window, defects)

(** Run a campaign grid. Every (fault, scenario) cell simulates once with
    the single-fault plan [Plan.make ~seed [fault]] — the plan seed is the
    campaign seed for every cell, so the cell's cache key depends only on
    (scenario, fault, seed), not on its grid position, and repeated or
    overlapping campaigns hit the outcome cache. Cells fan out over the
    domain pool in submission order; results are bit-for-bit identical
    sequential ([~domains:1]) and parallel.

    [journal] names an on-disk result journal: each completed cell is
    fsync-appended as it finishes (from the worker that computed it), so a
    killed campaign loses at most the cells in flight. With [resume]
    (default [false]) the journal is replayed first and only the missing
    cells execute — the resumed matrix is bit-for-bit the uninterrupted
    one; without [resume] an existing journal is truncated and the run
    starts fresh.

    [retry] supervises cell execution (exponential backoff with jitter,
    per-cell attempt counts): a cell that keeps failing is quarantined —
    dropped from the matrix and counted in [robustness.quarantined] —
    instead of aborting the campaign. Without [retry] the historical
    semantics hold: the first cell failure re-raises after the batch
    settles.

    [shards] switches the grid to multi-process execution on
    [Exec.Shard]: cells are simulated in [shards] resident worker
    processes (each with [domains] domains, [batch] cells per assignment
    frame), while classification results, the journal and the cell
    counters stay with the coordinator. The matrix and CSV are
    bit-for-bit identical to the single-process run for any shard count
    and batch size, including across worker crashes.

    The journal degrades instead of aborting: a device error (ENOSPC,
    EIO) mid-campaign switches the writer to memory-only mode — the grid
    completes, [robustness.degraded] is raised, and only durability is
    lost. [chaos] injects a deterministic infrastructure-fault plan
    ({!Exec.Chaos}): worker faults and spawn failures apply to the
    sharded branch, journal faults to any journaled run. Every fault in
    the catalogue is recoverable, so the matrix under any chaos plan is
    bit-for-bit the chaos-free one. [hang_timeout_s] / [deadline_s]
    configure the sharded coordinator's liveness sweep
    ({!Exec.Shard.try_map}). [fleet] names the resident worker fleet the
    sharded branch uses (default: the anonymous fleet); concurrent
    campaigns driven from separate coordinator domains — the serve
    daemon's executor lanes — must pass distinct labels so each gets its
    own disjoint worker processes.

    [on_cell] is a progress-and-streaming hook, called once per settled
    cell with the cell itself — replayed cells right after the journal
    replay, executed cells as their results arrive. It runs on whichever
    thread settles the cell (the coordinator for sharded runs, a pool
    domain otherwise), so it must be thread-safe and fast: an
    [Atomic.incr] feeding a progress gauge, or an
    [Analytics.Analyze.observe] feeding the streaming emergence miner
    (which serializes internally), are the intended shapes. [abort] is
    the campaign-service cancellation probe, threaded to {!Exec.Shard.try_map} /
    {!Exec.Supervise.try_map}: once it answers [true], unstarted cells
    stop executing and the run raises {!Exec.Pool.Aborted} (regardless
    of [retry]) — completed cells are already journaled, so a resumed
    run continues exactly past the abort point. *)
let run ?fleet ?domains ?shards ?batch ?use_cache
    ?(defects = Vehicle.Defects.repaired)
    ?(window = Runner.default_window) ?journal ?(resume = false) ?retry
    ?on_cell ?abort ?chaos ?hang_timeout_s ?deadline_s (g : grid) : t =
  let pairs =
    List.concat_map
      (fun f -> List.map (fun s -> (f, s)) g.grid_scenarios)
      g.faults
  in
  let keyed =
    List.map
      (fun (fault, s) -> ((fault, s), cell_key ~seed:g.seed ~window ~defects fault s))
      pairs
  in
  let journaled =
    match journal with
    | Some path when resume ->
        Obs.span "campaign.replay" (fun () ->
            (* Streaming replay: the key→cell table is built record by
               record ([replace] keeps the last occurrence, as a full
               replay would), so resuming a huge journal never allocates
               the whole record list. A torn tail — a SIGKILL landed
               mid-append — is truncated off before the writer reopens
               the file below: appends after a tear would be unreachable
               on the next replay, which stops at the first invalid
               record. *)
            let tbl : (string, cell) Hashtbl.t = Hashtbl.create 64 in
            let (), stats =
              Journal.fold path ~init:() ~f:(fun () k (c : cell) ->
                  Hashtbl.replace tbl k c)
            in
            if stats.Journal.fold_dropped_bytes > 0 then ignore (Journal.repair path);
            tbl)
    | _ -> Hashtbl.create 0
  in
  let slots =
    List.map (fun (pair, k) -> (pair, k, Hashtbl.find_opt journaled k)) keyed
  in
  let todo = List.filter (fun (_, _, cached) -> cached = None) slots in
  let cell_done c = Option.iter (fun h -> h c) on_cell in
  List.iter
    (fun (_, _, cached) -> Option.iter cell_done cached)
    slots;
  let simulate (fault, s) =
    let baseline =
      Obs.span "cell.baseline" (fun () -> Runner.run ?use_cache ~defects ~window s)
    in
    let injected =
      Obs.span "cell.injected" (fun () ->
          Runner.run ?use_cache ~defects
            ~inject:(Inject.Plan.make ~seed:g.seed [ fault ])
            ~window s)
    in
    Obs.span "cell.classify" (fun () ->
        classify_cell ~window ~seed:g.seed fault ~baseline injected)
  in
  let journal_degraded = ref false in
  let reports =
    let policy =
      match retry with
      | Some p -> p
      | None -> Exec.Supervise.policy ~max_attempts:1 ()
    in
    let execute writer =
      match shards with
      | Some s ->
          (* Multi-process execution: workers only simulate — the journal
             and the cell counters stay with this coordinator process, fed
             from [on_result] as each cell's frame arrives, so crash-safe
             resume works unchanged (a worker SIGKILL costs at most the
             cells in flight, exactly like a domain crash cannot). *)
          let keys = Array.of_list (List.map (fun (_, k, _) -> k) todo) in
          Exec.Shard.try_map ?fleet ~shards:s ?domains ?batch ~policy ?abort
            ?havoc:(Option.bind chaos Exec.Chaos.worker_fault)
            ?spawn_fault:(Option.bind chaos Exec.Chaos.spawn_fault)
            ?hang_timeout_s ?deadline_s
            ~on_result:(fun i cell ->
              Option.iter (fun w -> Journal.append w ~key:keys.(i) cell) writer;
              Obs.Metrics.incr m_cells_executed;
              cell_done cell)
            (fun (pair, _, _) -> simulate pair)
            todo
      | None ->
          let task (pair, k, _) =
            let cell = simulate pair in
            Option.iter (fun w -> Journal.append w ~key:k cell) writer;
            Obs.Metrics.incr m_cells_executed;
            cell_done cell;
            cell
          in
          Exec.Supervise.try_map ?domains ~policy ?abort task todo
    in
    Obs.span "campaign.grid" (fun () ->
        match journal with
        | None -> execute None
        | Some path ->
            (* [`Degrade]: a campaign survives losing its journal device —
               results keep flowing in memory, the robustness summary
               carries the [degraded] flag, and only durability is lost. *)
            Journal.with_writer ~fresh:(not resume) ~on_error:`Degrade
              ?fault:(Option.bind chaos Exec.Chaos.journal_fault)
              path
              (fun w ->
                let r = execute (Some w) in
                journal_degraded := Journal.degraded w;
                r))
  in
  Obs.Metrics.incr ~by:(List.length slots - List.length todo) m_cells_replayed;
  (* A cancelled campaign surfaces as [Exec.Pool.Aborted] no matter the
     retry policy — the caller asked for it, so it must see it. The
     journal writer has already closed cleanly above: every completed
     cell is durable and a resumed run continues past the abort point. *)
  List.iter
    (fun (r : cell Exec.Supervise.report) ->
      match r.Exec.Supervise.status with
      | Exec.Supervise.Quarantined { Exec.Pool.exn = Exec.Pool.Aborted; _ } ->
          raise Exec.Pool.Aborted
      | _ -> ())
    reports;
  (* Without a retry policy, preserve the historical contract: the first
     cell failure re-raises (with the worker's backtrace) instead of
     silently thinning the matrix. *)
  if retry = None then
    List.iter
      (fun (r : cell Exec.Supervise.report) ->
        match r.Exec.Supervise.status with
        | Exec.Supervise.Quarantined e ->
            Printexc.raise_with_backtrace e.Exec.Pool.exn e.Exec.Pool.backtrace
        | Exec.Supervise.Done _ -> ())
      reports;
  let sstats = Exec.Supervise.stats reports in
  let cells =
    let remaining = ref reports in
    List.filter_map
      (fun (_, _, cached) ->
        match cached with
        | Some cell -> Some cell
        | None -> (
            match !remaining with
            | [] -> assert false (* one report per todo slot, in order *)
            | r :: rest -> (
                remaining := rest;
                match r.Exec.Supervise.status with
                | Exec.Supervise.Done cell -> Some cell
                | Exec.Supervise.Quarantined _ -> None)))
      slots
  in
  let count p = List.length (List.filter p cells) in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  {
    seed = g.seed;
    window;
    scenarios = List.map (fun s -> s.Defs.number) g.grid_scenarios;
    cells;
    detected = count (fun c -> match c.detection with Detected _ -> true | _ -> false);
    missed = count (fun c -> c.detection = Missed);
    spurious = count (fun c -> c.detection = Spurious);
    no_effect = count (fun c -> c.detection = No_effect);
    hits = sum (fun c -> c.hits);
    false_negatives = sum (fun c -> c.false_negatives);
    false_positives = sum (fun c -> c.false_positives);
    inhibited = sum (fun c -> c.inhibited);
    robustness =
      {
        executed = List.length todo - sstats.Exec.Supervise.quarantined;
        replayed = List.length slots - List.length todo;
        retried = sstats.Exec.Supervise.retried;
        retries = sstats.Exec.Supervise.retries;
        quarantined = sstats.Exec.Supervise.quarantined;
        degraded = !journal_degraded;
      };
  }

(* ------------------------------------------------------------------ *)
(* The smoke grid: four fault specimens (three fault models) × three
   scenarios, small enough for CI yet exercising every detection class:

   - a stuck acceleration request trips the command-level subgoal monitor
     the moment the fault activates, long before the vehicle-level effect
     (detected, with lead time) — and where the request is never selected
     it alarms with no goal-level effect (spurious);
   - a blinded forward radar defeats the hierarchy wholesale: the features
     whose requests the subgoals watch are blinded by the very same fault
     (missed);
   - an actuation delay on the arbiter command perturbs only the plant —
     every command-level signal the subgoals watch stays legal (missed);
   - NaN dropout on the jerk accelerometer channel inhibits the goal-2
     monitor (it refuses to judge garbage) without touching the physics
     (no effect, inhibitions counted). *)

let smoke ?(seed = 42) () =
  let open Inject.Fault in
  {
    seed;
    faults =
      [
        make
          ~target:(Vehicle.Signals.accel_req "CA")
          (Stuck_at (Tl.Value.Float 3.0));
        make ~target:Vehicle.Signals.object_detected
          (Stuck_at (Tl.Value.Bool false));
        make ~target:Vehicle.Signals.accel_cmd (Delay 150);
        make ~from_t:2.0 ~until_t:8.0 ~target:Vehicle.Signals.host_jerk
          Dropout_missing;
      ];
    grid_scenarios = [ Defs.get 1; Defs.get 3; Defs.get 7 ];
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let cell_code c =
  match c.detection with
  | Detected lead -> Fmt.str "D+%.2f" lead
  | Missed -> "M"
  | Spurious -> "S"
  | No_effect -> "-"

(** The detection-coverage matrix: one row per fault, one column per
    scenario; [D+lead] / [M]issed / [S]purious / [-] no effect, with
    per-cell inhibition counts in parentheses when monitors were degraded. *)
let pp ppf (t : t) =
  let fault_label c = Inject.Fault.to_string c.fault in
  let faults =
    List.fold_left
      (fun acc c -> if List.mem (fault_label c) acc then acc else acc @ [ fault_label c ])
      [] t.cells
  in
  let width =
    List.fold_left (fun acc f -> max acc (String.length f)) 24 faults
  in
  Fmt.pf ppf "@[<v>%-*s" width "fault \\ scenario";
  List.iter (fun n -> Fmt.pf ppf " %10s" (Fmt.str "#%d" n)) t.scenarios;
  List.iter
    (fun f ->
      Fmt.pf ppf "@,%-*s" width f;
      List.iter
        (fun n ->
          match
            List.find_opt
              (fun c -> fault_label c = f && c.scenario = n)
              t.cells
          with
          | Some c ->
              let code =
                if c.inhibited > 0 then
                  Fmt.str "%s(%d)" (cell_code c) c.inhibited
                else cell_code c
              in
              Fmt.pf ppf " %10s" code
          | None -> Fmt.pf ppf " %10s" "?")
        t.scenarios)
    faults;
  Fmt.pf ppf
    "@,detected=%d missed=%d spurious=%d no_effect=%d@,\
     hits=%d false negatives=%d false positives=%d inhibited=%d@,\
     cells: executed=%d replayed=%d retried=%d retries=%d quarantined=%d%s@]"
    t.detected t.missed t.spurious t.no_effect t.hits t.false_negatives
    t.false_positives t.inhibited t.robustness.executed t.robustness.replayed
    t.robustness.retried t.robustness.retries t.robustness.quarantined
    (if t.robustness.degraded then " degraded=true" else "")
