(** Assembly of the semi-autonomous automotive system (Fig. 5.1): the
    simulation world and the control graph used by ICPA. *)

open Tl
open Signals

let dt = 0.001
(* One simulation state lasts 1 ms, matching the thesis ("the time interval
   of one state"). *)

(** Default driver/HMI input values; scenarios override via events. *)
let driver_init =
  [
    (throttle_pedal, Value.Float 0.);
    (brake_pedal, Value.Float 0.);
    (steering_wheel_active, Value.Bool false);
    (hmi_go, Value.Bool false);
    (gear, Value.Sym "D");
    (acc_set_speed, Value.Float 5.0);
  ]
  @ List.concat_map
      (fun f ->
        [ (enabled f, Value.Bool false); (engage_request f, Value.Bool false) ])
      features

let driver events = Sim.Stimulus.component ~name:"DriverHMI" ~init:driver_init events

(** Build the full simulation world for one scenario run. Fresh component
    state every call. *)
let world ?(defects = Defects.as_evaluated) ?timing ?dynamics ~objects ~events () =
  Sim.World.make ~dt
    [
      driver events;
      Plant.lead_vehicle objects;
      Plant.sensors defects;
      Feature_ca.component defects;
      Feature_acc.component defects;
      Feature_rca.component defects;
      Feature_lca.component defects;
      Feature_pa.component defects;
      Arbiter.component ?timing defects;
      Plant.host ?dynamics defects;
      Plant.jerk_derivation ();
    ]

(** Run a scenario world; terminates early on collision, like the thesis's
    runs. [interpose] is the runtime fault-injection hook: a stateful
    snapshot transform (e.g. [Inject.Plan.interposer]) applied to every
    freshly computed state, so faulted signals are what the features, the
    arbiter and the monitors all observe one tick later. *)
let run ?(defects = Defects.as_evaluated) ?timing ?dynamics ?interpose
    ?(duration = 20.0) ~objects ~events () =
  Sim.World.run
    ~stop:(fun s -> State.bool s collision)
    ?transform:interpose ~until:duration
    (world ~defects ?timing ?dynamics ~objects ~events ())

(* ------------------------------------------------------------------ *)
(* Control graph (Fig. 5.1) for the ICPA of Appendix C.                 *)

let agents =
  let feature_agent f =
    Kaos.Agent.make f
      ~monitors:
        [
          host_speed; object_detected; object_range; object_closing_speed;
          enabled f; engage_request f; acc_set_speed; gear;
        ]
      ~controls:[ active f; accel_req f; req_accel f; steer_req f; req_steer f ]
  in
  List.map feature_agent features
  @ [
      Kaos.Agent.make "Arbiter"
        ~monitors:
          (List.concat_map
             (fun f -> [ active f; accel_req f; req_accel f; steer_req f; req_steer f ])
             features
          @ [ throttle_pedal; brake_pedal; steering_wheel_active; host_speed; gear ])
        ~controls:
          ([ accel_cmd; accel_source; va_source; steer_cmd; steer_source; vst_source; driver_selected ]
          @ List.map selected features);
      Kaos.Agent.make ~kind:Kaos.Agent.Human "Driver"
        ~monitors:[ host_speed; object_range ]
        ~controls:
          ([ throttle_pedal; brake_pedal; steering_wheel_active; hmi_go; gear; acc_set_speed ]
          @ List.concat_map (fun f -> [ enabled f; engage_request f ]) features);
      Kaos.Agent.make ~kind:Kaos.Agent.Actuator "Powertrain" ~monitors:[ accel_cmd ]
        ~controls:[ host_accel; host_jerk; host_speed; host_pos ];
      Kaos.Agent.make ~kind:Kaos.Agent.Actuator "SteeringActuator"
        ~monitors:[ steer_cmd ] ~controls:[ "host_steer" ];
    ]

let agent name = List.find (fun a -> a.Kaos.Agent.name = name) agents

let graph =
  let open Icpa.Control_graph in
  let feature_nodes =
    List.concat_map
      (fun f ->
        [
          node Software_agent f;
          node Variable (accel_req f);
          node Variable (req_accel f);
          node Variable (steer_req f);
          node Variable (req_steer f);
          node Variable (active f);
          node Variable (enabled f);
          node Variable (engage_request f);
        ])
      features
  in
  let feature_edges =
    List.concat_map
      (fun f ->
        [
          (f, accel_req f);
          (f, req_accel f);
          (f, steer_req f);
          (f, req_steer f);
          (f, active f);
          (accel_req f, "Arbiter");
          (req_accel f, "Arbiter");
          (steer_req f, "Arbiter");
          (req_steer f, "Arbiter");
          (active f, "Arbiter");
          ("Driver", enabled f);
          ("Driver", engage_request f);
          (enabled f, f);
          (engage_request f, f);
        ])
      features
  in
  make
    ~nodes:
      (feature_nodes
      @ [
          node Software_agent "Arbiter";
          node Environment_agent "Driver";
          node Actuator "Powertrain";
          node Actuator "SteeringActuator";
          node Sensor "Accelerometer";
          node Sensor "SpeedSensor";
          node Sensor "ForwardRadar";
          node Variable accel_cmd;
          node Variable steer_cmd;
          node Variable va_source;
          node Variable vst_source;
          node Variable throttle_pedal;
          node Variable brake_pedal;
          node Variable steering_wheel_active;
          node Variable hmi_go;
          node Variable gear;
          node Variable object_detected;
          node Variable host_accel;
          node Variable host_jerk;
          node Variable host_speed;
          node Physical "vehicle_motion";
        ])
    ~edges:
      (feature_edges
      @ [
          ("Arbiter", accel_cmd);
          ("Arbiter", steer_cmd);
          ("Arbiter", va_source);
          ("Arbiter", vst_source);
          ("Driver", throttle_pedal);
          ("Driver", brake_pedal);
          ("Driver", steering_wheel_active);
          ("Driver", hmi_go);
          ("Driver", gear);
          (throttle_pedal, "Arbiter");
          (brake_pedal, "Arbiter");
          (steering_wheel_active, "Arbiter");
          (accel_cmd, "Powertrain");
          (steer_cmd, "SteeringActuator");
          ("Powertrain", "vehicle_motion");
          ("vehicle_motion", "Accelerometer");
          ("vehicle_motion", "SpeedSensor");
          ("vehicle_motion", "ForwardRadar");
          ("Accelerometer", host_accel);
          ("Accelerometer", host_jerk);
          ("SpeedSensor", host_speed);
          ("ForwardRadar", object_detected);
          (host_speed, "Arbiter");
          (object_detected, "CA");
          (object_detected, "ACC");
          (host_speed, "CA");
          (host_speed, "ACC");
        ])
