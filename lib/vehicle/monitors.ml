(** Hierarchical monitoring of the vehicle goals (Table 5.3): which goal or
    subgoal is monitored at which location, and the machinery to run every
    monitor over a scenario trace and classify hits / false positives /
    false negatives per parent goal (§5.1.2). *)

open Tl

type location = Vehicle | Arbiter | Feature of string

let location_to_string = function
  | Vehicle -> "Vehicle"
  | Arbiter -> "Arbiter"
  | Feature f -> f

type entry = {
  id : string;  (** e.g. "1", "1A", "2B.CA" *)
  parent : int;  (** goal number 1–9 *)
  location : location;
  goal : Kaos.Goal.t;
}

let vehicle_level =
  List.map
    (fun (n, g) -> { id = string_of_int n; parent = n; location = Vehicle; goal = g })
    Goals.all

let arbiter_level =
  List.map
    (fun (n, g) ->
      { id = Fmt.str "%dA" n; parent = n; location = Arbiter; goal = g })
    [
      (1, Subgoals.a1);
      (2, Subgoals.a2);
      (3, Subgoals.a3);
      (4, Subgoals.a4);
      (5, Subgoals.a5);
      (6, Subgoals.a6);
      (7, Subgoals.a7);
      (8, Subgoals.a8);
      (9, Subgoals.a9);
    ]

(* LCA shares acceleration requests with ACC (§5.3.2), so it carries no
   acceleration-request subgoals; steering-request subgoals belong to the
   steering features LCA and PA. *)
let accel_features = [ "CA"; "ACC"; "RCA"; "PA" ]
let steer_features = [ "LCA"; "PA" ]

let feature_level =
  let per fs n mk =
    List.map
      (fun f ->
        { id = Fmt.str "%dB.%s" n f; parent = n; location = Feature f; goal = mk f })
      fs
  in
  per accel_features 1 Subgoals.b1
  @ per accel_features 2 Subgoals.b2
  @ per accel_features 4 Subgoals.b4
  @ per accel_features 5 Subgoals.b5
  @ per accel_features 6 Subgoals.b6
  @ per steer_features 7 Subgoals.b7
  @ [ { id = "8B.RCA"; parent = 8; location = Feature "RCA"; goal = Subgoals.b8 } ]
  @ per [ "CA"; "ACC"; "LCA" ] 9 Subgoals.b9

(** The complete monitoring plan of Table 5.3. *)
let all = vehicle_level @ arbiter_level @ feature_level

type result = {
  entry : entry;
  violations : Rtmon.Violation.interval list;
  inhibited : Rtmon.Violation.interval list;
      (** intervals where the monitor's inputs were missing or NaN and it
          refused to judge (degraded sensors under fault injection) *)
}

(** Run every monitor of the plan over a trace. Under fault injection a
    monitored input can be missing or NaN; such states inhibit the monitor
    (three-valued verdict) rather than silently classifying over garbage. *)
let run ?stale (trace : Trace.t) : result list =
  let dt = Trace.dt trace in
  List.map
    (fun entry ->
      let status =
        Rtmon.Incremental.run_trace_status ?stale entry.goal.Kaos.Goal.formal
          trace
      in
      {
        entry;
        violations = Rtmon.Incremental.fails ~dt status;
        inhibited = Rtmon.Incremental.inhibitions ~dt status;
      })
    all

(** Per-parent-goal classification: compare the vehicle-level goal's
    violations with all its subgoals' (window: ±50 ms, the order of the
    arbitration debounce). *)
let classify ?(window = 0.05) (results : result list) (n : int) : Rtmon.Report.t =
  let find p = List.filter p results in
  let goal_res =
    List.find
      (fun r -> r.entry.parent = n && r.entry.location = Vehicle)
      results
  in
  let subs = find (fun r -> r.entry.parent = n && r.entry.location <> Vehicle) in
  Rtmon.Report.classify ~window
    ~inhibitions:
      (List.filter_map
         (fun r ->
           if r.inhibited = [] then None
           else
             Some
               ( r.entry.goal.Kaos.Goal.name,
                 location_to_string r.entry.location,
                 r.inhibited ))
         (goal_res :: subs))
    ~goal:(goal_res.entry.goal.Kaos.Goal.name, "Vehicle", goal_res.violations)
    ~subgoals:
      (List.map
         (fun r ->
           ( r.entry.goal.Kaos.Goal.name,
             location_to_string r.entry.location,
             r.violations ))
         subs)
    ()

(** Overall composability estimate across the nine goals (§3.4). *)
let estimate ?window results =
  Compose.Runtime.of_reports (List.map (classify ?window results) (List.init 9 (fun i -> i + 1)))
