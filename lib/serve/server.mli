(** The campaign service daemon.

    A long-lived server in front of the execution stack: it keeps the
    warm {!Exec.Shard} fleet, the in-process outcome cache and the trace
    store resident across requests, and serves campaign evaluation over
    a Unix (and optionally TCP) socket speaking {!Wire}. One request =
    one campaign grid; the reply carries the same CSV the batch CLI
    writes, byte for byte.

    {1 Robustness model}

    - {e Admission control}: the queue is bounded. Past the bound the
      server answers [Rejected {retryable = true; retry_after_s}]
      instead of buffering without limit — explicit backpressure, never
      an unbounded heap. The [retry_after_s] hint scales with current
      load (an empty daemon says the configured base, one at its bound
      says double), so saturated-server retries spread instead of
      synchronizing into a thundering herd. Per-client concurrency
      quotas bound what any one client can hold.
    - {e Fleet-share scheduling}: [concurrent] executor lanes (domains)
      run admitted campaigns in parallel, each leasing a [1/concurrent]
      share of the configured shard fleet under its own label —
      disjoint resident worker processes per lane
      ([serve.concurrent] gauge, [serve.slot_leases] counter). A free
      lane picks the {e smallest} queued grid first (FIFO among
      equals), so a 1-cell probe submitted behind a long grid completes
      first instead of head-of-line blocking. Results stay
      byte-identical to the batch CLI for any lane count or
      interleaving.
    - {e Deadlines}: a request past its deadline is cancelled wherever
      it is — dropped from the queue, or cooperatively aborted mid-run
      with its remaining cells reclaimed ({!Exec.Pool.Aborted}).
    - {e Disconnect detection}: a request whose every client has gone
      away is abandoned the same way; orphaned work never poisons the
      fleet.
    - {e Durability}: every admitted request is journaled ([Pending])
      before it is acknowledged, and every cell result is journaled as
      it settles. A SIGKILLed server finds the orphans on restart,
      re-enqueues them ([serve.recovered]) and resumes from the cell
      journal — the eventual CSV is byte-identical to an uninterrupted
      run. Completed results live in an on-disk store keyed by the
      request digest, so resubmitting a finished spec is a store hit.
      The store is size-budgeted ([store_budget_bytes]): past the
      budget the least-recently-used results (mtime; a hit refreshes
      it) are evicted ([serve.store_bytes] gauge,
      [serve.store_evictions] counter), and an evicted digest simply
      re-executes — incrementally, through its cell journal — on the
      next submission.
    - {e Graceful drain}: SIGTERM (or a [Drain] request) stops
      admission, checkpoints the queue (journaled [Pending] survives to
      the next incarnation), cooperatively aborts the running campaign
      at a cell boundary — completed cells are already journaled — and
      exits 0 once every waiter is answered.
    - {e Degradation tiers}: a journal device failure flips the server
      degraded ([serve.degraded] gauge, [durable = false] in results)
      and halves the admission bound — a sick server sheds load instead
      of dying; {!Exec.Shard}'s in-process fallback covers total spawn
      failure below it.

    {!Exec.Chaos} server fault points ([accept] / [sread] / [swrite])
    thread through the accept/read/write paths: each drops the client's
    connection at that opportunity, which a client absorbs by
    reconnecting and resubmitting (idempotent by digest).

    Live telemetry ([serve.*] counters, gauges and histograms) is
    served as an obs/1 snapshot over the [Stats] request. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  tcp_port : int option;  (** optional loopback TCP listener *)
  state_dir : string;
      (** admission journal, per-request cell journals, result store *)
  queue_bound : int;  (** admission queue bound (>= 1) *)
  quota : int;  (** per-client concurrent-request quota (>= 1) *)
  concurrent : int;
      (** executor lanes: campaigns run at once, each on a [1/concurrent]
          fleet share (>= 1; 1 = the sequential daemon) *)
  store_budget_bytes : int;
      (** result-store size budget; LRU eviction past it (0 = unbounded) *)
  default_deadline_s : float option;
      (** deadline applied to requests that do not carry their own *)
  stall_timeout_s : float;
      (** drop a client whose response buffer has made no progress for
          this long (the slowloris bound) *)
  retry_after_s : float;
      (** base backpressure hint in [Rejected] replies; the wire value
          is this base scaled up with current queue depth *)
  domains : int option;  (** domains for campaign execution *)
  shards : int option;  (** shard the campaigns across worker processes *)
  chaos : Exec.Chaos.t option;
      (** deterministic fault plan; server fault points consult it at
          accept/read/write, and it is threaded into each campaign run *)
  metrics_path : string option;
      (** write a final obs/1 snapshot here on exit *)
}

val default_config : socket:string -> state_dir:string -> config
(** Queue bound 8, quota 4, one executor lane, 64 MiB store budget, no
    default deadline, 10 s stall timeout, 1 s base retry-after,
    defaults elsewhere ([None]). *)

val run : config -> unit
(** Run the daemon until a drain completes (SIGTERM, SIGINT or a [Drain]
    request). Returns normally after the drain — the caller owns the
    exit code. The process must have called {!Exec.Shard.init} first
    thing in [main] when [shards] is used. *)
