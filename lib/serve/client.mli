(** Client side of the campaign service: connect, submit, survive.

    The client owns the resilience the protocol asks of it: submission
    is idempotent (the server keys work by spec digest), so every
    transport failure — refused connection while the daemon restarts, a
    connection dropped by a chaos fault, a corrupt frame — is absorbed
    by reconnecting and resubmitting. Backpressure — a [Rejected] whose
    typed [retryable] flag is set — is obeyed by sleeping the server's
    load-scaled [retry_after_s] hint and retrying without burning the
    reconnect budget; the discriminant is the wire field, never a match
    on rendered reason text. Only server-side verdicts — [Failed] and
    non-retryable rejections ([Bad_spec], [Draining]) — are
    terminal. *)

type result = { ticket : int; csv : string; durable : bool }
(** [csv] is byte-identical to the batch CLI's campaign export;
    [durable = false] flags that the server journal was degraded and the
    result is not crash-safe on the server side. *)

val submit_and_wait :
  ?attempts:int ->
  ?patience_s:float ->
  ?deadline_s:float ->
  ?progress:(completed:int -> total:int -> unit) ->
  socket:string ->
  Wire.spec ->
  (result, string) Stdlib.result
(** Submit [spec] and block until a terminal answer.

    [attempts] (default 10) bounds reconnect-and-resubmit cycles after
    transport failures; [patience_s] (default 600) bounds the total wall
    clock including backpressure sleeps. [deadline_s] is forwarded to
    the server as the request deadline. [progress] fires on each
    [Progress] frame. [Error] carries the server's reason (or the
    exhausted-budget message) — the CLI maps it to a non-zero exit. *)

val stats : socket:string -> (string, string) Stdlib.result
(** Fetch a live obs/1 telemetry snapshot (JSON string). One shot — no
    retry loop; a dead server is an [Error]. *)

val drain :
  socket:string -> (int * int, string) Stdlib.result
(** Ask the server to drain and exit; returns (settled, checkpointed)
    from the [Draining_ack]. One shot. *)
