(** The campaign service's wire protocol (["SRV1"]).

    Same framing discipline as the shard pipe and the scenario journal —
    [magic | payload length : u32le | CRC-32 : u32le | payload] — but
    with its own magic and, crucially, {e closure-free} payloads:
    everything on the wire is pure data ([Marshal] without [Closures]),
    so a client built from a different binary than the server still
    interoperates. Faults travel as their {!Inject.Spec} grammar strings
    and scenarios as their numbers; the server re-resolves both against
    its own catalogue and rejects what it cannot parse ([`Bad_spec]).

    A torn or bit-flipped frame fails its length or CRC check and
    surfaces as [`Corrupt]; both sides treat a corrupt stream as a dead
    connection (the client reconnects and resubmits — submission is
    idempotent, keyed by the request digest). *)

val proto_version : int
(** Protocol generation, carried in {!Hello} / {!Welcome}. A server
    refuses clients with a different generation ([`Bad_spec]). *)

type spec = {
  seed : int;  (** campaign seed; part of the request digest *)
  faults : string list;
      (** fault specimens in {!Inject.Spec} grammar, in grid (row)
          order; [[]] selects the server's seed-[seed] smoke faults *)
  scenarios : int list;  (** scenario numbers, in grid (column) order *)
  window : float option;  (** classification window ([None] = default) *)
  retries : int;
      (** per-cell retry budget (extra attempts); {e not} part of the
          digest — retries cannot change a deterministic result *)
}
(** A campaign submission: pure data, canonicalized and digested by the
    server, so equal specs — whatever client they come from — share one
    execution, one journal and one stored result. *)

type reject_reason =
  | Queue_full  (** admission queue at its bound: back off and retry *)
  | Over_quota  (** this client is at its concurrent-request quota *)
  | Draining  (** server is draining; it will not admit new work *)
  | Bad_spec of string  (** unparsable fault / unknown scenario / proto *)

type request =
  | Hello of { proto : int; client : string }
  | Submit of { spec : spec; deadline_s : float option }
      (** [deadline_s] bounds the request's total residence (queue wait
          plus run); past it the server cancels the work and reclaims
          the cells *)
  | Cancel of { ticket : int }
  | Stats  (** ask for a live obs/1 telemetry snapshot *)
  | Drain  (** ask the server to drain and exit, as if SIGTERMed *)

type response =
  | Welcome of { proto : int; server : string }
  | Accepted of { ticket : int; position : int; cells : int }
      (** admitted: [position] in the queue at admission (0 = next),
          [cells] the grid size used for progress reporting *)
  | Rejected of {
      reason : reject_reason;
      retryable : bool;
          (** the typed retry discriminant: [true] for transient
              saturation ([Queue_full] / [Over_quota]) — resubmit the
              same spec after [retry_after_s]; [false] for terminal
              rejections ([Draining] / [Bad_spec]) — resubmitting the
              same spec cannot succeed. Clients branch on this field,
              never on rendered reason text. *)
      retry_after_s : float;
          (** the server's resubmission hint, scaled with its current
              load (deeper queue ⇒ longer hint) so a saturated daemon
              spreads retries instead of synchronizing a thundering
              herd *)
    }
      (** backpressure instead of unbounded buffering *)
  | Progress of { ticket : int; completed : int; total : int }
  | Result of { ticket : int; csv : string; durable : bool }
      (** the campaign CSV, byte-identical to the batch CLI's;
          [durable = false] warns that a journal degradation means the
          result is not crash-safe on the server *)
  | Failed of { ticket : int; reason : string }
  | Stats_reply of { json : string }  (** obs/1 snapshot *)
  | Draining_ack of { settled : int; checkpointed : int }
      (** drain accepted: requests already completed vs. checkpointed to
          the journal for the next incarnation to resume *)

(** Frame codec for both directions, mirroring {!Exec.Shard.Frame} with
    magic ["SRV1"] and closure-free payloads. *)
module Frame : sig
  type buf
  (** Growable reassembly buffer for one connection's byte stream. *)

  val create : unit -> buf
  val feed : buf -> bytes -> int -> unit

  val encode : 'a -> string
  (** The complete frame carrying [v]. Payloads marshal {e without}
      closures: a value that captures a closure raises
      [Invalid_argument]. *)

  val decode : buf -> [ `Frame of 'a | `Need_more | `Corrupt ]
  (** First complete frame in the buffer, consumed. The decoded type is
      the caller's claim ({!request} on the server, {!response} on the
      client), exactly as with [Marshal.from_string]. *)

  val write : Unix.file_descr -> 'a -> unit
  (** [encode] then write the whole frame (blocking, EINTR-safe). *)
end
