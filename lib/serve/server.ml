(** The campaign service daemon (see server.mli for the robustness
    model).

    Concurrency shape: the main thread owns every socket and every piece
    of request state, multiplexed through one [Unix.select] loop;
    [concurrent] executor {e lanes} (domains) each run one campaign at a
    time, warm per-lane fleet and shared outcome cache resident between
    them. Lanes and main loop meet through three structures guarded by
    one mutex — the backlog, the done queue and the [running] list —
    plus per-request atomics ([abort], [progress]) that the campaign
    machinery reads without any lock. A lane picks the {e smallest}
    queued grid first (ties by ticket), so a 1-cell campaign submitted
    behind a hundred-cell one starts on the next free lane instead of
    head-of-line blocking. Executors never touch a socket; the main
    loop never simulates. *)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let m_connections = Obs.Metrics.counter "serve.connections"
let m_disconnects = Obs.Metrics.counter "serve.disconnects"
let m_submitted = Obs.Metrics.counter "serve.requests_submitted"
let m_completed = Obs.Metrics.counter "serve.requests_completed"
let m_failed = Obs.Metrics.counter "serve.requests_failed"
let m_checkpointed = Obs.Metrics.counter "serve.requests_checkpointed"
let m_rejections = Obs.Metrics.counter "serve.rejections"
let m_rej_queue = Obs.Metrics.counter "serve.rejections_queue_full"
let m_rej_quota = Obs.Metrics.counter "serve.rejections_quota"
let m_rej_drain = Obs.Metrics.counter "serve.rejections_draining"
let m_rej_spec = Obs.Metrics.counter "serve.rejections_bad_spec"
let m_deadline_kills = Obs.Metrics.counter "serve.deadline_kills"
let m_cancelled = Obs.Metrics.counter "serve.cancelled"
let m_orphaned = Obs.Metrics.counter "serve.orphaned"
let m_recovered = Obs.Metrics.counter "serve.recovered"
let m_store_hits = Obs.Metrics.counter "serve.store_hits"
let m_store_evictions = Obs.Metrics.counter "serve.store_evictions"
let m_slot_leases = Obs.Metrics.counter "serve.slot_leases"
let m_chaos_drops = Obs.Metrics.counter "serve.chaos_drops"
let m_stalled = Obs.Metrics.counter "serve.stalled_clients"
let g_queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let g_concurrent = Obs.Metrics.gauge "serve.concurrent"
let g_store_bytes = Obs.Metrics.gauge "serve.store_bytes"
let g_active_clients = Obs.Metrics.gauge "serve.active_clients"
let g_degraded = Obs.Metrics.gauge "serve.degraded"
let g_draining = Obs.Metrics.gauge "serve.draining"
let h_queue_wait = Obs.Metrics.histogram "serve.queue_wait_s"
let h_run = Obs.Metrics.histogram "serve.request_run_s"
let h_drain = Obs.Metrics.histogram "serve.drain_s"

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)

type config = {
  socket : string;
  tcp_port : int option;
  state_dir : string;
  queue_bound : int;
  quota : int;
  concurrent : int;
  store_budget_bytes : int;
  default_deadline_s : float option;
  stall_timeout_s : float;
  retry_after_s : float;
  domains : int option;
  shards : int option;
  chaos : Exec.Chaos.t option;
  metrics_path : string option;
}

let default_config ~socket ~state_dir =
  {
    socket;
    tcp_port = None;
    state_dir;
    queue_bound = 8;
    quota = 4;
    concurrent = 1;
    store_budget_bytes = 64 * 1024 * 1024;
    default_deadline_s = None;
    stall_timeout_s = 10.;
    retry_after_s = 1.;
    domains = None;
    shards = None;
    chaos = None;
    metrics_path = None;
  }

(* The admission journal record: [Pending] is written before a request
   is acknowledged, [Settled] when its outcome no longer needs a future
   incarnation (completed, crashed, or deliberately abandoned). A
   checkpointed request keeps its [Pending] — that is the durable to-do
   the next incarnation recovers. *)
type admission = Pending of Wire.spec | Settled

type client = {
  cfd : Unix.file_descr;
  rbuf : Wire.Frame.buf;
  outq : string Queue.t;  (** encoded frames awaiting the socket *)
  mutable out_off : int;  (** bytes of the head frame already written *)
  mutable greeted : bool;
  mutable live : int;  (** requests this client is waiting on (quota) *)
  mutable last_drained : float;  (** last write progress (slowloris) *)
  mutable open_ : bool;
}

type outcome =
  | Completed of { csv : string; durable : bool }
  | Checkpointed  (** aborted at a cell boundary; journal holds the rest *)
  | Crashed of string

type req = {
  ticket : int;
  digest : string;  (** canonical spec digest: dedup / journal / store key *)
  spec : Wire.spec;
  grid : Scenarios.Campaign.grid;
  total : int;
  deadline : float option;  (** absolute, [Obs.Clock.now] timebase *)
  submitted_at : float;
  abort : bool Atomic.t;  (** cooperative-cancel probe for the campaign *)
  progress : int Atomic.t;  (** cells settled so far (journal + run) *)
  mutable sent_progress : int;
  mutable state : [ `Queued | `Running | `Settled ];
  mutable kill : [ `Deadline | `Cancelled | `Orphaned ] option;
  mutable waiters : client list;
}

type t = {
  cfg : config;
  m : Mutex.t;
  work_c : Condition.t;
  mutable backlog : req list;
      (** admitted, not yet running; lanes pick smallest-grid-first *)
  done_q : (req * outcome) Queue.t;
  stop : bool Atomic.t;  (** executor shutdown + global abort probe *)
  drain_rq : bool Atomic.t;  (** set by the SIGTERM/SIGINT handler *)
  admissions : admission Scenarios.Journal.writer;
  fault : ([ `Accept | `Read | `Write ] -> bool) option;
  live : (string, req) Hashtbl.t;  (** digest -> unsettled request *)
  mutable draining : bool;
  mutable degraded : bool;
  mutable running : req list;  (** one entry per busy executor lane *)
  mutable clients : client list;
  mutable next_ticket : int;
  mutable settled : int;
  mutable checkpointed : int;
  mutable drain_t0 : float;
}

let admissions_path cfg = Filename.concat cfg.state_dir "admissions.jnl"

let cells_path cfg digest =
  Filename.concat cfg.state_dir ("cells-" ^ digest ^ ".jnl")

let results_dir cfg = Filename.concat cfg.state_dir "results"
let result_path cfg digest = Filename.concat (results_dir cfg) (digest ^ ".csv")

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Spec resolution                                                     *)

(* The wire spec carries faults as grammar strings and scenarios as
   numbers; resolving them against this server's catalogue is also the
   validation step — anything unparsable is a [Bad_spec] rejection, not
   a request that fails later. *)
let resolve_spec (spec : Wire.spec) =
  try
    let faults =
      match spec.Wire.faults with
      | [] -> (Scenarios.Campaign.smoke ~seed:spec.Wire.seed ()).faults
      | l ->
          List.map
            (fun str ->
              match Inject.Spec.parse str with
              | Ok f -> f
              | Error e -> failwith (Fmt.str "fault %S: %s" str e))
            l
    in
    let scenarios =
      List.map
        (fun n ->
          match Scenarios.Defs.get n with
          | s -> s
          | exception Not_found -> failwith (Fmt.str "unknown scenario %d" n))
        spec.Wire.scenarios
    in
    if scenarios = [] then failwith "empty scenario list";
    Ok { Scenarios.Campaign.seed = spec.Wire.seed; faults; grid_scenarios = scenarios }
  with Failure e -> Error e

(* Requests are deduplicated, journaled and stored under the digest of
   the {e resolved} spec — the canonical fault strings and scenario
   numbers — so two clients writing the same grid differently still
   share one execution. [retries] stays out: it cannot change a
   deterministic result, only how hard the server tries to get it. *)
let digest_of ~(spec : Wire.spec) (grid : Scenarios.Campaign.grid) =
  Exec.Memo.digest
    ( grid.Scenarios.Campaign.seed,
      List.map Inject.Fault.to_string grid.Scenarios.Campaign.faults,
      List.map
        (fun (d : Scenarios.Defs.t) -> d.Scenarios.Defs.number)
        grid.Scenarios.Campaign.grid_scenarios,
      spec.Wire.window )

(* ------------------------------------------------------------------ *)
(* State helpers (all called with [s.m] held)                          *)

let queued_depth s =
  List.fold_left
    (fun n (r : req) -> if r.state = `Queued then n + 1 else n)
    0 s.backlog

let in_flight s = queued_depth s + List.length s.running

let sync_gauges s =
  Obs.Metrics.set g_queue_depth (float_of_int (in_flight s));
  Obs.Metrics.set g_active_clients (float_of_int (List.length s.clients))

let degrade s =
  if not s.degraded then begin
    s.degraded <- true;
    Obs.Metrics.set g_degraded 1.
  end

let journal_settled s digest =
  Scenarios.Journal.append s.admissions ~key:digest Settled;
  if Scenarios.Journal.degraded s.admissions then degrade s

let kill_reason = function
  | `Deadline -> "deadline exceeded"
  | `Cancelled -> "cancelled"
  | `Orphaned -> "abandoned: every waiting client disconnected"

let attach c (r : req) =
  if not (List.memq c r.waiters) then begin
    r.waiters <- c :: r.waiters;
    c.live <- c.live + 1
  end

(* close_client / kill_req / settle / send / flush_out are mutually
   recursive: settling notifies waiters (send), a failed send closes the
   client, and a closed client orphans — kills — its now-waiterless
   requests. The recursion bottoms out because each path flips a
   one-way flag ([open_], [`Settled]) before recursing. *)

let rec close_client s c =
  if c.open_ then begin
    c.open_ <- false;
    (try Unix.close c.cfd with Unix.Unix_error _ -> ());
    s.clients <- List.filter (fun c' -> c' != c) s.clients;
    Obs.Metrics.incr m_disconnects;
    Obs.Metrics.set g_active_clients (float_of_int (List.length s.clients));
    (* Disconnect detection: a request nobody is waiting on anymore is
       abandoned — queued work is dropped, running work cooperatively
       aborted — so a vanished client cannot pin the executor. *)
    let orphans =
      Hashtbl.fold
        (fun _ (r : req) acc -> if List.memq c r.waiters then r :: acc else acc)
        s.live []
    in
    List.iter
      (fun (r : req) ->
        r.waiters <- List.filter (fun w -> w != c) r.waiters;
        if r.waiters = [] && r.state <> `Settled && r.kill = None then
          kill_req s r ~kill:`Orphaned)
      orphans
  end

and kill_req s (r : req) ~kill =
  if r.state <> `Settled then begin
    (match kill with
    | `Deadline -> Obs.Metrics.incr m_deadline_kills
    | `Cancelled -> Obs.Metrics.incr m_cancelled
    | `Orphaned -> Obs.Metrics.incr m_orphaned);
    r.kill <- Some kill;
    match r.state with
    | `Running ->
        (* Cooperative: the campaign sees the probe at the next cell
           boundary, raises [Exec.Pool.Aborted], and the executor
           settles it as [Checkpointed] — cells are reclaimed, the
           fleet stays warm. *)
        Atomic.set r.abort true
    | `Queued | `Settled -> settle s r Checkpointed
  end

and settle s (r : req) (outcome : outcome) =
  if r.state <> `Settled then begin
    r.state <- `Settled;
    (match Hashtbl.find_opt s.live r.digest with
    | Some r' when r' == r -> Hashtbl.remove s.live r.digest
    | _ -> ());
    (* Durability: a drain checkpoint keeps its [Pending] record — that
       is the hand-off to the next incarnation. Every other outcome
       (completed, crashed, deliberately killed) retires it. *)
    let keep_pending =
      match outcome with Checkpointed -> r.kill = None | _ -> false
    in
    if not keep_pending then journal_settled s r.digest;
    let resp =
      match outcome with
      | Completed { csv; durable } ->
          Obs.Metrics.incr m_completed;
          s.settled <- s.settled + 1;
          Wire.Result
            { ticket = r.ticket; csv; durable = durable && not s.degraded }
      | Checkpointed ->
          let reason =
            match r.kill with
            | None ->
                s.checkpointed <- s.checkpointed + 1;
                Obs.Metrics.incr m_checkpointed;
                "checkpointed for drain; resubmit after restart to resume"
            | Some k ->
                Obs.Metrics.incr m_failed;
                kill_reason k
          in
          Wire.Failed { ticket = r.ticket; reason }
      | Crashed reason ->
          Obs.Metrics.incr m_failed;
          Wire.Failed { ticket = r.ticket; reason }
    in
    let waiters = r.waiters in
    r.waiters <- [];
    List.iter
      (fun (c : client) ->
        c.live <- c.live - 1;
        send s c resp)
      waiters;
    sync_gauges s
  end

and send s c resp =
  if c.open_ then begin
    let drop = match s.fault with Some f -> f `Write | None -> false in
    if drop then begin
      (* Chaos write fault: the reply is lost with the connection, as if
         the wire died mid-frame. The client reconnects and resubmits;
         the journal and result store make that idempotent. *)
      Obs.Metrics.incr m_chaos_drops;
      close_client s c
    end
    else begin
      Queue.push (Wire.Frame.encode resp) c.outq;
      flush_out s c
    end
  end

and flush_out s c =
  if c.open_ then
    match Queue.peek_opt c.outq with
    | None -> ()
    | Some chunk -> (
        let len = String.length chunk - c.out_off in
        match Unix.write c.cfd (Bytes.unsafe_of_string chunk) c.out_off len with
        | n ->
            c.last_drained <- Obs.Clock.now ();
            if n = len then begin
              ignore (Queue.pop c.outq);
              c.out_off <- 0;
              flush_out s c
            end
            else c.out_off <- c.out_off + n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out s c
        | exception Unix.Unix_error (_, _, _) -> close_client s c)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let reject s c reason =
  Obs.Metrics.incr m_rejections;
  (match reason with
  | Wire.Queue_full -> Obs.Metrics.incr m_rej_queue
  | Wire.Over_quota -> Obs.Metrics.incr m_rej_quota
  | Wire.Draining -> Obs.Metrics.incr m_rej_drain
  | Wire.Bad_spec _ -> Obs.Metrics.incr m_rej_spec);
  let retryable =
    match reason with
    | Wire.Queue_full | Wire.Over_quota -> true
    | Wire.Draining | Wire.Bad_spec _ -> false
  in
  (* The hint scales with load: an empty daemon says the configured
     base, one at its queue bound says double it, so a saturated daemon
     spreads its herd of retriers instead of synchronizing them. *)
  let retry_after_s =
    s.cfg.retry_after_s
    *. (1.
       +. (float_of_int (in_flight s) /. float_of_int (max 1 s.cfg.queue_bound))
       )
  in
  send s c (Wire.Rejected { reason; retryable; retry_after_s })

let make_req s ~spec ~grid ~digest ~deadline_s =
  let ticket = s.next_ticket in
  s.next_ticket <- ticket + 1;
  let deadline =
    let rel =
      match deadline_s with Some _ -> deadline_s | None -> s.cfg.default_deadline_s
    in
    Option.map (fun d -> Obs.Clock.now () +. d) rel
  in
  let total =
    List.length grid.Scenarios.Campaign.faults
    * List.length grid.Scenarios.Campaign.grid_scenarios
  in
  {
    ticket;
    digest;
    spec;
    grid;
    total;
    deadline;
    submitted_at = Obs.Clock.now ();
    abort = Atomic.make false;
    progress = Atomic.make 0;
    sent_progress = -1;
    state = `Queued;
    kill = None;
    waiters = [];
  }

let admit s c (spec : Wire.spec) deadline_s =
  if not c.greeted then begin
    reject s c (Wire.Bad_spec "hello first");
    close_client s c
  end
  else if s.draining then reject s c Wire.Draining
  else
    match resolve_spec spec with
    | Error e -> reject s c (Wire.Bad_spec e)
    | Ok grid -> (
        let digest = digest_of ~spec grid in
        (* The store is GC'd concurrently (size budget, executor side),
           so the existence check and the read can race an eviction:
           a failed read falls through to re-execution — the journal
           makes that incremental — instead of crashing the daemon. *)
        let stored =
          let path = result_path s.cfg digest in
          if Sys.file_exists path then
            match read_file path with
            | csv ->
                (* LRU touch: a hit refreshes the file's mtime so the
                   eviction order tracks use, not just creation. *)
                (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
                Some csv
            | exception (Sys_error _ | End_of_file) -> None
          else None
        in
        match stored with
        | Some csv ->
            Obs.Metrics.incr m_store_hits;
            send s c (Wire.Result { ticket = 0; csv; durable = true })
        | None -> (
          let attachable (r : req) =
            r.state <> `Settled && r.kill = None && not (Atomic.get r.abort)
          in
          match Hashtbl.find_opt s.live digest with
          | Some r when attachable r ->
              (* Same digest already in flight: one execution, many
                 waiters. *)
              attach c r;
              send s c
                (Wire.Accepted { ticket = r.ticket; position = 0; cells = r.total })
          | _ ->
              if c.live >= s.cfg.quota then reject s c Wire.Over_quota
              else
                (* Degradation tier 1: a server that lost its journal
                   halves its appetite — less buffered work that a crash
                   would silently forget. *)
                let bound =
                  if s.degraded then max 1 (s.cfg.queue_bound / 2)
                  else s.cfg.queue_bound
                in
                if in_flight s >= bound then reject s c Wire.Queue_full
                else begin
                  let r = make_req s ~spec ~grid ~digest ~deadline_s in
                  (* [Pending] hits the disk before the client hears
                     [Accepted]: an acknowledged request is one a crash
                     cannot lose. *)
                  Scenarios.Journal.append s.admissions ~key:digest (Pending spec);
                  if Scenarios.Journal.degraded s.admissions then degrade s;
                  Hashtbl.replace s.live digest r;
                  attach c r;
                  let position = in_flight s in
                  s.backlog <- s.backlog @ [ r ];
                  Condition.signal s.work_c;
                  Obs.Metrics.incr m_submitted;
                  sync_gauges s;
                  send s c
                    (Wire.Accepted { ticket = r.ticket; position; cells = r.total })
                end))

(* ------------------------------------------------------------------ *)
(* Executor domain                                                     *)

let store_result s digest csv =
  try
    let tmp = result_path s.cfg digest ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc csv;
    close_out oc;
    Sys.rename tmp (result_path s.cfg digest);
    true
  with Sys_error _ -> false

(* Size-budgeted store GC: a long-lived daemon must not grow its result
   store without bound. Evict least-recently-used first (mtime — store
   hits refresh it) until the directory fits [store_budget_bytes]
   (0 = unbounded). Evicting a digest is safe: the admissions check
   falls through to re-execution, and the cell journal makes the re-run
   incremental. Runs on executor lanes after each store and once at
   startup; concurrent sweeps can race each other's [Sys.remove], so
   every removal is try-wrapped. *)
let gc_store s =
  let dir = results_dir s.cfg in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let files =
        Array.to_list names
        |> List.filter_map (fun name ->
               let path = Filename.concat dir name in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                   Some (path, st_size, st_mtime)
               | _ -> None
               | exception Unix.Unix_error _ -> None)
      in
      let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 files in
      Obs.Metrics.set g_store_bytes (float_of_int total);
      let budget = s.cfg.store_budget_bytes in
      if budget > 0 && total > budget then begin
        let by_age = List.sort (fun (_, _, a) (_, _, b) -> compare a b) files in
        let remaining = ref total in
        List.iter
          (fun (path, sz, _) ->
            if !remaining > budget then
              match Sys.remove path with
              | () ->
                  remaining := !remaining - sz;
                  Obs.Metrics.incr m_store_evictions
              | exception Sys_error _ -> ())
          by_age;
        Obs.Metrics.set g_store_bytes (float_of_int !remaining)
      end

let run_request s ~lane (r : req) =
  let t0 = Obs.Clock.now () in
  let retry =
    if r.spec.Wire.retries > 0 then
      Some
        (Exec.Supervise.policy
           ~max_attempts:(r.spec.Wire.retries + 1)
           ~seed:r.spec.Wire.seed ())
    else None
  in
  (* The probe merges per-request cancellation (deadline, explicit
     cancel, orphaning) with the global drain stop; either aborts the
     campaign at the next cell boundary. *)
  let abort () = Atomic.get r.abort || Atomic.get s.stop in
  (* Fleet-share scheduling: with [concurrent = k] lanes, each lane
     leases a 1/k share of the configured worker fleet under its own
     label — disjoint resident worker processes per lane, so one
     campaign's crash/abort recovery never touches a neighbour's
     workers. With one lane the anonymous full-size fleet is used, so
     [concurrent = 1] is byte- and fleet-identical to the old daemon. *)
  let k = max 1 s.cfg.concurrent in
  let fleet = if k > 1 then Some (Printf.sprintf "lane%d" lane) else None in
  let share n = max 1 (n / k) in
  let shards = Option.map share s.cfg.shards in
  let domains = if k > 1 then Option.map share s.cfg.domains else s.cfg.domains in
  Obs.Metrics.incr m_slot_leases;
  match
    Scenarios.Campaign.run ?fleet ?domains ?shards ?window:r.spec.Wire.window
      ~journal:(cells_path s.cfg r.digest)
      ~resume:true ?retry
      ~on_cell:(fun _cell -> Atomic.incr r.progress)
      ~abort ?chaos:s.cfg.chaos r.grid
  with
  | c ->
      let csv = Scenarios.Export.campaign_csv c in
      let stored = store_result s r.digest csv in
      if stored then gc_store s;
      Obs.Metrics.observe h_run (Obs.Clock.now () -. t0);
      let durable =
        stored && not c.Scenarios.Campaign.robustness.Scenarios.Campaign.degraded
      in
      Completed { csv; durable }
  | exception Exec.Pool.Aborted -> Checkpointed
  | exception e -> Crashed (Printexc.to_string e)

(* One executor lane. Picks the smallest queued grid first (total cells,
   ties broken by ticket, i.e. FIFO among equals): size-aware admission
   to the lanes, so a 1-cell probe submitted behind a long grid runs on
   the next free lane immediately — the head-of-line block the
   concurrent daemon exists to remove. Entries settled while queued
   (kill, drain) are pruned on the way. *)
let executor s ~lane =
  let rec next () =
    Mutex.lock s.m;
    let rec pick () =
      if Atomic.get s.stop then None
      else begin
        s.backlog <- List.filter (fun (r : req) -> r.state = `Queued) s.backlog;
        match s.backlog with
        | [] ->
            Condition.wait s.work_c s.m;
            pick ()
        | first :: rest ->
            let best =
              List.fold_left
                (fun (best : req) (r : req) ->
                  if (r.total, r.ticket) < (best.total, best.ticket) then r
                  else best)
                first rest
            in
            s.backlog <- List.filter (fun r -> r != best) s.backlog;
            Some best
      end
    in
    let r = pick () in
    (match r with
    | Some r ->
        r.state <- `Running;
        s.running <- r :: s.running;
        Obs.Metrics.set g_concurrent (float_of_int (List.length s.running))
    | None -> ());
    Mutex.unlock s.m;
    match r with
    | None -> ()
    | Some r ->
        Obs.Metrics.observe h_queue_wait (Obs.Clock.now () -. r.submitted_at);
        let outcome = run_request s ~lane r in
        Mutex.lock s.m;
        s.running <- List.filter (fun r' -> r' != r) s.running;
        Obs.Metrics.set g_concurrent (float_of_int (List.length s.running));
        Queue.push (r, outcome) s.done_q;
        Mutex.unlock s.m;
        next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Recovery and drain                                                  *)

(* Startup recovery: any [Pending] without a [Settled] after it is work
   a previous incarnation acknowledged but never finished — SIGKILL,
   power loss, a drain checkpoint. Re-enqueue it with no waiters; the
   cell journal makes the re-run incremental, and the client that cared
   will resubmit the same digest and attach (or hit the result store). *)
let recover s =
  let replay =
    (Scenarios.Journal.replay (admissions_path s.cfg) : admission Scenarios.Journal.replay)
  in
  List.iter
    (fun (digest, adm) ->
      match adm with
      | Settled -> ()
      | Pending spec -> (
          if Sys.file_exists (result_path s.cfg digest) then
            (* Finished, but the [Settled] append was lost: heal. *)
            Scenarios.Journal.append s.admissions ~key:digest Settled
          else
            match resolve_spec spec with
            | Error _ ->
                (* The catalogue changed under the journal; the spec can
                   never run again. Retire it. *)
                Scenarios.Journal.append s.admissions ~key:digest Settled
            | Ok grid ->
                let r = make_req s ~spec ~grid ~digest ~deadline_s:None in
                Hashtbl.replace s.live digest r;
                s.backlog <- s.backlog @ [ r ];
                Obs.Metrics.incr m_recovered))
    replay.Scenarios.Journal.entries;
  if Scenarios.Journal.degraded s.admissions then degrade s

let begin_drain s ~drainer =
  if not s.draining then begin
    s.draining <- true;
    s.drain_t0 <- Obs.Clock.now ();
    Obs.Metrics.set g_draining 1.;
    (* Queued work checkpoints instantly: its [Pending] record IS the
       checkpoint. Each running campaign aborts at a cell boundary, so
       the drain costs at most one cell of wall clock per lane plus the
       flush. *)
    List.iter
      (fun (r : req) -> if r.state = `Queued then settle s r Checkpointed)
      s.backlog;
    List.iter (fun (r : req) -> Atomic.set r.abort true) s.running;
    Atomic.set s.stop true;
    Condition.broadcast s.work_c
  end;
  match drainer with
  | Some c ->
      let checkpointed = s.checkpointed + List.length s.running in
      send s c (Wire.Draining_ack { settled = s.settled; checkpointed })
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Event handling (main thread, [s.m] held)                            *)

let dispatch s c (rq : Wire.request) =
  match rq with
  | Wire.Hello { proto; client = _ } ->
      if proto <> Wire.proto_version then begin
        reject s c
          (Wire.Bad_spec
             (Fmt.str "protocol %d; this server speaks %d" proto
                Wire.proto_version));
        close_client s c
      end
      else begin
        c.greeted <- true;
        send s c
          (Wire.Welcome { proto = Wire.proto_version; server = "campaignd" })
      end
  | Wire.Submit { spec; deadline_s } -> admit s c spec deadline_s
  | Wire.Cancel { ticket } ->
      let hits =
        Hashtbl.fold
          (fun _ (r : req) acc -> if r.ticket = ticket then r :: acc else acc)
          s.live []
      in
      List.iter (fun r -> kill_req s r ~kill:`Cancelled) hits
  | Wire.Stats ->
      sync_gauges s;
      send s c (Wire.Stats_reply { json = Obs.Export.to_json ~name:"serve" () })
  | Wire.Drain -> begin_drain s ~drainer:(Some c)

let rec drain_frames s c =
  if c.open_ then
    match Wire.Frame.decode c.rbuf with
    | `Frame rq ->
        dispatch s c rq;
        drain_frames s c
    | `Need_more -> ()
    | `Corrupt -> close_client s c

let handle_client_read s c =
  if c.open_ then begin
    let drop = match s.fault with Some f -> f `Read | None -> false in
    if drop then begin
      Obs.Metrics.incr m_chaos_drops;
      close_client s c
    end
    else
      let chunk = Bytes.create 65536 in
      match Unix.read c.cfd chunk 0 (Bytes.length chunk) with
      | 0 -> close_client s c
      | n ->
          Wire.Frame.feed c.rbuf chunk n;
          drain_frames s c
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
      | exception Unix.Unix_error (_, _, _) -> close_client s c
  end

let handle_accept s lfd =
  match Unix.accept ~cloexec:true lfd with
  | fd, _ ->
      Obs.Metrics.incr m_connections;
      let drop = match s.fault with Some f -> f `Accept | None -> false in
      if drop then begin
        (* Chaos accept fault: the connection dies before the client is
           ever registered, as a listener overflow or RST would. *)
        Obs.Metrics.incr m_chaos_drops;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        let c =
          {
            cfd = fd;
            rbuf = Wire.Frame.create ();
            outq = Queue.create ();
            out_off = 0;
            greeted = false;
            live = 0;
            last_drained = Obs.Clock.now ();
            open_ = true;
          }
        in
        s.clients <- c :: s.clients;
        Obs.Metrics.set g_active_clients (float_of_int (List.length s.clients))
      end
  | exception
      Unix.Unix_error
        ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
          _,
          _ ) ->
      ()

let process_done s =
  let rec go () =
    match Queue.take_opt s.done_q with
    | None -> ()
    | Some (r, outcome) ->
        settle s r outcome;
        go ()
  in
  go ()

let sweep_deadlines s =
  let now = Obs.Clock.now () in
  let expired =
    Hashtbl.fold
      (fun _ (r : req) acc ->
        match r.deadline with
        | Some d when now > d && r.state <> `Settled && r.kill = None ->
            r :: acc
        | _ -> acc)
      s.live []
  in
  List.iter (fun r -> kill_req s r ~kill:`Deadline) expired

let push_progress s =
  List.iter
    (fun (r : req) ->
      let p = Atomic.get r.progress in
      if p <> r.sent_progress then begin
        r.sent_progress <- p;
        List.iter
          (fun c ->
            send s c
              (Wire.Progress { ticket = r.ticket; completed = p; total = r.total }))
          r.waiters
      end)
    s.running

(* Slowloris guard: a client that stops reading jams its out-queue; once
   the queue has made no progress for [stall_timeout_s] the connection
   is dropped (orphaning — and thereby cancelling — its requests). One
   slow reader never wedges the loop or holds a quota slot forever. *)
let sweep_stalls s =
  let now = Obs.Clock.now () in
  let stalled =
    List.filter
      (fun c ->
        (not (Queue.is_empty c.outq))
        && now -. c.last_drained > s.cfg.stall_timeout_s)
      s.clients
  in
  List.iter
    (fun c ->
      Obs.Metrics.incr m_stalled;
      close_client s c)
    stalled

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let listen_unix path =
  (try Sys.remove path with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let rec main_loop s listeners =
  if Atomic.get s.drain_rq then begin
    Atomic.set s.drain_rq false;
    Mutex.lock s.m;
    begin_drain s ~drainer:None;
    Mutex.unlock s.m
  end;
  Mutex.lock s.m;
  process_done s;
  sweep_deadlines s;
  push_progress s;
  sweep_stalls s;
  let finished = s.draining && s.running = [] && Queue.is_empty s.done_q in
  Mutex.unlock s.m;
  if not finished then begin
    let rfds = listeners @ List.map (fun c -> c.cfd) s.clients in
    let wfds =
      List.filter_map
        (fun c -> if Queue.is_empty c.outq then None else Some c.cfd)
        s.clients
    in
    (match Unix.select rfds wfds [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        Mutex.lock s.m;
        List.iter
          (fun fd ->
            if List.mem fd listeners then handle_accept s fd
            else
              match List.find_opt (fun c -> c.cfd = fd) s.clients with
              | Some c -> handle_client_read s c
              | None -> ())
          readable;
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.cfd = fd) s.clients with
            | Some c -> flush_out s c
            | None -> ())
          writable;
        Mutex.unlock s.m);
    main_loop s listeners
  end

(* Post-drain: give buffered replies a short, bounded chance to reach
   their sockets. Nothing here may block — a client that cannot take
   its bytes within the grace loses them (it will resubmit and hit the
   store). *)
let final_flush s =
  let grace_until = Obs.Clock.now () +. 1.0 in
  let pending () =
    List.exists (fun c -> not (Queue.is_empty c.outq)) s.clients
  in
  while pending () && Obs.Clock.now () < grace_until do
    let wfds =
      List.filter_map
        (fun c -> if Queue.is_empty c.outq then None else Some c.cfd)
        s.clients
    in
    match Unix.select [] wfds [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _, writable, _ ->
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.cfd = fd) s.clients with
            | Some c -> flush_out s c
            | None -> ())
          writable
  done;
  List.iter (fun c -> close_client s c) s.clients

let run cfg =
  mkdir_p cfg.state_dir;
  mkdir_p (results_dir cfg);
  let admissions =
    Scenarios.Journal.create ~on_error:`Degrade (admissions_path cfg)
  in
  let s =
    {
      cfg;
      m = Mutex.create ();
      work_c = Condition.create ();
      backlog = [];
      done_q = Queue.create ();
      stop = Atomic.make false;
      drain_rq = Atomic.make false;
      admissions;
      fault = Option.bind cfg.chaos Exec.Chaos.server_fault;
      live = Hashtbl.create 64;
      draining = false;
      degraded = false;
      running = [];
      clients = [];
      next_ticket = 1;
      settled = 0;
      checkpointed = 0;
      drain_t0 = 0.;
    }
  in
  recover s;
  gc_store s;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_term _ = Atomic.set s.drain_rq true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_term);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_term);
  let lunix = listen_unix cfg.socket in
  let ltcp = Option.map listen_tcp cfg.tcp_port in
  let listeners = lunix :: Option.to_list ltcp in
  let lanes =
    List.init (max 1 cfg.concurrent) (fun lane ->
        Domain.spawn (fun () -> executor s ~lane))
  in
  main_loop s listeners;
  final_flush s;
  List.iter Domain.join lanes;
  Obs.Metrics.observe h_drain (Obs.Clock.now () -. s.drain_t0);
  Mutex.lock s.m;
  sync_gauges s;
  Mutex.unlock s.m;
  Option.iter (fun p -> Obs.Export.write_file ~name:"serve" p) cfg.metrics_path;
  Scenarios.Journal.close s.admissions;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  try Sys.remove cfg.socket with Sys_error _ -> ()
