(** Client side of the campaign service (see client.mli). *)

type result = { ticket : int; csv : string; durable : bool }

(* Why an attempt must be retried. [Backpressure] is the server's typed
   [retryable] rejection — healthy saturation, resubmit after its hint,
   never charged against the attempt budget. [Transport] is a dead or
   corrupt connection (or an answer a fresh submission can fix); it
   costs an attempt and a fixed pause. The discriminant is carried as a
   variant end to end — no string comparison anywhere. *)
type retry_cause = Backpressure | Transport of string

(* Raising [Retry] unwinds to the retry loop, which reconnects and
   resubmits — safe because submission is idempotent by digest. *)
exception Retry of retry_cause

(* A server-side chaos drop (or plain crash) between our write and its
   read turns into EPIPE on this end; as a signal it would kill the
   process before the retry loop ever saw the failure. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let connect socket =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let recv fd buf =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Wire.Frame.decode buf with
    | `Frame v -> v
    | `Corrupt -> raise (Retry (Transport "corrupt frame from server"))
    | `Need_more -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise (Retry (Transport "server closed the connection"))
        | n ->
            Wire.Frame.feed buf chunk n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* Open a session (connect + hello/welcome) and run [k fd buf] on it,
   mapping every [Unix_error] into [Retry] so the caller's retry loop
   sees one failure currency. *)
let with_session ~socket k =
  match
    let fd = connect socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Wire.Frame.create () in
        Wire.Frame.write fd
          (Wire.Hello { proto = Wire.proto_version; client = "serve_client" });
        match recv fd buf with
        | Wire.Welcome _ -> k fd buf
        | _ -> raise (Retry (Transport "unexpected greeting")))
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
      raise (Retry (Transport (Unix.error_message e)))

let submit_and_wait ?(attempts = 10) ?(patience_s = 600.) ?deadline_s ?progress
    ~socket spec =
  let give_up_at = Obs.Clock.now () +. patience_s in
  let attempt () =
    with_session ~socket (fun fd buf ->
        Wire.Frame.write fd (Wire.Submit { spec; deadline_s });
        let rec wait () =
          match recv fd buf with
          | Wire.Accepted _ -> wait ()
          | Wire.Progress { completed; total; _ } ->
              Option.iter (fun h -> h ~completed ~total) progress;
              wait ()
          | Wire.Result { ticket; csv; durable } -> Ok { ticket; csv; durable }
          | Wire.Failed { reason; _ } -> Error reason
          | Wire.Rejected { retryable = true; retry_after_s; _ } ->
              (* Backpressure is advice, not failure: sleep the server's
                 load-scaled hint and resubmit. Deliberately outside the
                 [attempts] budget — a busy server is healthy, only
                 [patience_s] bounds how long we defer to it. *)
              Unix.sleepf (Float.max 0.05 retry_after_s);
              raise (Retry Backpressure)
          | Wire.Rejected { retryable = false; reason; _ } ->
              Error
                (match reason with
                | Wire.Draining -> "server is draining"
                | Wire.Bad_spec e -> e
                | Wire.Queue_full -> "rejected: queue full"
                | Wire.Over_quota -> "rejected: over quota")
          | Wire.Welcome _ | Wire.Stats_reply _ | Wire.Draining_ack _ ->
              raise (Retry (Transport "unexpected response"))
        in
        wait ())
  in
  let rec go budget =
    if Obs.Clock.now () > give_up_at then
      Error (Fmt.str "gave up after %.0fs of patience" patience_s)
    else
      match attempt () with
      | r -> r
      | exception Retry Backpressure -> go budget
      | exception Retry (Transport reason) ->
          if budget - 1 <= 0 then Error ("gave up: " ^ reason)
          else begin
            Unix.sleepf 0.5;
            go (budget - 1)
          end
  in
  go attempts

let one_shot ~socket rq handle =
  match
    with_session ~socket (fun fd buf ->
        Wire.Frame.write fd rq;
        handle (recv fd buf))
  with
  | r -> r
  | exception Retry Backpressure -> Error "rejected: server saturated"
  | exception Retry (Transport reason) -> Error reason

let stats ~socket =
  one_shot ~socket Wire.Stats (function
    | Wire.Stats_reply { json } -> Ok json
    | _ -> Error "unexpected response to stats")

let drain ~socket =
  one_shot ~socket Wire.Drain (function
    | Wire.Draining_ack { settled; checkpointed } -> Ok (settled, checkpointed)
    | _ -> Error "unexpected response to drain")
