(** Client side of the campaign service (see client.mli). *)

type result = { ticket : int; csv : string; durable : bool }

(* A transport-level failure: the connection died, the stream corrupted,
   or the server answered something a fresh submission can fix. Raising
   it unwinds to the retry loop, which reconnects and resubmits — safe
   because submission is idempotent by digest. *)
exception Retry of string

(* A server-side chaos drop (or plain crash) between our write and its
   read turns into EPIPE on this end; as a signal it would kill the
   process before the retry loop ever saw the failure. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let connect socket =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let recv fd buf =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Wire.Frame.decode buf with
    | `Frame v -> v
    | `Corrupt -> raise (Retry "corrupt frame from server")
    | `Need_more -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise (Retry "server closed the connection")
        | n ->
            Wire.Frame.feed buf chunk n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* Open a session (connect + hello/welcome) and run [k fd buf] on it,
   mapping every [Unix_error] into [Retry] so the caller's retry loop
   sees one failure currency. *)
let with_session ~socket k =
  match
    let fd = connect socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Wire.Frame.create () in
        Wire.Frame.write fd
          (Wire.Hello { proto = Wire.proto_version; client = "serve_client" });
        match recv fd buf with
        | Wire.Welcome _ -> k fd buf
        | _ -> raise (Retry "unexpected greeting"))
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) -> raise (Retry (Unix.error_message e))

let submit_and_wait ?(attempts = 10) ?(patience_s = 600.) ?deadline_s ?progress
    ~socket spec =
  let give_up_at = Obs.Clock.now () +. patience_s in
  let attempt () =
    with_session ~socket (fun fd buf ->
        Wire.Frame.write fd (Wire.Submit { spec; deadline_s });
        let rec wait () =
          match recv fd buf with
          | Wire.Accepted _ -> wait ()
          | Wire.Progress { completed; total; _ } ->
              Option.iter (fun h -> h ~completed ~total) progress;
              wait ()
          | Wire.Result { ticket; csv; durable } -> Ok { ticket; csv; durable }
          | Wire.Failed { reason; _ } -> Error reason
          | Wire.Rejected
              { reason = Wire.Queue_full | Wire.Over_quota; retry_after_s } ->
              (* Backpressure is advice, not failure: sleep the server's
                 hint and resubmit. Deliberately outside the [attempts]
                 budget — a busy server is healthy, only [patience_s]
                 bounds how long we defer to it. *)
              Unix.sleepf (Float.max 0.05 retry_after_s);
              raise (Retry "backpressure")
          | Wire.Rejected { reason = Wire.Draining; _ } ->
              Error "server is draining"
          | Wire.Rejected { reason = Wire.Bad_spec e; _ } -> Error e
          | Wire.Welcome _ | Wire.Stats_reply _ | Wire.Draining_ack _ ->
              raise (Retry "unexpected response")
        in
        wait ())
  in
  let rec go budget =
    if Obs.Clock.now () > give_up_at then
      Error (Fmt.str "gave up after %.0fs of patience" patience_s)
    else
      match attempt () with
      | r -> r
      | exception Retry reason ->
          let budget =
            if reason = "backpressure" then budget else budget - 1
          in
          if budget <= 0 then Error ("gave up: " ^ reason)
          else begin
            if reason <> "backpressure" then Unix.sleepf 0.5;
            go budget
          end
  in
  go attempts

let one_shot ~socket rq handle =
  match
    with_session ~socket (fun fd buf ->
        Wire.Frame.write fd rq;
        handle (recv fd buf))
  with
  | r -> r
  | exception Retry reason -> Error reason

let stats ~socket =
  one_shot ~socket Wire.Stats (function
    | Wire.Stats_reply { json } -> Ok json
    | _ -> Error "unexpected response to stats")

let drain ~socket =
  one_shot ~socket Wire.Drain (function
    | Wire.Draining_ack { settled; checkpointed } -> Ok (settled, checkpointed)
    | _ -> Error "unexpected response to drain")
