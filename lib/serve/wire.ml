(** SRV1 wire protocol: message set and frame codec (see wire.mli). *)

let proto_version = 2

type spec = {
  seed : int;
  faults : string list;
  scenarios : int list;
  window : float option;
  retries : int;
}

type reject_reason =
  | Queue_full
  | Over_quota
  | Draining
  | Bad_spec of string

type request =
  | Hello of { proto : int; client : string }
  | Submit of { spec : spec; deadline_s : float option }
  | Cancel of { ticket : int }
  | Stats
  | Drain

type response =
  | Welcome of { proto : int; server : string }
  | Accepted of { ticket : int; position : int; cells : int }
  | Rejected of {
      reason : reject_reason;
      retryable : bool;
      retry_after_s : float;
    }
  | Progress of { ticket : int; completed : int; total : int }
  | Result of { ticket : int; csv : string; durable : bool }
  | Failed of { ticket : int; reason : string }
  | Stats_reply of { json : string }
  | Draining_ack of { settled : int; checkpointed : int }

(* Same codec shape as [Exec.Shard.Frame], with two deliberate
   differences: the magic ("SRV1") keeps a shard worker pipe and a
   service socket from ever decoding each other's streams, and payloads
   marshal WITHOUT [Closures] — the wire carries pure data only, so a
   client binary never needs to share code with the server. *)
module Frame = struct
  let magic = "SRV1"
  let header_len = 12

  (* A bit-flipped length field must surface as corruption, not as a
     multi-gigabyte allocation. *)
  let max_payload = 1 lsl 28

  type buf = { mutable data : Bytes.t; mutable len : int }

  let create () = { data = Bytes.create 65536; len = 0 }

  let feed b src n =
    if b.len + n > Bytes.length b.data then begin
      let cap = ref (Bytes.length b.data) in
      while b.len + n > !cap do
        cap := !cap * 2
      done;
      let data = Bytes.create !cap in
      Bytes.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    Bytes.blit src 0 b.data b.len n;
    b.len <- b.len + n

  let consume b n =
    Bytes.blit b.data n b.data 0 (b.len - n);
    b.len <- b.len - n

  let encode v =
    let payload = Marshal.to_string v [] in
    if String.length payload > max_payload then
      invalid_arg "Serve.Wire.Frame.encode: payload too large";
    let b = Buffer.create (header_len + String.length payload) in
    Buffer.add_string b magic;
    Buffer.add_int32_le b (Int32.of_int (String.length payload));
    Buffer.add_int32_le b (Exec.Crc32.digest payload);
    Buffer.add_string b payload;
    Buffer.contents b

  let decode b =
    if b.len < header_len then `Need_more
    else if Bytes.sub_string b.data 0 4 <> magic then `Corrupt
    else
      let len = Int32.to_int (Bytes.get_int32_le b.data 4) in
      let crc = Bytes.get_int32_le b.data 8 in
      if len < 0 || len > max_payload then `Corrupt
      else if b.len < header_len + len then `Need_more
      else begin
        let payload = Bytes.sub_string b.data header_len len in
        consume b (header_len + len);
        if Exec.Crc32.digest payload <> crc then `Corrupt
        else
          match Marshal.from_string payload 0 with
          | v -> `Frame v
          | exception _ -> `Corrupt
      end

  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let write fd v = write_all fd (encode v)
end
