(** Lightweight span tracing (see trace.mli). Completed spans go into a
    fixed ring buffer; the ring keeps the most recent [capacity] spans
    and counts what it dropped, so tracing a million-cell campaign costs
    bounded memory. *)

type span = {
  name : string;
  start_s : float;  (** monotonic ({!Clock.now}) start instant *)
  dur_s : float;
  depth : int;  (** nesting depth within the recording domain *)
  domain : int;  (** {!Domain.self} of the recording domain *)
}

let capacity = 2048

let ring : span option array = Array.make capacity None
let lock = Mutex.create ()
let next = ref 0
let total_ref = ref 0

(* Nesting depth is per domain: spans on different domains interleave in
   time but each domain's open spans form a proper stack. *)
let depth_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let record s =
  Mutex.lock lock;
  ring.(!next) <- Some s;
  next := (!next + 1) mod capacity;
  incr total_ref;
  Mutex.unlock lock

let span name f =
  let depth = Domain.DLS.get depth_key in
  Domain.DLS.set depth_key (depth + 1);
  let start_s = Clock.now () in
  let finish () =
    let dur_s = Clock.now () -. start_s in
    Domain.DLS.set depth_key depth;
    record
      { name; start_s; dur_s; depth; domain = (Domain.self () :> int) }
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let recent () =
  Mutex.lock lock;
  let n = !next in
  let out = ref [] in
  (* oldest → newest: walk the ring forward from the write position *)
  for i = 0 to capacity - 1 do
    match ring.((n + i) mod capacity) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  Mutex.unlock lock;
  List.rev !out

let total () =
  Mutex.lock lock;
  let t = !total_ref in
  Mutex.unlock lock;
  t

let reset () =
  Mutex.lock lock;
  Array.fill ring 0 capacity None;
  next := 0;
  total_ref := 0;
  Mutex.unlock lock
