(** Stable machine-readable telemetry snapshots (schema ["obs/1"]).

    One format serves every producer: the [--metrics PATH] flag on the
    CLIs dumps the registry and span ring at exit, and the bench harness
    writes [BENCH_<name>.json] with its time estimates under the
    ["bench"] field. {!validate} is the schema checker CI runs against
    both. See export.ml for the exact field layout. *)

val schema_version : string
(** ["obs/1"]. *)

val top_level_fields : string list
(** Snapshot field names, in emitted order. *)

val histogram_fields : string list
(** Histogram-summary field names, in emitted order. *)

val snapshot :
  ?name:string -> ?bench:(string * float) list -> unit -> Json.t
(** Assemble a snapshot of every registered metric and retained span.
    [name] labels the run ([null] when omitted); [bench] adds
    (name, estimated ns) pairs under ["bench"] (default: empty). *)

val to_json : ?name:string -> ?bench:(string * float) list -> unit -> string
(** {!snapshot} rendered as a compact JSON string. *)

val write_file :
  ?name:string -> ?bench:(string * float) list -> string -> unit
(** Write {!to_json} (newline-terminated) to a file. *)

val validate : Json.t -> (unit, string) result
(** Structural schema check: exact top-level field set and order,
    [schema = "obs/1"], integer non-negative counters, complete
    histogram summaries, well-formed span and bench entries. *)

val validate_string : string -> (unit, string) result
(** Parse then {!validate}. *)
