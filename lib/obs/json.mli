(** Minimal, dependency-free JSON — the snapshot wire format of
    {!Export} and the parser behind its schema validator.

    Deliberately small: numbers are floats, object field order is
    preserved (so emitted snapshots are deterministic and diffable), and
    the parser accepts standard JSON with basic [\u] escape decoding. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Non-finite numbers render as [null]. Integral
    floats of magnitude below 1e15 render without a fractional part. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on any other constructor. *)

val keys : t -> string list
(** Field names of an [Obj] in order; [[]] otherwise. *)

val to_float : t -> float option
(** The payload of a [Num]; [None] on any other constructor. *)

val to_str : t -> string option
(** The payload of a [Str]; [None] on any other constructor. *)

val to_list : t -> t list option
(** The payload of a [List]; [None] on any other constructor. *)
