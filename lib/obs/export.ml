(** Stable JSON snapshot of the metrics registry and span ring — the one
    machine-readable telemetry format shared by [--metrics PATH] on the
    CLIs and by [BENCH_<name>.json] from the bench harness (which adds
    its estimates under ["bench"]).

    Schema ["obs/1"], all fields always present, field order fixed:

    {v
    { "schema": "obs/1",
      "name": <string|null>,          // run label, e.g. "smoke"
      "created_unix": <number>,       // wall clock, provenance only
      "uptime_s": <number>,           // monotonic process uptime
      "counters":   { "<name>": <int>, ... },      // sorted by name
      "gauges":     { "<name>": <number>, ... },
      "histograms": { "<name>": { "count":…, "sum":…, "min":…, "max":…,
                                  "mean":…, "p50":…, "p95":… }, ... },
      "spans": [ { "name":…, "start_s":…, "dur_s":…,
                   "depth":…, "domain":… }, ... ], // oldest first
      "spans_dropped": <int>,         // overwritten by the ring
      "bench": [ { "name":…, "time_ns":… }, ... ] }
    v} *)

let schema_version = "obs/1"

let histogram_fields = [ "count"; "sum"; "min"; "max"; "mean"; "p50"; "p95" ]

let top_level_fields =
  [
    "schema";
    "name";
    "created_unix";
    "uptime_s";
    "counters";
    "gauges";
    "histograms";
    "spans";
    "spans_dropped";
    "bench";
  ]

let summary_json (s : Metrics.summary) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.Metrics.count));
      ("sum", Json.Num s.Metrics.sum);
      ("min", Json.Num s.Metrics.min);
      ("max", Json.Num s.Metrics.max);
      ("mean", Json.Num s.Metrics.mean);
      ("p50", Json.Num s.Metrics.p50);
      ("p95", Json.Num s.Metrics.p95);
    ]

let span_json (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("start_s", Json.Num s.Trace.start_s);
      ("dur_s", Json.Num s.Trace.dur_s);
      ("depth", Json.Num (float_of_int s.Trace.depth));
      ("domain", Json.Num (float_of_int s.Trace.domain));
    ]

let snapshot ?name ?(bench = []) () =
  let m = Metrics.snapshot () in
  let spans = Trace.recent () in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("name", match name with Some n -> Json.Str n | None -> Json.Null);
      ("created_unix", Json.Num (Unix.gettimeofday ()));
      ("uptime_s", Json.Num (Clock.uptime ()));
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.Num (float_of_int v)))
             m.Metrics.snap_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) m.Metrics.snap_gauges)
      );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, s) -> (n, summary_json s)) m.Metrics.snap_histograms)
      );
      ("spans", Json.List (List.map span_json spans));
      ( "spans_dropped",
        Json.Num (float_of_int (Trace.total () - List.length spans)) );
      ( "bench",
        Json.List
          (List.map
             (fun (n, time_ns) ->
               Json.Obj [ ("name", Json.Str n); ("time_ns", Json.Num time_ns) ])
             bench) );
    ]

let to_json ?name ?bench () = Json.to_string (snapshot ?name ?bench ())

let write_file ?name ?bench path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ?name ?bench ());
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let require_num ctx v =
  match Json.to_float v with
  | Some f -> Ok f
  | None -> fail "%s: expected a number" ctx

let require_int ctx v =
  let* f = require_num ctx v in
  if Float.is_integer f then Ok (int_of_float f)
  else fail "%s: expected an integer" ctx

let require_fields ctx expected j =
  match j with
  | Json.Obj _ ->
      let got = Json.keys j in
      if got = expected then Ok ()
      else
        fail "%s: fields [%s], expected [%s]" ctx (String.concat ";" got)
          (String.concat ";" expected)
  | _ -> fail "%s: expected an object" ctx

let validate_obj_of ctx check j =
  match j with
  | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* () = acc in
          check (Printf.sprintf "%s.%s" ctx k) v)
        (Ok ()) fields
  | _ -> fail "%s: expected an object" ctx

let validate_list_of ctx check j =
  match j with
  | Json.List items ->
      List.fold_left
        (fun (acc, i) v ->
          ( (let* () = acc in
             check (Printf.sprintf "%s[%d]" ctx i) v),
            i + 1 ))
        (Ok (), 0) items
      |> fst
  | _ -> fail "%s: expected a list" ctx

let validate_histogram ctx j =
  let* () = require_fields ctx histogram_fields j in
  validate_obj_of ctx (fun ctx v -> Result.map ignore (require_num ctx v)) j

let validate_span ctx j =
  let* () = require_fields ctx [ "name"; "start_s"; "dur_s"; "depth"; "domain" ] j in
  let field k = Option.get (Json.member k j) in
  let* _ =
    match Json.to_str (field "name") with
    | Some _ -> Ok ()
    | None -> fail "%s.name: expected a string" ctx
  in
  let* _ = require_num (ctx ^ ".start_s") (field "start_s") in
  let* _ = require_num (ctx ^ ".dur_s") (field "dur_s") in
  let* _ = require_int (ctx ^ ".depth") (field "depth") in
  let* _ = require_int (ctx ^ ".domain") (field "domain") in
  Ok ()

let validate_bench ctx j =
  let* () = require_fields ctx [ "name"; "time_ns" ] j in
  let field k = Option.get (Json.member k j) in
  let* _ =
    match Json.to_str (field "name") with
    | Some _ -> Ok ()
    | None -> fail "%s.name: expected a string" ctx
  in
  let* _ = require_num (ctx ^ ".time_ns") (field "time_ns") in
  Ok ()

let validate j =
  let* () = require_fields "snapshot" top_level_fields j in
  let field k = Option.get (Json.member k j) in
  let* () =
    match Json.to_str (field "schema") with
    | Some v when v = schema_version -> Ok ()
    | Some v -> fail "schema: %S, expected %S" v schema_version
    | None -> fail "schema: expected a string"
  in
  let* () =
    match field "name" with
    | Json.Str _ | Json.Null -> Ok ()
    | _ -> fail "name: expected a string or null"
  in
  let* _ = require_num "created_unix" (field "created_unix") in
  let* _ = require_num "uptime_s" (field "uptime_s") in
  let* () =
    validate_obj_of "counters"
      (fun ctx v ->
        let* n = require_int ctx v in
        if n >= 0 then Ok () else fail "%s: negative counter" ctx)
      (field "counters")
  in
  let* () =
    validate_obj_of "gauges"
      (fun ctx v -> Result.map ignore (require_num ctx v))
      (field "gauges")
  in
  let* () = validate_obj_of "histograms" validate_histogram (field "histograms") in
  let* () = validate_list_of "spans" validate_span (field "spans") in
  let* n = require_int "spans_dropped" (field "spans_dropped") in
  let* () = if n >= 0 then Ok () else fail "spans_dropped: negative" in
  validate_list_of "bench" validate_bench (field "bench")

let validate_string s =
  let* j = Json.of_string s in
  validate j
