/* Monotonic clock for Obs.Clock.

   The stdlib's Unix module only exposes gettimeofday, which is wall
   clock: an NTP step mid-run would skew every elapsed-time measurement
   (watchdog timeouts, bench numbers, span durations). CLOCK_MONOTONIC
   never steps, so durations computed from it are immune. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
