(** Monotonic time. All elapsed-time computation in this repository goes
    through here: [Unix.gettimeofday] is wall clock and steps under NTP
    adjustment, which would skew watchdog timeouts and bench numbers
    mid-run. The only legitimate remaining use of wall clock is
    provenance (timestamping a snapshot with the calendar date). *)

external monotonic_ns : unit -> int64 = "obs_monotonic_ns"

let now_ns = monotonic_ns

(** Seconds on the monotonic clock. The epoch is arbitrary (typically
    system boot): only differences are meaningful. *)
let now () = Int64.to_float (monotonic_ns ()) /. 1e9

let started = now ()

(** Seconds since this module was initialized, i.e. since process start
    for any binary linking obs. *)
let uptime () = now () -. started

(** [elapsed f] — run [f] and return its result with its monotonic
    duration in seconds. *)
let elapsed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
