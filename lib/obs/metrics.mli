(** Process-wide metrics registry: atomic counters, gauges, and windowed
    histograms with p50/p95/max.

    Metrics are registered by name on first use ([counter name] etc. is
    find-or-create, so call sites in different modules naming the same
    metric share one cell) and live for the whole process. The update
    paths are domain-safe: counters and gauges are [Atomic], histograms
    take a per-histogram mutex. One namespace covers all three kinds —
    re-registering a name as a different kind raises
    [Invalid_argument]. *)

type counter
(** A monotone integer counter (atomic increments). *)

type gauge
(** A last-write-wins float (atomic stores). *)

type histogram
(** Lifetime aggregates plus a bounded window of recent observations for
    quantiles (mutex-guarded). *)

type summary = {
  count : int;  (** lifetime observations *)
  sum : float;  (** lifetime sum *)
  min : float;  (** lifetime minimum (0 when empty) *)
  max : float;  (** lifetime maximum (0 when empty) *)
  mean : float;  (** lifetime mean (0 when empty) *)
  p50 : float;  (** median of the recent window (nearest rank) *)
  p95 : float;  (** 95th percentile of the recent window *)
}

val counter : string -> counter
(** Find-or-create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1, must be [>= 0]) to the counter. *)

val value : counter -> int
(** Current count. *)

val counter_name : counter -> string
(** The name the counter was registered under. *)

val gauge : string -> gauge
(** Find-or-create the gauge registered under this name. *)

val set : gauge -> float -> unit
(** Store a new value, replacing the previous one. *)

val get : gauge -> float
(** Last stored value (0 before the first {!set}). *)

val gauge_name : gauge -> string
(** The name the gauge was registered under. *)

val histogram : ?window:int -> string -> histogram
(** [window] (default 1024) bounds the number of recent observations
    retained for quantiles; [count]/[sum]/[min]/[max]/[mean] remain
    lifetime aggregates. The window only matters on first registration
    of [name]. *)

val observe : histogram -> float -> unit
(** Record one observation: updates the lifetime aggregates and pushes
    the value into the quantile window. *)

val summary : histogram -> summary
(** Current {!summary} (all zeros before the first observation). *)

val histogram_name : histogram -> string
(** The name the histogram was registered under. *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_gauges : (string * float) list;
  snap_histograms : (string * summary) list;
}

val snapshot : unit -> snapshot
(** Read every registered metric. Each metric is read consistently on
    its own; the snapshot is not a global atomic cut across metrics. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). Test helper —
    production snapshots are cumulative since process start. *)
