(** Minimal JSON: just enough to emit metric snapshots and validate them
    back, with no external dependency. The printer is deterministic
    (object fields keep their given order) so snapshots diff cleanly;
    the parser is a plain recursive descent accepting standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b f =
  if not (Float.is_finite f) then
    Buffer.add_string b "null" (* NaN / infinities are not JSON *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> add_num b f
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  add b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
            (if !pos >= n then fail "unterminated escape"
             else
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* decode to UTF-8 (surrogate pairs not recombined —
                      metric names are ASCII in practice) *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | _ -> fail "bad escape");
            go ()
        | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
