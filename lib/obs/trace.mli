(** Lightweight span tracing: [span "phase" f] times [f] on the
    monotonic clock and records a completed span — name, start, duration,
    per-domain nesting depth — into a process-wide ring buffer.

    The ring retains the most recent {!capacity} spans; older spans are
    overwritten (and counted, see {!total}), so instrumenting hot
    per-cell code is safe. Recording takes one mutex briefly; an
    exception from [f] still records the span and re-raises. *)

type span = {
  name : string;
  start_s : float;  (** monotonic start instant ({!Clock.now} scale) *)
  dur_s : float;  (** duration, seconds *)
  depth : int;  (** nesting depth within its domain (0 = outermost) *)
  domain : int;  (** recording domain's [Domain.self] *)
}

val capacity : int
(** Ring size: the number of most-recent spans retained. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] — run [f], record its span, return its result (spans
    nest: the depth of a span opened while another is running on the
    same domain is one deeper). *)

val recent : unit -> span list
(** Retained spans, oldest first. *)

val total : unit -> int
(** Lifetime count of recorded spans (retained + overwritten). *)

val reset : unit -> unit
(** Empty the ring and zero {!total}. Test helper — production snapshots
    retain the full ring. *)
