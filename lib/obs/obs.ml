(** Unified observability layer: a process-wide metrics registry
    ({!Metrics}), a monotonic clock ({!Clock}), span tracing ({!Trace},
    re-exported as {!span}), and stable JSON snapshots ({!Export}, with
    {!Json} as its dependency-free wire format).

    Everything here is passive until read: instrumented code updates
    atomics and ring buffers; nothing is written anywhere unless a
    consumer calls {!Export}. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Json = Json
module Export = Export

let span = Trace.span
