(** Monotonic-clock helper: NTP-step-immune elapsed time.

    Durations must never be computed from [Unix.gettimeofday] — wall
    clock steps under NTP adjustment. This module wraps
    [clock_gettime(CLOCK_MONOTONIC)] (via a local C stub; the stdlib
    [Unix] does not expose it). *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock (arbitrary epoch). *)

val now : unit -> float
(** Seconds on the monotonic clock (arbitrary epoch); only differences
    are meaningful. *)

val uptime : unit -> float
(** Seconds since process start (more precisely, since obs was
    initialized). *)

val elapsed : (unit -> 'a) -> 'a * float
(** [elapsed f] runs [f], returning its result and its duration in
    seconds. *)
