(** Process-wide metrics registry (see metrics.mli).

    Counters and gauges are lock-free ([Atomic]); histograms serialize
    their ring-buffer updates with a per-histogram mutex. Registration
    (name → metric) is serialized by one registry mutex and happens once
    per name — the hot paths touch only the returned handles. *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; level : float Atomic.t }

type histogram = {
  h_name : string;
  lock : Mutex.t;
  window : float array;  (** ring of the most recent observations *)
  mutable next : int;  (** ring write position *)
  mutable filled : int;  (** valid entries in [window] *)
  mutable count : int;  (** lifetime observations *)
  mutable sum : float;  (** lifetime sum *)
  mutable min_v : float;  (** lifetime minimum *)
  mutable max_v : float;  (** lifetime maximum *)
}

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* One namespace across all three kinds: a name re-registered as a
   different kind is a programming error and a confusing snapshot, so
   refuse it. *)
let check_free kind name =
  let taken k tbl = if Hashtbl.mem tbl name then Some k else None in
  let clash =
    match taken "counter" counters with
    | Some _ as c -> c
    | None -> (
        match taken "gauge" gauges with
        | Some _ as c -> c
        | None -> taken "histogram" histograms)
  in
  match clash with
  | Some k when k <> kind ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered as a %s" name k)
  | _ -> ()

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          check_free "counter" name;
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          check_free "gauge" name;
          let g = { g_name = name; level = Atomic.make 0. } in
          Hashtbl.add gauges name g;
          g)

let default_window = 1024

let histogram ?(window = default_window) name =
  if window < 1 then invalid_arg "Obs.Metrics.histogram: window must be >= 1";
  with_registry (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          check_free "histogram" name;
          let h =
            {
              h_name = name;
              lock = Mutex.create ();
              window = Array.make window 0.;
              next = 0;
              filled = 0;
              count = 0;
              sum = 0.;
              min_v = infinity;
              max_v = neg_infinity;
            }
          in
          Hashtbl.add histograms name h;
          h)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)
let value c = Atomic.get c.cell
let counter_name c = c.c_name

let set g v = Atomic.set g.level v
let get g = Atomic.get g.level
let gauge_name g = g.g_name

let observe h v =
  Mutex.lock h.lock;
  h.window.(h.next) <- v;
  h.next <- (h.next + 1) mod Array.length h.window;
  if h.filled < Array.length h.window then h.filled <- h.filled + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  Mutex.unlock h.lock

(** Nearest-rank quantile over the sorted recent window. *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.round (q *. float_of_int n +. 0.5)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let summary h =
  Mutex.lock h.lock;
  let recent = Array.sub h.window 0 h.filled in
  let s =
    {
      count = h.count;
      sum = h.sum;
      min = (if h.count = 0 then 0. else h.min_v);
      max = (if h.count = 0 then 0. else h.max_v);
      mean = (if h.count = 0 then 0. else h.sum /. float_of_int h.count);
      p50 = 0.;
      p95 = 0.;
    }
  in
  Mutex.unlock h.lock;
  Array.sort Float.compare recent;
  { s with p50 = quantile recent 0.50; p95 = quantile recent 0.95 }

let histogram_name h = h.h_name

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

let sorted_bindings tbl extract =
  Hashtbl.fold (fun name m acc -> (name, extract m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * summary) list;
}

let snapshot () =
  (* Take the name lists under the registry lock, then read each metric
     with its own synchronization — a snapshot is a consistent point per
     metric, not a global atomic cut. *)
  let cs, gs, hs =
    with_registry (fun () ->
        ( sorted_bindings counters Fun.id,
          sorted_bindings gauges Fun.id,
          sorted_bindings histograms Fun.id ))
  in
  {
    snap_counters = List.map (fun (n, c) -> (n, value c)) cs;
    snap_gauges = List.map (fun (n, g) -> (n, get g)) gs;
    snap_histograms = List.map (fun (n, h) -> (n, summary h)) hs;
  }

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.level 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.lock;
          h.next <- 0;
          h.filled <- 0;
          h.count <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity;
          Mutex.unlock h.lock)
        histograms)
