(** A fixed-size pool of OCaml 5 domains with fair-share batch
    scheduling.

    Tasks are submitted in batches ([map] / [try_map]); results are always
    returned in submission order, regardless of the order in which the
    domains complete them, so parallel execution is observationally
    deterministic for pure tasks. An exception raised by one task is
    captured per task and cannot take down the pool or the other tasks.

    Each batch holds its own {e lease} — a private job queue on a
    round-robin ring — so concurrent batches sharing one pool (e.g. two
    campaigns in the serve daemon) interleave at {e task} granularity: a
    worker takes one job from the head lease and rotates it to the back.
    A one-cell batch submitted while a hundred-cell batch is in flight
    runs at the next free worker instead of queuing behind the entire
    earlier batch. Per-batch [?abort] probes stay with their lease: one
    batch's cancellation never touches another's jobs.

    A pool of size 1 spawns no domains at all and executes every task
    inline on the caller — the sequential fallback for reproducibility
    debugging ([~domains:1]). *)

type t
(** A pool handle: a fixed set of worker domains plus their shared work
    queue. Values are created by {!create} (or {!default}) and remain
    usable until {!shutdown}. *)

type error = {
  index : int;  (** position of the failing task in the submitted batch *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
      (** captured at the raise site inside the worker domain and
          preserved across the domain boundary; [map] re-raises with it so
          the failure's origin is not replaced by the re-raise site *)
}

exception Timed_out of { limit_s : float; elapsed_s : float }
(** A task overran the [?timeout_s] watchdog; the payload carries both the
    configured limit and the elapsed monotonic time actually measured when
    the overrun was published (so post-mortems can tell a marginal overrun
    from a wedged task). Appears as the [exn] of an {!error} — never raised
    into a worker, and its {!error.backtrace} is deliberately empty (the
    watchdog publishes from outside the task, so any backtrace it could
    capture would name innocent frames). [elapsed_s >= limit_s] always
    holds; on the pooled path [elapsed_s] is the watchdog's poll-time
    measurement from the task's start (or from batch submission, for a
    task no worker ever started), on the sequential post-hoc path it is
    the task's full measured duration. *)

exception Reentrant_submission
(** A task attempted to submit a batch to the pool that is running it.
    Every worker of the pool may be blocked on the inner batch while the
    inner batch waits for a free worker — a deadlock — so the submission
    is refused up front. Raised by {!try_map_pool} / {!map_pool} (and the
    convenience wrappers when they resolve to the same pool) when called
    from one of the pool's own worker domains. *)

exception Aborted
(** The batch's [?abort] probe answered [true] before this task was
    started, so the task was never run; appears as the [exn] of an
    {!error} with a deliberately empty backtrace. Tasks already running
    when the probe flips are never preempted — they complete and publish
    normally — so an aborted batch settles as a mix of [Ok]/[Error]
    results for the work that ran and [Aborted] errors for the work that
    did not. *)

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns a pool of [domains] workers (default
    {!Domain.recommended_domain_count}, clamped to at least 1). *)

val size : t -> int
(** Number of workers the pool was created with (1 for the inline
    sequential pool). *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains. The pool
    must not be used afterwards. *)

val try_map_pool :
  ?timeout_s:float ->
  ?abort:(unit -> bool) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** Run [f] over every element on the pool; blocks until all tasks are
    done. Result [i] corresponds to input [i] (submission order). Tasks
    must not themselves submit work to the same pool: such a submission
    raises {!Reentrant_submission} (inside the offending task it is
    captured as that task's {!error}).

    [timeout_s] (default: none) arms a per-task monotonic-clock watchdog:
    a task past the limit yields [Error {exn = Timed_out _; _}] instead
    of hanging the batch. For a task a worker has started, the clock runs
    from its start; for a task still queued, it runs from the batch's
    last progress instant (a task start or completion, initially the
    submission) — so a long queue on a healthy pool never times out
    merely for waiting, yet a fully wedged pool (every worker stuck on a
    task that never returns) publishes [Timed_out] for the queued tasks
    and the batch returns within roughly the limit plus one poll
    interval. The overrunning task itself is not preempted — its worker
    stays occupied until the task returns, and its late result is
    dropped; an abandoned still-queued task is skipped outright when a
    worker eventually pops it. On the sequential paths (size-1 pool,
    [~domains:1]) nothing can run concurrently with a task, so the
    watchdog degrades to post-hoc detection: the task completes, then its
    result is replaced by [Timed_out] if it overran.

    [abort] (default: none) is a cooperative-cancellation probe, polled
    when a worker picks a task up (and, on the sequential paths, before
    each task runs): once it answers [true], every not-yet-started task
    settles as [Error {exn = Aborted; _}] instead of running, while tasks
    already in flight complete normally. The probe must be fast and
    non-blocking — it is called under the pool lock; an [Atomic.get] is
    the intended shape. *)

val map_pool : ?timeout_s:float -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!try_map_pool} but re-raises the first (lowest-index) task
    failure — with the backtrace captured in the worker — after every task
    has finished. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with the default
    size. *)

val with_transient : domains:int -> (t -> 'a) -> 'a
(** [with_transient ~domains f] — run [f] on a transient pool of
    [domains] workers, shutting the pool down (also on exception) before
    returning. *)

val try_map :
  ?domains:int ->
  ?timeout_s:float ->
  ?abort:(unit -> bool) ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** Convenience front-end: [~domains:1] runs inline sequentially;
    [~domains:n] runs on a transient pool of [n] workers that is shut
    down before returning; omitting [domains] uses the shared
    {!default} pool. [timeout_s] and [abort] as in {!try_map_pool}. *)

val map : ?domains:int -> ?timeout_s:float -> ('a -> 'b) -> 'a list -> 'b list
(** Same dispatch as {!try_map}, re-raising the first task failure. *)
