(** Supervised batch execution: retry with exponential backoff and
    quarantine on top of {!Pool}.

    A batch run through the supervisor degrades gracefully instead of
    aborting: a task that fails a retryable way is re-submitted (with the
    rest of that round's failures) after a jittered exponential backoff,
    up to [max_attempts] total attempts; a task that keeps failing — or
    fails a non-retryable way — ends in the {!Quarantined} terminal state
    carrying its last error, while every other task's result is kept.

    Backoff jitter is drawn from {!Inject.Prng} seeded by the policy, so a
    supervised run's delay schedule is deterministic for a given policy —
    the same reproducibility contract as the fault-injection campaigns the
    supervisor protects. *)

type policy = {
  max_attempts : int;  (** total attempts per task, [>= 1] *)
  base_delay_s : float;  (** backoff before the first retry *)
  max_delay_s : float;  (** cap on the exponential growth *)
  jitter : float;
      (** fraction in [\[0, 1\]]: each delay is scaled by a factor drawn
          uniformly from [1 - jitter, 1 + jitter] *)
  seed : int;  (** seeds the jitter PRNG ({!Inject.Prng.derive}) *)
  retry_on : exn -> bool;
      (** failures worth re-attempting; a failure rejected here
          quarantines its task immediately *)
}

val default_policy : policy
(** 3 attempts, 50 ms base delay doubling up to 1 s, ±25% jitter, seed 0,
    retry on everything except {!Pool.Reentrant_submission} (a re-entrant
    submission is a programming error that no retry can fix). *)

val policy :
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?jitter:float ->
  ?seed:int ->
  ?retry_on:(exn -> bool) ->
  unit ->
  policy
(** {!default_policy} with overrides. *)

val backoff_delay : policy -> attempt:int -> float
(** [backoff_delay p ~attempt] — the delay slept after [attempt] failed
    attempts (so [~attempt:1] precedes the first retry):
    [base_delay_s * 2^(attempt-1)], capped at [max_delay_s], scaled by the
    jitter factor for that attempt. Pure and deterministic in
    [(p.seed, attempt)].

    A delay of exactly [0.] (e.g. any policy with [base_delay_s = 0.]) is
    a fast path: the supervisor neither sleeps nor records a
    [supervise.backoff_s] histogram sample, so zero-delay retry policies —
    used by crash-recovery tests and by {!Shard}'s deferred requeues — cost
    no wall-clock time. *)

type 'a status =
  | Done of 'a  (** completed, possibly after retries *)
  | Quarantined of Pool.error
      (** terminal: last error after exhausting attempts (or failing a
          non-retryable way); [error.index] is the task's position in the
          original batch *)

type 'a report = { status : 'a status; attempts : int }
(** [attempts] is the number of attempts actually made ([>= 1]). *)

type stats = {
  tasks : int;
  retried : int;  (** tasks that needed more than one attempt *)
  retries : int;  (** total extra attempts across the batch *)
  quarantined : int;  (** tasks that ended {!Quarantined} *)
}

val stats : 'a report list -> stats
(** [stats reports] folds a settled batch into its retry/quarantine
    totals — the summary surfaced as campaign "robustness" counts. *)

val try_map_pool :
  ?timeout_s:float ->
  ?abort:(unit -> bool) ->
  ?policy:policy ->
  ?on_result:(int -> 'b -> unit) ->
  Pool.t ->
  ('a -> 'b) ->
  'a list ->
  'b report list
(** {!Pool.try_map_pool} under supervision: report [i] corresponds to
    input [i] (submission order). Each retry round re-submits only the
    still-failing tasks, as one batch, after a single backoff sleep.
    [on_result i v] fires once per task that settles [Done v], with the
    task's position in the original batch — the same settle hook
    {!Shard.try_map} exposes, so callers that stream results somewhere
    durable (the campaign journal) behave identically whether a batch
    runs sharded or falls back in-process. It is {e not} called for
    quarantined tasks.

    [abort] as in {!Pool.try_map_pool}, with one supervision-specific
    rule: a task settled as {!Pool.Aborted} is never retried — it
    quarantines immediately regardless of [policy.retry_on], because the
    abort is the caller cancelling the batch, not a transient fault. *)

val try_map :
  ?domains:int ->
  ?timeout_s:float ->
  ?abort:(unit -> bool) ->
  ?policy:policy ->
  ?on_result:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b report list
(** Same dispatch as {!Pool.try_map} ([~domains:1] sequential, [~domains:n]
    transient pool, default shared pool), supervised. [on_result] as in
    {!try_map_pool}. *)

val map :
  ?domains:int ->
  ?timeout_s:float ->
  ?policy:policy ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Like {!try_map} but re-raises the first (lowest-index) quarantined
    task's error — with the backtrace captured in the worker — after the
    whole batch has settled. *)
