(* CRC-32 (IEEE 802.3, reflected, as used by gzip/zlib). Shared by the
   framed binary protocols in this repo: the scenario journal ("SJL1"
   records) and the shard coordinator/worker pipe ("SHD1" frames). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl
