type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  inflight : ('k, unit) Hashtbl.t;
      (** keys whose supplier is currently running in some domain *)
  order : 'k Queue.t;  (** insertion order, for FIFO eviction *)
  capacity : int option;
  lock : Mutex.t;
  settled : Condition.t;  (** an in-flight computation finished (or failed) *)
  counters : (Obs.Metrics.counter * Obs.Metrics.counter * Obs.Metrics.counter) option;
      (** optional (hits, misses, evictions) exported to the obs registry *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(size = 64) ?capacity ?name () =
  let capacity =
    match capacity with
    | Some c when c < 1 -> invalid_arg "Memo.create: capacity must be >= 1"
    | c -> c
  in
  {
    table = Hashtbl.create size;
    inflight = Hashtbl.create 8;
    order = Queue.create ();
    capacity;
    lock = Mutex.create ();
    settled = Condition.create ();
    counters =
      Option.map
        (fun n ->
          ( Obs.Metrics.counter ("cache." ^ n ^ ".hits"),
            Obs.Metrics.counter ("cache." ^ n ^ ".misses"),
            Obs.Metrics.counter ("cache." ^ n ^ ".evictions") ))
        name;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Caller holds the lock. Every key in [order] is in [table] exactly once
   (keys are only added when absent, and eviction removes both together),
   so popping the queue always names a live entry. In-flight keys are not
   in [table] yet and never count against the capacity. *)
let enforce_capacity t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.table > cap do
        let oldest = Queue.pop t.order in
        Hashtbl.remove t.table oldest;
        t.evictions <- t.evictions + 1;
        Option.iter (fun (_, _, e) -> Obs.Metrics.incr e) t.counters
      done

let record_hit (t : (_, _) t) =
  t.hits <- t.hits + 1;
  Option.iter (fun (h, _, _) -> Obs.Metrics.incr h) t.counters

let record_miss (t : (_, _) t) =
  t.misses <- t.misses + 1;
  Option.iter (fun (_, m, _) -> Obs.Metrics.incr m) t.counters

(* Single-flight: the first domain to miss a key runs the supplier; a
   domain finding the same key in flight waits for that computation and
   then serves the freshly inserted value as a hit — exactly the counters
   a sequential interleaving of the same lookups would produce, and no
   duplicated supplier work. If the winner's supplier raises, the waiters
   are woken and race to become the next winner (each such retry is that
   caller's one recorded miss). *)
let find_or_add t key supply =
  Mutex.lock t.lock;
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some v ->
        record_hit t;
        Mutex.unlock t.lock;
        Some v
    | None ->
        if Hashtbl.mem t.inflight key then begin
          Condition.wait t.settled t.lock;
          await ()
        end
        else None
  in
  match await () with
  | Some v -> v
  | None ->
      record_miss t;
      Hashtbl.add t.inflight key ();
      Mutex.unlock t.lock;
      (* compute outside the lock so distinct cold keys fill in parallel *)
      (match supply () with
      | v ->
          Mutex.lock t.lock;
          Hashtbl.remove t.inflight key;
          (* [clear] may have run while computing; insertion is still
             correct — the entry is simply the first of the new epoch. *)
          Hashtbl.add t.table key v;
          Queue.push key t.order;
          enforce_capacity t;
          Condition.broadcast t.settled;
          Mutex.unlock t.lock;
          v
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.lock;
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.settled;
          Mutex.unlock t.lock;
          Printexc.raise_with_backtrace exn bt)

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
  Mutex.unlock t.lock;
  s

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.Closures ]))
