type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  order : 'k Queue.t;  (** insertion order, for FIFO eviction *)
  capacity : int option;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(size = 64) ?capacity () =
  let capacity =
    match capacity with
    | Some c when c < 1 -> invalid_arg "Memo.create: capacity must be >= 1"
    | c -> c
  in
  {
    table = Hashtbl.create size;
    order = Queue.create ();
    capacity;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Caller holds the lock. Every key in [order] is in [table] exactly once
   (keys are only added when absent, and eviction removes both together),
   so popping the queue always names a live entry. *)
let enforce_capacity t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.table > cap do
        let oldest = Queue.pop t.order in
        Hashtbl.remove t.table oldest;
        t.evictions <- t.evictions + 1
      done

let find_or_add t key supply =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      (* compute outside the lock so distinct cold keys fill in parallel *)
      let v = supply () in
      Mutex.lock t.lock;
      let v =
        match Hashtbl.find_opt t.table key with
        | Some winner -> winner (* a racing domain filled it first; share *)
        | None ->
            Hashtbl.add t.table key v;
            Queue.push key t.order;
            enforce_capacity t;
            v
      in
      Mutex.unlock t.lock;
      v

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
  Mutex.unlock t.lock;
  s

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.Closures ]))
