type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int }

let create ?(size = 64) () =
  { table = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let find_or_add t key supply =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      (* compute outside the lock so distinct cold keys fill in parallel *)
      let v = supply () in
      Mutex.lock t.lock;
      let v =
        match Hashtbl.find_opt t.table key with
        | Some winner -> winner (* a racing domain filled it first; share *)
        | None ->
            Hashtbl.add t.table key v;
            v
      in
      Mutex.unlock t.lock;
      v

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses } in
  Mutex.unlock t.lock;
  s

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.Closures ]))
