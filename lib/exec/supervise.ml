(** Supervised batch execution: retry with jittered exponential backoff
    around {!Pool}, quarantining tasks that keep failing so one poisoned
    cell degrades the batch instead of aborting it. *)

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
  seed : int;
  retry_on : exn -> bool;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay_s = 0.05;
    max_delay_s = 1.0;
    jitter = 0.25;
    seed = 0;
    retry_on = (function Pool.Reentrant_submission -> false | _ -> true);
  }

let policy ?(max_attempts = default_policy.max_attempts)
    ?(base_delay_s = default_policy.base_delay_s)
    ?(max_delay_s = default_policy.max_delay_s)
    ?(jitter = default_policy.jitter) ?(seed = default_policy.seed)
    ?(retry_on = default_policy.retry_on) () =
  if max_attempts < 1 then invalid_arg "Supervise.policy: max_attempts < 1";
  if jitter < 0. || jitter > 1. then
    invalid_arg "Supervise.policy: jitter outside [0, 1]";
  { max_attempts; base_delay_s; max_delay_s; jitter; seed; retry_on }

let backoff_delay p ~attempt =
  let expo =
    Float.min p.max_delay_s
      (p.base_delay_s *. Float.pow 2. (float_of_int (attempt - 1)))
  in
  (* One private generator per attempt, derived from the policy seed: the
     schedule is a pure function of (seed, attempt), never of how many
     draws earlier rounds consumed. *)
  let u = Inject.Prng.float (Inject.Prng.create (Inject.Prng.derive p.seed attempt)) in
  Float.max 0. (expo *. (1. +. (p.jitter *. ((2. *. u) -. 1.))))

type 'a status = Done of 'a | Quarantined of Pool.error
type 'a report = { status : 'a status; attempts : int }

(* Telemetry: attempts counts every task execution (first tries and
   retries alike), retries only the extra rounds, and backoff_s records
   each inter-round sleep actually performed. *)
let m_attempts = Obs.Metrics.counter "supervise.attempts"
let m_retries = Obs.Metrics.counter "supervise.retries"
let m_quarantined = Obs.Metrics.counter "supervise.quarantined"
let h_backoff = Obs.Metrics.histogram "supervise.backoff_s"

type stats = { tasks : int; retried : int; retries : int; quarantined : int }

let stats reports =
  List.fold_left
    (fun acc r ->
      {
        tasks = acc.tasks + 1;
        retried = (acc.retried + if r.attempts > 1 then 1 else 0);
        retries = acc.retries + r.attempts - 1;
        quarantined =
          (acc.quarantined
          + match r.status with Quarantined _ -> 1 | Done _ -> 0);
      })
    { tasks = 0; retried = 0; retries = 0; quarantined = 0 }
    reports

(** The supervision loop over an arbitrary batch runner ([Pool.try_map_pool]
    or [Pool.try_map]), so every dispatch mode shares one implementation.
    Each round runs the still-pending tasks as a single batch; failures the
    policy deems retryable survive to the next round, everything else
    settles. [Pool.error.index] is rewritten from the round-local position
    back to the task's position in the original batch. [on_result] fires
    once per task that settles [Done], with its original batch index — the
    hook {!Shard}'s coordinator exposes for journaling, available here so
    an in-process fallback run journals identically. *)
let supervise ?on_result p run_batch f xs =
  let n = List.length xs in
  let reports = Array.make n None in
  let rec go attempt pending =
    Obs.Metrics.incr ~by:(List.length pending) m_attempts;
    if attempt > 1 then Obs.Metrics.incr ~by:(List.length pending) m_retries;
    let results = run_batch f (List.map snd pending) in
    let failed =
      List.concat
        (List.map2
           (fun (i, x) r ->
             match r with
             | Ok v ->
                 reports.(i) <- Some { status = Done v; attempts = attempt };
                 Option.iter (fun g -> g i v) on_result;
                 []
             | Error (e : Pool.error) ->
                 (* [Aborted] is the caller cancelling the batch — a retry
                    would resurrect work the caller just asked to stop, so
                    it quarantines regardless of the policy. *)
                 let retryable =
                   match e.Pool.exn with
                   | Pool.Aborted -> false
                   | exn -> p.retry_on exn
                 in
                 if attempt < p.max_attempts && retryable then
                   [ (i, x) ]
                 else begin
                   Obs.Metrics.incr m_quarantined;
                   reports.(i) <-
                     Some
                       {
                         status = Quarantined { e with Pool.index = i };
                         attempts = attempt;
                       };
                   []
                 end)
           pending results)
    in
    if failed <> [] then begin
      let delay = backoff_delay p ~attempt in
      (* Zero-delay fast path: a policy with [base_delay_s = 0.] retries
         immediately. Skipping the sleep *and* the histogram sample keeps
         crash-recovery tests free of wall-clock waits without recording
         sleeps that never happened. *)
      if delay > 0. then begin
        Obs.Metrics.observe h_backoff delay;
        Unix.sleepf delay
      end;
      go (attempt + 1) failed
    end
  in
  if n > 0 then go 1 (List.mapi (fun i x -> (i, x)) xs);
  Array.to_list (Array.map Option.get reports)

let try_map_pool ?timeout_s ?abort ?(policy = default_policy) ?on_result pool
    f xs =
  supervise ?on_result policy (Pool.try_map_pool ?timeout_s ?abort pool) f xs

let try_map ?domains ?timeout_s ?abort ?(policy = default_policy) ?on_result f
    xs =
  match domains with
  | Some n when n > 1 ->
      (* One transient pool for the whole supervised run — not one per
         retry round, which would re-spawn domains on every backoff. *)
      Pool.with_transient ~domains:n (fun pool ->
          try_map_pool ?timeout_s ?abort ~policy ?on_result pool f xs)
  | _ ->
      supervise ?on_result policy (Pool.try_map ?domains ?timeout_s ?abort) f
        xs

let map ?domains ?timeout_s ?policy f xs =
  List.map
    (fun r ->
      match r.status with
      | Done v -> v
      | Quarantined e -> Printexc.raise_with_backtrace e.Pool.exn e.Pool.backtrace)
    (try_map ?domains ?timeout_s ?policy f xs)
