(** Multi-process sharded batch execution with crash isolation.

    {!Pool} parallelises a batch across domains of one process, so a
    single segfault, OOM kill, or runaway C stub still takes down the
    whole grid. A shard run splits the batch across [N] worker
    {e processes} instead — independently failing, independently
    restartable components beneath the supervision/journal layers. The
    coordinator (the calling process) keeps all orchestration state: it
    assigns chunks of tasks to workers, collects results, detects worker
    death, requeues the dead worker's in-flight tasks, and respawns the
    worker up to a restart budget. Worker processes only ever compute.

    {1 Mechanism}

    OCaml 5 forbids [Unix.fork] once a domain has been spawned (and the
    restriction is permanent for the process), so workers are started by
    {e re-executing the current binary} ([Sys.executable_name]) with a
    marker environment variable set. Host executables must therefore call
    {!init} first thing in [main]: in the coordinator it is a no-op; in a
    freshly spawned worker it never returns — the process serves task
    frames and exits. Because workers run the same binary, closures
    marshalled with [Marshal.Closures] (the task function, its captured
    environment, and task values) transfer verbatim.

    {1 Warm fleets}

    Workers are {e resident}: the first run with a given
    [(fleet, shards, domains)] shape spawns that fleet, and the fleet then
    stays warm across [try_map] calls until {!shutdown_fleets} or process
    exit. The [fleet] label (default ["" ]) names an independent fleet:
    a worker serves exactly one bound job at a time, so concurrent
    coordinator domains (e.g. the serve daemon's executor lanes) each use
    their own label to get disjoint worker processes — a fleet-share
    partition of the machine — instead of racing one fleet's sockets.
    The registry itself is mutex-guarded, so concurrent [try_map] calls
    on {e different} labels are safe; concurrent calls on the {e same}
    label are not (one coordinator per fleet).
    A worker keeps its domain pool and any process-lifetime caches its
    tasks populate, so a campaign pays the spawn + handshake cost once,
    not once per batch of cells. Each call binds a fresh {e job} on the
    fleet: the task closure is marshalled once per worker per job, each
    task value once per job (the digested bytes are reused verbatim when
    a crash requeues the cell), and cells travel many-to-a-frame —
    [batch] cells per assignment (the [shard.batch_size] histogram
    records the actual sizes). A slot that exhausted its restart budget
    in one job is respawned, with a fresh budget, at the start of the
    next.

    Coordinator and worker speak over a [socketpair] using length-prefixed
    CRC-guarded binary frames (magic ["SHD1"] | length | {!Crc32} |
    [Marshal] payload — the same record discipline as the scenario
    journal). A torn frame (worker died mid-write) or corrupt frame (CRC
    mismatch) is dropped, the worker is declared dead, and its in-flight
    tasks are requeued; tasks are never lost and never double-settled.
    Every death path — crash, corrupt stream, restart-budget exhaustion,
    a coordinator exception escaping mid-settle — closes the worker's
    pipe descriptor and reaps the child before anything else happens, so
    neither descriptors nor zombies accumulate across jobs.

    {1 Liveness}

    A dead worker announces itself (EOF on its pipe), but a {e wedged}
    one — SIGSTOP, an open-pipe hang, a deadlocked C stub — does not,
    and before heartbeats it would stall the coordinator's [select]
    forever. While a worker holds a batch, a dedicated heartbeat domain
    inside it writes one [Heartbeat] frame per interval (0.2 s), sharing
    a write lock with result frames so the two never interleave. The
    coordinator tracks the instant it last heard from each busy worker
    (any bytes: results or heartbeats) and declares it hung when the
    silence exceeds [hang_timeout_s]; an optional per-batch [deadline_s]
    additionally bounds total batch duration, catching a task that
    busy-loops while its process stays healthy enough to heartbeat. A
    hung worker is SIGKILLed and treated exactly like a crash: cells
    requeued, respawn under the restart budget, [shard.hangs_detected]
    incremented. A merely slow worker keeps heartbeating and is never
    killed by [hang_timeout_s].

    {1 Graceful degradation}

    A spawn failure (the injected [spawn] fault, or a genuine
    [create_process] error) never aborts the run: the slot stays down
    and is counted in [shard.spawn_failures], and the remaining workers
    absorb the batch. If {e no} worker at all comes up at job start, the
    run falls back to an in-process {!Supervise.try_map} on a domain
    pool — same retry policy, same [on_result] settle hook, bit-for-bit
    the same reports — and counts [shard.fallbacks].

    {1 Determinism}

    Results are reported in submission order, like {!Pool} and
    {!Supervise}: report [i] always corresponds to input [i], regardless
    of the number of shards, chunk interleaving, worker crashes, or
    respawns. A crash costs only recomputation of the in-flight chunk.

    {1 Telemetry}

    A run maintains [shard.workers] (gauge: live workers),
    [shard.respawns], [shard.frames_sent] / [shard.frames_recv] /
    [shard.frames_dropped], [shard.cells_requeued],
    [shard.hangs_detected] (workers killed by the liveness sweep),
    [shard.heartbeats] (heartbeat frames received),
    [shard.spawn_failures], [shard.fallbacks] (counters), a
    [shard.frame_roundtrip_s] histogram (assign sent to result received,
    per batch member), a [shard.batch_size] histogram (cells per
    assignment frame), and per-worker [shard.worker<slot>.utilization]
    gauges (busy fraction of the run's wall time, set when the run
    settles; a labelled fleet's gauges are
    [shard.<label>.worker<slot>.utilization] so concurrent lanes do not
    clobber each other).

    The first shard run in a process sets [SIGPIPE] to ignore, so writes
    to a just-died worker surface as [EPIPE] (handled as worker death)
    rather than killing the coordinator, and registers an [at_exit] hook
    that shuts every resident fleet down. *)

exception Worker_failure of { printed : string; trace : string }
(** A task raised inside a worker process. Exceptions cannot travel
    between processes as values (an unmarshalled exception constructor no
    longer matches its own identity), so the worker ships the printed
    exception ([Printexc.to_string]) and its backtrace text instead.
    Carried in {!Supervise.Quarantined} when retry policy is exhausted. *)

exception Worker_crashed of { slot : int }
(** Terminal status for tasks that could not be settled because every
    worker died and the restart budget ran out. [slot] is the shard slot
    that died last holding the task ([-1] when it was never assigned). *)

type havoc = Chaos.fault =
  | Torn_frame
  | Corrupt_frame
  | Hang
  | Crash
  | Slow of float
      (** Test/CI-only worker-fault injection (= {!Chaos.fault}),
          performed {e inside the worker} once its batch has computed:
          [Torn_frame] writes a partial frame then exits (death
          mid-write, taking the batch's remaining results with it);
          [Corrupt_frame] flips a payload byte so the frame fails its
          CRC, then keeps running; [Hang] stops heartbeating and holds
          the pipe open forever (recoverable only through the hang
          deadline); [Crash] exits without writing anything; [Slow d]
          sleeps [d] seconds {e while heartbeating}, then delivers
          intact results — the fault that must {e not} trip hang
          detection. All must be recovered from by the coordinator
          without losing a task. The hook is consulted per batch
          assignment as [havoc ~slot ~seq], where [seq] is the
          {e job-global} batch sequence number (1-based, across all
          slots and respawns within one [try_map] call) — so an
          injection keyed on one [seq] fires exactly once and the
          respawned worker replays the work cleanly. Derive the hook
          from a seeded plan with {!Chaos.worker_fault}. *)

(** The frame codec, exposed for direct unit testing. A frame is
    ["SHD1" | len : u32le | crc : u32le | payload], where [payload] is
    [Marshal.to_string v [Closures]] and [crc] its {!Crc32.digest}. *)
module Frame : sig
  type buf
  (** A growable reassembly buffer for one pipe's byte stream. *)

  val create : unit -> buf
  (** A fresh, empty buffer. *)

  val feed : buf -> bytes -> int -> unit
  (** [feed buf chunk n] appends the first [n] bytes of [chunk] — as read
      from the pipe — to the buffer. *)

  val encode : 'a -> string
  (** [encode v] is the complete frame carrying [v]. *)

  val decode : buf -> [ `Frame of 'a | `Need_more | `Corrupt ]
  (** [decode buf] consumes and returns the first complete frame in the
      buffer. [`Need_more] means the buffer holds only a frame prefix
      (more bytes must be fed — or, on EOF, the tail is torn); [`Corrupt]
      means the stream is unrecoverable at this position (bad magic,
      absurd length, CRC mismatch, or unmarshalable payload). The type of
      the decoded value is the caller's claim, exactly as with
      [Marshal.from_string]. *)
end

val init : unit -> unit
(** Worker-mode intercept. Call first thing in [main] of every
    executable that runs sharded batches (directly or through
    [Scenarios.Campaign] / [Scenarios.Runner]).

    In an ordinary process this returns immediately. In a process
    spawned by a shard coordinator (recognised by the marker environment
    variable) it never returns: the process serves its assigned frames
    on the inherited socketpair and exits. An executable that skips
    {!init} still computes correct sharded results — but each "worker"
    would rerun that executable's [main] instead, typically rerunning
    the whole program per worker. *)

val in_worker : unit -> bool
(** Whether this process is a shard worker. Mostly useful for
    diagnostics; user code never observes it as [true] except from
    inside a task function. *)

val warm : ?fleet:string -> ?shards:int -> ?domains:int -> unit -> unit
(** [warm ~fleet ~shards ~domains ()] spawns (or completes) the resident
    fleet for that shape without running any tasks, so a subsequent
    [try_map] — or a benchmark timing one — pays no spawn cost.
    Parameter defaults match {!try_map}.

    @raise Invalid_argument when called from inside a shard worker. *)

val shutdown_fleets : unit -> unit
(** Tear down every resident fleet: close each worker's pipe descriptor,
    kill and reap the process. Idempotent; also registered [at_exit] by
    the first shard run. Subsequent runs simply respawn. *)

val try_map :
  ?fleet:string ->
  ?shards:int ->
  ?domains:int ->
  ?restarts:int ->
  ?batch:int ->
  ?policy:Supervise.policy ->
  ?on_result:(int -> 'b -> unit) ->
  ?abort:(unit -> bool) ->
  ?havoc:(slot:int -> seq:int -> havoc option) ->
  ?spawn_fault:(attempt:int -> bool) ->
  ?hang_timeout_s:float ->
  ?deadline_s:float ->
  ('a -> 'b) ->
  'a list ->
  'b Supervise.report list
(** [try_map f xs] runs [f] over [xs] across the resident worker fleet
    and reports in submission order (report [i] corresponds to input
    [i]).

    - [fleet] — resident-fleet label (default [""], the anonymous
      fleet). Distinct labels get disjoint worker processes; see
      {e Warm fleets} above. Pick a per-lane label when several
      coordinator domains run [try_map] concurrently.
    - [shards] — worker process count (default: recommended domain count
      divided by [domains], at least 1).
    - [domains] — domains {e per worker}: each worker builds its own
      {!Pool} of that size and runs each batch on it (default 1, i.e.
      sequential workers).
    - [restarts] — how many times each slot may be respawned after a
      crash (default 2), counted per call. A slot that exhausts its
      budget stays down for the rest of the call (the next call respawns
      it with a fresh budget); if every slot is down, unsettled tasks
      are quarantined with {!Worker_crashed}.
    - [batch] — cells per assignment frame (default: enough for four
      waves per worker, [max domains (ceil n / (shards * 4))]). Larger
      batches amortize frame and scheduling overhead; smaller ones
      load-balance better and lose less work per crash.
    - [policy] — {!Supervise} retry policy for {e task} failures
      (a task that raised in a healthy worker). Failed tasks are requeued
      after the policy's {!Supervise.backoff_delay} — deferred on the
      coordinator's clock, never slept — until [max_attempts] is reached,
      then quarantined carrying {!Worker_failure}. Default:
      {!Supervise.default_policy}. Worker {e crashes} are not charged
      against the policy: a requeue after a crash is bounded by
      [restarts], so a single-attempt policy still recovers from
      SIGKILL.
    - [on_result] — called in the coordinator as [on_result i v] the
      moment input [i] settles as [Done v] (settle order, not submission
      order). This is the journal hook: results flow back to the
      coordinator's journal, keeping resume byte-identical.
    - [abort] — cooperative-cancellation probe, polled once per
      coordinator loop turn (so within about a second even when idle).
      Once it answers [true], workers holding cells are killed (their
      in-flight compute is abandoned; slots respawn at the next call) and
      every unsettled task quarantines as {!Pool.Aborted} — already
      settled results are kept, and [on_result] has already fired for
      them, so a journaled campaign resumes exactly past the abort point.
    - [havoc] — test/CI-only worker-fault injection, see {!havoc}.
    - [spawn_fault] — test/CI-only spawn-failure injection, consulted
      once per spawn attempt (1-based across the call, initial fleet
      completion and respawns alike); [true] makes that attempt fail.
      Derive from a plan with {!Chaos.spawn_fault}. Genuine spawn
      errors take the same degradation path.
    - [hang_timeout_s] — declare a busy worker hung after this much
      silence (default 30 s; heartbeats every 0.2 s keep a healthy
      worker far inside it). See {e Liveness} above.
    - [deadline_s] — optional hard bound on one batch's in-flight time,
      catching busy-looping tasks that keep heartbeating. Off by
      default: a deadline kills {e slow but correct} batches, so pick
      one only when an upper bound on batch duration is really known.

    The report's [attempts] counts dispatches of the task to a worker
    (so a crash requeue increments it even though the policy is not
    charged).

    @raise Invalid_argument when called from inside a shard worker
    (nested sharding would fork-bomb the machine by re-execing workers
    from workers). *)

val map :
  ?shards:int ->
  ?domains:int ->
  ?restarts:int ->
  ?batch:int ->
  ?policy:Supervise.policy ->
  ?havoc:(slot:int -> seq:int -> havoc option) ->
  ?spawn_fault:(attempt:int -> bool) ->
  ?hang_timeout_s:float ->
  ?deadline_s:float ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Like {!try_map} but re-raises the first (lowest-index) quarantined
    task's error after the batch settles — {!Worker_failure} for a task
    that kept failing, {!Worker_crashed} when workers died without
    leaving a result. *)
