(** Multi-process sharded batch execution (see shard.mli).

    Coordinator and workers are instances of the same binary: OCaml 5
    forbids [Unix.fork] once any domain has been spawned (permanently, for
    the process), so workers are started with [Unix.create_process_env
    Sys.executable_name] carrying a marker environment variable, and
    {!init} routes the fresh process into [worker_main] before its own
    [main] runs. Closures (the task function and the task values) cross
    the process boundary with [Marshal.Closures], which is sound here
    because both sides run byte-identical code.

    The coordinator owns every piece of orchestration state — pending
    queue, in-flight assignments, retry/restart budgets, reports — and
    multiplexes worker pipes with [Unix.select]. Workers are pure
    compute: read an assignment frame, run it (on a private domain pool
    when [domains > 1]), write one result frame per task, repeat until
    EOF. *)

exception Worker_failure of { printed : string; trace : string }
exception Worker_crashed of { slot : int }

type havoc = Chaos.fault =
  | Torn_frame
  | Corrupt_frame
  | Hang
  | Crash
  | Slow of float

(* Worker liveness: a worker heartbeats this often while it holds a
   batch, and the coordinator declares a worker hung when a batch is in
   flight and nothing — result or heartbeat — has arrived for
   [hang_timeout_s] (default below). The interval is far below any sane
   timeout, so a healthy-but-slow worker is never killed. *)
let heartbeat_interval_s = 0.2
let default_hang_timeout_s = 30.

(* Spawned workers are recognised by this variable; the argv marker is
   cosmetic but lets tests and operators target workers with pkill. *)
let worker_env = "COMPOSITE_SAFETY_SHARD_WORKER"
let argv_marker = "--exec-shard-worker"
let in_worker () = Sys.getenv_opt worker_env <> None

(* ------------------------------------------------------------------ *)
(* Frame codec: "SHD1" | len u32le | crc u32le | payload                *)

module Frame = struct
  let magic = "SHD1"
  let header_len = 12

  (* Same guard as the journal: a bit-flipped length field must surface
     as corruption, not as a multi-gigabyte allocation. *)
  let max_payload = 1 lsl 28

  type buf = { mutable data : Bytes.t; mutable len : int }

  let create () = { data = Bytes.create 65536; len = 0 }

  let feed b src n =
    if b.len + n > Bytes.length b.data then begin
      let cap = ref (Bytes.length b.data) in
      while b.len + n > !cap do
        cap := !cap * 2
      done;
      let data = Bytes.create !cap in
      Bytes.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    Bytes.blit src 0 b.data b.len n;
    b.len <- b.len + n

  let consume b n =
    Bytes.blit b.data n b.data 0 (b.len - n);
    b.len <- b.len - n

  let encode v =
    let payload = Marshal.to_string v [ Marshal.Closures ] in
    if String.length payload > max_payload then
      invalid_arg "Shard.Frame.encode: payload too large";
    let b = Buffer.create (header_len + String.length payload) in
    Buffer.add_string b magic;
    Buffer.add_int32_le b (Int32.of_int (String.length payload));
    Buffer.add_int32_le b (Crc32.digest payload);
    Buffer.add_string b payload;
    Buffer.contents b

  let decode b =
    if b.len < header_len then `Need_more
    else if Bytes.sub_string b.data 0 4 <> magic then `Corrupt
    else
      let len = Int32.to_int (Bytes.get_int32_le b.data 4) in
      let crc = Bytes.get_int32_le b.data 8 in
      if len < 0 || len > max_payload then `Corrupt
      else if b.len < header_len + len then `Need_more
      else begin
        let payload = Bytes.sub_string b.data header_len len in
        consume b (header_len + len);
        if Crc32.digest payload <> crc then `Corrupt
        else
          match Marshal.from_string payload 0 with
          | v -> `Frame v
          | exception _ -> `Corrupt
      end

  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let write fd v = write_all fd (encode v)
end

(* ------------------------------------------------------------------ *)
(* Protocol messages. Task inputs/outputs travel as [Obj.t] because one
   pipe carries a single ('a, 'b) instantiation fixed by the job that is
   currently bound on it; the coordinator re-types results with [Obj.obj]
   at the only place their type is known.

   [Hello] is sent once per spawn (a worker keeps its domain pool for its
   whole life). [Job] re-binds the task function once per [try_map] call
   per worker incarnation — the only time the closure is marshalled.
   [Batch] then carries many cells per frame; each cell's value is
   {e pre-digested} — marshalled once by the coordinator when the task is
   first dispatched and reused verbatim on requeues — so the per-cell
   frame cost is a string blit, not a closure graph walk. *)

type remote_failure = { printed : string; trace : string }

type coordinator_to_worker =
  | Hello of { slot : int; domains : int }
  | Job of {
      job : int;
      f : Obj.t -> Obj.t;
      havoc : (slot:int -> seq:int -> havoc option) option;
    }
  | Batch of { job : int; seq : int; tasks : (int * string) array }

type worker_to_coordinator =
  | Result of {
      job : int;
      index : int;
      value : (Obj.t, remote_failure) Stdlib.result;
    }
  | Heartbeat of { job : int; slot : int }
      (** sent by a worker's heartbeat domain while it holds a batch;
          proves process liveness, so the coordinator only kills workers
          that are wedged, not merely slow *)

(* ------------------------------------------------------------------ *)
(* Worker side                                                          *)

(* Blocking frame reader for the worker's single pipe. [None] on EOF or
   a corrupt stream — either way the worker's only move is to exit. *)
let rec read_frame buf fd =
  match Frame.decode buf with
  | `Frame v -> Some v
  | `Corrupt -> None
  | `Need_more -> (
      let chunk = Bytes.create 65536 in
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
          Frame.feed buf chunk n;
          read_frame buf fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame buf fd)

let run_batch pool f job (tasks : (int * string) array) =
  let xs =
    Array.to_list
      (Array.map (fun (_, payload) -> Marshal.from_string payload 0) tasks)
  in
  let results =
    match pool with
    | Some p -> Pool.try_map_pool p f xs
    | None ->
        List.map
          (fun x ->
            match f x with
            | v -> Ok v
            | exception exn ->
                Error
                  { Pool.index = 0; exn; backtrace = Printexc.get_raw_backtrace () })
          xs
  in
  List.map2
    (fun (index, _) r ->
      let value =
        match r with
        | Ok v -> Ok v
        | Error (e : Pool.error) ->
            Error
              {
                printed = Printexc.to_string e.Pool.exn;
                trace = Printexc.raw_backtrace_to_string e.Pool.backtrace;
              }
      in
      Frame.encode (Result { job; index; value }))
    (Array.to_list tasks) results

(* Write the batch's result frames, honouring the frame-level havoc
   cases: a torn frame is a partial write followed by sudden death, a
   corrupt frame a payload bit-flip under an unchanged CRC field. The
   lock serializes against the heartbeat domain so injected heartbeats
   never interleave mid-frame. *)
let write_results fd ~lock ~injected frames =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match injected with
      | Some Torn_frame -> (
          match frames with
          | frame :: _ ->
              let cut =
                Frame.header_len + ((String.length frame - Frame.header_len) / 2)
              in
              Frame.write_all fd (String.sub frame 0 cut);
              Unix._exit 66
          | [] -> ())
      | Some Corrupt_frame -> (
          match frames with
          | frame :: rest ->
              let b = Bytes.of_string frame in
              let i = Frame.header_len in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
              Frame.write_all fd (Bytes.to_string b);
              List.iter (Frame.write_all fd) rest
          | [] -> ())
      | Some (Hang | Crash | Slow _) | None ->
          (* Hang/Crash/Slow are handled before this point; by the time
             frames reach the pipe they are written verbatim. *)
          List.iter (Frame.write_all fd) frames)

let worker_main fd =
  Printexc.record_backtrace true;
  let buf = Frame.create () in
  match read_frame buf fd with
  | Some (Hello { slot; domains }) ->
      (* The domain pool outlives every job bound on this pipe: a warm
         worker keeps its domains (and any process-lifetime caches its
         tasks populate) across [try_map] calls. *)
      let pool = if domains > 1 then Some (Pool.create ~domains ()) else None in
      let bound = ref None in
      (* Liveness: while a batch is in progress ([hb_job] >= 0) a
         dedicated domain writes one heartbeat frame per interval, under
         the write lock so heartbeats and result frames never interleave
         mid-frame. A worker wedged wholesale (SIGSTOP, deadlock in a C
         stub) stops heartbeating — OCaml tasks that merely compute for
         a long time do not, because the heartbeat domain is a separate
         OS thread. *)
      let wlock = Mutex.create () in
      let hb_job = Atomic.make (-1) in
      let (_ : unit Domain.t) =
        Domain.spawn (fun () ->
            let rec beat () =
              Unix.sleepf heartbeat_interval_s;
              let job = Atomic.get hb_job in
              if job >= 0 then begin
                match
                  Mutex.lock wlock;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock wlock)
                    (fun () -> Frame.write fd (Heartbeat { job; slot }))
                with
                | () -> beat ()
                | exception _ ->
                    (* The pipe is gone: the serve loop will see EOF and
                       exit; nothing left to prove alive to. *)
                    ()
              end
              else beat ()
            in
            beat ())
      in
      let rec serve () =
        match read_frame buf fd with
        | Some (Job { job; f; havoc }) ->
            bound := Some (job, f, havoc);
            serve ()
        | Some (Batch { job; seq; tasks }) -> (
            match !bound with
            | Some (bound_job, f, havoc) when bound_job = job -> (
                Atomic.set hb_job job;
                let frames = run_batch pool f job tasks in
                let injected =
                  match havoc with Some h -> h ~slot ~seq | None -> None
                in
                match injected with
                | Some Hang ->
                    (* The injected open-pipe hang: stop heartbeating,
                       keep the descriptor open, never respond. Only the
                       coordinator's hang deadline can recover this. *)
                    Atomic.set hb_job (-1);
                    let rec wedge () =
                      Unix.sleepf 3600.;
                      wedge ()
                    in
                    wedge ()
                | Some Crash ->
                    (* Sudden death at the N-th frame, nothing written:
                       the coordinator sees EOF and requeues. *)
                    Unix._exit 67
                | Some (Slow delay) ->
                    (* Slow but healthy: keep heartbeating through the
                       delay, then deliver intact results. Must never be
                       killed by hang detection. *)
                    Unix.sleepf delay;
                    write_results fd ~lock:wlock ~injected:None frames;
                    Atomic.set hb_job (-1);
                    serve ()
                | (Some (Torn_frame | Corrupt_frame) | None) as injected ->
                    write_results fd ~lock:wlock ~injected frames;
                    Atomic.set hb_job (-1);
                    serve ())
            | _ ->
                (* A batch for a job this incarnation was never bound to:
                   protocol violation, die loudly. *)
                Unix._exit 65)
        | Some (Hello _) | None ->
            (* EOF: the coordinator is done with us (or gone). *)
            Unix._exit 0
      in
      serve ()
  | Some (Job _ | Batch _) | None -> Unix._exit 65

let init () =
  if in_worker () then
    (* The socketpair end is this process's stdin. [_exit], never [exit]:
       a worker must not flush channels inherited from the coordinator. *)
    match worker_main Unix.stdin with
    | () -> Unix._exit 0
    | exception _ -> Unix._exit 70

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                     *)

let g_workers = Obs.Metrics.gauge "shard.workers"
let m_respawns = Obs.Metrics.counter "shard.respawns"
let m_frames_sent = Obs.Metrics.counter "shard.frames_sent"
let m_frames_recv = Obs.Metrics.counter "shard.frames_recv"
let m_frames_dropped = Obs.Metrics.counter "shard.frames_dropped"
let m_requeued = Obs.Metrics.counter "shard.cells_requeued"
let m_hangs = Obs.Metrics.counter "shard.hangs_detected"
let m_heartbeats = Obs.Metrics.counter "shard.heartbeats"
let m_spawn_failures = Obs.Metrics.counter "shard.spawn_failures"
let m_fallbacks = Obs.Metrics.counter "shard.fallbacks"
let h_roundtrip = Obs.Metrics.histogram "shard.frame_roundtrip_s"
let h_batch = Obs.Metrics.histogram "shard.batch_size"

type worker = {
  slot : int;
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable rbuf : Frame.buf;
  mutable inflight : (int * float) list;  (** task index, assign instant *)
  mutable batch_started : float;
  mutable last_heard : float;
      (** instant of the last byte read from this worker (result or
          heartbeat), or of the dispatch that started the silence *)
  mutable restarts_left : int;
  mutable alive : bool;
  mutable busy_s : float;
}

(* A resident fleet: one warm worker process per slot, spawned on first
   use of its [(label, shards, domains)] shape and kept across [try_map]
   calls until {!shutdown_fleets} (or process exit). Worker processes
   carry their domain pools and any process-lifetime caches with them,
   so the spawn + handshake cost is paid once per campaign, not once per
   batch of cells.

   The label partitions the warm pool of workers into independent
   fleets: concurrent coordinators (the serve daemon's executor lanes)
   each lease their own labeled fleet, because a worker serves exactly
   one bound job at a time — two jobs multiplexed onto one fleet would
   clobber each other's binding. The registry itself is the only state
   shared across those coordinator domains, so it is mutex-guarded;
   everything inside a fleet is owned by the one coordinator running a
   job on it. *)
type fleet = {
  f_label : string;
  f_shards : int;
  f_domains : int;
  mutable members : worker list;
  mutable next_job : int;
}

let fleets : (string * int * int, fleet) Hashtbl.t = Hashtbl.create 4
let fleets_lock = Mutex.create ()

let with_fleets_lock f =
  Mutex.lock fleets_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock fleets_lock) f

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Tear one worker down on every path — close the pipe fd exactly once,
   then reap the child so no zombie (and no descriptor) outlives the
   slot. All exits funnel through here: normal shutdown, coordinator
   exceptions, and restart-budget exhaustion alike. *)
let dismiss w =
  if w.alive then begin
    w.alive <- false;
    (try Unix.close w.fd with Unix.Unix_error _ -> ());
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap w.pid
  end

let destroy_fleet fleet =
  List.iter dismiss fleet.members;
  with_fleets_lock (fun () ->
      Hashtbl.remove fleets (fleet.f_label, fleet.f_shards, fleet.f_domains));
  Obs.Metrics.set g_workers 0.

let shutdown_fleets () =
  let all =
    with_fleets_lock (fun () ->
        Hashtbl.fold (fun _ fleet acc -> fleet :: acc) fleets [])
  in
  List.iter destroy_fleet all

(* Writes to a freshly dead worker must surface as EPIPE (handled as
   worker death), not kill the coordinator; and resident workers must
   not outlive the coordinator process. Process-wide, set once. *)
let ensure_process_setup =
  lazy
    (if Sys.os_type = "Unix" then
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
     at_exit shutdown_fleets)

let spawn_env =
  lazy (Array.append (Unix.environment ()) [| worker_env ^ "=1" |])

(* Spawn (or respawn) a worker into [w]'s slot. The child's stdin is
   its end of the socketpair — bidirectional, so results come back on
   the same descriptor — and its stdout/stderr go to our stderr so
   worker diagnostics cannot corrupt the coordinator's stdout. *)
let spawn ~domains w =
  let ours, theirs =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let pid =
    try
      Unix.create_process_env Sys.executable_name
        [| Sys.executable_name; argv_marker; string_of_int w.slot |]
        (Lazy.force spawn_env) theirs Unix.stderr Unix.stderr
    with e ->
      Unix.close ours;
      Unix.close theirs;
      raise e
  in
  Unix.close theirs;
  w.pid <- pid;
  w.fd <- ours;
  w.rbuf <- Frame.create ();
  w.inflight <- [];
  w.last_heard <- Obs.Clock.now ();
  w.alive <- true;
  match Frame.write ours (Hello { slot = w.slot; domains }) with
  | () -> Obs.Metrics.incr m_frames_sent
  | exception Unix.Unix_error _ ->
      (* Died before the handshake; the first write or read on the pipe
         will surface the death and the budgeted respawn path takes over. *)
      ()

(* Guarded spawn: injected ([fault]) and genuine spawn failures alike
   become a dead slot plus a counter, never an exception — the caller
   decides whether the remaining workers (or the in-process fallback)
   carry the job. [attempts] numbers every spawn attempt of one sharded
   run, so an injected [spawn@N] plan is deterministic. *)
let spawn_guarded ~domains ?fault ~attempts w =
  incr attempts;
  let injected =
    match fault with Some h -> h ~attempt:!attempts | None -> false
  in
  if injected then begin
    Obs.Metrics.incr m_spawn_failures;
    false
  end
  else
    match spawn ~domains w with
    | () -> true
    | exception _ ->
        Obs.Metrics.incr m_spawn_failures;
        false

(* The fleet for a [(label, shards, domains)] shape: created on first
   use; dead slots (budget exhaustion in an earlier job, a kill between
   jobs, or a spawn failure) are respawned here via [spawn_one] without
   charging any budget — each job starts with as full a complement as
   spawning allows and a fresh restart budget.

   The registry lookup (and the one-time process setup) runs under the
   registry lock: concurrent coordinators resolving different labels
   must not race the Hashtbl, and the lazies must be forced exactly once
   before any unlocked re-read. Respawning the fleet's members happens
   outside the lock — the fleet is owned by its coordinator. *)
let get_fleet ~label ~shards ~domains ~spawn_one =
  let fleet =
    with_fleets_lock (fun () ->
        Lazy.force ensure_process_setup;
        ignore (Lazy.force spawn_env : string array);
        match Hashtbl.find_opt fleets (label, shards, domains) with
        | Some fleet -> fleet
        | None ->
            let fleet =
              {
                f_label = label;
                f_shards = shards;
                f_domains = domains;
                members =
                  List.init shards (fun slot ->
                      {
                        slot;
                        pid = -1;
                        fd = Unix.stdin;
                        rbuf = Frame.create ();
                        inflight = [];
                        batch_started = 0.;
                        last_heard = 0.;
                        restarts_left = 0;
                        alive = false;
                        busy_s = 0.;
                      });
                next_job = 0;
              }
            in
            Hashtbl.add fleets (label, shards, domains) fleet;
            fleet)
  in
  List.iter
    (fun w -> if not w.alive then ignore (spawn_one w : bool))
    fleet.members;
  fleet

let warm ?(fleet = "") ?shards ?(domains = 1) () =
  if in_worker () then
    invalid_arg "Shard.warm: nested sharding inside a shard worker";
  let domains = max 1 domains in
  let shards =
    match shards with
    | Some s -> max 1 s
    | None -> max 1 (Domain.recommended_domain_count () / domains)
  in
  let attempts = ref 0 in
  ignore
    (get_fleet ~label:fleet ~shards ~domains
       ~spawn_one:(spawn_guarded ~domains ~attempts))

let rec take n = function
  | [] -> ([], [])
  | xs when n = 0 -> ([], xs)
  | x :: xs ->
      let chunk, rest = take (n - 1) xs in
      (x :: chunk, rest)

let try_map (type a b) ?(fleet = "") ?shards ?(domains = 1) ?(restarts = 2)
    ?batch ?(policy = Supervise.default_policy) ?on_result ?abort ?havoc
    ?spawn_fault ?(hang_timeout_s = default_hang_timeout_s) ?deadline_s
    (f : a -> b) (xs : a list) : b Supervise.report list =
  if in_worker () then
    invalid_arg "Shard.try_map: nested sharding inside a shard worker";
  let n = List.length xs in
  if n = 0 then []
  else begin
    let domains = max 1 domains in
    let shards =
      match shards with
      | Some s -> max 1 s
      | None -> max 1 (Domain.recommended_domain_count () / domains)
    in
    (* Cells per frame: enough waves per worker (4) to load-balance, but
       never below the worker's own parallelism. *)
    let batch =
      match batch with
      | Some b -> max 1 b
      | None -> max domains ((n + (shards * 4) - 1) / (shards * 4))
    in
    let now () = Obs.Clock.now () in
    let attempts = ref 0 in
    let spawn_one = spawn_guarded ~domains ?fault:spawn_fault ~attempts in
    let fleet = get_fleet ~label:fleet ~shards ~domains ~spawn_one in
    if not (List.exists (fun w -> w.alive) fleet.members) then begin
      (* Graceful degradation: not one worker could be spawned, so the
         batch runs in-process on a domain pool instead of dying — same
         retry policy, same settle hook, bit-for-bit the same reports. *)
      Obs.Metrics.incr m_fallbacks;
      Supervise.try_map
        ~domains:(max 1 (shards * domains))
        ?abort ~policy ?on_result f xs
    end
    else begin
      let job = fleet.next_job in
      fleet.next_job <- job + 1;
      (* The task closure is marshalled once per job; each task value once
         per job at first dispatch ([payloads] memoizes it, so a requeue
         after a crash reuses the digested bytes). *)
      let job_frame =
        Frame.encode (Job { job; f = (Obj.magic f : Obj.t -> Obj.t); havoc })
      in
      let tasks = Array.of_list xs in
      let payloads : string option array = Array.make n None in
      let payload i =
        match payloads.(i) with
        | Some s -> s
        | None ->
            let s = Marshal.to_string (Obj.repr tasks.(i)) [ Marshal.Closures ] in
            payloads.(i) <- Some s;
            s
      in
      let reports : b Supervise.report option array = Array.make n None in
      let dispatches = Array.make n 0 in
      let failures = Array.make n 0 in
      let settled = ref 0 in
      (* (task index, earliest re-dispatch instant); deferred entries carry
         the retry policy's backoff as a deadline, never as a sleep. *)
      let pending = ref (List.init n (fun i -> (i, 0.))) in
      let batch_seq = ref 0 in
      let live_count () =
        List.fold_left
          (fun acc w -> if w.alive then acc + 1 else acc)
          0 fleet.members
      in
      let sync_gauge () =
        Obs.Metrics.set g_workers (float_of_int (live_count ()))
      in
      let requeue w =
        List.iter
          (fun (i, _) ->
            if reports.(i) = None then begin
              Obs.Metrics.incr m_requeued;
              pending := (i, 0.) :: !pending
            end)
          w.inflight;
        w.inflight <- []
      in
      (* Bind this job on a (fresh or respawned) worker. Dead slots —
         spawn failed at job start — are simply skipped; on a dead pipe
         the death path below takes over — budgeted, so the recursion with
         [on_death] terminates. *)
      let rec send_job w =
        if w.alive then
          match Frame.write_all w.fd job_frame with
          | () -> Obs.Metrics.incr m_frames_sent
          | exception
              Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
            ->
              on_death w
      (* A worker is dead the moment its pipe reaches EOF, errors, yields
         a corrupt frame, or misses its liveness deadline: close its fd
         and reap it ({!dismiss} — every death path releases the
         descriptor), put its in-flight work back on the queue (not
         charged against the retry policy — crashes are bounded by the
         restart budget instead, so a single-attempt policy still recovers
         from SIGKILL), and respawn into the same slot while the budget
         lasts. A respawn that itself fails leaves the slot down; its
         budget is spent all the same. *)
      and on_death w =
        dismiss w;
        requeue w;
        if w.restarts_left > 0 then begin
          w.restarts_left <- w.restarts_left - 1;
          if spawn_one w then begin
            Obs.Metrics.incr m_respawns;
            send_job w
          end
        end;
        sync_gauge ()
      in
      let quarantine index exn =
        reports.(index) <-
          Some
            {
              Supervise.status =
                Supervise.Quarantined
                  { Pool.index; exn; backtrace = Printexc.get_callstack 0 };
              attempts = max 1 dispatches.(index);
            };
        incr settled
      in
      let settle w rjob index (value : (Obj.t, remote_failure) Stdlib.result) =
        Obs.Metrics.incr m_frames_recv;
        if rjob = job then
          match List.assoc_opt index w.inflight with
          | None -> () (* stale frame from a superseded assignment *)
          | Some sent ->
              w.inflight <- List.remove_assoc index w.inflight;
              let t = now () in
              Obs.Metrics.observe h_roundtrip (t -. sent);
              if w.inflight = [] then
                w.busy_s <- w.busy_s +. (t -. w.batch_started);
              if reports.(index) = None then begin
                match value with
                | Ok v ->
                    let v : b = Obj.obj v in
                    reports.(index) <-
                      Some
                        {
                          Supervise.status = Supervise.Done v;
                          attempts = max 1 dispatches.(index);
                        };
                    incr settled;
                    Option.iter (fun g -> g index v) on_result
                | Error { printed; trace } ->
                    failures.(index) <- failures.(index) + 1;
                    let exn = Worker_failure { printed; trace } in
                    if
                      failures.(index) < policy.Supervise.max_attempts
                      && policy.Supervise.retry_on exn
                    then begin
                      let delay =
                        Supervise.backoff_delay policy ~attempt:failures.(index)
                      in
                      Obs.Metrics.incr m_requeued;
                      pending := (index, t +. delay) :: !pending
                    end
                    else quarantine index exn
              end
      in
      let refill w =
        if w.alive && w.inflight = [] && !pending <> [] then begin
          let t = now () in
          let ready, deferred = List.partition (fun (_, nb) -> nb <= t) !pending in
          let chunk, rest = take batch (List.sort compare ready) in
          if chunk <> [] then begin
            pending := rest @ deferred;
            incr batch_seq;
            Obs.Metrics.observe h_batch (float_of_int (List.length chunk));
            List.iter (fun (i, _) -> dispatches.(i) <- dispatches.(i) + 1) chunk;
            w.batch_started <- t;
            w.last_heard <- t;
            w.inflight <- List.map (fun (i, _) -> (i, t)) chunk;
            let tasks =
              Array.of_list (List.map (fun (i, _) -> (i, payload i)) chunk)
            in
            match Frame.write w.fd (Batch { job; seq = !batch_seq; tasks }) with
            | () -> Obs.Metrics.incr m_frames_sent
            | exception
                Unix.Unix_error
                  ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
                on_death w
          end
        end
      in
      let drain w =
        let chunk = Bytes.create 65536 in
        match Unix.read w.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
            Obs.Metrics.incr m_frames_dropped;
            on_death w
        | 0 ->
            (* EOF. Undecoded leftover bytes are a frame torn by the crash. *)
            if w.rbuf.Frame.len > 0 then Obs.Metrics.incr m_frames_dropped;
            on_death w
        | nread ->
            (* Any bytes at all prove the process is scheduled: liveness
               resets on results and heartbeats alike. *)
            w.last_heard <- now ();
            Frame.feed w.rbuf chunk nread;
            let rec parse buf =
              (* Stop at a respawn boundary: [on_death] gave the slot a
                 fresh buffer, so only keep decoding the stream this read
                 belongs to. *)
              if w.rbuf == buf then
                match Frame.decode buf with
                | `Need_more -> ()
                | `Corrupt ->
                    (* The stream's framing is gone; nothing after this
                       point can be trusted, so treat the worker as dead. *)
                    Obs.Metrics.incr m_frames_dropped;
                    (try Unix.kill w.pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    on_death w
                | `Frame (Result { job = rjob; index; value }) ->
                    settle w rjob index value;
                    parse buf
                | `Frame (Heartbeat _) ->
                    Obs.Metrics.incr m_heartbeats;
                    parse buf
            in
            parse w.rbuf
      in
      let t_start = now () in
      (* Every job starts with the full fleet and a fresh restart budget;
         a worker that exhausts it stays down for the rest of this job
         only. On any coordinator exception the whole fleet is destroyed —
         fds closed, children reaped — before the exception escapes. *)
      List.iter
        (fun w ->
          w.restarts_left <- restarts;
          w.busy_s <- 0.)
        fleet.members;
      let aborting () = match abort with Some stop -> stop () | None -> false in
      (try
         List.iter send_job fleet.members;
         sync_gauge ();
         while !settled < n do
           if aborting () then begin
             (* Cooperative cancellation: the caller withdrew the batch.
                Workers holding cells are killed — their in-flight compute
                is abandoned work, and the slot respawns at the next job's
                [get_fleet] — and everything unsettled quarantines as
                [Pool.Aborted], never retried (see {!Supervise}). *)
             List.iter
               (fun w -> if w.alive && w.inflight <> [] then dismiss w)
               fleet.members;
             sync_gauge ();
             pending := [];
             Array.iteri
               (fun i r -> if r = None then quarantine i Pool.Aborted)
               reports
           end
           else begin
             List.iter refill fleet.members;
             let alive = List.filter (fun w -> w.alive) fleet.members in
             if alive = [] then begin
               (* Out of workers and out of restart budget: everything not
                  yet settled is terminally quarantined. *)
               let slot =
                 match fleet.members with w :: _ -> w.slot | [] -> -1
               in
               Array.iteri
                 (fun i r ->
                   if r = None then quarantine i (Worker_crashed { slot }))
                 reports;
               pending := []
             end
             else begin
               let t = now () in
               (* Hang sweep: a worker holding a batch that has been silent
                  past [hang_timeout_s] (no results, no heartbeats — the
                  process is wedged: SIGSTOP, open-pipe hang, C-stub
                  deadlock) or past the optional per-batch [deadline_s]
                  (heartbeating but never finishing — a busy-looping task)
                  is killed and its cells requeued under the restart budget.
                  A merely slow worker heartbeats and is never swept. *)
               List.iter
                 (fun w ->
                   if w.alive && w.inflight <> [] then begin
                     let silent = t -. w.last_heard > hang_timeout_s in
                     let overran =
                       match deadline_s with
                       | Some d -> t -. w.batch_started > d
                       | None -> false
                     in
                     if silent || overran then begin
                       Obs.Metrics.incr m_hangs;
                       on_death w
                     end
                   end)
                 alive;
               let alive = List.filter (fun w -> w.alive) fleet.members in
               if alive <> [] then begin
                 (* Wake for whichever comes first: a deferred retry's
                    backoff deadline or a busy worker's liveness deadline.
                    The timeout is also the abort-probe latency bound, so
                    an idle coordinator still notices a cancellation
                    within a second. *)
                 let next_deadline =
                   List.fold_left
                     (fun acc (_, nb) ->
                       if nb > t then Float.min acc nb else acc)
                     Float.infinity !pending
                 in
                 let next_liveness =
                   List.fold_left
                     (fun acc w ->
                       if w.inflight = [] then acc
                       else
                         let h = w.last_heard +. hang_timeout_s in
                         let h =
                           match deadline_s with
                           | Some d -> Float.min h (w.batch_started +. d)
                           | None -> h
                         in
                         Float.min acc h)
                     Float.infinity alive
                 in
                 let wake = Float.min next_deadline next_liveness in
                 let timeout =
                   if wake = Float.infinity then 1.0
                   else Float.max 0.005 (Float.min 1.0 (wake -. t))
                 in
                 match
                   Unix.select (List.map (fun w -> w.fd) alive) [] [] timeout
                 with
                 | readable, _, _ ->
                     List.iter
                       (fun w ->
                         if w.alive && List.mem w.fd readable then drain w)
                       alive
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               end
             end
           end
         done
       with e ->
         destroy_fleet fleet;
         raise e);
      let wall = now () -. t_start in
      List.iter
        (fun w ->
          Obs.Metrics.set
            (Obs.Metrics.gauge
               (if fleet.f_label = "" then
                  Printf.sprintf "shard.worker%d.utilization" w.slot
                else
                  Printf.sprintf "shard.%s.worker%d.utilization" fleet.f_label
                    w.slot))
            (if wall > 0. then Float.min 1. (w.busy_s /. wall) else 0.))
        fleet.members;
      (* The loop's postcondition — every cell settled — deserves a real
         error, not [Invalid_argument "option is None"]: name the holes. *)
      let unsettled = ref [] in
      Array.iteri
        (fun i r -> if r = None then unsettled := i :: !unsettled)
        reports;
      if !unsettled <> [] then
        failwith
          (Printf.sprintf
             "Shard.try_map: coordination loop exited with %d unsettled \
              cell(s) out of %d: indices [%s]"
             (List.length !unsettled) n
             (String.concat "; "
                (List.map string_of_int (List.rev !unsettled))));
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) reports)
    end
  end

let map ?shards ?domains ?restarts ?batch ?policy ?havoc ?spawn_fault
    ?hang_timeout_s ?deadline_s f xs =
  List.map
    (fun (r : _ Supervise.report) ->
      match r.Supervise.status with
      | Supervise.Done v -> v
      | Supervise.Quarantined e -> raise e.Pool.exn)
    (try_map ?shards ?domains ?restarts ?batch ?policy ?havoc ?spawn_fault
       ?hang_timeout_s ?deadline_s f xs)
