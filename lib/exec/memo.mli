(** A process-wide, domain-safe memo table with cold/warm counters.

    Lookups and insertions are serialized by a mutex, but the supplier
    runs {e outside} the lock so concurrent misses on distinct keys
    compute in parallel. Lookups are {e single-flight} per key: the
    first domain to miss runs the supplier, any domain looking the same
    key up meanwhile blocks until that computation settles and then
    receives the same (physically equal) value, counted as a hit. The
    counters are therefore exactly what a sequential interleaving of the
    same lookups would produce — parallel and sequential runs of one
    workload report identical hit/miss totals — and a supplier is never
    invoked twice for a key that stays resident.

    The supplier of a key must not look up the {e same} key in the same
    table (single-flight would make it wait on itself); distinct keys,
    including through nested tables, are fine. *)

type ('k, 'v) t
(** A memo table from keys ['k] to values ['v]. Safe to share across
    domains; see the module documentation for the locking and
    single-flight contract. *)

type stats = {
  hits : int;  (** warm lookups: value served from the table *)
  misses : int;  (** cold lookups: the supplier was invoked *)
  evictions : int;  (** entries dropped to stay under [capacity] *)
}

val create : ?size:int -> ?capacity:int -> ?name:string -> unit -> ('k, 'v) t
(** [size] is the initial hash-table size (a hint, {e not} a bound).
    [capacity] (default: unbounded) is a hard bound on the number of live
    entries: when an insertion exceeds it the oldest entries (FIFO over
    insertion order) are evicted and counted in [stats.evictions], so
    long-running campaigns cannot grow memory without limit. Must be
    [>= 1]. [name] additionally mirrors the three counters into the
    process-wide metrics registry as [cache.<name>.hits] / [.misses] /
    [.evictions], so snapshots ([--metrics]) report this table. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Serve [key] from the table, or run the supplier (single-flight, see
    above) and insert its result. A supplier exception propagates to the
    caller that ran it (with its backtrace); waiters then retry, the
    next one becoming the new supplier. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry and reset the counters. *)

val length : ('k, 'v) t -> int
(** Number of live entries (always [<= capacity] when one was given). *)

val stats : ('k, 'v) t -> stats
(** Cumulative hit/miss/eviction counters since creation (or the last
    {!clear}). *)

val digest : 'a -> string
(** Structural digest of an arbitrary value, usable as a memo key.
    Implemented with [Marshal] in [Closures] mode, so keys may contain
    functions (e.g. scripted speed profiles); closure digests are only
    stable within one process, which is exactly the lifetime of the
    table. *)
