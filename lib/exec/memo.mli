(** A process-wide, domain-safe memo table with cold/warm counters.

    Lookups and insertions are serialized by a mutex, but the supplier
    runs {e outside} the lock so concurrent misses on distinct keys
    compute in parallel. If two domains race to fill the same key the
    first insertion wins and both callers receive the same (physically
    equal) value; the loser's computation is discarded. *)

type ('k, 'v) t

type stats = {
  hits : int;  (** warm lookups: value served from the table *)
  misses : int;  (** cold lookups: the supplier was invoked *)
  evictions : int;  (** entries dropped to stay under [capacity] *)
}

val create : ?size:int -> ?capacity:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table size (a hint, {e not} a bound).
    [capacity] (default: unbounded) is a hard bound on the number of live
    entries: when an insertion exceeds it the oldest entries (FIFO over
    insertion order) are evicted and counted in [stats.evictions], so
    long-running campaigns cannot grow memory without limit. Must be
    [>= 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
val clear : ('k, 'v) t -> unit
(** Drop every entry and reset the counters. *)

val length : ('k, 'v) t -> int
val stats : ('k, 'v) t -> stats

val digest : 'a -> string
(** Structural digest of an arbitrary value, usable as a memo key.
    Implemented with [Marshal] in [Closures] mode, so keys may contain
    functions (e.g. scripted speed profiles); closure digests are only
    stable within one process, which is exactly the lifetime of the
    table. *)
