(** Deterministic, seeded infrastructure-fault plans for chaos testing
    the execution stack itself.

    {!Inject} perturbs the {e simulated} system's signals; this module
    perturbs the {e infrastructure} that runs the simulations — worker
    processes, pipe frames, journal appends, spawns — so the composite
    failure modes of [Shard] + [Supervise] + the scenario journal are
    exercised on purpose instead of discovered in production. A plan is
    pure data (no closures, no hidden state): which faults to inject,
    each with a {!trigger} saying {e when}. The derivations
    ({!worker_fault}, {!spawn_fault}, {!journal_fault}) turn the plan
    into the hooks the execution layers consult at their injection
    points.

    Determinism: a trigger fires as a pure function of
    [(plan seed, fault kind, opportunity index)]. [At n] fires on
    exactly the [n]-th opportunity; [Rate p] draws one uniform variate
    per opportunity from a {!Inject.Prng} child generator keyed on the
    kind and index, so the same plan torments the same run the same way
    every time. Every fault in the catalogue is {e recoverable}: a
    campaign under any chaos plan must produce output bit-for-bit
    identical to the chaos-free run (hangs and crashes are requeued,
    torn and corrupt frames dropped and recomputed, journal errors
    degrade durability without touching results, spawn failures fall
    back to in-process execution). *)

type fault =
  | Torn_frame  (** worker dies mid-frame write *)
  | Corrupt_frame  (** worker bit-flips a result frame (CRC must catch) *)
  | Hang
      (** worker holds its pipe open, stops heartbeating and never
          responds — the open-pipe hang that only a heartbeat deadline
          can detect *)
  | Crash  (** worker exits without writing anything *)
  | Slow of float
      (** worker delays its results this many seconds while continuing
          to heartbeat — slow but healthy, must {e not} be killed by
          hang detection *)

type trigger =
  | At of int  (** fire on exactly the [n]-th opportunity (1-based) *)
  | Rate of float
      (** fire with this probability per opportunity, drawn
          deterministically from the plan seed *)

type t = {
  seed : int;  (** seeds every [Rate] draw ({!Inject.Prng.derive}) *)
  worker : (fault * trigger) list;
      (** frame-level worker faults; opportunity = job-global batch
          assignment sequence number, first firing entry wins *)
  journal_write : trigger option;
      (** the append's write fails mid-record; opportunity = append
          index within one writer *)
  journal_fsync : trigger option;
      (** the append's fsync fails; opportunity = append index *)
  spawn : trigger option;
      (** the worker spawn fails; opportunity = spawn attempt index
          within one sharded run *)
  accept : trigger option;
      (** the campaign server drops a client connection right after
          accepting it; opportunity = accept index within one server *)
  srv_read : trigger option;
      (** the server drops a client connection at a request read;
          opportunity = server read index *)
  srv_write : trigger option;
      (** the server drops a client connection instead of writing a
          response; opportunity = server write index *)
}

val none : t
(** The empty plan: injects nothing. *)

val is_empty : t -> bool

val fires : seed:int -> salt:int -> n:int -> trigger -> bool
(** [fires ~seed ~salt ~n tr] — whether trigger [tr] fires on the
    [n]-th opportunity of the fault kind salted [salt]. Exposed for
    tests; the hook derivations below are the intended consumers. *)

val worker_fault : t -> (slot:int -> seq:int -> fault option) option
(** The worker-frame havoc hook for {!Shard.try_map}: consulted once
    per batch assignment with the job-global sequence number. [None]
    when the plan injects no worker faults. *)

val spawn_fault : t -> (attempt:int -> bool) option
(** The spawn-failure hook for {!Shard.try_map}: [true] means this
    spawn attempt must fail. *)

val journal_fault : t -> ([ `Write | `Fsync ] -> bool) option
(** The journal-fault hook for [Scenarios.Journal.create]: each append
    consults [`Write] once (advancing the hook's append counter) and
    [`Fsync] once. Stateful — derive one hook per writer. *)

val server_fault : t -> ([ `Accept | `Read | `Write ] -> bool) option
(** The connection-fault hook for the campaign server ([Serve.Server]):
    consulted at each accept, request read and response write; [true]
    means the server must drop that client's connection at that point
    (the client recovers by reconnecting and resubmitting — results
    already journaled are replayed, so the retry converges). Each fault
    point keeps its own opportunity counter. Stateful — derive one hook
    per server instance. *)

val parse : ?seed:int -> string -> (t, string) result
(** [parse ~seed spec] — the [--chaos SPEC] grammar: comma-separated
    terms, each [KIND@N] (fire on the [N]-th opportunity) or [KIND~P]
    (fire with probability [P] per opportunity). Kinds: [hang], [crash],
    [torn], [corrupt], [slow@N:SECS] / [slow~P:SECS] (the suffix is the
    delay), [jwrite], [jfsync], [spawn], [accept], [sread], [swrite].
    Worker kinds may repeat; every other kind may appear at most
    once. *)

val to_string : t -> string
(** Canonical spec string of the plan (the seed is carried separately,
    exactly as on the CLI). [parse (to_string t)] is [t] up to the
    seed. *)

val conv_doc : string
(** Human-readable grammar summary for CLI [--chaos] flags. *)
