(** CRC-32 checksums for framed binary records.

    This is the IEEE 802.3 reflected CRC-32 (polynomial [0xEDB88320], the
    variant used by gzip and zlib), computed over whole strings. Both
    record protocols in the repository use it to guard their payloads:
    the crash-safe scenario journal ([Scenarios.Journal], magic ["SJL1"])
    and the multi-process shard pipe ({!Shard}, magic ["SHD1"]). A torn
    or bit-flipped payload fails its CRC and the record is dropped by the
    reader instead of being unmarshalled into garbage. *)

val digest : string -> int32
(** [digest s] is the CRC-32 of the whole of [s].

    The result is returned as a raw [int32] so it can be written to and
    compared against the little-endian [u32] checksum field of a record
    header without sign-extension concerns. Deterministic: equal strings
    have equal digests across processes and architectures. *)
