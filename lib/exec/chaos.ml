(** Deterministic, seeded infrastructure-fault plans (see chaos.mli).

    The plan is pure data: which infrastructure faults to inject, each
    with a trigger — a fixed opportunity index ([At n], 1-based) or a
    seeded per-opportunity probability ([Rate p]). The hook derivations
    below turn the plan into the callbacks {!Shard} and the scenario
    journal consult at their injection points; everything a hook decides
    is a pure function of [(seed, fault kind, opportunity index)], so a
    chaos run is exactly as reproducible as the campaign it torments. *)

type fault =
  | Torn_frame
  | Corrupt_frame
  | Hang
  | Crash
  | Slow of float

type trigger = At of int | Rate of float

type t = {
  seed : int;
  worker : (fault * trigger) list;
  journal_write : trigger option;
  journal_fsync : trigger option;
  spawn : trigger option;
  accept : trigger option;
  srv_read : trigger option;
  srv_write : trigger option;
}

let none =
  {
    seed = 0;
    worker = [];
    journal_write = None;
    journal_fsync = None;
    spawn = None;
    accept = None;
    srv_read = None;
    srv_write = None;
  }

let is_empty t =
  t.worker = [] && t.journal_write = None && t.journal_fsync = None
  && t.spawn = None && t.accept = None && t.srv_read = None
  && t.srv_write = None

(* Every fault kind draws from its own child generator, and every
   opportunity from a grandchild: firing is a pure function of
   (seed, kind, n), never of how many draws other kinds consumed. *)
let fires ~seed ~salt ~n trigger =
  match trigger with
  | At k -> n = k
  | Rate p ->
      Inject.Prng.float
        (Inject.Prng.create (Inject.Prng.derive (Inject.Prng.derive seed salt) n))
      < p

let salt_of_fault = function
  | Torn_frame -> 1
  | Corrupt_frame -> 2
  | Hang -> 3
  | Crash -> 4
  | Slow _ -> 5

let salt_jwrite = 6
let salt_jfsync = 7
let salt_spawn = 8
let salt_accept = 9
let salt_sread = 10
let salt_swrite = 11

let worker_fault t =
  if t.worker = [] then None
  else
    Some
      (fun ~slot:_ ~seq ->
        List.find_map
          (fun (f, tr) ->
            if fires ~seed:t.seed ~salt:(salt_of_fault f) ~n:seq tr then Some f
            else None)
          t.worker)

let spawn_fault t =
  match t.spawn with
  | None -> None
  | Some tr ->
      Some (fun ~attempt -> fires ~seed:t.seed ~salt:salt_spawn ~n:attempt tr)

let journal_fault t =
  match (t.journal_write, t.journal_fsync) with
  | None, None -> None
  | jw, jf ->
      (* One stateful hook per derivation (i.e. per journal writer): the
         append counter advances on the [`Write] check that starts every
         append, so [`Fsync] sees the same index. *)
      let appends = ref 0 in
      Some
        (function
        | `Write -> (
            incr appends;
            match jw with
            | Some tr -> fires ~seed:t.seed ~salt:salt_jwrite ~n:!appends tr
            | None -> false)
        | `Fsync -> (
            match jf with
            | Some tr -> fires ~seed:t.seed ~salt:salt_jfsync ~n:!appends tr
            | None -> false))

let server_fault t =
  match (t.accept, t.srv_read, t.srv_write) with
  | None, None, None -> None
  | accept, sread, swrite ->
      (* One stateful hook per derivation (i.e. per server instance):
         each fault point advances its own opportunity counter, so an
         [accept@2] plan drops exactly the second connection no matter
         how many reads and writes happen in between. *)
      let accepts = ref 0 and reads = ref 0 and writes = ref 0 in
      let check field salt counter =
        match field with
        | None -> false
        | Some tr ->
            incr counter;
            fires ~seed:t.seed ~salt ~n:!counter tr
      in
      Some
        (function
        | `Accept -> check accept salt_accept accepts
        | `Read -> check sread salt_sread reads
        | `Write -> check swrite salt_swrite writes)

(* ------------------------------------------------------------------ *)
(* Spec syntax                                                          *)

let conv_doc =
  "Comma-separated fault terms, each KIND@N (fire on the N-th \
   opportunity, 1-based) or KIND~P (fire with probability P per \
   opportunity, drawn deterministically from the seed). Worker-frame \
   kinds (opportunity = batch assignment): hang (hold the pipe open, \
   stop responding), crash (exit without writing), torn (die \
   mid-frame), corrupt (bit-flip a frame), slow@N:SECS / slow~P:SECS \
   (delay the results). Journal kinds (opportunity = append): jwrite \
   (the append's write fails mid-record), jfsync (the fsync fails). \
   spawn (opportunity = worker spawn attempt): the spawn fails. Server \
   kinds (campaign service fault points): accept (the accepted \
   connection is dropped immediately), sread (the connection is dropped \
   at the next request read), swrite (the connection is dropped instead \
   of writing the next response). Example: \
   'hang@2,crash@4,torn@6,jwrite@3'."

let trigger_to_string = function
  | At n -> Printf.sprintf "@%d" n
  | Rate p -> Printf.sprintf "~%g" p

let to_string t =
  let worker_term (f, tr) =
    match f with
    | Hang -> "hang" ^ trigger_to_string tr
    | Crash -> "crash" ^ trigger_to_string tr
    | Torn_frame -> "torn" ^ trigger_to_string tr
    | Corrupt_frame -> "corrupt" ^ trigger_to_string tr
    | Slow d -> Printf.sprintf "slow%s:%g" (trigger_to_string tr) d
  in
  let opt kind = function
    | None -> []
    | Some tr -> [ kind ^ trigger_to_string tr ]
  in
  String.concat ","
    (List.map worker_term t.worker
    @ opt "jwrite" t.journal_write
    @ opt "jfsync" t.journal_fsync
    @ opt "spawn" t.spawn
    @ opt "accept" t.accept
    @ opt "sread" t.srv_read
    @ opt "swrite" t.srv_write)

let parse_trigger ~term how s =
  match how with
  | `At -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (At n)
      | _ -> Error (Printf.sprintf "%s: expected a positive integer after '@'" term))
  | `Rate -> (
      match float_of_string_opt s with
      | Some p when p >= 0. && p <= 1. -> Ok (Rate p)
      | _ -> Error (Printf.sprintf "%s: expected a probability in [0, 1] after '~'" term))

let parse ?(seed = 0) spec =
  let ( let* ) = Result.bind in
  let parse_term acc term =
    let* t = acc in
    let* kind, how, rest =
      match (String.index_opt term '@', String.index_opt term '~') with
      | Some i, None ->
          Ok
            ( String.sub term 0 i,
              `At,
              String.sub term (i + 1) (String.length term - i - 1) )
      | None, Some i ->
          Ok
            ( String.sub term 0 i,
              `Rate,
              String.sub term (i + 1) (String.length term - i - 1) )
      | Some _, Some _ -> Error (term ^ ": at most one of '@' and '~'")
      | None, None -> Error (term ^ ": expected KIND@N or KIND~P")
    in
    let* trigger, extra =
      match String.index_opt rest ':' with
      | None ->
          let* tr = parse_trigger ~term how rest in
          Ok (tr, None)
      | Some i ->
          let* tr = parse_trigger ~term how (String.sub rest 0 i) in
          let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
          Ok (tr, Some tail)
    in
    let* () =
      match (kind, extra) with
      | "slow", _ | _, None -> Ok ()
      | _, Some _ -> Error (term ^ ": only slow takes a ':SECS' suffix")
    in
    let worker f = Ok { t with worker = t.worker @ [ (f, trigger) ] } in
    let once what field set =
      match field with
      | Some _ -> Error (Printf.sprintf "%s: duplicate %s term" term what)
      | None -> set ()
    in
    match kind with
    | "hang" -> worker Hang
    | "crash" -> worker Crash
    | "torn" -> worker Torn_frame
    | "corrupt" -> worker Corrupt_frame
    | "slow" -> (
        match Option.bind extra float_of_string_opt with
        | Some d when d >= 0. -> worker (Slow d)
        | _ -> Error (term ^ ": expected slow@N:SECS or slow~P:SECS"))
    | "jwrite" ->
        once "jwrite" t.journal_write (fun () ->
            Ok { t with journal_write = Some trigger })
    | "jfsync" ->
        once "jfsync" t.journal_fsync (fun () ->
            Ok { t with journal_fsync = Some trigger })
    | "spawn" ->
        once "spawn" t.spawn (fun () -> Ok { t with spawn = Some trigger })
    | "accept" ->
        once "accept" t.accept (fun () -> Ok { t with accept = Some trigger })
    | "sread" ->
        once "sread" t.srv_read (fun () ->
            Ok { t with srv_read = Some trigger })
    | "swrite" ->
        once "swrite" t.srv_write (fun () ->
            Ok { t with srv_write = Some trigger })
    | _ -> Error (Printf.sprintf "%s: unknown fault kind %S" term kind)
  in
  match String.trim spec with
  | "" -> Error "empty chaos spec"
  | spec ->
      List.fold_left parse_term
        (Ok { none with seed })
        (List.map String.trim (String.split_on_char ',' spec))
