(* Raw backtraces are only recorded when explicitly enabled; without this,
   the [backtrace] captured in a worker domain and re-raised on the caller
   is empty and the failure's origin is lost across the domain boundary.
   The flag is domain-local in OCaml 5, so besides this process-level
   enable (covering the sequential paths), every spawned worker re-enables
   it for its own domain. *)
let () = Printexc.record_backtrace true

type error = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

exception Timed_out of { limit_s : float; elapsed_s : float }
(** The per-task watchdog limit and the elapsed time measured when the
    overrun was published. *)

exception Reentrant_submission

exception Aborted

type t = {
  size : int;
  mutable leases : (unit -> unit) Queue.t list;
      (** round-robin ring of per-batch job queues: each concurrent
          [try_map_pool] call holds its own lease, and workers take one
          job from the head lease then rotate it to the back — so two
          batches sharing the pool interleave at task granularity
          instead of the second queuing behind the whole first *)
  lock : Mutex.t;
  pending : Condition.t;  (** work enqueued, or shutdown requested *)
  batch_done : Condition.t;  (** a batch counter reached zero *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Next job under fair-share: pop from the head lease, then rotate it to
   the tail (unless it emptied, in which case it leaves the ring — its
   batch waiter keeps its own completion state). Called with the pool
   lock held. *)
let rec take_job pool =
  match pool.leases with
  | [] -> None
  | q :: rest -> (
      match Queue.take_opt q with
      | None ->
          pool.leases <- rest;
          take_job pool
      | Some job ->
          pool.leases <- (if Queue.is_empty q then rest else rest @ [ q ]);
          Some job)

let depth pool =
  List.fold_left (fun acc q -> acc + Queue.length q) 0 pool.leases

let worker pool =
  Printexc.record_backtrace true;
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      match take_job pool with
      | Some _ as job -> job
      | None ->
          if pool.closed then None
          else (
            Condition.wait pool.pending pool.lock;
            next ())
    in
    match next () with
    | None -> Mutex.unlock pool.lock
    | Some job ->
        Mutex.unlock pool.lock;
        job ();
        loop ()
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let pool =
    {
      size;
      leases = [];
      lock = Mutex.create ();
      pending = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.pending;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* ------------------------------------------------------------------ *)
(* Telemetry. Counter parity between the pooled and sequential paths:
   every task is counted submitted once, and settles as exactly one of
   completed (result published, Ok or Error) or timed_out. [failed]
   counts the Error subset of completed. Wait/run histograms record
   per-task latency; on the sequential path the wait is structurally 0
   and the run duration is the full task, so completed-only batches
   report identical counts (not timings) in both modes. *)

let m_submitted = Obs.Metrics.counter "pool.tasks_submitted"
let m_completed = Obs.Metrics.counter "pool.tasks_completed"
let m_failed = Obs.Metrics.counter "pool.tasks_failed"
let m_timed_out = Obs.Metrics.counter "pool.tasks_timed_out"
let m_aborted = Obs.Metrics.counter "pool.tasks_aborted"
let m_batches = Obs.Metrics.counter "pool.batches"
let g_queue_depth = Obs.Metrics.gauge "pool.queue_depth"
let g_workers = Obs.Metrics.gauge "pool.workers"
let h_wait = Obs.Metrics.histogram "pool.task_wait_s"
let h_run = Obs.Metrics.histogram "pool.task_run_s"

let count_published = function
  | Ok _ -> Obs.Metrics.incr m_completed
  | Error _ ->
      Obs.Metrics.incr m_completed;
      Obs.Metrics.incr m_failed

let guarded f x ~index =
  match f x with
  | v -> Ok v
  | exception exn -> Error { index; exn; backtrace = Printexc.get_raw_backtrace () }

(* Like [timed_out] below, the abort is published from outside the task
   (it never started), so the backtrace is deliberately empty. *)
let aborted_error ~index =
  Error { index; exn = Aborted; backtrace = Printexc.get_callstack 0 }

let timed_out ~index ~elapsed_s limit =
  Error
    {
      index;
      exn = Timed_out { limit_s = limit; elapsed_s };
      (* Deliberately empty: the overrun is published from the watchdog
         (or post-hoc from the sequential wrapper), whose most recent
         recorded backtrace belongs to some unrelated earlier raise —
         attaching it would point post-mortems at innocent frames. *)
      backtrace = Printexc.get_callstack 0;
    }

(** Sequential execution cannot preempt a running task, so the watchdog
    here is post-hoc: a task that overran the limit completes, but its
    result is replaced by [Timed_out] for parity with the pooled path; the
    payload's [elapsed_s] is the task's full measured duration. *)
let guarded_seq ?timeout_s ?abort f x ~index =
  Obs.Metrics.incr m_submitted;
  match abort with
  | Some stop when stop () ->
      Obs.Metrics.incr m_aborted;
      let r = aborted_error ~index in
      count_published r;
      r
  | _ -> (
      Obs.Metrics.observe h_wait 0.;
      let t0 = Obs.Clock.now () in
      let r = guarded f x ~index in
      let elapsed_s = Obs.Clock.now () -. t0 in
      Obs.Metrics.observe h_run elapsed_s;
      match timeout_s with
      | Some limit when elapsed_s > limit ->
          Obs.Metrics.incr m_timed_out;
          timed_out ~index ~elapsed_s limit
      | _ ->
          count_published r;
          r)

(** A worker asking its own pool to run a batch would deadlock (every
    worker may end up blocked on an inner batch no free worker can ever
    start), so refuse re-entrant submissions outright. *)
let check_reentrancy pool =
  let self = Domain.self () in
  Mutex.lock pool.lock;
  let reentrant =
    List.exists (fun d -> Domain.get_id d = self) pool.workers
  in
  Mutex.unlock pool.lock;
  if reentrant then raise Reentrant_submission

let try_map_pool ?timeout_s ?abort pool f xs =
  check_reentrancy pool;
  Obs.Metrics.incr m_batches;
  Obs.Metrics.set g_workers (float_of_int pool.size);
  let n = List.length xs in
  let results = Array.make n None in
  (if pool.workers = [] then
     (* size-1 pool: sequential fallback on the calling domain *)
     List.iteri
       (fun i x -> results.(i) <- Some (guarded_seq ?timeout_s ?abort f x ~index:i))
       xs
   else begin
     let remaining = ref n in
     let submitted = Obs.Clock.now () in
     (* The last instant the batch demonstrably made progress (a worker
        started or published a task), initially the submission instant.
        The watchdog bounds still-queued tasks against this: while the
        queue drains, waiting is not counted against them, but once every
        worker is wedged, no progress can advance it and the queued tasks
        time out instead of keeping the batch alive forever. *)
     let last_progress = ref submitted in
     (* Monotonic start per task, written under the pool lock when a
        worker picks the task up; nan = not started yet. For a started
        task the watchdog clock runs from its start, not from batch
        submission. *)
     let started = Array.make n Float.nan in
     (* This batch's lease: all its jobs queue here, and the lease joins
        the pool's round-robin ring in one step below — a batch is never
        half-visible, and concurrent batches interleave fairly. *)
     let lease = Queue.create () in
     List.iteri
       (fun i x ->
         let job () =
           Mutex.lock pool.lock;
           let abandoned = results.(i) <> None in
           (* Cooperative cancellation: a task a worker has not yet
              started is published as [Aborted] instead of being run. The
              [abort] probe must be fast and non-blocking (it is called
              under the pool lock) — an [Atomic.get] in practice. Tasks
              already running are never preempted. *)
           let aborting =
             (not abandoned)
             && (match abort with Some stop -> stop () | None -> false)
           in
           if aborting then begin
             let r = aborted_error ~index:i in
             results.(i) <- Some r;
             last_progress := Obs.Clock.now ();
             Obs.Metrics.incr m_aborted;
             count_published r;
             decr remaining;
             if !remaining = 0 then Condition.broadcast pool.batch_done
           end;
           let abandoned = abandoned || aborting in
           if not abandoned then begin
             let t = Obs.Clock.now () in
             started.(i) <- t;
             last_progress := t;
             Obs.Metrics.observe h_wait (t -. submitted)
           end;
           Obs.Metrics.set g_queue_depth (float_of_int (depth pool));
           Mutex.unlock pool.lock;
           if not abandoned then begin
             let t_run = Obs.Clock.now () in
             let r = guarded f x ~index:i in
             Obs.Metrics.observe h_run (Obs.Clock.now () -. t_run);
             Mutex.lock pool.lock;
             (match results.(i) with
             | None ->
                 results.(i) <- Some r;
                 last_progress := Obs.Clock.now ();
                 count_published r;
                 decr remaining;
                 if !remaining = 0 then Condition.broadcast pool.batch_done
             | Some _ ->
                 (* The watchdog already published [Timed_out] for this
                    task and accounted for it; drop the late result. *)
                 ());
             Mutex.unlock pool.lock
           end
         in
         Obs.Metrics.incr m_submitted;
         Queue.push job lease)
       xs;
     Mutex.lock pool.lock;
     pool.leases <- pool.leases @ [ lease ];
     Obs.Metrics.set g_queue_depth (float_of_int (depth pool));
     Condition.broadcast pool.pending;
     Mutex.unlock pool.lock;
     match timeout_s with
     | None ->
         Mutex.lock pool.lock;
         while !remaining > 0 do
           Condition.wait pool.batch_done pool.lock
         done;
         Mutex.unlock pool.lock
     | Some limit ->
         (* OCaml's stdlib [Condition] has no timed wait, so the caller
            doubles as the watchdog: poll the batch, publishing [Timed_out]
            for any task past the limit. The worker running an abandoned
            task is not preempted — it stays occupied until the task
            returns on its own, and only then frees its slot — but the
            batch no longer waits for it. A task no worker has started is
            bounded against [last_progress] (initially the submission
            instant): if every worker is wedged, queued tasks would
            otherwise keep [nan] start times forever and the batch would
            never settle despite the limit, while on a healthy pool every
            task start refreshes the bound so a long queue never times out
            merely for waiting. *)
         let poll = Float.max 0.001 (Float.min 0.05 (limit /. 10.)) in
         Mutex.lock pool.lock;
         while !remaining > 0 do
           let now = Obs.Clock.now () in
           Array.iteri
             (fun i t0 ->
               if results.(i) = None then begin
                 let origin = if Float.is_nan t0 then !last_progress else t0 in
                 if now -. origin > limit then begin
                   results.(i) <-
                     Some (timed_out ~index:i ~elapsed_s:(now -. origin) limit);
                   Obs.Metrics.incr m_timed_out;
                   decr remaining
                 end
               end)
             started;
           if !remaining > 0 then begin
             Mutex.unlock pool.lock;
             Unix.sleepf poll;
             Mutex.lock pool.lock
           end
         done;
         Mutex.unlock pool.lock
   end);
  Array.to_list (Array.map Option.get results)

let reraise_first results =
  List.map
    (function
      | Ok v -> v
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results

let map_pool ?timeout_s pool f xs =
  reraise_first (try_map_pool ?timeout_s pool f xs)

(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let with_transient ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let try_map ?domains ?timeout_s ?abort f xs =
  match domains with
  | None -> try_map_pool ?timeout_s ?abort (default ()) f xs
  | Some n when n <= 1 ->
      Obs.Metrics.incr m_batches;
      Obs.Metrics.set g_workers 1.;
      List.mapi (fun i x -> guarded_seq ?timeout_s ?abort f x ~index:i) xs
  | Some n ->
      with_transient ~domains:n (fun pool ->
          try_map_pool ?timeout_s ?abort pool f xs)

let map ?domains ?timeout_s f xs = reraise_first (try_map ?domains ?timeout_s f xs)
