type error = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  pending : Condition.t;  (** work enqueued, or shutdown requested *)
  batch_done : Condition.t;  (** a batch counter reached zero *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let worker pool =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else (
        Condition.wait pool.pending pool.lock;
        next ())
    in
    match next () with
    | None -> Mutex.unlock pool.lock
    | Some job ->
        Mutex.unlock pool.lock;
        job ();
        loop ()
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      pending = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.pending;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let guarded f x ~index =
  match f x with
  | v -> Ok v
  | exception exn -> Error { index; exn; backtrace = Printexc.get_raw_backtrace () }

let try_map_pool pool f xs =
  let n = List.length xs in
  let results = Array.make n None in
  (if pool.workers = [] then
     (* size-1 pool: sequential fallback on the calling domain *)
     List.iteri (fun i x -> results.(i) <- Some (guarded f x ~index:i)) xs
   else begin
     let remaining = ref n in
     List.iteri
       (fun i x ->
         let job () =
           let r = guarded f x ~index:i in
           Mutex.lock pool.lock;
           results.(i) <- Some r;
           decr remaining;
           if !remaining = 0 then Condition.broadcast pool.batch_done;
           Mutex.unlock pool.lock
         in
         Mutex.lock pool.lock;
         Queue.push job pool.queue;
         Condition.signal pool.pending;
         Mutex.unlock pool.lock)
       xs;
     Mutex.lock pool.lock;
     while !remaining > 0 do
       Condition.wait pool.batch_done pool.lock
     done;
     Mutex.unlock pool.lock
   end);
  Array.to_list (Array.map Option.get results)

let reraise_first results =
  List.map
    (function
      | Ok v -> v
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results

let map_pool pool f xs = reraise_first (try_map_pool pool f xs)

(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let with_transient ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let try_map ?domains f xs =
  match domains with
  | None -> try_map_pool (default ()) f xs
  | Some n when n <= 1 -> List.mapi (fun i x -> guarded f x ~index:i) xs
  | Some n -> with_transient ~domains:n (fun pool -> try_map_pool pool f xs)

let map ?domains f xs = reraise_first (try_map ?domains f xs)
