(* Raw backtraces are only recorded when explicitly enabled; without this,
   the [backtrace] captured in a worker domain and re-raised on the caller
   is empty and the failure's origin is lost across the domain boundary.
   The flag is domain-local in OCaml 5, so besides this process-level
   enable (covering the sequential paths), every spawned worker re-enables
   it for its own domain. *)
let () = Printexc.record_backtrace true

type error = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

exception Timed_out of { limit_s : float; elapsed_s : float }
(** The per-task watchdog limit and the elapsed time measured when the
    overrun was published. *)

exception Reentrant_submission

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  pending : Condition.t;  (** work enqueued, or shutdown requested *)
  batch_done : Condition.t;  (** a batch counter reached zero *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let worker pool =
  Printexc.record_backtrace true;
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else (
        Condition.wait pool.pending pool.lock;
        next ())
    in
    match next () with
    | None -> Mutex.unlock pool.lock
    | Some job ->
        Mutex.unlock pool.lock;
        job ();
        loop ()
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      pending = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.pending;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let guarded f x ~index =
  match f x with
  | v -> Ok v
  | exception exn -> Error { index; exn; backtrace = Printexc.get_raw_backtrace () }

let timed_out ~index ~elapsed_s limit =
  Error
    {
      index;
      exn = Timed_out { limit_s = limit; elapsed_s };
      backtrace = Printexc.get_raw_backtrace ();
    }

(** Sequential execution cannot preempt a running task, so the watchdog
    here is post-hoc: a task that overran the limit completes, but its
    result is replaced by [Timed_out] for parity with the pooled path; the
    payload's [elapsed_s] is the task's full measured duration. *)
let guarded_seq ?timeout_s f x ~index =
  match timeout_s with
  | None -> guarded f x ~index
  | Some limit ->
      let t0 = Unix.gettimeofday () in
      let r = guarded f x ~index in
      let elapsed_s = Unix.gettimeofday () -. t0 in
      if elapsed_s > limit then timed_out ~index ~elapsed_s limit else r

(** A worker asking its own pool to run a batch would deadlock (every
    worker may end up blocked on an inner batch no free worker can ever
    start), so refuse re-entrant submissions outright. *)
let check_reentrancy pool =
  let self = Domain.self () in
  Mutex.lock pool.lock;
  let reentrant =
    List.exists (fun d -> Domain.get_id d = self) pool.workers
  in
  Mutex.unlock pool.lock;
  if reentrant then raise Reentrant_submission

let try_map_pool ?timeout_s pool f xs =
  check_reentrancy pool;
  let n = List.length xs in
  let results = Array.make n None in
  (if pool.workers = [] then
     (* size-1 pool: sequential fallback on the calling domain *)
     List.iteri (fun i x -> results.(i) <- Some (guarded_seq ?timeout_s f x ~index:i)) xs
   else begin
     let remaining = ref n in
     (* Wall-clock start per task, written under the pool lock when a
        worker picks the task up; nan = not started yet. The watchdog
        clock runs from task start, not batch submission. *)
     let started = Array.make n Float.nan in
     List.iteri
       (fun i x ->
         let job () =
           Mutex.lock pool.lock;
           let abandoned = results.(i) <> None in
           if not abandoned then started.(i) <- Unix.gettimeofday ();
           Mutex.unlock pool.lock;
           if not abandoned then begin
             let r = guarded f x ~index:i in
             Mutex.lock pool.lock;
             (match results.(i) with
             | None ->
                 results.(i) <- Some r;
                 decr remaining;
                 if !remaining = 0 then Condition.broadcast pool.batch_done
             | Some _ ->
                 (* The watchdog already published [Timed_out] for this
                    task and accounted for it; drop the late result. *)
                 ());
             Mutex.unlock pool.lock
           end
         in
         Mutex.lock pool.lock;
         Queue.push job pool.queue;
         Condition.signal pool.pending;
         Mutex.unlock pool.lock)
       xs;
     match timeout_s with
     | None ->
         Mutex.lock pool.lock;
         while !remaining > 0 do
           Condition.wait pool.batch_done pool.lock
         done;
         Mutex.unlock pool.lock
     | Some limit ->
         (* OCaml's stdlib [Condition] has no timed wait, so the caller
            doubles as the watchdog: poll the batch, publishing [Timed_out]
            for any started task past the limit. The worker running an
            abandoned task is not preempted — it stays occupied until the
            task returns on its own, and only then frees its slot — but the
            batch no longer waits for it. *)
         let poll = Float.max 0.001 (Float.min 0.05 (limit /. 10.)) in
         Mutex.lock pool.lock;
         while !remaining > 0 do
           let now = Unix.gettimeofday () in
           Array.iteri
             (fun i t0 ->
               if
                 results.(i) = None
                 && (not (Float.is_nan t0))
                 && now -. t0 > limit
               then begin
                 results.(i) <- Some (timed_out ~index:i ~elapsed_s:(now -. t0) limit);
                 decr remaining
               end)
             started;
           if !remaining > 0 then begin
             Mutex.unlock pool.lock;
             Unix.sleepf poll;
             Mutex.lock pool.lock
           end
         done;
         Mutex.unlock pool.lock
   end);
  Array.to_list (Array.map Option.get results)

let reraise_first results =
  List.map
    (function
      | Ok v -> v
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results

let map_pool ?timeout_s pool f xs = reraise_first (try_map_pool ?timeout_s pool f xs)

(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let with_transient ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let try_map ?domains ?timeout_s f xs =
  match domains with
  | None -> try_map_pool ?timeout_s (default ()) f xs
  | Some n when n <= 1 ->
      List.mapi (fun i x -> guarded_seq ?timeout_s f x ~index:i) xs
  | Some n ->
      with_transient ~domains:n (fun pool -> try_map_pool ?timeout_s pool f xs)

let map ?domains ?timeout_s f xs = reraise_first (try_map ?domains ?timeout_s f xs)
