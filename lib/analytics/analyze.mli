(** The streaming journal miner: one pass, three system-level tables.

    An analyzer owns one {!Cascade}, one {!Trajectory} and one
    {!Residual} accumulator and feeds every incoming campaign cell to
    all three. Cells arrive either from crash-safe campaign journals
    ({!ingest}, built on the constant-memory {!Scenarios.Journal.fold})
    or live from a running campaign
    ([Scenarios.Campaign.run ?on_cell:(Analyze.observe t)]); both paths
    produce identical tables, and any interleaving or permutation of the
    same cells produces byte-identical CSVs — the analyzers are
    order-independent by construction, so journals written under any
    [--shards]/[-j]/chaos configuration mine to the same bytes.

    Telemetry rides the standard obs/1 registry: [analytics.records],
    [analytics.records_skipped] and [analytics.journals] counters are
    bumped as the stream flows, and {!publish} exports the result-level
    gauges so [bin/metrics_check] can gate trends in CI. *)

type t
(** A live analyzer. All operations serialize on an internal mutex, so
    an analyzer may be fed concurrently — e.g. from pool worker domains
    via [?on_cell]. *)

val create : unit -> t

val observe : t -> Scenarios.Campaign.cell -> unit
(** Feed one live cell (flattened through {!Record.of_cell}; counted in
    [analytics.records]). Thread-safe. *)

val observe_record : t -> Record.t -> unit
(** Feed one already-flattened record. Thread-safe. *)

val ingest : t -> string -> unit
(** Stream every intact record of the campaign-cell journal at the
    given path through the analyzers, in constant memory. Records that
    fail {!Record.validate} and torn or corrupt tails are skipped and
    counted in [analytics.records_skipped] — a journal interrupted by
    SIGKILL or a device failure mines fine. The journal must hold
    [Scenarios.Campaign.cell] values (the same contract as
    {!Scenarios.Journal.replay}: [Marshal] framing is not
    self-describing across types). *)

val records : t -> int
(** Cells accepted so far (live and journaled). *)

val skipped : t -> int
(** Records rejected (validation failure or torn tail). *)

val journals : t -> int
(** Journal files ingested. *)

val cascade : t -> Cascade.row list
(** Snapshot of the cascade table (see {!Cascade.rows}). *)

val trajectory : t -> Trajectory.row list
(** Snapshot of the trajectory surface (see {!Trajectory.rows}). *)

val residual : t -> Residual.row list
(** Snapshot of the residual table (see {!Residual.rows}). *)

val residual_fraction : t -> float
(** Aggregate residual-emergence fraction (see {!Residual.fraction}). *)

val goal_cells : t -> int
(** Cells whose fault flipped at least one goal monitor (see
    {!Residual.goal_cells}). *)

val missed_cells : t -> int
(** Cells the campaign verdict classified as [Missed] (see
    {!Residual.missed_cells}). *)

val cascade_csv : t -> string
val trajectory_csv : t -> string

val residual_csv : t -> string
(** Deterministic CSV renderings of the three tables. *)

val footprint : t -> int
(** Total live keyed entries and retained sample elements across the
    three analyzers — bounded by grid diversity and reservoir
    capacities, independent of how many records streamed through.
    [test/test_analytics.ml] asserts it stays flat when the input
    journal grows tenfold. *)

val publish : t -> unit
(** Export result-level gauges to the obs registry:
    [analytics.cascades], [analytics.cascade_groups],
    [analytics.trajectory_points], [analytics.goal_flips],
    [analytics.residual_fraction] and [analytics.footprint]. Call before
    writing a [--metrics] snapshot. *)
