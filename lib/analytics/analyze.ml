(** The streaming journal miner (see analyze.mli). *)

type t = {
  lock : Mutex.t;
  cascade_t : Cascade.t;
  trajectory_t : Trajectory.t;
  residual_t : Residual.t;
  mutable records : int;
  mutable skipped : int;
  mutable journals : int;
}

(* Stream-volume counters tick as cells flow (so a long ingest is
   observable in flight); the result-level numbers are gauges, published
   once the tables are read ({!publish}). *)
let m_records = Obs.Metrics.counter "analytics.records"
let m_skipped = Obs.Metrics.counter "analytics.records_skipped"
let m_journals = Obs.Metrics.counter "analytics.journals"
let g_cascades = Obs.Metrics.gauge "analytics.cascades"
let g_groups = Obs.Metrics.gauge "analytics.cascade_groups"
let g_points = Obs.Metrics.gauge "analytics.trajectory_points"
let g_flips = Obs.Metrics.gauge "analytics.goal_flips"
let g_residual = Obs.Metrics.gauge "analytics.residual_fraction"
let g_footprint = Obs.Metrics.gauge "analytics.footprint"

let create () =
  {
    lock = Mutex.create ();
    cascade_t = Cascade.create ();
    trajectory_t = Trajectory.create ();
    residual_t = Residual.create ();
    records = 0;
    skipped = 0;
    journals = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let observe_record t r =
  locked t (fun () ->
      t.records <- t.records + 1;
      Obs.Metrics.incr m_records;
      Cascade.observe t.cascade_t r;
      Trajectory.observe t.trajectory_t r;
      Residual.observe t.residual_t r)

let observe t cell = observe_record t (Record.of_cell cell)

let skip t =
  locked t (fun () ->
      t.skipped <- t.skipped + 1;
      Obs.Metrics.incr m_skipped)

let ingest t path =
  Obs.span "analytics.ingest" (fun () ->
      let (), stats =
        Scenarios.Journal.fold path ~init:()
          ~f:(fun () _key (cell : Scenarios.Campaign.cell) ->
            match Record.validate (Record.of_cell cell) with
            | Ok r -> observe_record t r
            | Error _ -> skip t)
      in
      (* A torn tail is one record the producer started and never
         finished — surface it as a skip, not silence: CI asserts the
         chaos journal's tear was actually seen. *)
      if stats.Scenarios.Journal.fold_dropped_bytes > 0 then skip t;
      locked t (fun () ->
          t.journals <- t.journals + 1;
          Obs.Metrics.incr m_journals))

let records t = locked t (fun () -> t.records)
let skipped t = locked t (fun () -> t.skipped)
let journals t = locked t (fun () -> t.journals)
let cascade t = locked t (fun () -> Cascade.rows t.cascade_t)
let trajectory t = locked t (fun () -> Trajectory.rows t.trajectory_t)
let residual t = locked t (fun () -> Residual.rows t.residual_t)
let residual_fraction t = locked t (fun () -> Residual.fraction t.residual_t)
let goal_cells t = locked t (fun () -> Residual.goal_cells t.residual_t)
let missed_cells t = locked t (fun () -> Residual.missed_cells t.residual_t)
let cascade_csv t = locked t (fun () -> Cascade.to_csv t.cascade_t)
let trajectory_csv t = locked t (fun () -> Trajectory.to_csv t.trajectory_t)
let residual_csv t = locked t (fun () -> Residual.to_csv t.residual_t)

let footprint t =
  locked t (fun () ->
      Cascade.footprint t.cascade_t
      + Trajectory.footprint t.trajectory_t
      + Residual.footprint t.residual_t)

let publish t =
  locked t (fun () ->
      let rows = Cascade.rows t.cascade_t in
      Obs.Metrics.set g_cascades
        (float_of_int (List.length (List.filter (fun r -> r.Cascade.cascade) rows)));
      Obs.Metrics.set g_groups (float_of_int (List.length rows));
      Obs.Metrics.set g_points (float_of_int (Trajectory.points t.trajectory_t));
      Obs.Metrics.set g_flips
        (float_of_int
           (List.fold_left (fun acc r -> acc + r.Cascade.flips) 0 rows));
      Obs.Metrics.set g_residual (Residual.fraction t.residual_t);
      Obs.Metrics.set g_footprint
        (float_of_int
           (Cascade.footprint t.cascade_t
           + Trajectory.footprint t.trajectory_t
           + Residual.footprint t.residual_t)))
