(** Cascade detection: faults whose injection flips more than one goal
    monitor.

    The thesis's central claim is that safety violations are system-level
    phenomena: one component fault propagates through feedback until
    {e several} independent goal monitors trip, even though every
    component behaved correctly given its inputs. Per-cell
    classification cannot see this — each cell knows only its own
    scenario. This analyzer groups the stream by (fault, seed) and
    accumulates, per group, the {e set} of goal monitors the fault ever
    flipped across scenarios and windows; a group whose set has two or
    more distinct monitors (a fault-induced collision counts as the
    ["collision"] pseudo-monitor) is flagged as a cascade.

    State is bounded by the campaign grid's diversity — distinct
    (fault, seed) groups × the ≤ 10 goal monitors — never by the number
    of records streamed; lead-time percentiles come from a bounded
    order-independent bottom-k sample ({!Sketch.Reservoir}). *)

type t
(** Accumulator over a record stream. Not thread-safe on its own; the
    {!Analyze} driver serializes access. *)

val create : unit -> t

val observe : t -> Record.t -> unit
(** Fold one record into the grouping. Order-independent: any
    permutation of the same records yields the same {!rows}. *)

type row = {
  fault : string;
  seed : int;
  cascade : bool;  (** ≥ 2 distinct goal monitors flipped *)
  cells : int;  (** records in this (fault, seed) group *)
  scenarios : int;  (** distinct scenarios the group covered *)
  windows : int;  (** distinct classification windows *)
  monitors : string list;  (** distinct goal monitors flipped, sorted *)
  flips : int;  (** total goal-monitor flips across all cells *)
  detected : int;
  missed : int;
  spurious : int;
  no_effect : int;  (** cell verdicts, as in the campaign summary *)
  lead_count : int;  (** detected cells contributing lead times *)
  lead_min : float;
  lead_mean : float;
  lead_p50 : float;
  lead_p95 : float;
  lead_max : float;  (** anticipation lead-time spread, seconds *)
  first_flip_min : float;
  first_flip_max : float;
      (** earliest and latest first-flip instants across the group's goal
          monitors — the cascade's temporal footprint *)
}

val rows : t -> row list
(** Every (fault, seed) group — cascades and non-cascades alike, so the
    table doubles as the fault-level trend surface — sorted by
    (fault, seed). *)

val cascades : t -> int
(** Groups currently flagged as cascades. *)

val footprint : t -> int
(** Live keyed entries plus retained sample elements — the analyzer's
    bounded-state measure, asserted flat under journal growth by
    [test/test_analytics.ml]. *)

val to_csv : t -> string
(** Deterministic CSV of {!rows} (header included; empty lead columns
    for groups with no detected cell). *)
