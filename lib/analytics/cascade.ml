(** Cascade detection across a campaign-cell stream (see cascade.mli). *)

type group = {
  mutable cells : int;
  mutable detected : int;
  mutable missed : int;
  mutable spurious : int;
  mutable no_effect : int;
  scenarios : (int, unit) Hashtbl.t;
  windows : (float, unit) Hashtbl.t;
  monitors : (string, int * Sketch.Moments.t) Hashtbl.t;
      (** goal monitor id → (flip count, first-flip-time moments) *)
  mutable lead : Sketch.Moments.t;
  leads : Sketch.Reservoir.t;
}

type t = { groups : (string * int, group) Hashtbl.t }

let create () = { groups = Hashtbl.create 16 }

let group t key =
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
      let g =
        {
          cells = 0;
          detected = 0;
          missed = 0;
          spurious = 0;
          no_effect = 0;
          scenarios = Hashtbl.create 8;
          windows = Hashtbl.create 4;
          monitors = Hashtbl.create 8;
          lead = Sketch.Moments.empty;
          leads = Sketch.Reservoir.create ();
        }
      in
      Hashtbl.replace t.groups key g;
      g

let observe t (r : Record.t) =
  let g = group t (r.Record.fault, r.Record.seed) in
  g.cells <- g.cells + 1;
  Hashtbl.replace g.scenarios r.Record.scenario ();
  Hashtbl.replace g.windows r.Record.window ();
  (match r.Record.detection with
  | Scenarios.Campaign.Detected lead ->
      g.detected <- g.detected + 1;
      g.lead <- Sketch.Moments.add g.lead lead;
      Sketch.Reservoir.add g.leads ~tag:(Record.key r) lead
  | Scenarios.Campaign.Missed -> g.missed <- g.missed + 1
  | Scenarios.Campaign.Spurious -> g.spurious <- g.spurious + 1
  | Scenarios.Campaign.No_effect -> g.no_effect <- g.no_effect + 1);
  List.iter
    (fun (id, first_t) ->
      let count, m =
        match Hashtbl.find_opt g.monitors id with
        | Some (c, m) -> (c, m)
        | None -> (0, Sketch.Moments.empty)
      in
      Hashtbl.replace g.monitors id (count + 1, Sketch.Moments.add m first_t))
    r.Record.goal_flips

type row = {
  fault : string;
  seed : int;
  cascade : bool;
  cells : int;
  scenarios : int;
  windows : int;
  monitors : string list;
  flips : int;
  detected : int;
  missed : int;
  spurious : int;
  no_effect : int;
  lead_count : int;
  lead_min : float;
  lead_mean : float;
  lead_p50 : float;
  lead_p95 : float;
  lead_max : float;
  first_flip_min : float;
  first_flip_max : float;
}

let rows t =
  Hashtbl.fold
    (fun (fault, seed) (g : group) acc ->
      let monitors =
        List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) g.monitors [])
      in
      let flips = Hashtbl.fold (fun _ (c, _) acc -> acc + c) g.monitors 0 in
      let first_flip_min, first_flip_max =
        Hashtbl.fold
          (fun _ (_, m) (lo, hi) ->
            ( Float.min lo (Sketch.Moments.minimum m),
              Float.max hi (Sketch.Moments.maximum m) ))
          g.monitors (infinity, neg_infinity)
      in
      let have_flips = monitors <> [] in
      {
        fault;
        seed;
        cascade = List.length monitors >= 2;
        cells = g.cells;
        scenarios = Hashtbl.length g.scenarios;
        windows = Hashtbl.length g.windows;
        monitors;
        flips;
        detected = g.detected;
        missed = g.missed;
        spurious = g.spurious;
        no_effect = g.no_effect;
        lead_count = Sketch.Moments.count g.lead;
        lead_min = Sketch.Moments.minimum g.lead;
        lead_mean = Sketch.Moments.mean g.lead;
        lead_p50 = Sketch.Reservoir.percentile g.leads 50.;
        lead_p95 = Sketch.Reservoir.percentile g.leads 95.;
        lead_max = Sketch.Moments.maximum g.lead;
        first_flip_min = (if have_flips then first_flip_min else 0.);
        first_flip_max = (if have_flips then first_flip_max else 0.);
      }
      :: acc)
    t.groups []
  |> List.sort (fun a b -> compare (a.fault, a.seed) (b.fault, b.seed))

let cascades t = List.length (List.filter (fun r -> r.cascade) (rows t))

let footprint t =
  Hashtbl.fold
    (fun _ (g : group) acc ->
      acc + 1
      + Hashtbl.length g.scenarios
      + Hashtbl.length g.windows
      + Hashtbl.length g.monitors
      + Sketch.Reservoir.size g.leads)
    t.groups 0

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "fault,seed,cascade,cells,scenarios,windows,goal_monitors,goal_flips,detected,\
     missed,spurious,no_effect,lead_min_s,lead_mean_s,lead_p50_s,lead_p95_s,\
     lead_max_s,first_flip_min_s,first_flip_max_s\n";
  List.iter
    (fun r ->
      let lead fmt v = if r.lead_count = 0 then "" else Fmt.str fmt v in
      let flip v = if r.flips = 0 then "" else Fmt.str "%g" v in
      Buffer.add_string buf
        (Fmt.str "%s,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s\n"
           (Scenarios.Export.escape r.fault)
           r.seed
           (if r.cascade then 1 else 0)
           r.cells r.scenarios r.windows
           (String.concat ";" r.monitors)
           r.flips r.detected r.missed r.spurious r.no_effect (lead "%g" r.lead_min)
           (lead "%g" r.lead_mean) (lead "%g" r.lead_p50) (lead "%g" r.lead_p95)
           (lead "%g" r.lead_max) (flip r.first_flip_min) (flip r.first_flip_max)))
    (rows t);
  Buffer.contents buf
