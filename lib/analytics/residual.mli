(** Aggregate residual-emergence estimation — the thesis Ch. 5 metric at
    campaign scale.

    The ICPA decomposition argues each vehicle-level goal is implied by
    its subgoal set; the {e residual emergence} of the composed system is
    the fraction of goal-level violations the subgoal monitors failed to
    anticipate — system-level behaviour invisible at every component
    interface. The thesis computes it per evaluation table; this
    analyzer computes it over an entire campaign stream: every goal
    monitor flip (including fault-induced collisions, as the
    ["collision"] pseudo-goal) is attributed to its goal, checked
    against that goal's own subgoal monitors within the record's window
    ({!Record.goal_lead}), and the undetected remainder reported per
    goal and in aggregate. Live state is one counter pair per goal id —
    constant regardless of stream length. *)

type t
(** Accumulator over a record stream. Not thread-safe on its own; the
    {!Analyze} driver serializes access. *)

val create : unit -> t

val observe : t -> Record.t -> unit
(** Fold one record's goal flips into the estimate. Order-independent. *)

type row = {
  goal : string;  (** ["1"]..["9"], ["collision"], or ["TOTAL"] *)
  flips : int;  (** cells in which this goal's monitor flipped *)
  anticipated : int;  (** flips the goal's own subgoal monitors caught *)
  residual : int;  (** flips no eligible subgoal monitor anticipated *)
  fraction : float;  (** residual / flips (0 when no flip) *)
}

val rows : t -> row list
(** Per-goal rows sorted by goal id, followed by the aggregate [TOTAL]
    row (always present, zeros included). *)

val fraction : t -> float
(** The aggregate residual-emergence fraction — the [TOTAL] row's
    {!field-row.fraction}. *)

val cells : t -> int
(** Records streamed. *)

val goal_cells : t -> int
(** Records with at least one goal-level effect. *)

val missed_cells : t -> int
(** Records whose own cell verdict was [Missed] — the cell-granularity
    residual count (a cell verdict accepts {e any} subgoal monitor as
    anticipation; the per-goal attribution above is stricter). *)

val footprint : t -> int
(** Live keyed entries (bounded-state measure; see
    {!Cascade.footprint}). *)

val to_csv : t -> string
(** Deterministic CSV of {!rows} (header included). *)
