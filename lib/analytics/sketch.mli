(** Order-independent, bounded-memory streaming statistics.

    The analytics pipeline must produce byte-identical tables no matter
    how the producing campaign interleaved its appends: a journal written
    with [--shards 4 -j 8] holds the same records as the sequential run,
    in a different order. Every sketch here is therefore a {e commutative}
    aggregate — feeding the same multiset of observations in any order
    yields the same state — and every sketch is bounded: its live size
    depends on its capacity, never on how many observations streamed
    through it. *)

module Moments : sig
  (** Count / sum / min / max in O(1) space — the exact streaming
      aggregates, kept as a small immutable value. *)

  type t

  val empty : t
  (** No observations yet. *)

  val add : t -> float -> t
  (** Fold in one observation. *)

  val count : t -> int
  (** Observations folded in. *)

  val minimum : t -> float
  (** Smallest observation (0 when empty). *)

  val maximum : t -> float
  (** Largest observation (0 when empty). *)

  val mean : t -> float
  (** Arithmetic mean (0 when empty). *)
end

module Reservoir : sig
  (** A deterministic bottom-k sample for streaming percentiles.

      Classic reservoir sampling draws from a PRNG advanced per record,
      which makes the kept sample depend on arrival order. This one is a
      {e bottom-k sketch}: each observation gets a priority from a pure
      64-bit hash of its [tag] (the observation's stable identity — e.g.
      a cell's fault × scenario × seed × window key) and its value, and
      the reservoir keeps the [capacity] elements with the smallest
      priorities. The kept set is a pure function of the multiset of
      [(tag, value)] pairs — order-independent, duplicate-stable (an
      identical re-appended record collapses into the same element) and
      reproducible across runs and machines. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 64) bounds the elements retained; live size
      never exceeds it regardless of stream length. *)

  val add : t -> tag:string -> float -> unit
  (** Offer one observation. [tag] must identify the observation stably
      across runs — two different observations with the same tag and
      value are indistinguishable and collapse into one element. *)

  val size : t -> int
  (** Elements currently retained ([<= capacity]). *)

  val values : t -> float list
  (** Retained values, sorted ascending. *)

  val percentile : t -> float -> float
  (** [percentile t p] is the nearest-rank [p]th percentile (0–100) of
      the retained sample, 0 when empty. An estimate once the stream
      exceeded [capacity]; exact below it. *)
end
