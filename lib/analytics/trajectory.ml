(** Per-goal rate surfaces over the fault × window × seed grid (see
    trajectory.mli). *)

type point = {
  mutable cells : int;
  mutable hits : int;
  mutable false_negatives : int;
  mutable false_positives : int;
  mutable inhibited : int;
  mutable flips : int;
  mutable anticipated : int;
  leads : Sketch.Reservoir.t;
}

type t = { points : (int * string * int * float, point) Hashtbl.t }

let create () = { points = Hashtbl.create 64 }

let point t key =
  match Hashtbl.find_opt t.points key with
  | Some p -> p
  | None ->
      let p =
        {
          cells = 0;
          hits = 0;
          false_negatives = 0;
          false_positives = 0;
          inhibited = 0;
          flips = 0;
          anticipated = 0;
          leads = Sketch.Reservoir.create ();
        }
      in
      Hashtbl.replace t.points key p;
      p

let observe t (r : Record.t) =
  List.iter
    (fun (g : Scenarios.Campaign.goal_counts) ->
      let goal = g.Scenarios.Campaign.goal in
      let p = point t (goal, r.Record.fault, r.Record.seed, r.Record.window) in
      p.cells <- p.cells + 1;
      p.hits <- p.hits + g.Scenarios.Campaign.goal_hits;
      p.false_negatives <- p.false_negatives + g.Scenarios.Campaign.goal_false_negatives;
      p.false_positives <- p.false_positives + g.Scenarios.Campaign.goal_false_positives;
      p.inhibited <- p.inhibited + g.Scenarios.Campaign.goal_inhibited;
      let id = string_of_int goal in
      if List.mem_assoc id r.Record.goal_flips then begin
        p.flips <- p.flips + 1;
        match Record.goal_lead r id with
        | Some lead ->
            p.anticipated <- p.anticipated + 1;
            Sketch.Reservoir.add p.leads ~tag:(Record.key r) lead
        | None -> ()
      end)
    r.Record.per_goal

type row = {
  goal : int;
  fault : string;
  seed : int;
  window : float;
  cells : int;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;
  flips : int;
  anticipated : int;
  hit_rate : float;
  false_negative_rate : float;
  false_positive_rate : float;
  inhibited_rate : float;
  flip_rate : float;
  lead_p50 : float;
  lead_p95 : float;
}

let rows t =
  Hashtbl.fold
    (fun (goal, fault, seed, window) (p : point) acc ->
      let rate n = float_of_int n /. float_of_int p.cells in
      {
        goal;
        fault;
        seed;
        window;
        cells = p.cells;
        hits = p.hits;
        false_negatives = p.false_negatives;
        false_positives = p.false_positives;
        inhibited = p.inhibited;
        flips = p.flips;
        anticipated = p.anticipated;
        hit_rate = rate p.hits;
        false_negative_rate = rate p.false_negatives;
        false_positive_rate = rate p.false_positives;
        inhibited_rate = rate p.inhibited;
        flip_rate = rate p.flips;
        lead_p50 = Sketch.Reservoir.percentile p.leads 50.;
        lead_p95 = Sketch.Reservoir.percentile p.leads 95.;
      }
      :: acc)
    t.points []
  |> List.sort (fun a b ->
         compare (a.goal, a.fault, a.seed, a.window) (b.goal, b.fault, b.seed, b.window))

let points t = Hashtbl.length t.points

let footprint t =
  Hashtbl.fold (fun _ p acc -> acc + 1 + Sketch.Reservoir.size p.leads) t.points 0

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "goal,fault,seed,window_s,cells,hits,false_negatives,false_positives,inhibited,\
     flips,anticipated,hit_rate,false_negative_rate,false_positive_rate,\
     inhibited_rate,flip_rate,lead_p50_s,lead_p95_s\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Fmt.str "%d,%s,%d,%g,%d,%d,%d,%d,%d,%d,%d,%g,%g,%g,%g,%g,%g,%g\n" r.goal
           (Scenarios.Export.escape r.fault)
           r.seed r.window r.cells r.hits r.false_negatives r.false_positives
           r.inhibited r.flips r.anticipated r.hit_rate r.false_negative_rate
           r.false_positive_rate r.inhibited_rate r.flip_rate r.lead_p50 r.lead_p95))
    (rows t);
  Buffer.contents buf
