(** Behaviour-over-time trajectories: per-goal rate surfaces over the
    fault × window × seed grid.

    Each campaign cell carries per-parent-goal classification counters
    (hits, false negatives, false positives, inhibitions) plus the goal
    monitors it flipped. This analyzer accumulates them per
    (goal, fault, seed, window) point, so sweeping the window or the
    seed and re-analyzing the journals yields the goal's detection
    behaviour {e as a surface} — rates over the grid — instead of one
    aggregate number, using only streaming counters: live state is one
    entry per occupied grid point (bounded by grid diversity, not record
    count) plus a small bottom-k reservoir per point for anticipation
    lead-time percentiles. *)

type t
(** Accumulator over a record stream. Not thread-safe on its own; the
    {!Analyze} driver serializes access. *)

val create : unit -> t

val observe : t -> Record.t -> unit
(** Fold one record's per-goal counters into the surface.
    Order-independent. *)

type row = {
  goal : int;  (** parent goal 1–9 *)
  fault : string;
  seed : int;
  window : float;
  cells : int;  (** records at this grid point *)
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;  (** summed per-goal counters *)
  flips : int;  (** cells where this goal's monitor flipped *)
  anticipated : int;
      (** flips anticipated by the goal's own subgoal monitors within the
          window ({!Record.goal_lead}) *)
  hit_rate : float;
  false_negative_rate : float;
  false_positive_rate : float;
  inhibited_rate : float;  (** per-cell averages of the counters above *)
  flip_rate : float;  (** flips / cells *)
  lead_p50 : float;
  lead_p95 : float;  (** anticipation lead percentiles (0 when no flip
                         was anticipated) *)
}

val rows : t -> row list
(** One row per occupied (goal, fault, seed, window) grid point, sorted
    by that key. *)

val points : t -> int
(** Occupied grid points. *)

val footprint : t -> int
(** Live keyed entries plus retained sample elements (bounded-state
    measure; see {!Cascade.footprint}). *)

val to_csv : t -> string
(** Deterministic CSV of {!rows} (header included). *)
