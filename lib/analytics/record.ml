(** The analytics view of one campaign cell (see record.mli). *)

type t = {
  scenario : int;
  fault : string;
  seed : int;
  window : float;
  detection : Scenarios.Campaign.detection;
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;
  goal_flips : (string * float) list;
  sub_flips : (string * int * float) list;
  per_goal : Scenarios.Campaign.goal_counts list;
}

let of_cell (c : Scenarios.Campaign.cell) : t =
  {
    scenario = c.Scenarios.Campaign.scenario;
    fault = Inject.Fault.to_string c.Scenarios.Campaign.fault;
    seed = c.Scenarios.Campaign.seed;
    window = c.Scenarios.Campaign.window;
    detection = c.Scenarios.Campaign.detection;
    hits = c.Scenarios.Campaign.hits;
    false_negatives = c.Scenarios.Campaign.false_negatives;
    false_positives = c.Scenarios.Campaign.false_positives;
    inhibited = c.Scenarios.Campaign.inhibited;
    goal_flips = c.Scenarios.Campaign.goal_flips;
    sub_flips = c.Scenarios.Campaign.sub_flips;
    per_goal = c.Scenarios.Campaign.per_goal;
  }

let validate (r : t) : (t, string) result =
  let finite f = Float.is_finite f in
  if r.scenario < 0 then Error "negative scenario number"
  else if r.fault = "" then Error "empty fault spec"
  else if not (finite r.window && r.window >= 0.) then Error "bad window"
  else if r.hits < 0 || r.false_negatives < 0 || r.false_positives < 0
          || r.inhibited < 0
  then Error "negative classification counter"
  else if not (List.for_all (fun (_, t) -> finite t) r.goal_flips) then
    Error "non-finite goal-flip time"
  else if not (List.for_all (fun (_, _, t) -> finite t) r.sub_flips) then
    Error "non-finite subgoal-flip time"
  else if
    not
      (List.for_all
         (fun (g : Scenarios.Campaign.goal_counts) ->
           g.Scenarios.Campaign.goal >= 1
           && g.Scenarios.Campaign.goal <= 9
           && g.Scenarios.Campaign.goal_hits >= 0
           && g.Scenarios.Campaign.goal_false_negatives >= 0
           && g.Scenarios.Campaign.goal_false_positives >= 0
           && g.Scenarios.Campaign.goal_inhibited >= 0)
         r.per_goal)
  then Error "per-goal counters out of range"
  else Ok r

let key r = Fmt.str "%s|%d|%d|%.17g" r.fault r.scenario r.seed r.window

let goal_lead (r : t) id =
  match List.assoc_opt id r.goal_flips with
  | None -> None
  | Some goal_t ->
      let eligible parent =
        match int_of_string_opt id with
        | Some g -> parent = g
        | None -> true (* "collision": any subgoal monitor counts *)
      in
      let sub_first =
        List.fold_left
          (fun acc (_, parent, t) ->
            if eligible parent then
              Some (match acc with None -> t | Some a -> Float.min a t)
            else acc)
          None r.sub_flips
      in
      (match sub_first with
      | Some s when s <= goal_t +. r.window -> Some (Float.max 0. (goal_t -. s))
      | _ -> None)
