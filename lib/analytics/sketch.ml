(** Order-independent, bounded-memory streaming statistics (see
    sketch.mli). *)

module Moments = struct
  type t = { count : int; sum : float; min_v : float; max_v : float }

  let empty = { count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    {
      count = t.count + 1;
      sum = t.sum +. x;
      min_v = Float.min t.min_v x;
      max_v = Float.max t.max_v x;
    }

  let count t = t.count
  let minimum t = if t.count = 0 then 0. else t.min_v
  let maximum t = if t.count = 0 then 0. else t.max_v
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
end

module Reservoir = struct
  (* The priority hash: FNV-1a over the tag and the value's bit pattern,
     finished with the SplitMix64 mixer for avalanche. Pure arithmetic on
     the observation's identity — no PRNG state, so the priority (and
     with it the kept bottom-k set) cannot depend on arrival order. *)
  let fnv64 s =
    let open Int64 in
    let prime = 0x100000001b3L in
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c -> h := mul (logxor !h (of_int (Char.code c))) prime)
      s;
    !h

  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  let priority ~tag value =
    mix (fnv64 (tag ^ "\x00" ^ Int64.to_string (Int64.bits_of_float value)))

  module Elt = struct
    type t = { prio : int64; tag : string; value : float }

    (* Total order on (priority, tag, value): ties on the hash are broken
       by the full identity, so the bottom-k cut is unambiguous and two
       genuinely identical observations compare equal (set semantics
       collapse them). *)
    let compare a b =
      match Int64.unsigned_compare a.prio b.prio with
      | 0 -> (
          match String.compare a.tag b.tag with
          | 0 -> Float.compare a.value b.value
          | c -> c)
      | c -> c
  end

  module S = Set.Make (Elt)

  type t = { capacity : int; mutable elts : S.t }

  let create ?(capacity = 64) () =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { capacity; elts = S.empty }

  let add t ~tag value =
    let e = { Elt.prio = priority ~tag value; tag; value } in
    t.elts <- S.add e t.elts;
    if S.cardinal t.elts > t.capacity then t.elts <- S.remove (S.max_elt t.elts) t.elts

  let size t = S.cardinal t.elts

  let values t =
    List.sort Float.compare (List.map (fun e -> e.Elt.value) (S.elements t.elts))

  let percentile t p =
    match values t with
    | [] -> 0.
    | vs ->
        let n = List.length vs in
        let rank =
          (* nearest rank, clamped into [1, n] *)
          Stdlib.max 1 (Stdlib.min n (int_of_float (ceil (p /. 100. *. float_of_int n))))
        in
        List.nth vs (rank - 1)
end
