(** Aggregate residual-emergence estimation (see residual.mli). *)

type counters = { mutable flips : int; mutable anticipated : int }

type t = {
  goals : (string, counters) Hashtbl.t;
  mutable cells : int;
  mutable goal_cells : int;
  mutable missed_cells : int;
}

let create () =
  { goals = Hashtbl.create 16; cells = 0; goal_cells = 0; missed_cells = 0 }

let counters t id =
  match Hashtbl.find_opt t.goals id with
  | Some c -> c
  | None ->
      let c = { flips = 0; anticipated = 0 } in
      Hashtbl.replace t.goals id c;
      c

let observe t (r : Record.t) =
  t.cells <- t.cells + 1;
  if r.Record.goal_flips <> [] then t.goal_cells <- t.goal_cells + 1;
  if r.Record.detection = Scenarios.Campaign.Missed then
    t.missed_cells <- t.missed_cells + 1;
  List.iter
    (fun (id, _) ->
      let c = counters t id in
      c.flips <- c.flips + 1;
      if Record.goal_lead r id <> None then c.anticipated <- c.anticipated + 1)
    r.Record.goal_flips

type row = {
  goal : string;
  flips : int;
  anticipated : int;
  residual : int;
  fraction : float;
}

let mk_row goal flips anticipated =
  let residual = flips - anticipated in
  {
    goal;
    flips;
    anticipated;
    residual;
    fraction = (if flips = 0 then 0. else float_of_int residual /. float_of_int flips);
  }

let rows t =
  let per_goal =
    Hashtbl.fold
      (fun id (c : counters) acc -> mk_row id c.flips c.anticipated :: acc)
      t.goals []
    |> List.sort (fun a b -> compare a.goal b.goal)
  in
  let flips = List.fold_left (fun acc r -> acc + r.flips) 0 per_goal in
  let anticipated = List.fold_left (fun acc r -> acc + r.anticipated) 0 per_goal in
  per_goal @ [ mk_row "TOTAL" flips anticipated ]

let fraction t =
  match List.rev (rows t) with total :: _ -> total.fraction | [] -> 0.

let cells t = t.cells
let goal_cells t = t.goal_cells
let missed_cells t = t.missed_cells
let footprint t = Hashtbl.length t.goals + 1

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "goal,flips,anticipated,residual,residual_fraction\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Fmt.str "%s,%d,%d,%d,%g\n" r.goal r.flips r.anticipated r.residual r.fraction))
    (rows t);
  Buffer.contents buf
