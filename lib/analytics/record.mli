(** The analytics view of one campaign cell.

    A journal record or a live [?on_cell] callback both carry a
    {!Scenarios.Campaign.cell}; this module flattens it into the
    self-describing observation the streaming analyzers consume: the
    fault is rendered to its stable spec string (the grouping key), and
    the cell's seed, window, per-monitor flip times and per-goal
    counters ride along so a record needs no out-of-band context — a
    single analyzer can mingle journals from different campaigns, seeds
    and window sweeps. *)

type t = {
  scenario : int;  (** scenario number (grid column) *)
  fault : string;  (** [Inject.Fault.to_string] — the [--inject] SPEC *)
  seed : int;  (** campaign seed the cell ran under *)
  window : float;  (** classification window, seconds *)
  detection : Scenarios.Campaign.detection;  (** the cell's own verdict *)
  hits : int;
  false_negatives : int;
  false_positives : int;
  inhibited : int;  (** inhibition intervals across all monitors *)
  goal_flips : (string * float) list;
      (** goal monitors the fault flipped — id (["1"]..["9"] or
          ["collision"]) with first new-violation time, sorted by id *)
  sub_flips : (string * int * float) list;
      (** subgoal monitors with new violations — (id, parent goal, first
          new-violation time), sorted by id *)
  per_goal : Scenarios.Campaign.goal_counts list;
      (** per-parent-goal classification counters, goals 1–9 *)
}

val of_cell : Scenarios.Campaign.cell -> t
(** Flatten one campaign cell. Pure; never raises on a well-typed cell. *)

val validate : t -> (t, string) result
(** Structural sanity check on a record decoded from disk: counters
    non-negative, window positive and finite, flip times finite, goals
    in range. Journals are [Marshal]-framed, so a record that decodes at
    the wrong type can be arbitrary garbage — this rejects the shapes
    that can be rejected cheaply (the CRC frame already catches
    corruption; see {!Scenarios.Journal}). *)

val key : t -> string
(** The record's stable identity, [fault|scenario|seed|window] — the
    reservoir tag ({!Sketch.Reservoir.add}) and duplicate collapser. *)

val goal_lead : t -> string -> float option
(** [goal_lead r id] — with what lead time was goal monitor [id]'s flip
    anticipated by the ICPA subgoal monitors {e of that goal}? [Some l]
    when the earliest such subgoal flip ran no later than the goal flip
    plus the record's window ([l >= 0], clamped like the cell verdict's
    lead); [None] when no eligible subgoal monitor flipped in time — the
    residual-emergence case. For the ["collision"] pseudo-goal every
    subgoal monitor is eligible, mirroring the cell-level verdict. *)
