(** [serve] — the campaign service daemon.

    {v
    serve --socket /tmp/campaignd.sock --state-dir /var/tmp/campaignd
    serve --queue 4 --quota 2 --deadline 120 --shards 2 -j 2
    serve --concurrent 2 --shards 4   # two lanes, two workers each
    serve --chaos accept@3,sread~0.05 --seed 42   # chaos-hardened run
    v}

    Runs until drained (SIGTERM, SIGINT or a client [drain] request) and
    exits 0 with every admitted request settled or checkpointed to the
    admission journal. Restarting with the same $(b,--state-dir) resumes
    the checkpointed work. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "campaignd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let state_dir_arg =
  Arg.(
    value
    & opt string "campaignd.state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Durability root: admission journal, per-request cell journals \
           and the result store. Reusing a previous run's directory \
           resumes its unfinished work.")

let run socket state_dir tcp_port queue quota concurrent store_budget deadline
    stall retry_after domains shards seed chaos metrics =
  let chaos =
    match chaos with
    | None -> None
    | Some spec -> (
        match Exec.Chaos.parse ~seed spec with
        | Ok plan -> Some plan
        | Error e ->
            Fmt.epr "--chaos: %s@." e;
            exit 1)
  in
  let cfg =
    {
      (Serve.Server.default_config ~socket ~state_dir) with
      Serve.Server.tcp_port;
      queue_bound = max 1 queue;
      quota = max 1 quota;
      concurrent = max 1 concurrent;
      store_budget_bytes = max 0 store_budget * 1024 * 1024;
      default_deadline_s = deadline;
      stall_timeout_s = stall;
      retry_after_s = retry_after;
      domains;
      shards;
      chaos;
      metrics_path = metrics;
    }
  in
  Fmt.pr "campaignd: listening on %s (state %s)@." socket state_dir;
  Serve.Server.run cfg;
  Fmt.pr "campaignd: drained@."

let cmd =
  let tcp_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp-port" ] ~docv:"PORT"
          ~doc:"Also listen on loopback TCP port $(docv).")
  in
  let queue =
    Arg.(
      value & opt int 8
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: at most $(docv) requests queued or running; \
             past it submissions are rejected with a retry-after hint \
             (backpressure, never unbounded buffering).")
  in
  let quota =
    Arg.(
      value & opt int 4
      & info [ "quota" ] ~docv:"N"
          ~doc:"Per-client concurrent-request quota.")
  in
  let concurrent =
    Arg.(
      value & opt int 1
      & info [ "concurrent" ] ~docv:"K"
          ~doc:
            "Run up to $(docv) admitted campaigns at once, each on a 1/$(docv) \
             share of the worker fleet (fleet-share scheduling). A free lane \
             picks the smallest queued grid first, so short requests are \
             never head-of-line blocked behind a long one. Results stay \
             byte-identical to the batch CLI for any $(docv).")
  in
  let store_budget =
    Arg.(
      value & opt int 64
      & info [ "store-budget" ] ~docv:"MB"
          ~doc:
            "Result-store size budget in MiB; past it the least-recently-used \
             results are evicted (0 = unbounded). An evicted digest simply \
             re-executes — incrementally, via its cell journal — on the next \
             submission.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Default request deadline (queue wait + run); requests past it \
             are cancelled and their cells reclaimed. Off by default; a \
             submission's own deadline takes precedence.")
  in
  let stall =
    Arg.(
      value & opt float 10.
      & info [ "stall-timeout" ] ~docv:"SECS"
          ~doc:
            "Drop a client whose replies have made no progress for $(docv) \
             seconds (the slowloris bound).")
  in
  let retry_after =
    Arg.(
      value & opt float 1.
      & info [ "retry-after" ] ~docv:"SECS"
          ~doc:"Resubmission hint carried in rejections.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Run each campaign on $(docv) domains (1 = sequential).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard each campaign across $(docv) crash-isolated worker \
             processes.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the $(b,--chaos) plan.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            ("Deterministic infrastructure-fault plan, applied to the \
              server's own accept/read/write paths ($(b,accept), \
              $(b,sread), $(b,swrite)) and threaded into every campaign's \
              execution stack. " ^ Exec.Chaos.conv_doc))
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write a final obs/1 telemetry snapshot (serve.* counters and \
             gauges included) to $(docv) after the drain.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived campaign evaluation daemon with admission control, \
          backpressure, deadlines, durability and graceful drain.")
    Term.(
      const run $ socket_arg $ state_dir_arg $ tcp_port $ queue $ quota
      $ concurrent $ store_budget $ deadline $ stall $ retry_after $ domains
      $ shards $ seed $ chaos $ metrics)

let () =
  (* Must precede everything else: when this process is a shard worker
     (re-executed by a sharded campaign), it serves its frames and exits
     here instead of starting the daemon. *)
  Exec.Shard.init ();
  exit (Cmd.eval cmd)
