(** [export] — write scenario traces, figure series and violation tables as
    CSV files for external plotting.

    {v
    export figures --out-dir plots/          # every fig_5_* as CSV
    export scenario 3 --out-dir plots/       # full trace + violations
    export scenario 3 --repaired -s host_speed -s ca_accel_req
    export campaign --seed 42 --out-dir plots/   # detection-coverage matrix
    export campaign --journal c.jnl --retries 2  # crash-safe campaign
    export campaign --journal c.jnl --resume     # finish a killed run;
                                                 # CSV identical to an
                                                 # uninterrupted export
    v} *)

open Cmdliner

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Write an obs/1 JSON telemetry snapshot (pool/cache/journal \
           counters, latency histograms, phase spans) to $(docv) before \
           exiting.")

let write_metrics ~name metrics =
  Option.iter
    (fun path ->
      Obs.Export.write_file ~name path;
      Fmt.pr "wrote metrics snapshot %s@." path)
    metrics

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard execution across $(docv) worker processes \
           (crash-isolated: a worker SIGKILL is absorbed by respawn and \
           requeue), each running $(b,--domains) domains. Output is \
           byte-identical to the single-process run.")

let figures_cmd =
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir"; "o" ] ~doc:"Output directory.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Simulate the fleet on $(docv) domains (1 = sequential).")
  in
  let run out_dir domains shards metrics =
    ensure_dir out_dir;
    (* Warm the shared outcome cache for the whole fleet in parallel; each
       figure below then reads its scenario's outcome from the cache.
       (Sharded warm-up still simulates in workers, but classification
       outcomes return to this process's cache, so the figures below are
       cache hits either way.) *)
    ignore (Scenarios.Runner.run_all ?domains ?shards ());
    Obs.span "export.figures" (fun () ->
        List.iter
          (fun (fig : Scenarios.Figures.t) ->
            let o =
              Scenarios.Runner.run (Scenarios.Defs.get fig.Scenarios.Figures.scenario)
            in
            let path = Filename.concat out_dir (fig.Scenarios.Figures.id ^ ".csv") in
            Scenarios.Export.write_file path (Scenarios.Export.figure_csv fig o);
            Fmt.pr "wrote %s@." path)
          Scenarios.Figures.all);
    write_metrics ~name:"export_figures" metrics
  in
  Cmd.v (Cmd.info "figures" ~doc:"Export every regenerated figure as CSV.")
    Term.(const run $ out_dir $ domains $ shards_arg $ metrics_arg)

let scenario_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"SCENARIO") in
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir"; "o" ] ~doc:"Output directory.")
  in
  let repaired =
    Arg.(value & flag & info [ "repaired" ] ~doc:"Run with every defect fixed.")
  in
  let signals =
    Arg.(value & opt_all string [] & info [ "signal"; "s" ] ~doc:"Restrict trace columns.")
  in
  let stride =
    Arg.(value & opt int 10 & info [ "stride" ] ~doc:"Keep every Nth state (default 10).")
  in
  let run n out_dir repaired signals stride =
    ensure_dir out_dir;
    let defects =
      if repaired then Vehicle.Defects.repaired else Vehicle.Defects.as_evaluated
    in
    let o = Scenarios.Runner.run ~defects (Scenarios.Defs.get n) in
    let suffix = if repaired then "_repaired" else "" in
    let trace_path = Filename.concat out_dir (Fmt.str "scenario_%d%s.csv" n suffix) in
    let signals = match signals with [] -> None | l -> Some l in
    Scenarios.Export.write_file trace_path
      (Scenarios.Export.trace_csv ?signals ~stride o.Scenarios.Runner.trace);
    Fmt.pr "wrote %s@." trace_path;
    let viol_path =
      Filename.concat out_dir (Fmt.str "scenario_%d%s_violations.csv" n suffix)
    in
    Scenarios.Export.write_file viol_path (Scenarios.Export.violations_csv o);
    Fmt.pr "wrote %s@." viol_path
  in
  Cmd.v (Cmd.info "scenario" ~doc:"Export one scenario's trace and violations as CSV.")
    Term.(const run $ n $ out_dir $ repaired $ signals $ stride)

let campaign_cmd =
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Inject.Spec.parse s with
          | Ok f -> Ok f
          | Error e -> Error (`Msg e)),
        Inject.Fault.pp )
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir"; "o" ] ~doc:"Output directory.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Campaign seed; same seed, bit-for-bit identical CSV.")
  in
  let faults =
    Arg.(
      value
      & opt_all spec_conv []
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            (Inject.Spec.conv_doc
            ^ " Repeatable; default: the smoke grid's three sensor faults."))
  in
  let scenarios =
    Arg.(
      value
      & opt (list int) [ 1; 3; 7 ]
      & info [ "scenarios" ] ~docv:"N,.."
          ~doc:"Scenario numbers forming the grid columns.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Run the grid on $(docv) domains (1 = sequential).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Fsync-append every completed cell to this crash-safe journal; \
             with $(b,--resume), replay it and execute only the missing \
             cells — the resumed CSV is byte-identical to an uninterrupted \
             export. Without $(b,--resume) an existing journal is \
             truncated.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Replay the $(b,--journal) before running (see above).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failing cell up to $(docv) extra times with jittered \
             exponential backoff before quarantining it. Default 0: first \
             failure aborts.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            ("Inject a deterministic infrastructure-fault plan into the \
              campaign's own execution stack (workers, frames, journal, \
              spawns), seeded by $(b,--seed). Every fault is recoverable: \
              the CSV is byte-identical to the chaos-free run. "
            ^ Exec.Chaos.conv_doc))
  in
  let hang_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "hang-timeout" ] ~docv:"SECS"
          ~doc:
            "Declare a sharded worker hung — SIGKILL it and requeue its \
             cells — after $(docv) seconds without results or heartbeats \
             (default 30).")
  in
  let batch_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-deadline" ] ~docv:"SECS"
          ~doc:
            "Hard bound on one sharded batch's in-flight time: a worker \
             exceeding it is killed and its cells requeued, even if it is \
             still heartbeating. Off by default.")
  in
  let run out_dir seed faults scenarios domains shards journal resume retries
      chaos hang_timeout deadline metrics =
    if resume && journal = None then begin
      Fmt.epr "--resume requires --journal PATH@.";
      exit 1
    end;
    ensure_dir out_dir;
    let smoke = Scenarios.Campaign.smoke ~seed () in
    let grid =
      {
        Scenarios.Campaign.seed;
        faults = (if faults = [] then smoke.Scenarios.Campaign.faults else faults);
        grid_scenarios = List.map Scenarios.Defs.get scenarios;
      }
    in
    let retry =
      if retries > 0 then
        Some (Exec.Supervise.policy ~max_attempts:(retries + 1) ~seed ())
      else None
    in
    let chaos =
      match chaos with
      | None -> None
      | Some spec -> (
          match Exec.Chaos.parse ~seed spec with
          | Ok plan -> Some plan
          | Error e ->
              Fmt.epr "--chaos: %s@." e;
              exit 1)
    in
    let c =
      Scenarios.Campaign.run ?domains ?shards ?journal ~resume ?retry ?chaos
        ?hang_timeout_s:hang_timeout ?deadline_s:deadline grid
    in
    let path = Filename.concat out_dir (Fmt.str "campaign_seed%d.csv" seed) in
    Obs.span "campaign.export" (fun () ->
        Scenarios.Export.write_file path (Scenarios.Export.campaign_csv c));
    let r = c.Scenarios.Campaign.robustness in
    Fmt.pr "cells: executed=%d replayed=%d retried=%d retries=%d quarantined=%d%s@."
      r.Scenarios.Campaign.executed r.Scenarios.Campaign.replayed
      r.Scenarios.Campaign.retried r.Scenarios.Campaign.retries
      r.Scenarios.Campaign.quarantined
      (if r.Scenarios.Campaign.degraded then " degraded=true" else "");
    Fmt.pr "wrote %s@." path;
    write_metrics ~name:(Fmt.str "export_campaign_seed%d" seed) metrics
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Export a fault-injection detection-coverage matrix as CSV, \
          optionally journaled, resumable, retried and chaos-tested.")
    Term.(
      const run $ out_dir $ seed $ faults $ scenarios $ domains $ shards_arg
      $ journal $ resume $ retries $ chaos $ hang_timeout $ batch_deadline
      $ metrics_arg)

let () =
  (* Must precede everything else: when this process is a shard worker
     (re-executed by a sharded campaign), it serves its frames and exits
     here instead of running the CLI. *)
  Exec.Shard.init ();
  let doc = "Export traces, figures and violation tables as CSV." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "export" ~doc)
          [ figures_cmd; scenario_cmd; campaign_cmd ]))
