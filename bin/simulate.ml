(** [simulate] — run one evaluation scenario and print its violation table,
    optionally with every defect repaired.

    {v
    simulate 1                 # scenario 1 as the thesis evaluated it
    simulate 6 --repaired      # the counterfactual: defects fixed
    simulate 3 --signal host_speed --signal ca_accel_req
    simulate 1 --repaired --inject nan:object_range@2..8 --seed 7
    simulate 1 --journal runs.jnl            # journal the classified outcome
    simulate 1 --journal runs.jnl --resume   # replay it: no re-simulation
    simulate 1 --retries 2                   # retry transient failures
    v} *)

open Cmdliner

let spec_conv =
  Arg.conv
    ( (fun s ->
        match Inject.Spec.parse s with
        | Ok f -> Ok f
        | Error e -> Error (`Msg e)),
      Inject.Fault.pp )

let run n repaired seed faults signals journal resume retries metrics =
  if resume && journal = None then begin
    Fmt.epr "--resume requires --journal PATH@.";
    exit 1
  end;
  let defects =
    if repaired then Vehicle.Defects.repaired else Vehicle.Defects.as_evaluated
  in
  let inject = Inject.Plan.make ~seed faults in
  if not (Inject.Plan.is_empty inject) then
    Fmt.pr "injecting: %a@." Inject.Plan.pp inject;
  let retry =
    if retries > 0 then
      Some (Exec.Supervise.policy ~max_attempts:(retries + 1) ~seed ())
    else None
  in
  let o, provenance =
    Scenarios.Runner.run_journaled ?journal ~resume ?retry ~defects ~inject
      (Scenarios.Defs.get n)
  in
  (match provenance with
  | Scenarios.Runner.Replayed -> Fmt.pr "replayed from the journal@."
  | Scenarios.Runner.Ran attempts when attempts > 1 ->
      Fmt.pr "succeeded after %d attempts@." attempts
  | Scenarios.Runner.Ran _ -> ());
  Fmt.pr "%s@.%s@.@." o.Scenarios.Runner.scenario.Scenarios.Defs.title
    o.Scenarios.Runner.scenario.Scenarios.Defs.description;
  Fmt.pr "%a@." Scenarios.Results.pp_table o;
  List.iter
    (fun sig_name ->
      Fmt.pr "@.%s (downsampled):@." sig_name;
      let s =
        Scenarios.Figures.extract ~max_points:40 o.Scenarios.Runner.trace
          (0., o.Scenarios.Runner.end_time)
          sig_name sig_name
      in
      List.iter (fun (t, v) -> Fmt.pr "  %8.3f  %10.4f@." t v) s.Scenarios.Figures.points)
    signals;
  Option.iter
    (fun path ->
      Obs.Export.write_file ~name:(Fmt.str "simulate_%d" n) path;
      Fmt.pr "wrote metrics snapshot %s@." path)
    metrics

let () =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"SCENARIO") in
  let repaired =
    Arg.(value & flag & info [ "repaired" ] ~doc:"Run with every seeded defect fixed.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Injection-plan seed; same seed, same faulted run.")
  in
  let faults =
    Arg.(
      value
      & opt_all spec_conv []
      & info [ "inject" ] ~docv:"SPEC" ~doc:Inject.Spec.conv_doc)
  in
  let signals =
    Arg.(value & opt_all string [] & info [ "signal"; "s" ] ~doc:"Also print this signal.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Fsync-append the classified outcome to this crash-safe \
             journal; with $(b,--resume), a matching journaled outcome is \
             replayed instead of re-simulating. Without $(b,--resume) an \
             existing journal is truncated.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the $(b,--journal) first: if this exact configuration \
             (scenario, defects, injection plan, window) was already \
             journaled, print its tables without simulating.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failing run up to $(docv) extra times with jittered \
             exponential backoff before giving up. Default 0.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write an obs/1 JSON telemetry snapshot (counters, latency \
             histograms, spans) to $(docv) before exiting.")
  in
  let doc = "Run a semi-autonomous vehicle evaluation scenario." in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "simulate" ~doc)
          Term.(
            const run $ n $ repaired $ seed $ faults $ signals $ journal
            $ resume $ retries $ metrics)))
