(** [metrics_check] — validate obs/1 telemetry snapshots and compare runs.

    {v
    metrics_check BENCH_smoke.json                 # schema validation only
    metrics_check m.json --expect-counter pool.tasks_completed=12
    metrics_check m.json --summary                 # deterministic digest
    v}

    The [--summary] output deliberately excludes gauges, timings and
    spans: it prints only the run-shape facts (counters, histogram
    counts) that must be identical between a sequential and a parallel
    execution of the same workload, so two summaries can be [diff]ed
    directly in CI. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_expect s =
  match String.index_opt s '=' with
  | None -> Error (`Msg "expected NAME=VALUE")
  | Some i -> (
      let name = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt v with
      | Some v when name <> "" -> Ok (name, v)
      | _ -> Error (`Msg "expected NAME=VALUE with an integer VALUE"))

let expect_conv =
  Arg.conv (parse_expect, fun ppf (n, v) -> Fmt.pf ppf "%s=%d" n v)

let counter_value json name =
  match Obs.Json.member "counters" json with
  | Some counters ->
      Option.bind (Obs.Json.member name counters) Obs.Json.to_float
  | None -> None

(* Sorted [counter NAME V] then [histogram NAME count=N] lines: the
   cross-mode-stable projection of a snapshot. *)
let print_summary json =
  let entries kind =
    match Obs.Json.member kind json with
    | Some obj -> List.sort compare (Obs.Json.keys obj)
    | None -> []
  in
  List.iter
    (fun name ->
      match counter_value json name with
      | Some v -> Fmt.pr "counter %s %.0f@." name v
      | None -> ())
    (entries "counters");
  List.iter
    (fun name ->
      match Obs.Json.member "histograms" json with
      | None -> ()
      | Some hs -> (
          match
            Option.bind (Obs.Json.member name hs) (fun h ->
                Option.bind (Obs.Json.member "count" h) Obs.Json.to_float)
          with
          | Some c -> Fmt.pr "histogram %s count=%.0f@." name c
          | None -> ()))
    (entries "histograms")

let check path expects summary =
  let raw = read_file path in
  match Obs.Export.validate_string raw with
  | Error e ->
      Fmt.epr "%s: INVALID — %s@." path e;
      false
  | Ok () ->
      let json =
        match Obs.Json.of_string raw with Ok j -> j | Error _ -> assert false
      in
      let ok =
        List.for_all
          (fun (name, want) ->
            match counter_value json name with
            | Some got when Float.to_int got = want -> true
            | Some got ->
                Fmt.epr "%s: counter %s = %.0f, expected %d@." path name got want;
                false
            | None ->
                Fmt.epr "%s: counter %s missing@." path name;
                false)
          expects
      in
      if ok then
        if summary then print_summary json
        else Fmt.pr "%s: valid obs/1 snapshot@." path;
      ok

let run paths expects summary =
  let ok =
    List.fold_left
      (fun acc path ->
        let this =
          try check path expects summary
          with Sys_error e ->
            Fmt.epr "%s@." e;
            false
        in
        acc && this)
      true paths
  in
  if ok then 0 else 1

let () =
  let paths =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SNAPSHOT.json")
  in
  let expects =
    Arg.(
      value
      & opt_all expect_conv []
      & info [ "expect-counter" ] ~docv:"NAME=VALUE"
          ~doc:
            "Fail unless counter $(i,NAME) has exactly $(i,VALUE). \
             Repeatable.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "After validating, print a deterministic digest (sorted \
             counters and histogram counts, no timings) suitable for \
             diffing a sequential run against a parallel one.")
  in
  let doc = "Validate obs/1 telemetry snapshots." in
  exit
    (Cmd.eval'
       (Cmd.v (Cmd.info "metrics_check" ~doc)
          Term.(const run $ paths $ expects $ summary)))
