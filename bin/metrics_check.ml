(** [metrics_check] — validate obs/1 telemetry snapshots and compare runs.

    {v
    metrics_check BENCH_smoke.json                 # schema validation only
    metrics_check m.json --expect-counter pool.tasks_completed=12
    metrics_check m.json --expect-gauge 'serve.queue_depth<=0'
    metrics_check m.json --summary                 # deterministic digest
    metrics_check BENCH_smoke.json \
      --compare bench/baselines/BENCH_smoke.baseline.json --tolerance 25 \
      --expect-faster 'fleet_sharded<fleet_sequential'
    metrics_check BENCH_smoke.json \
      --write-baseline bench/baselines/BENCH_smoke.baseline.json \
      --baseline-counter pool.tasks_completed ...
    v}

    The [--summary] output deliberately excludes gauges, timings and
    spans: it prints only the run-shape facts (counters, histogram
    counts) that must be identical between a sequential and a parallel
    execution of the same workload, so two summaries can be [diff]ed
    directly in CI.

    [--compare] is the perf-regression gate: every counter pinned in the
    baseline must match the fresh snapshot {e exactly} (counters encode
    run shape — frames sent, cells requeued, tasks completed — which
    timing noise must never change), while every bench timing in the
    baseline bounds the fresh value to at most [1 + tolerance/100] times
    the baseline (faster is always fine). [--expect-faster 'A<B'] gates a
    relation {e within} the fresh snapshot — e.g. that the sharded fleet
    actually beats the sequential one on this machine.

    Baselines are written with [--write-baseline]: the fresh snapshot's
    bench timings plus exactly the counters named by repeated
    [--baseline-counter] flags (counters driven by sampler iteration
    counts are not deterministic and must not be pinned). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [NAME=VALUE] pins a counter exactly; [NAME>=VALUE] sets a floor — the
   form chaos assertions use, where "the hang was detected" means "at
   least once", never an exact count. ">=" must be tried first: its
   second character is the "=" the exact form would otherwise split on. *)
let parse_expect s =
  let split op =
    let oplen = String.length op in
    let rec find i =
      if i + oplen > String.length s then None
      else if String.sub s i oplen = op then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
        Some
          ( String.sub s 0 i,
            String.sub s (i + oplen) (String.length s - i - oplen) )
  in
  let parsed =
    match split ">=" with
    | Some (name, v) -> Some (name, `Ge, v)
    | None -> (
        match split "=" with
        | Some (name, v) -> Some (name, `Eq, v)
        | None -> None)
  in
  match parsed with
  | None -> Error (`Msg "expected NAME=VALUE or NAME>=VALUE")
  | Some (name, op, v) -> (
      match int_of_string_opt v with
      | Some v when name <> "" -> Ok (name, op, v)
      | _ ->
          Error (`Msg "expected NAME=VALUE or NAME>=VALUE with an integer VALUE"))

let expect_conv =
  Arg.conv
    ( parse_expect,
      fun ppf (n, op, v) ->
        Fmt.pf ppf "%s%s%d" n (match op with `Eq -> "=" | `Ge -> ">=") v )

(* Gauge assertions compare floats and add the upper-bound form: a
   drained server must show [serve.queue_depth<=0] — "nothing left" is a
   ceiling, not a floor. "<=" and ">=" before "=", as above. *)
let parse_gauge_expect s =
  let split op =
    match String.index_opt s (String.get op 0) with
    | Some i
      when i + String.length op <= String.length s
           && String.sub s i (String.length op) = op ->
        Some
          ( String.sub s 0 i,
            String.sub s
              (i + String.length op)
              (String.length s - i - String.length op) )
    | _ -> None
  in
  let parsed =
    match split "<=" with
    | Some (name, v) -> Some (name, `Le, v)
    | None -> (
        match split ">=" with
        | Some (name, v) -> Some (name, `Ge, v)
        | None -> (
            match split "=" with
            | Some (name, v) -> Some (name, `Eq, v)
            | None -> None))
  in
  match parsed with
  | None -> Error (`Msg "expected NAME=VALUE, NAME<=VALUE or NAME>=VALUE")
  | Some (name, op, v) -> (
      match float_of_string_opt v with
      | Some v when name <> "" -> Ok (name, op, v)
      | _ ->
          Error
            (`Msg
              "expected NAME=VALUE, NAME<=VALUE or NAME>=VALUE with a \
               numeric VALUE"))

let gauge_op_str = function `Eq -> "=" | `Le -> "<=" | `Ge -> ">="

let gauge_expect_conv =
  Arg.conv
    ( parse_gauge_expect,
      fun ppf (n, op, v) -> Fmt.pf ppf "%s%s%g" n (gauge_op_str op) v )

let parse_faster s =
  match String.index_opt s '<' with
  | None -> Error (`Msg "expected FAST<SLOW (bench entry names)")
  | Some i ->
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      if a = "" || b = "" then Error (`Msg "expected FAST<SLOW")
      else Ok (a, b)

let faster_conv =
  Arg.conv (parse_faster, fun ppf (a, b) -> Fmt.pf ppf "%s<%s" a b)

let member_value section json name =
  match Obs.Json.member section json with
  | Some obj -> Option.bind (Obs.Json.member name obj) Obs.Json.to_float
  | None -> None

let counter_value = member_value "counters"
let gauge_value = member_value "gauges"

(* A snapshot's [bench] is a list of [{name; time_ns}] records; a
   baseline's is a plain [{name: ns}] object. Accept both. *)
let bench_value json name =
  match Obs.Json.member "bench" json with
  | Some (Obs.Json.List entries) ->
      List.find_map
        (fun e ->
          match Option.bind (Obs.Json.member "name" e) Obs.Json.to_str with
          | Some n when n = name ->
              Option.bind (Obs.Json.member "time_ns" e) Obs.Json.to_float
          | _ -> None)
        entries
  | Some obj -> Option.bind (Obs.Json.member name obj) Obs.Json.to_float
  | None -> None

let bench_names json =
  match Obs.Json.member "bench" json with
  | Some (Obs.Json.List entries) ->
      List.filter_map
        (fun e -> Option.bind (Obs.Json.member "name" e) Obs.Json.to_str)
        entries
  | Some obj -> Obs.Json.keys obj
  | None -> []

(* Sorted [counter NAME V] then [histogram NAME count=N] lines: the
   cross-mode-stable projection of a snapshot. *)
let print_summary json =
  let entries kind =
    match Obs.Json.member kind json with
    | Some obj -> List.sort compare (Obs.Json.keys obj)
    | None -> []
  in
  List.iter
    (fun name ->
      match counter_value json name with
      | Some v -> Fmt.pr "counter %s %.0f@." name v
      | None -> ())
    (entries "counters");
  List.iter
    (fun name ->
      match Obs.Json.member "histograms" json with
      | None -> ()
      | Some hs -> (
          match
            Option.bind (Obs.Json.member name hs) (fun h ->
                Option.bind (Obs.Json.member "count" h) Obs.Json.to_float)
          with
          | Some c -> Fmt.pr "histogram %s count=%.0f@." name c
          | None -> ()))
    (entries "histograms")

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                  *)

let section_names section json =
  match Obs.Json.member section json with
  | Some obj -> List.sort compare (Obs.Json.keys obj)
  | None -> []

(* Counters pinned in the baseline must match exactly; bench timings may
   not exceed baseline * (1 + tolerance/100). Entries present only in
   the fresh snapshot are ignored — the baseline names the contract. *)
let compare_against ~tolerance path json baseline_path =
  match Obs.Json.of_string (read_file baseline_path) with
  | Error e ->
      Fmt.epr "%s: unreadable baseline — %s@." baseline_path e;
      false
  | Ok base ->
      let counters_ok =
        List.for_all
          (fun name ->
            match (counter_value base name, counter_value json name) with
            | Some want, Some got when got = want -> true
            | Some want, Some got ->
                Fmt.epr "%s: counter %s = %.0f, baseline pins %.0f@." path
                  name got want;
                false
            | Some _, None ->
                Fmt.epr "%s: counter %s missing (pinned in baseline)@." path
                  name;
                false
            | None, _ -> true)
          (section_names "counters" base)
      in
      let bench_ok =
        List.for_all
          (fun name ->
            match (bench_value base name, bench_value json name) with
            | Some want, Some got ->
                let limit = want *. (1. +. (tolerance /. 100.)) in
                if got <= limit then true
                else begin
                  Fmt.epr
                    "%s: bench %s = %.0f ns, regressed past baseline %.0f ns \
                     + %.0f%% (limit %.0f ns)@."
                    path name got want tolerance limit;
                  false
                end
            | Some _, None ->
                Fmt.epr "%s: bench entry %s missing (present in baseline)@."
                  path name;
                false
            | None, _ -> true)
          (List.sort compare (bench_names base))
      in
      if counters_ok && bench_ok then begin
        Fmt.pr "%s: within %g%% of %s@." path tolerance baseline_path;
        true
      end
      else false

let check_faster path json (fast, slow) =
  match (bench_value json fast, bench_value json slow) with
  | Some f, Some s when f < s -> true
  | Some f, Some s ->
      Fmt.epr "%s: expected bench %s (%.0f ns) < %s (%.0f ns)@." path fast f
        slow s;
      false
  | None, _ ->
      Fmt.epr "%s: bench entry %s missing@." path fast;
      false
  | _, None ->
      Fmt.epr "%s: bench entry %s missing@." path slow;
      false

(* A baseline is a pruned snapshot: the bench timings, plus only the
   explicitly named counters. Written as plain JSON (schema
   "obs/1-baseline"), deterministic key order. *)
let write_baseline path json counters_to_pin provenance out =
  let pick read names =
    Obs.Json.Obj
      (List.filter_map
         (fun name ->
           Option.map (fun v -> (name, Obs.Json.Num v)) (read json name))
         names)
  in
  let baseline =
    Obs.Json.Obj
      ([ ("schema", Obs.Json.Str "obs/1-baseline") ]
      @ (match provenance with
        | None -> []
        | Some p -> [ ("provenance", Obs.Json.Str p) ])
      @ [
          ("source", Obs.Json.Str (Filename.basename path));
          ("counters", pick counter_value (List.sort compare counters_to_pin));
          ("bench", pick bench_value (List.sort compare (bench_names json)));
        ])
  in
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Obs.Json.to_string baseline);
      output_char oc '\n');
  Fmt.pr "wrote baseline %s@." out

let check path expects gauge_expects summary compare tolerance fasters
    baseline_out baseline_counters provenance =
  let raw = read_file path in
  match Obs.Export.validate_string raw with
  | Error e ->
      Fmt.epr "%s: INVALID — %s@." path e;
      false
  | Ok () ->
      let json =
        match Obs.Json.of_string raw with Ok j -> j | Error _ -> assert false
      in
      let expects_ok =
        List.for_all
          (fun (name, op, want) ->
            match counter_value json name with
            | Some got
              when match op with
                   | `Eq -> Float.to_int got = want
                   | `Ge -> Float.to_int got >= want ->
                true
            | Some got ->
                Fmt.epr "%s: counter %s = %.0f, expected %s%d@." path name got
                  (match op with `Eq -> "" | `Ge -> ">= ")
                  want;
                false
            | None ->
                Fmt.epr "%s: counter %s missing@." path name;
                false)
          expects
      in
      let gauges_ok =
        List.for_all
          (fun (name, op, want) ->
            match gauge_value json name with
            | Some got
              when match op with
                   | `Eq -> got = want
                   | `Le -> got <= want
                   | `Ge -> got >= want ->
                true
            | Some got ->
                Fmt.epr "%s: gauge %s = %g, expected %s %g@." path name got
                  (gauge_op_str op) want;
                false
            | None ->
                Fmt.epr "%s: gauge %s missing@." path name;
                false)
          gauge_expects
      in
      let compare_ok =
        match compare with
        | None -> true
        | Some baseline -> compare_against ~tolerance path json baseline
      in
      let faster_ok = List.for_all (check_faster path json) fasters in
      let ok = expects_ok && gauges_ok && compare_ok && faster_ok in
      if ok then begin
        Option.iter
          (write_baseline path json baseline_counters provenance)
          baseline_out;
        if summary then print_summary json
        else if compare = None && fasters = [] then
          Fmt.pr "%s: valid obs/1 snapshot@." path
      end;
      ok

let run paths expects gauge_expects summary compare tolerance fasters
    baseline_out baseline_counters provenance =
  let ok =
    List.fold_left
      (fun acc path ->
        let this =
          try
            check path expects gauge_expects summary compare tolerance fasters
              baseline_out baseline_counters provenance
          with Sys_error e ->
            Fmt.epr "%s@." e;
            false
        in
        acc && this)
      true paths
  in
  if ok then 0 else 1

let () =
  let paths =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"SNAPSHOT.json")
  in
  let expects =
    Arg.(
      value
      & opt_all expect_conv []
      & info [ "expect-counter" ] ~docv:"NAME=VALUE"
          ~doc:
            "Fail unless counter $(i,NAME) has exactly $(i,VALUE) \
             ($(i,NAME)=$(i,VALUE)) or at least $(i,VALUE) \
             ($(i,NAME)>=$(i,VALUE)). Repeatable.")
  in
  let gauge_expects =
    Arg.(
      value
      & opt_all gauge_expect_conv []
      & info [ "expect-gauge" ] ~docv:"NAME<=VALUE"
          ~doc:
            "Fail unless gauge $(i,NAME) is exactly ($(i,NAME)=$(i,VALUE)), \
             at most ($(i,NAME)<=$(i,VALUE)) or at least \
             ($(i,NAME)>=$(i,VALUE)) the numeric $(i,VALUE) — e.g. \
             $(b,'serve.queue_depth<=0') asserts a drained server left no \
             queued work behind. Repeatable.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "After validating, print a deterministic digest (sorted \
             counters and histogram counts, no timings) suitable for \
             diffing a sequential run against a parallel one.")
  in
  let compare =
    Arg.(
      value
      & opt (some file) None
      & info [ "compare" ] ~docv:"BASELINE.json"
          ~doc:
            "Compare the snapshot against a committed baseline: counters \
             pinned there must match exactly, bench timings may regress \
             at most $(b,--tolerance) percent (being faster always \
             passes).")
  in
  let tolerance =
    Arg.(
      value & opt float 25.
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed bench-timing regression for $(b,--compare), in \
             percent (default 25).")
  in
  let fasters =
    Arg.(
      value
      & opt_all faster_conv []
      & info [ "expect-faster" ] ~docv:"FAST<SLOW"
          ~doc:
            "Fail unless bench entry $(i,FAST) is strictly faster than \
             bench entry $(i,SLOW) in this snapshot. Repeatable.")
  in
  let baseline_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"PATH"
          ~doc:
            "After the checks pass, write a pruned baseline (all bench \
             timings, plus the $(b,--baseline-counter) counters) to \
             $(i,PATH) for committing.")
  in
  let baseline_counters =
    Arg.(
      value
      & opt_all string []
      & info [ "baseline-counter" ] ~docv:"NAME"
          ~doc:
            "Pin counter $(i,NAME) in the baseline written by \
             $(b,--write-baseline). Only pin counters that are \
             deterministic for the workload. Repeatable.")
  in
  let provenance =
    Arg.(
      value
      & opt (some string) None
      & info [ "provenance" ] ~docv:"NOTE"
          ~doc:
            "Record where the $(b,--write-baseline) numbers came from \
             (machine, date, commit) in the baseline's $(i,provenance) \
             field, so a reader can judge whether the tolerance band is \
             anchored to comparable hardware.")
  in
  let doc = "Validate obs/1 telemetry snapshots and gate perf regressions." in
  exit
    (Cmd.eval'
       (Cmd.v (Cmd.info "metrics_check" ~doc)
          Term.(
            const run $ paths $ expects $ gauge_expects $ summary $ compare
            $ tolerance $ fasters $ baseline_out $ baseline_counters
            $ provenance)))
