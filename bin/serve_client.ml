(** [serve_client] — submit campaigns to a running [serve] daemon.

    {v
    serve_client submit --socket campaignd.sock --seed 42 -o out.csv
    serve_client submit --inject 'stuck=3:ca_accel_req' --scenarios 1,3
    serve_client stats --socket campaignd.sock -o snapshot.json
    serve_client drain --socket campaignd.sock
    v}

    Exit status is the contract: 0 only when the server delivered the
    result (or acknowledged the drain); any server-side failure —
    rejection, deadline kill, crash, drain checkpoint — exits 1, after
    the client's own reconnect/backpressure patience is spent. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "campaignd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")

let fail fmt = Fmt.kpf (fun _ -> exit 1) Fmt.stderr (fmt ^^ "@.")

let submit_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let faults =
    Arg.(
      value
      & opt_all string []
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            (Inject.Spec.conv_doc
            ^ " Repeatable; default: the server's smoke-grid faults. \
               Validated locally before submission."))
  in
  let scenarios =
    Arg.(
      value
      & opt (list int) [ 1; 3; 7 ]
      & info [ "scenarios" ] ~docv:"N,.."
          ~doc:"Scenario numbers forming the grid columns.")
  in
  let window =
    Arg.(
      value
      & opt (some float) None
      & info [ "window" ] ~docv:"SECS"
          ~doc:"Classification window (server default when omitted).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Per-cell retry budget on the server.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Request deadline (queue wait + run); the server cancels the \
             request past it.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Write the campaign CSV here (default: stdout).")
  in
  let attempts =
    Arg.(
      value & opt int 10
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Reconnect-and-resubmit budget for transport failures (a \
             restarting or chaos-faulted server).")
  in
  let patience =
    Arg.(
      value & opt float 600.
      & info [ "patience" ] ~docv:"SECS"
          ~doc:
            "Total wall-clock budget, backpressure sleeps included.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress on stderr.")
  in
  let run socket seed faults scenarios window retries deadline out attempts
      patience quiet =
    List.iter
      (fun s ->
        match Inject.Spec.parse s with
        | Ok _ -> ()
        | Error e -> fail "--inject %S: %s" s e)
      faults;
    let spec =
      { Serve.Wire.seed; faults; scenarios; window; retries }
    in
    let progress ~completed ~total =
      if not quiet then Fmt.epr "progress: %d/%d cells@." completed total
    in
    match
      Serve.Client.submit_and_wait ~attempts ~patience_s:patience ?deadline_s:deadline
        ~progress ~socket spec
    with
    | Error reason -> fail "submit failed: %s" reason
    | Ok { Serve.Client.ticket; csv; durable } ->
        if not quiet then
          Fmt.epr "ticket %d: %d bytes%s@." ticket (String.length csv)
            (if durable then "" else " (server degraded: not crash-safe)");
        (match out with
        | None -> print_string csv
        | Some path ->
            Scenarios.Export.write_file path csv;
            if not quiet then Fmt.epr "wrote %s@." path)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign, stream progress, print or save the CSV; exit \
          non-zero on any server-side failure.")
    Term.(
      const run $ socket_arg $ seed $ faults $ scenarios $ window $ retries
      $ deadline $ out $ attempts $ patience $ quiet)

let stats_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Write the obs/1 snapshot here (default: stdout).")
  in
  let run socket out =
    match Serve.Client.stats ~socket with
    | Error reason -> fail "stats failed: %s" reason
    | Ok json -> (
        match out with
        | None -> print_endline json
        | Some path -> Scenarios.Export.write_file path (json ^ "\n"))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Fetch a live obs/1 telemetry snapshot.")
    Term.(const run $ socket_arg $ out)

let drain_cmd =
  let run socket =
    match Serve.Client.drain ~socket with
    | Error reason -> fail "drain failed: %s" reason
    | Ok (settled, checkpointed) ->
        Fmt.pr "draining: settled=%d checkpointed=%d@." settled checkpointed
  in
  Cmd.v
    (Cmd.info "drain" ~doc:"Ask the daemon to drain and exit.")
    Term.(const run $ socket_arg)

let () =
  let doc = "Client for the campaign service daemon." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "serve_client" ~doc)
          [ submit_cmd; stats_cmd; drain_cmd ]))
