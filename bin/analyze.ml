(** [analyze] — mine campaign journals for system-level emergence
    patterns (see ANALYTICS.md).

    {v
    analyze cascade    --journal c.jnl --csv cascade.csv
    analyze trajectory --journal a.jnl --journal b.jnl --csv surface.csv
    analyze residual   --journal c.jnl --metrics analytics.json
    analyze all        --journal c.jnl --out-dir tables/
    v}

    Every table is a single constant-memory streaming pass over the
    journals, and every CSV is deterministic: analyzers are
    order-independent, so journals produced under any [--shards]/[-j]
    configuration of the campaign mine to byte-identical output. *)

open Cmdliner

let journals_arg =
  Arg.(
    non_empty
    & opt_all string []
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Campaign cell journal to mine (repeatable; the streams are \
           merged). Torn or corrupt tails are skipped and counted in \
           $(b,analytics.records_skipped).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH"
        ~doc:"Write the table to $(docv) instead of standard output.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Write an obs/1 JSON telemetry snapshot (analytics.* counters \
           and gauges included) to $(docv) before exiting.")

let ingest journals =
  let t = Analytics.Analyze.create () in
  List.iter (Analytics.Analyze.ingest t) journals;
  Analytics.Analyze.publish t;
  Fmt.epr "journals=%d records=%d skipped=%d@."
    (Analytics.Analyze.journals t)
    (Analytics.Analyze.records t)
    (Analytics.Analyze.skipped t);
  t

let emit ~name ~csv ~metrics contents =
  (match csv with
  | Some path ->
      Scenarios.Export.write_file path contents;
      Fmt.epr "wrote %s@." path
  | None -> print_string contents);
  Option.iter
    (fun path ->
      Obs.Export.write_file ~name path;
      Fmt.epr "wrote metrics snapshot %s@." path)
    metrics

let cascade_cmd =
  let run journals csv metrics =
    let t = ingest journals in
    let rows = Analytics.Analyze.cascade t in
    Fmt.epr "cascades=%d groups=%d@."
      (List.length (List.filter (fun r -> r.Analytics.Cascade.cascade) rows))
      (List.length rows);
    emit ~name:"analyze_cascade" ~csv ~metrics (Analytics.Analyze.cascade_csv t)
  in
  Cmd.v
    (Cmd.info "cascade"
       ~doc:
         "Detect cascades: faults whose injection flips two or more \
          distinct goal monitors across scenarios and windows.")
    Term.(const run $ journals_arg $ csv_arg $ metrics_arg)

let trajectory_cmd =
  let run journals csv metrics =
    let t = ingest journals in
    Fmt.epr "trajectory points=%d@." (List.length (Analytics.Analyze.trajectory t));
    emit ~name:"analyze_trajectory" ~csv ~metrics (Analytics.Analyze.trajectory_csv t)
  in
  Cmd.v
    (Cmd.info "trajectory"
       ~doc:
         "Per-goal hit/FP/FN/inhibited rate surfaces over the fault × \
          window × seed grid.")
    Term.(const run $ journals_arg $ csv_arg $ metrics_arg)

let residual_cmd =
  let run journals csv metrics =
    let t = ingest journals in
    Fmt.epr "residual fraction=%g (goal cells=%d, cell-level missed=%d)@."
      (Analytics.Analyze.residual_fraction t)
      (Analytics.Analyze.goal_cells t)
      (Analytics.Analyze.missed_cells t);
    emit ~name:"analyze_residual" ~csv ~metrics (Analytics.Analyze.residual_csv t)
  in
  Cmd.v
    (Cmd.info "residual"
       ~doc:
         "Aggregate residual emergence: the fraction of goal-level \
          violations no ICPA subgoal monitor anticipated, per goal and \
          in total (thesis Ch. 5, at campaign scale).")
    Term.(const run $ journals_arg $ csv_arg $ metrics_arg)

let all_cmd =
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out-dir"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run journals out_dir metrics =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let t = ingest journals in
    List.iter
      (fun (file, contents) ->
        let path = Filename.concat out_dir file in
        Scenarios.Export.write_file path contents;
        Fmt.epr "wrote %s@." path)
      [
        ("cascade.csv", Analytics.Analyze.cascade_csv t);
        ("trajectory.csv", Analytics.Analyze.trajectory_csv t);
        ("residual.csv", Analytics.Analyze.residual_csv t);
      ];
    Option.iter
      (fun path ->
        Obs.Export.write_file ~name:"analyze_all" path;
        Fmt.epr "wrote metrics snapshot %s@." path)
      metrics
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Write all three tables into a directory.")
    Term.(const run $ journals_arg $ out_dir $ metrics_arg)

let () =
  let doc = "Mine campaign journals for system-level emergence patterns." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "analyze" ~doc)
          [ cascade_cmd; trajectory_cmd; residual_cmd; all_cmd ]))
