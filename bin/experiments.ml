(** [experiments] — regenerate the thesis's tables and figures.

    {v
    experiments list            # list experiment ids
    experiments all             # run every experiment
    experiments run table_d_1 fig_5_2 ...
    v} *)

open Cmdliner

let run_one (e : Core.Experiments.t) =
  Fmt.pr "==================================================================@.";
  Fmt.pr "%s — %s@." e.Core.Experiments.id e.Core.Experiments.title;
  Fmt.pr "==================================================================@.";
  e.Core.Experiments.run Fmt.stdout;
  Fmt.pr "@.@."

let list_cmd =
  let doc = "List experiment ids." in
  Cmd.v (Cmd.info "list" ~doc)
    (Term.(
       const (fun () ->
           List.iter
             (fun (e : Core.Experiments.t) ->
               Fmt.pr "%-14s %s@." e.Core.Experiments.id e.Core.Experiments.title)
             Core.Experiments.all)
       $ const ()))

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:
          "Pre-warm the scenario outcome cache on $(docv) domains before \
           rendering (default: the recommended domain count; 1 forces the \
           sequential path).")

let all_cmd =
  let doc = "Run every experiment (regenerates every table and figure)." in
  let run domains =
    Core.Experiments.prewarm ?domains ();
    List.iter run_one Core.Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ domains_arg)

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let doc = "Run the named experiments." in
  let run domains ids =
    (match domains with
    | Some d -> Core.Experiments.prewarm ~domains:d ()
    | None -> ());
    List.iter
      (fun id ->
        match Core.Experiments.get id with
        | Some e -> run_one e
        | None ->
            Fmt.epr "unknown experiment %s (try 'experiments list')@." id;
            exit 1)
      ids
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ domains_arg $ ids)

let () =
  let doc = "Regenerate the tables and figures of the thesis evaluation." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "experiments" ~doc) [ list_cmd; all_cmd; run_cmd ]))
