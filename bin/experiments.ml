(** [experiments] — regenerate the thesis's tables and figures.

    {v
    experiments list            # list experiment ids
    experiments all             # run every experiment
    experiments run table_d_1 fig_5_2 ...
    experiments campaign --seed 42 --domains 4
    experiments campaign --inject nan:object_range@2..8 --scenarios 1,3
    experiments campaign --journal c.jnl --retries 2   # crash-safe run
    experiments campaign --journal c.jnl --resume      # finish a killed run
    v} *)

open Cmdliner

(* Shared flags of the supervised, journaled campaign path (also on
   [export campaign] and, for retries, [simulate]). *)

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Fsync-append every completed campaign cell to this crash-safe \
           journal; with $(b,--resume), replay it first and execute only \
           the missing cells. Without $(b,--resume) an existing journal is \
           truncated.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the $(b,--journal) before running: completed cells are \
           restored bit-for-bit instead of re-simulated, so a campaign \
           killed mid-run finishes from where it stopped.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a failing cell up to $(docv) extra times (exponential \
           backoff with jitter, seeded by $(b,--seed)); a cell still \
           failing afterwards is quarantined and reported, instead of \
           aborting the campaign. Default 0: first failure aborts.")

let retry_policy ~seed retries =
  if retries > 0 then
    Some (Exec.Supervise.policy ~max_attempts:(retries + 1) ~seed ())
  else None

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard the campaign grid across $(docv) worker processes \
           (crash-isolated: a worker SIGKILL is absorbed by respawn and \
           requeue), each running $(b,--domains) domains. The matrix is \
           bit-for-bit identical to the single-process run.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          ("Inject a deterministic infrastructure-fault plan into the \
            campaign's own execution stack (workers, frames, journal, \
            spawns), seeded by $(b,--seed). Every fault is recoverable: \
            the matrix and CSV are bit-for-bit identical to the \
            chaos-free run. " ^ Exec.Chaos.conv_doc))

let hang_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "hang-timeout" ] ~docv:"SECS"
        ~doc:
          "Declare a sharded worker hung — SIGKILL it and requeue its \
           cells — after $(docv) seconds without results or heartbeats \
           (default 30).")

let batch_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "batch-deadline" ] ~docv:"SECS"
        ~doc:
          "Hard bound on one sharded batch's in-flight time: a worker \
           exceeding it is killed and its cells requeued, even if it is \
           still heartbeating (catches busy-looping tasks). Off by \
           default.")

let parse_chaos ~seed = function
  | None -> None
  | Some spec -> (
      match Exec.Chaos.parse ~seed spec with
      | Ok plan -> Some plan
      | Error e ->
          Fmt.epr "--chaos: %s@." e;
          exit 1)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Write an obs/1 JSON telemetry snapshot (pool/cache/journal \
           counters, latency histograms, phase spans) to $(docv) before \
           exiting.")

let write_metrics ~name metrics =
  Option.iter
    (fun path ->
      Obs.Export.write_file ~name path;
      Fmt.pr "wrote metrics snapshot %s@." path)
    metrics

let run_one (e : Core.Experiments.t) =
  Fmt.pr "==================================================================@.";
  Fmt.pr "%s — %s@." e.Core.Experiments.id e.Core.Experiments.title;
  Fmt.pr "==================================================================@.";
  e.Core.Experiments.run Fmt.stdout;
  Fmt.pr "@.@."

let list_cmd =
  let doc = "List experiment ids." in
  Cmd.v (Cmd.info "list" ~doc)
    (Term.(
       const (fun () ->
           List.iter
             (fun (e : Core.Experiments.t) ->
               Fmt.pr "%-14s %s@." e.Core.Experiments.id e.Core.Experiments.title)
             Core.Experiments.all)
       $ const ()))

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:
          "Pre-warm the scenario outcome cache on $(docv) domains before \
           rendering (default: the recommended domain count; 1 forces the \
           sequential path).")

let all_cmd =
  let doc = "Run every experiment (regenerates every table and figure)." in
  let run domains metrics =
    Core.Experiments.prewarm ?domains ();
    List.iter run_one Core.Experiments.all;
    write_metrics ~name:"experiments_all" metrics
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ domains_arg $ metrics_arg)

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let doc = "Run the named experiments." in
  let run domains ids metrics =
    (match domains with
    | Some d -> Core.Experiments.prewarm ~domains:d ()
    | None -> ());
    List.iter
      (fun id ->
        match Core.Experiments.get id with
        | Some e -> run_one e
        | None ->
            Fmt.epr "unknown experiment %s (try 'experiments list')@." id;
            exit 1)
      ids;
    write_metrics ~name:"experiments_run" metrics
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ domains_arg $ ids $ metrics_arg)

let campaign_cmd =
  let doc =
    "Run a fault-injection campaign: a fault × scenario grid against the \
     repaired baseline, reporting the detection-coverage matrix."
  in
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Inject.Spec.parse s with
          | Ok f -> Ok f
          | Error e -> Error (`Msg e)),
        Inject.Fault.pp )
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Campaign seed; same seed, bit-for-bit identical matrix.")
  in
  let faults =
    Arg.(
      value
      & opt_all spec_conv []
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            (Inject.Spec.conv_doc
            ^ " Repeatable; default: the smoke grid's three sensor faults."))
  in
  let scenarios =
    Arg.(
      value
      & opt (list int) [ 1; 3; 7 ]
      & info [ "scenarios" ] ~docv:"N,.."
          ~doc:"Scenario numbers forming the grid columns.")
  in
  let run domains shards seed faults scenarios journal resume retries chaos
      hang_timeout deadline metrics =
    if resume && journal = None then begin
      Fmt.epr "--resume requires --journal PATH@.";
      exit 1
    end;
    let smoke = Scenarios.Campaign.smoke ~seed () in
    let grid =
      {
        Scenarios.Campaign.seed;
        faults = (if faults = [] then smoke.Scenarios.Campaign.faults else faults);
        grid_scenarios = List.map Scenarios.Defs.get scenarios;
      }
    in
    Fmt.pr "%a@." Scenarios.Campaign.pp
      (Scenarios.Campaign.run ?domains ?shards ?journal ~resume
         ?retry:(retry_policy ~seed retries)
         ?chaos:(parse_chaos ~seed chaos) ?hang_timeout_s:hang_timeout
         ?deadline_s:deadline grid);
    write_metrics ~name:(Fmt.str "campaign_seed%d" seed) metrics
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ domains_arg $ shards_arg $ seed $ faults $ scenarios
      $ journal_arg $ resume_arg $ retries_arg $ chaos_arg $ hang_timeout_arg
      $ batch_deadline_arg $ metrics_arg)

let () =
  (* Must precede everything else: when this process is a shard worker
     (re-executed by a sharded campaign), it serves its frames and exits
     here instead of running the CLI. *)
  Exec.Shard.init ();
  let doc = "Regenerate the tables and figures of the thesis evaluation." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "experiments" ~doc)
          [ list_cmd; all_cmd; run_cmd; campaign_cmd ]))
