(** Benchmark harness: one Bechamel test per regenerated table and figure
    (the full experiment registry), plus micro-benchmarks of the substrate
    (incremental monitoring, reference evaluation, model checking,
    realizability analysis, simulation stepping).

    Scenario simulations are pre-warmed once so the per-table benchmarks
    measure table regeneration over the shared outcomes, not ten repeated
    20-second simulations per sample.

    Besides the human-readable table, every run writes a machine-readable
    [BENCH_smoke.json] / [BENCH_full.json] snapshot in the obs/1 schema:
    the per-benchmark time estimates (ns/run) under ["bench"], alongside
    the exec-engine telemetry (pool/cache counters, latency histograms)
    the warm-up and fleet runs produced. CI validates it with
    [metrics_check] and archives it for cross-commit comparison. *)

open Bechamel
open Toolkit

let null_formatter =
  (* render into a scratch buffer that is cleared after each run *)
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  fun f ->
    f ppf;
    Format.pp_print_flush ppf ();
    let n = Buffer.length buf in
    Buffer.clear buf;
    n

(* ------------------------------------------------------------------ *)
(* One benchmark per experiment (table / figure)                        *)

let experiment_tests =
  List.map
    (fun (e : Core.Experiments.t) ->
      Test.make ~name:e.Core.Experiments.id
        (Staged.stage (fun () -> null_formatter e.Core.Experiments.run)))
    Core.Experiments.all

(* ------------------------------------------------------------------ *)
(* Substrate micro-benchmarks                                           *)

let bench_monitor_step =
  let open Tl in
  let goal = Vehicle.Goals.g4.Kaos.Goal.formal in
  let state =
    State.of_list
      [
        (Vehicle.Signals.host_speed, Value.Float 0.);
        (Vehicle.Signals.host_accel, Value.Float 0.);
        (Vehicle.Signals.throttle_pedal, Value.Float 0.);
        (Vehicle.Signals.hmi_go, Value.Bool false);
        (Vehicle.Signals.va_source, Value.Sym "Driver");
      ]
  in
  let m0 = Rtmon.Incremental.create ~dt:0.001 goal in
  Test.make ~name:"micro_monitor_step_goal4"
    (Staged.stage (fun () -> ignore (Rtmon.Incremental.step m0 state)))

let bench_monitor_trace =
  let open Tl in
  let trace =
    Trace.init ~dt:0.001 1000 (fun i ->
        State.of_list
          [ ("p", Value.Bool (i mod 3 = 0)); ("q", Value.Bool (i mod 5 <> 0)) ])
  in
  let phi =
    Formula.entails
      (Formula.prev_for 0.05 (Formula.bvar "p"))
      (Formula.once_within 0.01 (Formula.bvar "q"))
  in
  Test.make ~name:"micro_monitor_1k_states"
    (Staged.stage (fun () -> ignore (Rtmon.Incremental.run_trace phi trace)))

let bench_reference_eval =
  let open Tl in
  let trace =
    Trace.init ~dt:1.0 64 (fun i -> State.of_list [ ("p", Value.Bool (i mod 2 = 0)) ])
  in
  let phi = Formula.hist (Formula.once (Formula.bvar "p")) in
  Test.make ~name:"micro_reference_eval"
    (Staged.stage (fun () -> ignore (Eval.series trace phi)))

let bench_mc_elevator =
  Test.make ~name:"micro_mc_elevator_composition"
    (Staged.stage (fun () -> ignore (Elevator.Verification.check ())))

let bench_patterns =
  let form = List.hd Kaos.Patterns.forms in
  Test.make ~name:"micro_realizability_table"
    (Staged.stage (fun () -> ignore (Kaos.Patterns.table form)))

let bench_sim_elevator =
  Test.make ~name:"micro_elevator_sim_5s"
    (Staged.stage (fun () ->
         let config = { Elevator.Simulation.default_config with duration = 5.0 } in
         ignore (Elevator.Simulation.run ~config ())))

let bench_vehicle_scenario =
  (* cache bypassed: this one measures the simulation itself *)
  Test.make ~name:"micro_vehicle_scenario_1"
    (Staged.stage (fun () ->
         ignore (Scenarios.Runner.run ~use_cache:false (Scenarios.Defs.get 1))))

let micro_tests =
  [
    bench_monitor_step;
    bench_monitor_trace;
    bench_reference_eval;
    bench_mc_elevator;
    bench_patterns;
    bench_sim_elevator;
    bench_vehicle_scenario;
  ]

(* ------------------------------------------------------------------ *)

let run_test test =
  let quota = Time.second 0.25 in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances test in
  Analyze.all ols Instance.monotonic_clock raw

(* The single OLS time estimate of a run, in ns, if the fit produced one. *)
let estimate_ns result =
  Hashtbl.fold
    (fun _k ols acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Analyze.OLS.estimates ols with Some [ t ] -> Some t | _ -> None))
    result None

let pp_estimate name = function
  | Some t ->
      let t, unit_ =
        if t > 1e9 then (t /. 1e9, "s")
        else if t > 1e6 then (t /. 1e6, "ms")
        else if t > 1e3 then (t /. 1e3, "us")
        else (t, "ns")
      in
      Fmt.pr "%-34s %10.2f %s/run@." name t unit_
  | None -> Fmt.pr "%-34s (no estimate)@." name

(* Monotonic ([Obs.Clock]), not [Unix.gettimeofday]: an NTP step during a
   multi-minute bench run must not corrupt the headline numbers. *)
let wall = Obs.Clock.elapsed

(* ------------------------------------------------------------------ *)
(* Campaign-service round-trip: the daemon's overhead per request.      *)

(* An in-process daemon (own Domain, temp socket): the first submission
   runs a one-cell campaign and lands in the result store; the timed
   loop then measures the full client round-trip of a store hit —
   connect, hello, submit, digest lookup, CSV reply — i.e. the service
   overhead a warm request pays on top of the campaign work itself. *)
let serve_roundtrip_row () =
  let dir = Filename.temp_dir "bench-serve" "" in
  let cfg =
    Serve.Server.default_config
      ~socket:(Filename.concat dir "d.sock")
      ~state_dir:(Filename.concat dir "state")
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run cfg) in
  let socket = cfg.Serve.Server.socket in
  let rec wait_ready n =
    match Serve.Client.stats ~socket with
    | Ok _ -> ()
    | Error _ ->
        if n = 0 then failwith "bench: serve daemon never came up";
        Unix.sleepf 0.05;
        wait_ready (n - 1)
  in
  wait_ready 100;
  let spec =
    {
      Serve.Wire.seed = 42;
      faults = [ "stuck=3:ca_accel_req" ];
      scenarios = [ 1 ];
      window = None;
      retries = 0;
    }
  in
  let submit () =
    match Serve.Client.submit_and_wait ~socket spec with
    | Ok r -> r
    | Error e -> failwith ("bench: serve submit failed: " ^ e)
  in
  ignore (submit ());
  let rounds = 50 in
  let _, t =
    wall (fun () ->
        for _ = 1 to rounds do
          ignore (submit ())
        done)
  in
  (match Serve.Client.drain ~socket with
  | Ok _ -> ()
  | Error e -> failwith ("bench: serve drain failed: " ^ e));
  Domain.join daemon;
  let ns = t *. 1e9 /. float_of_int rounds in
  pp_estimate "serve_roundtrip (store hit)" (Some ns);
  ("serve_roundtrip", ns)

(* Fleet-share contention: a long grid occupies the daemon when a
   1-cell store-miss request arrives. With one executor lane the probe
   head-of-line blocks behind the whole grid; with two lanes it runs
   immediately on the free lane. The perf gate asserts
   [serve_concurrent < serve_roundtrip_blocked] — the daemon's reason
   to exist past one campaign at a time, measured. *)
let serve_contention_row ~concurrent ~name =
  let dir = Filename.temp_dir "bench-serve" "" in
  let cfg =
    {
      (Serve.Server.default_config
         ~socket:(Filename.concat dir "d.sock")
         ~state_dir:(Filename.concat dir "state"))
      with
      Serve.Server.concurrent;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run cfg) in
  let socket = cfg.Serve.Server.socket in
  let rec wait_ready n =
    match Serve.Client.stats ~socket with
    | Ok _ -> ()
    | Error _ ->
        if n = 0 then failwith "bench: serve daemon never came up";
        Unix.sleepf 0.05;
        wait_ready (n - 1)
  in
  wait_ready 100;
  (* Occupy a lane: submit the long grid on a raw session that stays
     open (an orphaned request would be cancelled, not block). *)
  let long =
    {
      Serve.Wire.seed = 43;
      faults = [ "stuck=3:ca_accel_req"; "delay=150:accel_cmd" ];
      scenarios = [ 1; 2; 3 ];
      window = None;
      retries = 0;
    }
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let buf = Serve.Wire.Frame.create () in
  let recv () =
    let chunk = Bytes.create 65536 in
    let rec go () =
      match Serve.Wire.Frame.decode buf with
      | `Frame (v : Serve.Wire.response) -> v
      | `Corrupt -> failwith "bench: corrupt frame from serve daemon"
      | `Need_more -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> failwith "bench: serve daemon closed the connection"
          | n ->
              Serve.Wire.Frame.feed buf chunk n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    in
    go ()
  in
  Serve.Wire.Frame.write fd
    (Serve.Wire.Hello { proto = Serve.Wire.proto_version; client = "bench" });
  (match recv () with
  | Serve.Wire.Welcome _ -> ()
  | _ -> failwith "bench: expected Welcome");
  Serve.Wire.Frame.write fd (Serve.Wire.Submit { spec = long; deadline_s = None });
  (match recv () with
  | Serve.Wire.Accepted _ -> ()
  | _ -> failwith "bench: long grid not admitted");
  (* Let the grid actually start on its lane before the probe. *)
  Unix.sleepf 0.5;
  let quick =
    {
      Serve.Wire.seed = 42;
      faults = [ "stuck=3:ca_accel_req" ];
      scenarios = [ 1 ];
      window = None;
      retries = 0;
    }
  in
  let _, t =
    wall (fun () ->
        match Serve.Client.submit_and_wait ~socket quick with
        | Ok _ -> ()
        | Error e -> failwith ("bench: contention probe failed: " ^ e))
  in
  (match Serve.Client.drain ~socket with
  | Ok _ -> ()
  | Error e -> failwith ("bench: serve drain failed: " ^ e));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Domain.join daemon;
  let ns = t *. 1e9 in
  pp_estimate name (Some ns);
  (name, ns)

(* ------------------------------------------------------------------ *)
(* Full-fleet regeneration: the hot path the exec engine parallelizes.  *)

let fleet_comparison ~shards ?batch () =
  let n = max 1 (Domain.recommended_domain_count ()) in
  Fmt.pr "@.full-fleet regeneration (10 scenarios, cache bypassed)@.";
  Fmt.pr "%s@." (String.make 50 '-');
  let _, t_seq =
    wall (fun () -> Scenarios.Runner.run_all ~use_cache:false ~domains:1 ())
  in
  Fmt.pr "%-34s %10.2f s@." "sequential (1 domain)" t_seq;
  let _, t_par =
    wall (fun () -> Scenarios.Runner.run_all ~use_cache:false ~domains:n ())
  in
  Fmt.pr "%-34s %10.2f s  (%.2fx)@."
    (Fmt.str "parallel (%d domains)" n)
    t_par (t_seq /. t_par);
  (* Same fleet through the multi-process backend: [shards] workers of
     [n / shards] domains each, so the three rows compare one process /
     one domain, one process / n domains, and shards × domains. The
     fleet is warmed first so the row times the work, not the spawn. *)
  let s = max 1 shards in
  let d = max 1 (n / s) in
  Exec.Shard.warm ~shards:s ~domains:d ();
  let _, t_shard =
    wall (fun () ->
        Scenarios.Runner.run_all ~use_cache:false ~shards:s ~domains:d ?batch ())
  in
  Fmt.pr "%-34s %10.2f s  (%.2fx)@."
    (Fmt.str "sharded (%d procs x %d domains)" s d)
    t_shard (t_seq /. t_shard);
  let _, t_warm = wall (fun () -> Scenarios.Runner.run_all ()) in
  Fmt.pr "%-34s %10.4f s@." "warm cache" t_warm;
  let cells = List.length Scenarios.Defs.all in
  (* whole-run timings as bench entries, normalized to ns like the rest;
     [per_cell_us] is the sequential per-scenario cost in microseconds —
     the unit sizing batch and shard decisions. *)
  [
    ("fleet_sequential", t_seq *. 1e9);
    ("fleet_parallel", t_par *. 1e9);
    ("fleet_sharded", t_shard *. 1e9);
    ("fleet_warm_cache", t_warm *. 1e9);
    ("per_cell_us", t_seq *. 1e6 /. float_of_int (max 1 cells));
  ]

let run_bench tests =
  Fmt.pr "@.%-34s %14s@." "benchmark" "time";
  Fmt.pr "%s@." (String.make 50 '-');
  List.filter_map
    (fun test ->
      let name = Test.Elt.name (List.hd (Test.elements test)) in
      let est = estimate_ns (run_test test) in
      pp_estimate name est;
      Option.map (fun t -> (name, t)) est)
    tests

let write_snapshot ~name bench =
  let path = Fmt.str "BENCH_%s.json" name in
  Obs.Export.write_file ~name ~bench path;
  Fmt.pr "@.wrote %s (%d estimates)@." path (List.length bench)

(* [--flag N] in [Sys.argv], if present ([None] otherwise). The bench
   keeps raw argv parsing — three flags don't justify a cmdliner term. *)
let int_argv flag =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = flag then int_of_string_opt Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  (* Must precede everything else: when this process is a shard worker
     (re-executed by a sharded fleet run), it serves its frames and exits
     here instead of running the benchmarks. *)
  Exec.Shard.init ();
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let shards = int_argv "--shards" in
  let batch = int_argv "--cells-per-frame" in
  if smoke then begin
    (* CI smoke: one experiment over one pre-warmed scenario, minimal
       samples — proves the perf harness still compiles and runs. *)
    Fmt.pr "bench smoke: pre-warming scenario 1…@.";
    let _, t = wall (fun () -> ignore (Core.Experiments.outcome 1)) in
    Fmt.pr "scenario 1 simulated in %.2f s@." t;
    let smoke_test =
      match List.filter (fun (e : Core.Experiments.t) -> e.Core.Experiments.id = "table_d_1") Core.Experiments.all with
      | e :: _ ->
          Test.make ~name:e.Core.Experiments.id
            (Staged.stage (fun () -> null_formatter e.Core.Experiments.run))
      | [] -> assert false
    in
    let estimates = run_bench [ smoke_test ] in
    (* With [--shards N] the smoke run also times the fleet through the
       multi-process backend against the sequential baseline, so CI gets
       a sharded snapshot row without the full bench's cost. *)
    let sharded_rows =
      match shards with
      | None -> []
      | Some s ->
          Fmt.pr "@.smoke fleet, sequential vs %d shards@." s;
          let _, t_seq =
            wall (fun () ->
                Scenarios.Runner.run_all ~use_cache:false ~domains:1 ())
          in
          Fmt.pr "%-34s %10.2f s@." "fleet sequential" t_seq;
          (* Warm the fleet first: the row times the sharded work, not
             the one-off worker spawn the fleet amortizes away. *)
          Exec.Shard.warm ~shards:s ~domains:1 ();
          let _, t_shard =
            wall (fun () ->
                Scenarios.Runner.run_all ~use_cache:false ~shards:s ~domains:1
                  ?batch ())
          in
          Fmt.pr "%-34s %10.2f s  (%.2fx)@."
            (Fmt.str "fleet sharded (%d procs)" s)
            t_shard (t_seq /. t_shard);
          let cells = List.length Scenarios.Defs.all in
          [
            ("fleet_sequential", t_seq *. 1e9);
            ("fleet_sharded", t_shard *. 1e9);
            ("per_cell_us", t_seq *. 1e6 /. float_of_int (max 1 cells));
          ]
    in
    let serve_row = serve_roundtrip_row () in
    let blocked_row =
      serve_contention_row ~concurrent:1 ~name:"serve_roundtrip_blocked"
    in
    let concurrent_row =
      serve_contention_row ~concurrent:2 ~name:"serve_concurrent"
    in
    write_snapshot ~name:"smoke"
      ((("prewarm_scenario_1", t *. 1e9)
       :: serve_row :: blocked_row :: concurrent_row :: sharded_rows)
      @ estimates)
  end
  else begin
    (* Pre-warm the scenario outcomes — in parallel, through the exec
       engine — so table benches measure regeneration over the shared
       cache, not repeated 20-second simulations. *)
    Fmt.pr "pre-warming scenario simulations (%d domains)…@."
      (max 1 (Domain.recommended_domain_count ()));
    let _, t = wall (fun () -> Core.Experiments.prewarm ()) in
    Fmt.pr "fleet warmed in %.2f s@." t;
    let fleet =
      fleet_comparison ~shards:(Option.value shards ~default:2) ?batch ()
    in
    let serve_row = serve_roundtrip_row () in
    let blocked_row =
      serve_contention_row ~concurrent:1 ~name:"serve_roundtrip_blocked"
    in
    let concurrent_row =
      serve_contention_row ~concurrent:2 ~name:"serve_concurrent"
    in
    let estimates = run_bench (micro_tests @ experiment_tests) in
    write_snapshot ~name:"full"
      ((("prewarm_fleet", t *. 1e9)
       :: serve_row :: blocked_row :: concurrent_row :: fleet)
      @ estimates)
  end
