(** Tests for the incremental monitors: the central property is equivalence
    with the reference trace semantics on the full past-time fragment. *)

open Tl

let state bits vars = State.of_list (List.map2 (fun v x -> (v, Value.Bool x)) vars bits)

(* Reuse the same generators as test_tl (duplicated deliberately: the suites
   are independent executables). *)
let vars3 = [ "p"; "q"; "r" ]

let gen_formula =
  let open QCheck.Gen in
  let base = map (fun v -> Formula.bvar v) (oneofl vars3) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then base
         else
           frequency
             [
               (2, base);
               (1, map Formula.not_ (self (n - 1)));
               (1, map2 (fun a b -> Formula.And (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Or (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Formula.Iff (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map Formula.prev (self (n - 1)));
               (1, map Formula.once (self (n - 1)));
               (1, map Formula.hist (self (n - 1)));
               (1, map Formula.rose (self (n - 1)));
               ( 1,
                 map2
                   (fun k f -> Formula.prev_for (float_of_int (1 + (k mod 4))) f)
                   small_nat (self (n - 1)) );
               ( 1,
                 map2
                   (fun k f -> Formula.once_within (float_of_int (1 + (k mod 4))) f)
                   small_nat (self (n - 1)) );
             ])

let gen_trace =
  let open QCheck.Gen in
  let gen_state = map (fun bits -> state bits vars3) (list_repeat 3 bool) in
  map (fun ss -> Trace.make ~dt:1.0 ss) (list_size (int_range 1 12) gen_state)

let arb =
  QCheck.make
    ~print:(fun (f, tr) ->
      Fmt.str "%a over %d states" Formula.pp f (Trace.length tr))
    QCheck.Gen.(pair gen_formula gen_trace)

(** THE property: the pure incremental monitor computes exactly the
    reference semantics at every state. *)
let prop_incremental_equals_reference =
  QCheck.Test.make ~name:"incremental monitor ≡ reference semantics" ~count:500 arb
    (fun (phi, tr) ->
      let inc = Rtmon.Incremental.run_trace phi tr in
      let ref_ = Eval.series tr phi in
      inc = ref_)

(** Monitors never mutate their input: stepping the same monitor twice with
    the same state yields the same result. *)
let prop_purity =
  QCheck.Test.make ~name:"monitor step is pure" ~count:200 arb (fun (phi, tr) ->
      let m0 = Rtmon.Incremental.create ~dt:1.0 phi in
      let s = Trace.get tr 0 in
      let r1, m1 = Rtmon.Incremental.step m0 s in
      let r2, m2 = Rtmon.Incremental.step m0 s in
      r1 = r2 && Rtmon.Incremental.mem m1 = Rtmon.Incremental.mem m2)

let test_rejects_future () =
  Alcotest.check_raises "eventually rejected"
    (Rtmon.Incremental.Not_monitorable
       "formula contains future operators: ♦p")
    (fun () ->
      ignore (Rtmon.Incremental.create ~dt:1.0 (Formula.eventually (Formula.bvar "p"))))

let test_invariant_stripping () =
  (* Monitoring P ⇒ Q checks P → Q state by state. *)
  let phi = Formula.entails (Formula.bvar "p") (Formula.bvar "q") in
  let tr =
    Trace.make ~dt:1.0
      [
        state [ true; true; false ] vars3;
        state [ true; false; false ] vars3;
        state [ false; false; false ] vars3;
      ]
  in
  Alcotest.(check (list bool)) "per-state" [ true; false; true ]
    (Array.to_list (Rtmon.Incremental.run_trace phi tr))

(* ------------------------------------------------------------------ *)
(* Violations                                                           *)

let test_violation_intervals () =
  let ok = [| true; false; false; true; false; true |] in
  let ivs = Rtmon.Violation.of_series ~dt:0.001 ok in
  Alcotest.(check int) "two intervals" 2 (List.length ivs);
  let first = List.hd ivs in
  Alcotest.(check int) "start" 1 first.Rtmon.Violation.start_index;
  Alcotest.(check int) "length" 2 first.Rtmon.Violation.length;
  Alcotest.(check (float 1e-9)) "duration" 0.002 first.Rtmon.Violation.duration;
  Alcotest.(check (float 1e-9)) "total" 0.003 (Rtmon.Violation.total_duration ivs)

let test_violation_all_ok () =
  Alcotest.(check int) "no intervals" 0
    (List.length (Rtmon.Violation.of_series ~dt:1.0 [| true; true |]))

let test_overlap_window () =
  let iv start dur =
    {
      Rtmon.Violation.start_index = 0;
      length = 1;
      start_time = start;
      duration = dur;
    }
  in
  Alcotest.(check bool) "within window" true
    (Rtmon.Violation.overlap_within ~window:0.05 (iv 1.0 0.01) (iv 1.04 0.01));
  Alcotest.(check bool) "outside window" false
    (Rtmon.Violation.overlap_within ~window:0.05 (iv 1.0 0.01) (iv 1.2 0.01))

(* ------------------------------------------------------------------ *)
(* Hit / false positive / false negative classification                 *)

let iv start dur =
  { Rtmon.Violation.start_index = 0; length = 1; start_time = start; duration = dur }

let test_classification () =
  let r =
    Rtmon.Report.classify ~window:0.05
      ~goal:("G", "Vehicle", [ iv 1.0 0.01; iv 5.0 0.01 ])
      ~subgoals:
        [ ("G-A", "Arbiter", [ iv 1.01 0.01 ]); ("G-B", "CA", [ iv 9.0 0.01 ]) ]
      ()
  in
  Alcotest.(check int) "one hit" 1 r.Rtmon.Report.hits;
  Alcotest.(check int) "one false negative" 1 r.Rtmon.Report.false_negatives;
  Alcotest.(check int) "one false positive" 1 r.Rtmon.Report.false_positives

let test_classification_empty () =
  let r =
    Rtmon.Report.classify ~window:0.05 ~goal:("G", "V", []) ~subgoals:[] ()
  in
  Alcotest.(check int) "no hits" 0 r.Rtmon.Report.hits;
  Alcotest.(check int) "no FN" 0 r.Rtmon.Report.false_negatives;
  Alcotest.(check int) "no FP" 0 r.Rtmon.Report.false_positives

let prop_classification_conservation =
  (* Every goal violation is a hit or a false negative; every subgoal
     violation is a hit or a false positive. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 6) (map (fun t -> iv (float_of_int t) 0.01) (int_range 0 20)))
        (list_size (int_range 0 6) (map (fun t -> iv (float_of_int t) 0.01) (int_range 0 20))))
  in
  QCheck.Test.make ~name:"classification partitions violations" ~count:200
    (QCheck.make gen) (fun (givs, sivs) ->
      let r =
        Rtmon.Report.classify ~window:0.5 ~goal:("G", "V", givs)
          ~subgoals:[ ("S", "A", sivs) ]
          ()
      in
      let goal_hits =
        List.length
          (List.filter
             (fun (e : Rtmon.Report.entry) ->
               e.Rtmon.Report.goal_name = "G" && e.Rtmon.Report.outcome = Rtmon.Report.Hit)
             r.Rtmon.Report.entries)
      in
      goal_hits + r.Rtmon.Report.false_negatives = List.length givs
      && List.length r.Rtmon.Report.entries = List.length givs + List.length sivs)

let () =
  Alcotest.run "rtmon"
    [
      ( "incremental",
        [
          QCheck_alcotest.to_alcotest prop_incremental_equals_reference;
          QCheck_alcotest.to_alcotest prop_purity;
          Alcotest.test_case "rejects future operators" `Quick test_rejects_future;
          Alcotest.test_case "invariant stripping" `Quick test_invariant_stripping;
        ] );
      ( "violations",
        [
          Alcotest.test_case "interval extraction" `Quick test_violation_intervals;
          Alcotest.test_case "all satisfied" `Quick test_violation_all_ok;
          Alcotest.test_case "overlap window" `Quick test_overlap_window;
        ] );
      ( "classification",
        [
          Alcotest.test_case "hit/FN/FP" `Quick test_classification;
          Alcotest.test_case "empty" `Quick test_classification_empty;
          QCheck_alcotest.to_alcotest prop_classification_conservation;
        ] );
    ]
