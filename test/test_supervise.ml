(** Supervised batch execution: retry with backoff, quarantine, attempt
    accounting, and the deterministic backoff schedule. *)

exception Flaky of int
exception Fatal

(* A task that fails its first [n] attempts, then succeeds. Attempt
   counters are atomics because supervised batches may run on pool
   domains. *)
let flaky_until n =
  let counts = Hashtbl.create 8 in
  let lock = Mutex.create () in
  let counter i =
    Mutex.lock lock;
    let c =
      match Hashtbl.find_opt counts i with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counts i c;
          c
    in
    Mutex.unlock lock;
    c
  in
  let task i =
    let attempt = 1 + Atomic.fetch_and_add (counter i) 1 in
    if attempt <= n then raise (Flaky i);
    i * 10
  in
  (task, fun i -> Atomic.get (counter i))

(* Fast policy so retry tests don't sleep noticeably. *)
let fast ?(max_attempts = 3) ?retry_on () =
  Exec.Supervise.policy ~max_attempts ~base_delay_s:0.001 ~max_delay_s:0.002
    ?retry_on ()

let get_done (r : _ Exec.Supervise.report) =
  match r.Exec.Supervise.status with
  | Exec.Supervise.Done v -> v
  | Exec.Supervise.Quarantined _ -> Alcotest.fail "unexpected quarantine"

let test_retry_until_success () =
  let task, attempts_of = flaky_until 2 in
  let reports =
    Exec.Supervise.try_map ~domains:1 ~policy:(fast ()) task [ 0; 1; 2 ]
  in
  Alcotest.(check (list int))
    "all tasks eventually succeed, in submission order" [ 0; 10; 20 ]
    (List.map get_done reports);
  List.iter
    (fun (r : _ Exec.Supervise.report) ->
      Alcotest.(check int) "3 attempts reported" 3 r.Exec.Supervise.attempts)
    reports;
  List.iter
    (fun i -> Alcotest.(check int) "3 attempts made" 3 (attempts_of i))
    [ 0; 1; 2 ];
  let s = Exec.Supervise.stats reports in
  Alcotest.(check int) "stats: tasks" 3 s.Exec.Supervise.tasks;
  Alcotest.(check int) "stats: retried" 3 s.Exec.Supervise.retried;
  Alcotest.(check int) "stats: retries" 6 s.Exec.Supervise.retries;
  Alcotest.(check int) "stats: none quarantined" 0 s.Exec.Supervise.quarantined

let test_quarantine_after_exhaustion () =
  (* Task 1 never succeeds within 2 attempts; the rest of the batch is
     unaffected and keeps its results. *)
  let task, attempts_of = flaky_until 5 in
  let mixed i = if i = 1 then task i else i * 10 in
  let reports =
    Exec.Supervise.try_map ~domains:1 ~policy:(fast ~max_attempts:2 ()) mixed
      [ 0; 1; 2 ]
  in
  (match reports with
  | [ a; b; c ] ->
      Alcotest.(check int) "task 0 result" 0 (get_done a);
      Alcotest.(check int) "task 2 result" 20 (get_done c);
      Alcotest.(check int) "healthy tasks ran once" 1 a.Exec.Supervise.attempts;
      (match b.Exec.Supervise.status with
      | Exec.Supervise.Quarantined e ->
          Alcotest.(check bool) "last error preserved" true
            (e.Exec.Pool.exn = Flaky 1);
          Alcotest.(check int) "index is the original batch position" 1
            e.Exec.Pool.index
      | Exec.Supervise.Done _ -> Alcotest.fail "task 1 must be quarantined");
      Alcotest.(check int) "quarantined after max_attempts" 2
        b.Exec.Supervise.attempts;
      Alcotest.(check int) "2 attempts actually made" 2 (attempts_of 1)
  | _ -> Alcotest.fail "unexpected batch shape");
  let s = Exec.Supervise.stats reports in
  Alcotest.(check int) "stats: one quarantined" 1 s.Exec.Supervise.quarantined;
  Alcotest.(check int) "stats: one retried" 1 s.Exec.Supervise.retried

let test_retry_on_short_circuit () =
  (* A failure the policy rejects quarantines immediately: no second
     attempt even though max_attempts allows it. *)
  let runs = Atomic.make 0 in
  let task () =
    Atomic.incr runs;
    raise Fatal
  in
  let policy = fast ~retry_on:(function Flaky _ -> true | _ -> false) () in
  match Exec.Supervise.try_map ~domains:1 ~policy task [ () ] with
  | [ { Exec.Supervise.status = Exec.Supervise.Quarantined e; attempts } ] ->
      Alcotest.(check bool) "Fatal preserved" true (e.Exec.Pool.exn = Fatal);
      Alcotest.(check int) "one attempt only" 1 attempts;
      Alcotest.(check int) "task ran exactly once" 1 (Atomic.get runs)
  | _ -> Alcotest.fail "expected immediate quarantine"

let test_map_reraises_quarantined () =
  Alcotest.check_raises "map re-raises the quarantined error" Fatal (fun () ->
      ignore
        (Exec.Supervise.map ~domains:1 ~policy:(fast ~max_attempts:2 ())
           (fun () -> raise Fatal)
           [ () ]))

let test_parallel_supervision () =
  (* Supervision must compose with the real pool: retried results come back
     in submission order regardless of which domain re-ran them. *)
  let task, _ = flaky_until 1 in
  let xs = List.init 8 Fun.id in
  let reports =
    Exec.Supervise.try_map ~domains:3 ~policy:(fast ()) task xs
  in
  Alcotest.(check (list int))
    "submission order preserved under parallel retry"
    (List.map (fun i -> i * 10) xs)
    (List.map get_done reports);
  let s = Exec.Supervise.stats reports in
  Alcotest.(check int) "every task retried once" 8 s.Exec.Supervise.retries

let test_backoff_schedule () =
  let p =
    Exec.Supervise.policy ~base_delay_s:0.05 ~max_delay_s:0.4 ~jitter:0.25
      ~seed:7 ()
  in
  (* Deterministic: same policy, same attempt, same delay. *)
  List.iter
    (fun a ->
      Alcotest.(check (float 0.))
        (Fmt.str "attempt %d deterministic" a)
        (Exec.Supervise.backoff_delay p ~attempt:a)
        (Exec.Supervise.backoff_delay p ~attempt:a))
    [ 1; 2; 3; 4; 5 ];
  (* Each delay lands inside the jittered envelope of the capped
     exponential. *)
  List.iter
    (fun a ->
      let nominal = Float.min 0.4 (0.05 *. (2. ** float_of_int (a - 1))) in
      let d = Exec.Supervise.backoff_delay p ~attempt:a in
      Alcotest.(check bool)
        (Fmt.str "attempt %d within envelope" a)
        true
        (d >= 0.75 *. nominal -. 1e-9 && d <= 1.25 *. nominal +. 1e-9))
    [ 1; 2; 3; 4; 5; 6 ];
  (* A different seed jitters differently (overwhelmingly likely for at
     least one of the first five attempts). *)
  let q = { p with Exec.Supervise.seed = 8 } in
  Alcotest.(check bool) "seed changes the schedule" true
    (List.exists
       (fun a ->
         Exec.Supervise.backoff_delay p ~attempt:a
         <> Exec.Supervise.backoff_delay q ~attempt:a)
       [ 1; 2; 3; 4; 5 ]);
  (* Jitter-free policies are exactly the capped exponential. *)
  let exact = Exec.Supervise.policy ~base_delay_s:0.1 ~max_delay_s:0.3 ~jitter:0. () in
  Alcotest.(check (float 1e-9)) "2^0 base" 0.1
    (Exec.Supervise.backoff_delay exact ~attempt:1);
  Alcotest.(check (float 1e-9)) "doubled" 0.2
    (Exec.Supervise.backoff_delay exact ~attempt:2);
  Alcotest.(check (float 1e-9)) "capped" 0.3
    (Exec.Supervise.backoff_delay exact ~attempt:3);
  Alcotest.(check (float 1e-9)) "stays capped" 0.3
    (Exec.Supervise.backoff_delay exact ~attempt:9)

let test_zero_delay_fast_path () =
  (* A zero-delay policy must neither sleep nor record backoff samples:
     shard crash-recovery tests lean on this to retry without wall-clock
     waits. The histogram count is the deterministic witness — a slept
     delay is always observed, a skipped one never is. *)
  let h = Obs.Metrics.histogram "supervise.backoff_s" in
  let count0 = (Obs.Metrics.summary h).Obs.Metrics.count in
  let policy =
    Exec.Supervise.policy ~max_attempts:3 ~base_delay_s:0. ~jitter:0. ()
  in
  Alcotest.(check (float 0.))
    "zero base delay means zero backoff" 0.
    (Exec.Supervise.backoff_delay policy ~attempt:5);
  let task, attempts_of = flaky_until 2 in
  let t0 = Obs.Clock.now () in
  let reports = Exec.Supervise.try_map ~domains:1 ~policy task [ 0 ] in
  let elapsed = Obs.Clock.now () -. t0 in
  Alcotest.(check (list int)) "retries still happen" [ 0 ]
    (List.map get_done reports);
  Alcotest.(check int) "3 attempts made" 3 (attempts_of 0);
  Alcotest.(check int) "no backoff samples recorded" count0
    (Obs.Metrics.summary h).Obs.Metrics.count;
  (* Generous sanity bound: two skipped sleeps of the 50 ms default would
     already exceed this on their own. *)
  Alcotest.(check bool) "no wall-clock sleep" true (elapsed < 0.05)

let test_on_result_hook () =
  (* The settle hook fires exactly once per Done task with the original
     batch index — including retried tasks — and never for quarantined
     ones. *)
  let seen = ref [] in
  let task, _ = flaky_until 1 in
  let mixed i = if i = 2 then raise Fatal else task i in
  let policy =
    fast ~max_attempts:2 ~retry_on:(function Flaky _ -> true | _ -> false) ()
  in
  let reports =
    Exec.Supervise.try_map ~domains:2 ~policy
      ~on_result:(fun i v -> seen := (i, v) :: !seen)
      mixed [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "4 reports" 4 (List.length reports);
  Alcotest.(check (list (pair int int)))
    "hook saw each Done task once, quarantined task never"
    [ (0, 0); (1, 10); (3, 30) ]
    (List.sort compare !seen)

let test_default_policy_rejects_reentrancy () =
  Alcotest.(check bool) "Reentrant_submission is not retryable" false
    (Exec.Supervise.default_policy.Exec.Supervise.retry_on
       Exec.Pool.Reentrant_submission);
  Alcotest.(check bool) "ordinary failures are retryable" true
    (Exec.Supervise.default_policy.Exec.Supervise.retry_on Fatal)

let test_policy_validation () =
  Alcotest.check_raises "max_attempts 0 rejected"
    (Invalid_argument "Supervise.policy: max_attempts < 1") (fun () ->
      ignore (Exec.Supervise.policy ~max_attempts:0 ()));
  Alcotest.check_raises "jitter > 1 rejected"
    (Invalid_argument "Supervise.policy: jitter outside [0, 1]") (fun () ->
      ignore (Exec.Supervise.policy ~jitter:1.5 ()))

let () =
  Alcotest.run "supervise"
    [
      ( "retry",
        [
          Alcotest.test_case "retry until success" `Quick test_retry_until_success;
          Alcotest.test_case "quarantine after exhaustion" `Quick
            test_quarantine_after_exhaustion;
          Alcotest.test_case "retry_on short-circuits" `Quick
            test_retry_on_short_circuit;
          Alcotest.test_case "map re-raises quarantined" `Quick
            test_map_reraises_quarantined;
          Alcotest.test_case "parallel supervision keeps order" `Quick
            test_parallel_supervision;
          Alcotest.test_case "on_result fires once per Done task" `Quick
            test_on_result_hook;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic capped jittered schedule" `Quick
            test_backoff_schedule;
          Alcotest.test_case "zero-delay fast path skips sleep and sample"
            `Quick test_zero_delay_fast_path;
          Alcotest.test_case "default policy refuses re-entrancy" `Quick
            test_default_policy_rejects_reentrancy;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
    ]
