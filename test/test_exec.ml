(** The parallel execution engine: submission-order determinism, per-task
    exception isolation, parallel/sequential equivalence of the scenario
    fleet, and the shared outcome cache. *)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                       *)

let test_map_matches_sequential () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "map ~domains:4 = List.map" (List.map succ xs)
    (Exec.Pool.map ~domains:4 succ xs);
  Alcotest.(check (list int))
    "map ~domains:1 = List.map" (List.map succ xs)
    (Exec.Pool.map ~domains:1 succ xs)

let test_submission_order () =
  (* Later-submitted tasks finish first: task i sleeps (n - i) * 20 ms, so
     with 4 workers the completion order is roughly the reverse of the
     submission order. Results must come back in submission order. *)
  let n = 8 in
  let xs = List.init n Fun.id in
  let results =
    Exec.Pool.try_map ~domains:4
      (fun i ->
        Unix.sleepf (float_of_int (n - i) *. 0.02);
        i)
      xs
  in
  let values = List.map (function Ok v -> v | Error _ -> -1) results in
  Alcotest.(check (list int)) "submission order preserved" xs values

exception Boom of int

let test_exception_isolated () =
  let results =
    Exec.Pool.try_map ~domains:4
      (fun i -> if i = 3 then raise (Boom i) else i * 2)
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i r ->
      match (i, r) with
      | 3, Error e ->
          Alcotest.(check int) "error carries its index" 3 e.Exec.Pool.index;
          Alcotest.(check bool) "error carries the exception" true (e.Exec.Pool.exn = Boom 3)
      | 3, Ok _ -> Alcotest.fail "task 3 should have failed"
      | i, Ok v -> Alcotest.(check int) (Fmt.str "task %d ok" i) (i * 2) v
      | i, Error _ -> Alcotest.fail (Fmt.str "task %d poisoned" i))
    results

let test_pool_survives_failure () =
  (* A failing batch must not take down the workers: the same pool runs a
     clean batch afterwards. *)
  let pool = Exec.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let first =
        Exec.Pool.try_map_pool pool
          (fun i -> if i mod 2 = 0 then failwith "even" else i)
          (List.init 6 Fun.id)
      in
      Alcotest.(check int) "3 failures reported" 3
        (List.length (List.filter Result.is_error first));
      Alcotest.(check (list int))
        "pool usable after failures"
        [ 0; 10; 20 ]
        (Exec.Pool.map_pool pool (fun i -> i * 10) [ 0; 1; 2 ]))

let test_map_reraises () =
  match Exec.Pool.map ~domains:2 (fun i -> if i = 1 then raise (Boom 1) else i) [ 0; 1 ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()

let test_backtrace_preserved () =
  (* The raise site is inside the worker task; the captured backtrace must
     survive the domain boundary instead of being replaced by the re-raise
     site's (empty) one. *)
  let deep i = if i = 0 then raise (Boom 0) else i in
  (match Exec.Pool.try_map ~domains:2 deep [ 0 ] with
  | [ Error e ] ->
      Alcotest.(check bool) "worker backtrace is non-empty" true
        (String.length (Printexc.raw_backtrace_to_string e.Exec.Pool.backtrace) > 0)
  | _ -> Alcotest.fail "expected a single task failure");
  Alcotest.(check bool) "backtrace recording enabled" true (Printexc.backtrace_status ())

let slow_then i =
  if i = 0 then Unix.sleepf 0.4;
  i * 10

let is_timeout = function
  | Error e -> (
      match e.Exec.Pool.exn with
      | Exec.Pool.Timed_out { limit_s; elapsed_s } ->
          limit_s = 0.1 && elapsed_s >= limit_s
      | _ -> false)
  | Ok _ -> false

let test_watchdog_parallel () =
  (* Task 0 sleeps past the limit: its slot must come back [Timed_out]
     while the rest of the batch completes normally, without waiting for
     the sleeper. *)
  match Exec.Pool.try_map ~domains:2 ~timeout_s:0.1 slow_then [ 0; 1; 2; 3 ] with
  | [ r0; Ok 10; Ok 20; Ok 30 ] ->
      Alcotest.(check bool) "overrunning task timed out" true (is_timeout r0)
  | _ -> Alcotest.fail "unexpected batch shape"

let test_watchdog_sequential () =
  (* ~domains:1 cannot preempt: the watchdog degrades to post-hoc
     detection, still reporting [Timed_out] for the overrun — and because
     detection is post-hoc, the payload's [elapsed_s] must be the task's
     *full* measured duration (the 0.4 s sleep), not the 0.1 s limit. *)
  match Exec.Pool.try_map ~domains:1 ~timeout_s:0.1 slow_then [ 0; 1 ] with
  | [ Error e; Ok 10 ] -> (
      match e.Exec.Pool.exn with
      | Exec.Pool.Timed_out { limit_s; elapsed_s } ->
          Alcotest.(check (float 1e-9)) "limit preserved" 0.1 limit_s;
          Alcotest.(check bool)
            "post-hoc elapsed covers the whole overrunning task" true
            (elapsed_s >= 0.4);
          Alcotest.(check bool) "elapsed past the limit" true (elapsed_s > limit_s)
      | _ -> Alcotest.fail "expected Timed_out")
  | _ -> Alcotest.fail "unexpected batch shape"

let test_watchdog_parallel_elapsed () =
  (* On the pooled path the watchdog publishes the overrun as soon as its
     poll sees it, so elapsed lands past the limit but well before the
     sleeper's full duration would require waiting. *)
  match Exec.Pool.try_map ~domains:2 ~timeout_s:0.1 slow_then [ 0; 1 ] with
  | [ Error e; Ok 10 ] -> (
      match e.Exec.Pool.exn with
      | Exec.Pool.Timed_out { limit_s; elapsed_s } ->
          Alcotest.(check bool) "elapsed >= limit" true (elapsed_s >= limit_s)
      | _ -> Alcotest.fail "expected Timed_out")
  | _ -> Alcotest.fail "unexpected batch shape"

let test_wedged_pool_settles () =
  (* The liveness regression: every worker wedged on an over-limit task,
     with more tasks still queued. The queued tasks never start, so they
     never get a per-task start time — before the progress-bound fix the
     watchdog had nothing to bound them against and the batch blocked for
     the full 1.2 s sleeps. Now the whole batch must settle within about
     the limit (plus a poll), with all four slots [Timed_out]. *)
  let pool = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let results, elapsed =
        Obs.Clock.elapsed (fun () ->
            Exec.Pool.try_map_pool ~timeout_s:0.3 pool
              (fun i ->
                if i < 2 then Unix.sleepf 1.2;
                i)
              [ 0; 1; 2; 3 ])
      in
      Alcotest.(check int) "batch complete" 4 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Error e -> (
              match e.Exec.Pool.exn with
              | Exec.Pool.Timed_out { limit_s; elapsed_s } ->
                  Alcotest.(check (float 1e-9))
                    (Fmt.str "task %d limit" i) 0.3 limit_s;
                  Alcotest.(check bool)
                    (Fmt.str "task %d elapsed past limit" i)
                    true (elapsed_s >= limit_s)
              | _ -> Alcotest.fail (Fmt.str "task %d: expected Timed_out" i))
          | Ok _ -> Alcotest.fail (Fmt.str "task %d should have timed out" i))
        results;
      (* settled from the watchdog, not from the sleepers returning *)
      Alcotest.(check bool)
        (Fmt.str "batch settled in %.2f s, well before the 1.2 s sleeps" elapsed)
        true (elapsed < 1.0))

let test_deep_queue_not_spuriously_timed_out () =
  (* The other half of the progress-bound contract: on a healthy pool a
     task far back in the queue waits longer than the limit in total, but
     every task start refreshes the progress bound, so waiting alone must
     never count as an overrun. 8 × 0.15 s tasks on 2 workers ≈ 0.6 s of
     queue wait for the tail, limit 0.4 s — all must still complete. *)
  let results =
    Exec.Pool.try_map ~domains:2 ~timeout_s:0.4
      (fun i ->
        Unix.sleepf 0.15;
        i)
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Fmt.str "task %d completed" i) i v
      | Error _ -> Alcotest.fail (Fmt.str "task %d spuriously timed out" i))
    results

let test_timeout_backtrace_empty () =
  (* [Timed_out] is published by the watchdog, not raised at a fault
     site: its backtrace must be empty rather than whatever stale trace
     the publishing domain last recorded. *)
  match Exec.Pool.try_map ~domains:2 ~timeout_s:0.05 slow_then [ 0 ] with
  | [ Error e ] ->
      Alcotest.(check int) "no stale frames attached" 0
        (Printexc.raw_backtrace_length e.Exec.Pool.backtrace)
  | _ -> Alcotest.fail "expected the task to time out"

let test_reentrant_submission () =
  (* A task submitting to its own pool is a guaranteed deadlock; it must
     be refused with [Reentrant_submission] — captured as that task's
     error — while an inner batch on a *different* pool stays legal. *)
  let pool = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      let results =
        Exec.Pool.try_map_pool pool
          (fun i ->
            if i = 0 then
              (* would deadlock if accepted *)
              List.length (Exec.Pool.map_pool pool Fun.id [ 1; 2; 3 ])
            else i)
          [ 0; 1 ]
      in
      (match results with
      | [ Error e; Ok 1 ] ->
          Alcotest.(check bool) "refused as Reentrant_submission" true
            (e.Exec.Pool.exn = Exec.Pool.Reentrant_submission)
      | _ -> Alcotest.fail "expected task 0 refused, task 1 fine");
      (* the refusal must not poison the pool *)
      Alcotest.(check (list int))
        "pool usable afterwards" [ 0; 2; 4 ]
        (Exec.Pool.map_pool pool (fun i -> 2 * i) [ 0; 1; 2 ]);
      (* a nested batch on another pool is not re-entrant *)
      let inner =
        Exec.Pool.map_pool pool
          (fun i -> List.fold_left ( + ) 0 (Exec.Pool.map ~domains:1 Fun.id [ i; i ]))
          [ 3 ]
      in
      Alcotest.(check (list int)) "different pool allowed" [ 6 ] inner)

let test_watchdog_not_triggered () =
  Alcotest.(check (list int))
    "fast batch unaffected by watchdog" [ 0; 10; 20 ]
    (Exec.Pool.map ~domains:2 ~timeout_s:5.0 (fun i -> i * 10) [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Fleet equivalence: parallel run_all is bit-for-bit the sequential run *)

(* [Defs.t] holds the scripted lead-speed closure, which polymorphic
   equality cannot traverse; compare everything else. *)
let strip (o : Scenarios.Runner.outcome) =
  ( o.Scenarios.Runner.scenario.Scenarios.Defs.number,
    o.Scenarios.Runner.trace,
    o.Scenarios.Runner.results,
    o.Scenarios.Runner.reports,
    o.Scenarios.Runner.collided,
    o.Scenarios.Runner.end_time )

let test_parallel_equals_sequential () =
  let seq = Scenarios.Runner.run_all ~use_cache:false ~domains:1 () in
  let par = Scenarios.Runner.run_all ~use_cache:false ~domains:4 () in
  Alcotest.(check int) "fleet size" (List.length seq) (List.length par);
  List.iter2
    (fun s p ->
      Alcotest.(check bool)
        (Fmt.str "scenario %d identical under 4 domains"
           s.Scenarios.Runner.scenario.Scenarios.Defs.number)
        true
        (strip s = strip p))
    seq par

let test_run_all_threads_options () =
  (* The full option set reaches every scenario of the fleet: a latch-free
     timing removes scenario 1's vehicle-level goal-1 violations (the
     latch ablation result), which the old run_all could not express. *)
  let timing = { Vehicle.Arbiter.default_timing with latch_time = 0.0 } in
  let fleet = Scenarios.Runner.run_all ~domains:2 ~timing () in
  let o1 = List.hd fleet in
  Alcotest.(check int) "scenario 1 first" 1
    o1.Scenarios.Runner.scenario.Scenarios.Defs.number;
  let goal1_violated =
    List.exists
      (fun (r : Vehicle.Monitors.result) ->
        r.Vehicle.Monitors.entry.Vehicle.Monitors.id = "1"
        && r.Vehicle.Monitors.violations <> [])
      o1.Scenarios.Runner.results
  in
  Alcotest.(check bool) "latch-free fleet: goal 1 silent" false goal1_violated;
  (* window threading: a generous window converts scenario 1's goal-2
     false negatives into hits, without re-simulating anything. *)
  let narrow = Scenarios.Runner.run_all ~domains:2 ~window:0.001 () in
  let wide = Scenarios.Runner.run_all ~domains:2 ~window:0.3 () in
  let fn_sum fleet =
    List.fold_left
      (fun acc (o : Scenarios.Runner.outcome) ->
        List.fold_left
          (fun acc (_, (r : Rtmon.Report.t)) -> acc + r.Rtmon.Report.false_negatives)
          acc o.Scenarios.Runner.reports)
      0 fleet
  in
  Alcotest.(check bool) "wider window, fewer false negatives" true
    (fn_sum wide <= fn_sum narrow)

(* ------------------------------------------------------------------ *)
(* Outcome cache                                                        *)

let test_cache_hit_and_counters () =
  Scenarios.Runner.clear_cache ();
  let s0 = Scenarios.Runner.cache_stats () in
  Alcotest.(check int) "cleared: no hits" 0 s0.Exec.Memo.hits;
  Alcotest.(check int) "cleared: no misses" 0 s0.Exec.Memo.misses;
  let cold = Scenarios.Runner.run (Scenarios.Defs.get 1) in
  let s1 = Scenarios.Runner.cache_stats () in
  Alcotest.(check int) "cold run is a miss" 1 s1.Exec.Memo.misses;
  Alcotest.(check int) "cold run is not a hit" 0 s1.Exec.Memo.hits;
  let warm = Scenarios.Runner.run (Scenarios.Defs.get 1) in
  let s2 = Scenarios.Runner.cache_stats () in
  Alcotest.(check int) "warm run is a hit" 1 s2.Exec.Memo.hits;
  Alcotest.(check int) "warm run adds no miss" 1 s2.Exec.Memo.misses;
  Alcotest.(check bool) "warm outcome physically equal" true (cold == warm);
  (* different configuration, different cache line *)
  let repaired = Scenarios.Runner.run ~defects:Vehicle.Defects.repaired (Scenarios.Defs.get 1) in
  Alcotest.(check bool) "repaired outcome is distinct" true (not (repaired == cold));
  let s3 = Scenarios.Runner.cache_stats () in
  Alcotest.(check int) "distinct key is a miss" 2 s3.Exec.Memo.misses

(* ------------------------------------------------------------------ *)
(* Memo capacity bound                                                  *)

let test_memo_capacity () =
  let m : (int, int) Exec.Memo.t = Exec.Memo.create ~capacity:3 () in
  let compute k () = k * 100 in
  List.iter (fun k -> ignore (Exec.Memo.find_or_add m k (compute k))) [ 1; 2; 3 ];
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "under capacity: no evictions" 0 s.Exec.Memo.evictions;
  (* key 4 evicts the oldest entry (key 1, FIFO) *)
  ignore (Exec.Memo.find_or_add m 4 (compute 4));
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "over capacity: one eviction" 1 s.Exec.Memo.evictions;
  ignore (Exec.Memo.find_or_add m 1 (compute 1));
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "evicted key re-misses" 5 s.Exec.Memo.misses;
  (* keys 3 and 4 are still resident *)
  ignore (Exec.Memo.find_or_add m 4 (fun () -> Alcotest.fail "4 was evicted"));
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "resident key hits" 1 s.Exec.Memo.hits;
  Alcotest.(check int) "second eviction for re-adding 1" 2 s.Exec.Memo.evictions

let test_memo_contention () =
  (* N domains hammering one bounded memo: the hit/miss split must add up
     exactly (single-flight turns every concurrent duplicate lookup into
     a hit, never a duplicated miss), the table must respect its capacity
     throughout, and each insert beyond capacity must be an eviction. *)
  let domains = 4 and lookups = 500 and keys = 32 and capacity = 8 in
  let m : (int, int) Exec.Memo.t = Exec.Memo.create ~capacity () in
  let worker seed () =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to lookups do
      let k = Random.State.int rng keys in
      let v = Exec.Memo.find_or_add m k (fun () -> k * 7) in
      assert (v = k * 7);
      assert (Exec.Memo.length m <= capacity)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "every lookup is a hit or a miss"
    (domains * lookups)
    (s.Exec.Memo.hits + s.Exec.Memo.misses);
  Alcotest.(check bool) "misses at least one per resident key" true
    (s.Exec.Memo.misses >= capacity);
  Alcotest.(check int) "length bounded by capacity" capacity (Exec.Memo.length m);
  (* each miss inserts exactly one entry; an eviction removes one *)
  Alcotest.(check int) "misses = evictions + residents"
    s.Exec.Memo.misses
    (s.Exec.Memo.evictions + Exec.Memo.length m)

let test_memo_single_flight () =
  (* Concurrent cold lookups of the same key: exactly one supplier run;
     the racers block until it settles and then count as hits. *)
  let m : (int, int) Exec.Memo.t = Exec.Memo.create () in
  let runs = Atomic.make 0 in
  let supply () =
    Atomic.incr runs;
    Unix.sleepf 0.05;
    42
  in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Exec.Memo.find_or_add m 0 supply))
  in
  let vs = List.map Domain.join ds in
  Alcotest.(check (list int)) "all racers see the value" [ 42; 42; 42; 42 ] vs;
  Alcotest.(check int) "supplier ran once" 1 (Atomic.get runs);
  let s = Exec.Memo.stats m in
  Alcotest.(check int) "one miss" 1 s.Exec.Memo.misses;
  Alcotest.(check int) "three hits" 3 s.Exec.Memo.hits

let test_memo_capacity_invalid () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Memo.create: capacity must be >= 1") (fun () ->
      ignore (Exec.Memo.create ~capacity:0 () : (int, int) Exec.Memo.t))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map = sequential map" `Quick test_map_matches_sequential;
          Alcotest.test_case "submission-order determinism" `Quick test_submission_order;
          Alcotest.test_case "per-task exception capture" `Quick test_exception_isolated;
          Alcotest.test_case "pool survives task failure" `Quick test_pool_survives_failure;
          Alcotest.test_case "map re-raises" `Quick test_map_reraises;
          Alcotest.test_case "worker backtrace preserved" `Quick test_backtrace_preserved;
          Alcotest.test_case "watchdog: parallel timeout" `Quick test_watchdog_parallel;
          Alcotest.test_case "watchdog: sequential post-hoc" `Quick test_watchdog_sequential;
          Alcotest.test_case "watchdog: parallel elapsed payload" `Quick
            test_watchdog_parallel_elapsed;
          Alcotest.test_case "watchdog: fast batch untouched" `Quick
            test_watchdog_not_triggered;
          Alcotest.test_case "watchdog: wedged pool still settles" `Quick
            test_wedged_pool_settles;
          Alcotest.test_case "watchdog: deep queue is not an overrun" `Quick
            test_deep_queue_not_spuriously_timed_out;
          Alcotest.test_case "watchdog: Timed_out backtrace empty" `Quick
            test_timeout_backtrace_empty;
          Alcotest.test_case "re-entrant submission refused" `Quick
            test_reentrant_submission;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "parallel = sequential (bit-for-bit)" `Slow
            test_parallel_equals_sequential;
          Alcotest.test_case "run_all threads timing/window" `Slow
            test_run_all_threads_options;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit is physically equal; counters move" `Slow
            test_cache_hit_and_counters;
          Alcotest.test_case "capacity bound evicts FIFO" `Quick test_memo_capacity;
          Alcotest.test_case "bounded memo under contention" `Quick
            test_memo_contention;
          Alcotest.test_case "single-flight: one supplier run per key" `Quick
            test_memo_single_flight;
          Alcotest.test_case "capacity must be positive" `Quick
            test_memo_capacity_invalid;
        ] );
    ]
