(** The fault-injection subsystem: splittable PRNG, fault-model semantics
    on synthetic snapshots, the [--inject] spec round-trip, degradation-
    aware monitoring under NaN dropout, outcome-cache reuse of injected
    runs, and bit-for-bit sequential/parallel campaign determinism with
    the smoke grid's pinned detection-coverage matrix. *)

open Tl

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)

let test_prng () =
  Alcotest.(check bool) "derive is pure" true
    (Inject.Prng.derive 42 3 = Inject.Prng.derive 42 3);
  Alcotest.(check bool) "derive separates children" true
    (Inject.Prng.derive 42 0 <> Inject.Prng.derive 42 1);
  Alcotest.(check bool) "derive separates seeds" true
    (Inject.Prng.derive 1 0 <> Inject.Prng.derive 2 0);
  let draws g = List.init 32 (fun _ -> Inject.Prng.next_int64 g) in
  Alcotest.(check bool) "same seed, same stream" true
    (draws (Inject.Prng.create 7) = draws (Inject.Prng.create 7));
  Alcotest.(check bool) "different seed, different stream" true
    (draws (Inject.Prng.create 7) <> draws (Inject.Prng.create 8));
  let g = Inject.Prng.create 11 in
  for _ = 1 to 100 do
    let u = Inject.Prng.float g in
    Alcotest.(check bool) "float in [0,1)" true (u >= 0. && u < 1.);
    Alcotest.(check bool) "gaussian is finite" true
      (Float.is_finite (Inject.Prng.gaussian g))
  done

(* ------------------------------------------------------------------ *)
(* Fault-model semantics on synthetic snapshots                        *)

let snap x = State.of_list [ ("x", Value.Float x); ("flag", Value.Bool true) ]
let dt = 0.001

let feed fault xs =
  (* Drive one runtime over a 1 kHz sequence of snapshots; collect x. *)
  let rt = Inject.Fault.runtime ~seed:0 fault in
  List.mapi
    (fun i x ->
      State.float (Inject.Fault.apply rt ~dt ~now:(float_of_int i *. dt) (snap x)) "x")
    xs

let test_stuck_at () =
  let f = Inject.Fault.make ~target:"x" (Stuck_at (Value.Float 9.)) in
  Alcotest.(check (list (float 0.))) "output frozen" [ 9.; 9.; 9. ] (feed f [ 1.; 2.; 3. ]);
  let rt = Inject.Fault.runtime ~seed:0 f in
  Alcotest.(check bool) "other variables untouched" true
    (State.bool (Inject.Fault.apply rt ~dt ~now:0. (snap 1.)) "flag")

let test_window () =
  let f =
    Inject.Fault.make ~from_t:0.002 ~until_t:0.003 ~target:"x"
      (Stuck_at (Value.Float 9.))
  in
  Alcotest.(check (list (float 0.)))
    "active only inside [from,until]"
    [ 1.; 2.; 9.; 9.; 5. ]
    (feed f [ 1.; 2.; 3.; 4.; 5. ])

let test_dropout_hold () =
  let f = Inject.Fault.make ~from_t:0.002 ~target:"x" Dropout_hold in
  Alcotest.(check (list (float 0.)))
    "holds the last pre-fault value"
    [ 1.; 2.; 2.; 2. ]
    (feed f [ 1.; 2.; 3.; 4. ])

let test_dropout_missing () =
  (match feed (Inject.Fault.make ~target:"x" Dropout_missing) [ 1.; 2. ] with
  | [ a; b ] ->
      Alcotest.(check bool) "numeric target becomes NaN" true
        (Float.is_nan a && Float.is_nan b)
  | _ -> Alcotest.fail "unexpected shape");
  (* A non-numeric target degrades to hold-last rather than poisoning the
     variable with a float. *)
  let f = Inject.Fault.make ~from_t:0.001 ~target:"flag" Dropout_missing in
  let rt = Inject.Fault.runtime ~seed:0 f in
  let s0 = Inject.Fault.apply rt ~dt ~now:0. (snap 1.) in
  Alcotest.(check bool) "pre-window pass-through" true (State.bool s0 "flag");
  let s1 = Inject.Fault.apply rt ~dt ~now:0.001 (snap 1.) in
  Alcotest.(check bool) "bool target held, still a bool" true (State.bool s1 "flag")

let test_delay () =
  let f = Inject.Fault.make ~target:"x" (Delay 2) in
  Alcotest.(check (list (float 0.)))
    "k-state delay line"
    [ 1.; 1.; 1.; 2.; 3. ]
    (feed f [ 1.; 2.; 3.; 4.; 5. ])

let test_noise_determinism () =
  let f = Inject.Fault.make ~target:"x" (Noise 0.5) in
  let xs = List.init 50 (fun i -> float_of_int i) in
  Alcotest.(check bool) "same seed, same noise" true (feed f xs = feed f xs);
  let with_seed seed =
    let rt = Inject.Fault.runtime ~seed f in
    List.mapi
      (fun i x ->
        State.float (Inject.Fault.apply rt ~dt ~now:(float_of_int i *. dt) (snap x)) "x")
      xs
  in
  Alcotest.(check bool) "different seed, different noise" true
    (with_seed 1 <> with_seed 2);
  Alcotest.(check bool) "noise actually perturbs" true (feed f xs <> xs)

let test_absent_target () =
  let f = Inject.Fault.make ~target:"nonexistent" (Stuck_at (Value.Float 9.)) in
  let rt = Inject.Fault.runtime ~seed:0 f in
  let s = snap 1. in
  Alcotest.(check bool) "absent target is a no-op" true
    (State.equal s (Inject.Fault.apply rt ~dt ~now:0. s))

(* ------------------------------------------------------------------ *)
(* Spec round-trip                                                     *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      Alcotest.(check string) spec spec
        (Inject.Fault.to_string (Inject.Spec.parse_exn spec)))
    [
      "stuck=3:ca_accel_req";
      "stuck=false:object_detected";
      "stuck=D:gear";
      "hold:object_range";
      "nan:host_jerk@2..8";
      "delay=150:accel_cmd";
      "noise=0.25:object_closing_speed";
      "drift=0.1:object_range@5..";
      "spike=4/0.5:host_accel";
      "flicker=0.2:object_detected";
    ]

let test_spec_errors () =
  List.iter
    (fun bad ->
      match Inject.Spec.parse bad with
      | Error _ -> ()
      | Ok f ->
          Alcotest.failf "accepted %S as %s" bad (Inject.Fault.to_string f))
    [ ""; "x"; "stuck:"; "stuck=:x"; "delay=no:x"; "wombat=1:x"; "nan:x@b..c" ]

(* ------------------------------------------------------------------ *)
(* Plans, degradation-aware monitoring, cache reuse                    *)

let nan_jerk =
  Inject.Fault.make ~from_t:2.0 ~until_t:8.0 ~target:Vehicle.Signals.host_jerk
    Dropout_missing

let repaired = Vehicle.Defects.repaired

let test_monitor_inhibition () =
  (* NaN on the jerk channel must inhibit the goal-2 jerk monitor — a
     distinct outcome, not a false negative — while leaving the physics
     (and hence every other monitor) untouched. *)
  let o =
    Scenarios.Runner.run ~defects:repaired
      ~inject:(Inject.Plan.make ~seed:42 [ nan_jerk ])
      (Scenarios.Defs.get 1)
  in
  let inhibited =
    List.filter
      (fun (r : Vehicle.Monitors.result) -> r.Vehicle.Monitors.inhibited <> [])
      o.Scenarios.Runner.results
  in
  Alcotest.(check bool) "some monitor inhibited" true (inhibited <> []);
  let reported =
    List.fold_left
      (fun acc (_, (r : Rtmon.Report.t)) -> acc + r.Rtmon.Report.inhibited)
      0 o.Scenarios.Runner.reports
  in
  Alcotest.(check bool) "reports count the inhibition" true (reported > 0);
  Alcotest.(check bool) "reports name the inhibited monitor" true
    (List.exists
       (fun (_, (r : Rtmon.Report.t)) -> r.Rtmon.Report.inhibitions <> [])
       o.Scenarios.Runner.reports);
  let baseline = Scenarios.Runner.run ~defects:repaired (Scenarios.Defs.get 1) in
  Alcotest.(check bool) "physics untouched by the NaN channel" true
    (baseline.Scenarios.Runner.end_time = o.Scenarios.Runner.end_time)

let test_injected_runs_hit_cache () =
  let run () =
    Scenarios.Runner.run ~defects:repaired
      ~inject:(Inject.Plan.make ~seed:42 [ nan_jerk ])
      (Scenarios.Defs.get 1)
  in
  let first = run () in
  let hits0 = (Scenarios.Runner.cache_stats ()).Exec.Memo.hits in
  let second = run () in
  let hits1 = (Scenarios.Runner.cache_stats ()).Exec.Memo.hits in
  Alcotest.(check bool) "repeat injected run is a warm hit" true (hits1 > hits0);
  Alcotest.(check bool) "cache returns the same outcome" true (first == second)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

(** The smoke grid's detection-coverage matrix is pinned: seed 42,
    repaired defects, scenarios {1,3,7} — one row per detection class
    (see [Campaign.smoke]). Any drift here means injection, monitoring or
    classification changed behaviour. *)
let test_smoke_campaign_matrix () =
  let c = Scenarios.Campaign.run (Scenarios.Campaign.smoke ()) in
  Alcotest.(check (list int)) "scenario columns" [ 1; 3; 7 ] c.Scenarios.Campaign.scenarios;
  Alcotest.(check int) "cells" 12 (List.length c.Scenarios.Campaign.cells);
  Alcotest.(check int) "detected" 3 c.Scenarios.Campaign.detected;
  Alcotest.(check int) "missed" 4 c.Scenarios.Campaign.missed;
  Alcotest.(check int) "spurious" 1 c.Scenarios.Campaign.spurious;
  Alcotest.(check int) "no effect" 4 c.Scenarios.Campaign.no_effect;
  Alcotest.(check int) "hits" 70 c.Scenarios.Campaign.hits;
  Alcotest.(check int) "false negatives" 22 c.Scenarios.Campaign.false_negatives;
  Alcotest.(check int) "false positives" 63 c.Scenarios.Campaign.false_positives;
  Alcotest.(check int) "inhibited" 3 c.Scenarios.Campaign.inhibited;
  (* The NaN-dropout row inhibits the jerk monitor in every scenario. *)
  let nan_cells =
    List.filter
      (fun (cell : Scenarios.Campaign.cell) ->
        cell.Scenarios.Campaign.fault.Inject.Fault.model = Inject.Fault.Dropout_missing)
      c.Scenarios.Campaign.cells
  in
  Alcotest.(check int) "NaN row present in all columns" 3 (List.length nan_cells);
  List.iter
    (fun (cell : Scenarios.Campaign.cell) ->
      Alcotest.(check bool) "NaN cell inhibits a monitor" true
        (cell.Scenarios.Campaign.inhibited > 0
        && cell.Scenarios.Campaign.inhibitions <> []))
    nan_cells

(** Same-seed campaigns are bit-for-bit identical sequential vs parallel.
    [use_cache:false] forces both runs to actually simulate — a shared
    cache would make the comparison vacuous. Campaign records are
    closure-free, so whole-record structural equality applies. *)
let test_campaign_determinism () =
  let grid =
    Scenarios.Campaign.
      {
        seed = 42;
        faults =
          [
            Inject.Fault.make
              ~target:(Vehicle.Signals.accel_req "CA")
              (Stuck_at (Value.Float 3.0));
            nan_jerk;
          ];
        grid_scenarios = [ Scenarios.Defs.get 1; Scenarios.Defs.get 7 ];
      }
  in
  let sequential = Scenarios.Campaign.run ~domains:1 ~use_cache:false grid in
  let parallel = Scenarios.Campaign.run ~domains:4 ~use_cache:false grid in
  Alcotest.(check bool) "sequential = parallel, bit for bit" true
    (sequential = parallel)

let () =
  Alcotest.run "inject"
    [
      ( "prng",
        [ Alcotest.test_case "splittable determinism" `Quick test_prng ] );
      ( "faults",
        [
          Alcotest.test_case "stuck_at" `Quick test_stuck_at;
          Alcotest.test_case "activation window" `Quick test_window;
          Alcotest.test_case "dropout (hold)" `Quick test_dropout_hold;
          Alcotest.test_case "dropout (missing/NaN)" `Quick test_dropout_missing;
          Alcotest.test_case "delay line" `Quick test_delay;
          Alcotest.test_case "noise determinism" `Quick test_noise_determinism;
          Alcotest.test_case "absent target no-op" `Quick test_absent_target;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "malformed specs rejected" `Quick test_spec_errors;
        ] );
      ( "monitoring",
        [
          Alcotest.test_case "NaN inhibits, physics untouched" `Slow
            test_monitor_inhibition;
          Alcotest.test_case "injected runs hit the cache" `Slow
            test_injected_runs_hit_cache;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "smoke coverage matrix pinned" `Slow
            test_smoke_campaign_matrix;
          Alcotest.test_case "sequential = parallel (bit-for-bit)" `Slow
            test_campaign_determinism;
        ] );
    ]
